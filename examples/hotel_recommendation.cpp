/// Hotel shortlisting — the paper's motivating scenario (Section I).
///
/// A booking site holds thousands of hotels scored on price (inverted),
/// rating, location convenience, and amenities. Every user ranks hotels by
/// their own linear utility; the site wants one page of r hotels such that
/// every user finds something close to her personal top-k. Rooms sell out
/// and listings reopen constantly, so the shortlist must track a stream of
/// deletions and insertions — exactly the fully-dynamic k-RMS problem.
///
/// The example contrasts FD-RMS against periodic from-scratch recomputation
/// with the greedy baseline, reporting both wall-clock and result quality.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_set>
#include <vector>

#include "baselines/greedy.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/fdrms.h"
#include "geometry/sampling.h"

using fdrms::Point;

namespace {

constexpr int kDim = 4;  // value, rating, location, amenities

/// Hotels cluster into market segments (budget, boutique, luxury, airport).
Point MakeHotel(fdrms::Rng* rng) {
  static const double kSegments[4][kDim] = {
      {0.9, 0.4, 0.5, 0.3},   // budget: great value, modest rating
      {0.4, 0.9, 0.6, 0.7},   // boutique
      {0.1, 0.95, 0.7, 0.95}, // luxury
      {0.6, 0.5, 0.95, 0.5},  // airport: unbeatable location
  };
  const double* base = kSegments[rng->UniformInt(4)];
  Point p(kDim);
  for (int j = 0; j < kDim; ++j) {
    double v = base[j] + 0.25 * rng->Gaussian();
    p[j] = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
  }
  return p;
}

double SampledRegret(const std::vector<std::pair<int, Point>>& live,
                     const std::vector<int>& shortlist, int k) {
  fdrms::Rng rng(4242);
  std::unordered_set<int> chosen(shortlist.begin(), shortlist.end());
  double worst = 0.0;
  for (int s = 0; s < 4000; ++s) {
    Point u = fdrms::SampleUnitVectorNonneg(kDim, &rng);
    std::vector<double> scores;
    double best = 0.0;
    for (const auto& [id, p] : live) {
      double sc = fdrms::Dot(u, p);
      scores.push_back(sc);
      if (chosen.count(id) > 0 && sc > best) best = sc;
    }
    std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end(),
                     std::greater<>());
    double omega_k = scores[k - 1];
    if (omega_k > 0.0) worst = std::max(worst, 1.0 - best / omega_k);
  }
  return worst;
}

}  // namespace

int main() {
  const int kHotels = 4000;
  const int kShortlist = 8;
  const int kTopK = 3;  // "close to the user's top-3" is good enough
  fdrms::Rng rng(7);

  std::vector<std::pair<int, Point>> live;
  for (int id = 0; id < kHotels; ++id) live.emplace_back(id, MakeHotel(&rng));

  fdrms::FdRmsOptions options;
  options.k = kTopK;
  options.r = kShortlist;
  options.eps = 0.05;
  options.max_utilities = 1024;
  fdrms::FdRms algo(kDim, options);
  fdrms::Stopwatch init_watch;
  fdrms::Status st = algo.Initialize(live);
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("FD-RMS initialized on %d hotels in %.1f ms (m = %d)\n",
              kHotels, init_watch.ElapsedMillis(), algo.current_m());

  // A day of booking traffic: 2000 sell-outs and reopenings.
  int next_id = kHotels;
  fdrms::TimeAccumulator fdrms_time;
  for (int event = 0; event < 2000; ++event) {
    fdrms::Stopwatch watch;
    if (rng.Uniform() < 0.5 && !live.empty()) {
      int pos = rng.UniformInt(static_cast<int>(live.size()));
      st = algo.Delete(live[pos].first);
      live.erase(live.begin() + pos);
    } else {
      Point h = MakeHotel(&rng);
      st = algo.Insert(next_id, h);
      live.emplace_back(next_id, h);
      ++next_id;
    }
    fdrms_time.Add(watch.ElapsedSeconds());
    if (!st.ok()) {
      std::fprintf(stderr, "event %d failed: %s\n", event, st.ToString().c_str());
      return 1;
    }
  }
  std::vector<int> shortlist = algo.Result();
  double fdrms_regret = SampledRegret(live, shortlist, kTopK);
  std::printf("FD-RMS: %.3f ms/update, final %d-regret ~ %.3f, page:",
              fdrms_time.MeanMillis(), kTopK, fdrms_regret);
  for (int id : shortlist) std::printf(" H%d", id);
  std::printf("\n");

  // Reference: one from-scratch greedy run on the final snapshot (what a
  // static pipeline would recompute after the fact).
  fdrms::Database db;
  db.dim = kDim;
  for (const auto& [id, p] : live) {
    db.ids.push_back(id);
    db.points.push_back(p);
  }
  fdrms::GreedyStarRms greedy(1024);
  fdrms::Stopwatch greedy_watch;
  std::vector<int> greedy_q = greedy.Compute(db, kTopK, kShortlist, &rng);
  double greedy_ms = greedy_watch.ElapsedMillis();
  double greedy_regret = SampledRegret(live, greedy_q, kTopK);
  std::printf("Greedy* from scratch: %.1f ms/run, regret ~ %.3f\n", greedy_ms,
              greedy_regret);
  std::printf("-> one greedy rebuild costs as much as ~%.0f FD-RMS updates "
              "while matching quality (%.3f vs %.3f)\n",
              greedy_ms / std::max(1e-9, fdrms_time.MeanMillis()),
              fdrms_regret, greedy_regret);
  return 0;
}
