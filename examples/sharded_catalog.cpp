/// Sharded service demo: one product catalog partitioned across four
/// independent FD-RMS writers, served through merged snapshot reads.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/sharded_catalog
///
/// A ShardedFdRmsService hash-routes every catalog id to one of four
/// single-writer shards. Ingest threads stream catalog changes — each
/// mutation lands on the queue of the shard that owns the id — while
/// frontend threads read the merged view: the union of the four shard
/// shortlists, re-covered down to a global budget of 10, stamped with the
/// version vector of the four publications it was composed from. Mid-run
/// the constellation scales out to a fifth shard with AddShard(): a live
/// migration freezes the moving hash slots, drains and replays them as
/// ordinary journaled operations, and publishes the next routing epoch —
/// the frontends keep reading throughout.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "shard/sharded_service.h"

using fdrms::MergedSnapshot;
using fdrms::Point;
using fdrms::ShardedFdRmsService;
using fdrms::ShardedServiceOptions;

int main() {
  const int kDim = 4;
  const int kCatalog = 4000;
  const int kShards = 4;
  fdrms::Rng rng(2026);
  std::vector<std::pair<int, Point>> catalog;
  for (int id = 0; id < kCatalog; ++id) {
    Point p(kDim);
    for (double& v : p) v = rng.Uniform();
    catalog.emplace_back(id, p);
  }

  ShardedServiceOptions sopt;
  sopt.num_shards = kShards;
  sopt.shard.algo.k = 1;
  sopt.shard.algo.r = 6;        // per-shard shortlist budget
  sopt.shard.algo.eps = 0.02;
  sopt.shard.algo.max_utilities = 512;
  sopt.shard.queue_capacity = 1024;
  sopt.shard.max_batch = 64;
  sopt.merged_budget_r = 10;    // global shortlist served to users
  ShardedFdRmsService service(kDim, sopt);
  fdrms::Status st = service.Start(catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("service up: %d items over %d shards (router: %s)\n", kCatalog,
              service.num_shards(), service.router().name());

  // Two ingest threads stream 800 catalog changes each.
  const int kIngestThreads = 2;
  const int kChangesPerThread = 800;
  std::vector<std::thread> ingest;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingest.emplace_back([&service, t] {
      fdrms::Rng local(8100 + t);
      int next_id = kCatalog + t * kChangesPerThread;  // disjoint id ranges
      for (int step = 0; step < kChangesPerThread; ++step) {
        double dice = local.Uniform();
        Point p(kDim);
        for (double& v : p) v = local.Uniform();
        fdrms::Status op_status;
        if (dice < 0.4) {
          op_status = service.SubmitInsert(next_id++, p);
        } else if (dice < 0.7) {
          op_status = service.SubmitUpdate(local.UniformInt(kCatalog), p);
        } else {
          op_status = service.SubmitDelete(local.UniformInt(kCatalog));
        }
        if (!op_status.ok()) {
          std::fprintf(stderr, "submit failed: %s\n",
                       op_status.ToString().c_str());
          return;
        }
      }
    });
  }

  // Frontends read the merged view until ingest finishes.
  std::atomic<bool> open_for_business{true};
  std::atomic<long> requests_served{0};
  std::vector<std::thread> frontends;
  for (int t = 0; t < 3; ++t) {
    frontends.emplace_back([&] {
      while (open_for_business.load(std::memory_order_acquire)) {
        std::shared_ptr<const MergedSnapshot> snap = service.Query();
        if (snap != nullptr) {
          requests_served.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
    });
  }

  // Black Friday: scale out to a fifth writer while ingest churns. The
  // migration is invisible to the frontends — reads stay wait-free and the
  // moving slots cut over atomically at the next routing epoch.
  st = service.AddShard();
  if (!st.ok()) {
    std::fprintf(stderr, "AddShard failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("scaled out online: now %d shards, routing epoch %llu, "
              "%llu migrations\n",
              service.num_shards(),
              static_cast<unsigned long long>(service.epoch()),
              static_cast<unsigned long long>(service.migrations()));
  {
    std::vector<int> load = service.routing_table()->SlotLoad();
    std::printf("slot ownership after rebalancing: [");
    for (size_t s = 0; s < load.size(); ++s) {
      std::printf("%s%d", s ? ", " : "", load[s]);
    }
    std::printf("] of %d slots\n", fdrms::kNumHashSlots);
  }

  for (std::thread& th : ingest) th.join();
  st = service.Flush();
  if (!st.ok()) {
    std::fprintf(stderr, "Flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  open_for_business.store(false, std::memory_order_release);
  for (std::thread& th : frontends) th.join();

  std::shared_ptr<const MergedSnapshot> final_snap = service.Query();
  std::printf("ingest done: %llu ops applied, %llu rejected, %llu batches "
              "across %d writers\n",
              static_cast<unsigned long long>(final_snap->ops_applied),
              static_cast<unsigned long long>(final_snap->ops_rejected),
              static_cast<unsigned long long>(final_snap->batches),
              service.num_shards());
  std::printf("epoch %llu version vector [",
              static_cast<unsigned long long>(final_snap->epoch));
  for (size_t s = 0; s < final_snap->versions.size(); ++s) {
    std::printf("%s%llu", s ? ", " : "",
                static_cast<unsigned long long>(final_snap->versions[s]));
  }
  std::printf("], %d live tuples, union %zu -> shortlist %zu (budget %d)\n",
              final_snap->live_tuples, final_snap->union_size,
              final_snap->ids.size(), sopt.merged_budget_r);
  std::printf("frontends served %ld merged reads; worst shard publish p99 "
              "%.0f us\n",
              requests_served.load(), final_snap->publish_p99_us_max);
  for (size_t i = 0; i < final_snap->ids.size(); ++i) {
    const int id = final_snap->ids[i];
    std::printf("  #%-5d shard %d [", id, service.router().Route(id));
    for (int j = 0; j < kDim; ++j) {
      std::printf("%s%.2f", j ? ", " : "", final_snap->points[i][j]);
    }
    std::printf("]\n");
  }
  (void)service.Stop();
  std::printf("all shards stopped cleanly.\n");
  return 0;
}
