/// Quickstart: maintain a k-regret minimizing set over a changing database.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/quickstart
///
/// The example creates a small product catalog, asks FD-RMS for a 5-tuple
/// representative subset, then streams price updates (delete + insert) and
/// shows the result staying fresh after every change.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/fdrms.h"
#include "geometry/sampling.h"

using fdrms::FdRms;
using fdrms::FdRmsOptions;
using fdrms::Point;

namespace {

/// Sampled maximum regret ratio of `result` against the live tuples —
/// "how far from any user's top choice can our shortlist be, at worst?"
double EstimateRegret(const FdRms& algo, const std::vector<int>& result) {
  fdrms::Rng rng(99);
  double worst = 0.0;
  for (int s = 0; s < 5000; ++s) {
    Point u = fdrms::SampleUnitVectorNonneg(algo.dim(), &rng);
    double omega = 0.0;
    algo.topk().tree().ForEach([&](int, const Point& p) {
      omega = std::max(omega, fdrms::Dot(u, p));
    });
    double best = 0.0;
    for (int id : result) {
      best = std::max(best, fdrms::Dot(u, algo.topk().tree().GetPoint(id)));
    }
    if (omega > 0.0) worst = std::max(worst, 1.0 - best / omega);
  }
  return worst;
}

}  // namespace

int main() {
  // A catalog of 2000 items with 4 quality attributes in [0, 1]
  // (say: rating, battery, camera, value-for-money).
  const int kDim = 4;
  fdrms::Rng rng(2024);
  std::vector<std::pair<int, Point>> catalog;
  for (int id = 0; id < 2000; ++id) {
    Point p(kDim);
    for (double& v : p) v = rng.Uniform();
    catalog.emplace_back(id, p);
  }

  // Ask for a representative subset of size 5: for ANY linear preference,
  // the best of these 5 should be close to the best of all 2000.
  FdRmsOptions options;
  options.k = 1;        // compare against the single best tuple
  options.r = 5;        // shortlist size
  options.eps = 0.02;   // top-k approximation knob (see paper Sec. III-C)
  options.max_utilities = 512;
  FdRms algo(kDim, options);

  fdrms::Status st = algo.Initialize(catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "Initialize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<int> result = algo.Result();
  std::printf("initial shortlist (%zu items):", result.size());
  for (int id : result) std::printf(" #%d", id);
  std::printf("\n  worst-case regret ~ %.3f\n", EstimateRegret(algo, result));

  // Stream 500 catalog updates: an item's attributes change, which is a
  // delete followed by an insert (Section II-B of the paper).
  for (int step = 0; step < 500; ++step) {
    int id = rng.UniformInt(2000);
    if (!algo.topk().tree().Contains(id)) continue;
    Point updated(kDim);
    for (double& v : updated) v = rng.Uniform();
    if (!algo.Delete(id).ok() || !algo.Insert(id, updated).ok()) {
      std::fprintf(stderr, "update failed at step %d\n", step);
      return 1;
    }
    if ((step + 1) % 100 == 0) {
      result = algo.Result();
      std::printf("after %4d updates: shortlist =", step + 1);
      for (int r : result) std::printf(" #%d", r);
      std::printf("  (regret ~ %.3f, m = %d)\n",
                  EstimateRegret(algo, result), algo.current_m());
    }
  }
  std::printf("done — the shortlist stayed r-sized and low-regret while the "
              "catalog churned.\n");
  return 0;
}
