/// IoT fleet representative selection — the paper's second motivating
/// scenario (Section I): sensors connect, disconnect, and refresh their
/// statistics continuously; the server keeps a small representative set of
/// sensors (e.g. to poll at high frequency) such that for any weighting of
/// the telemetry channels, some representative is near the top of the whole
/// fleet.
///
/// This example stresses the fully-dynamic path: every sensor heartbeat is
/// a delete+insert, and whole racks drop offline at once. It also
/// demonstrates Status-based error handling on the public API.

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/fdrms.h"

using fdrms::Point;

namespace {

constexpr int kDim = 6;  // uptime, battery, signal, throughput, cpu, storage

Point Telemetry(fdrms::Rng* rng, double health) {
  Point p(kDim);
  for (int j = 0; j < kDim; ++j) {
    double v = health * (0.3 + 0.7 * rng->Uniform());
    p[j] = v > 1.0 ? 1.0 : v;
  }
  return p;
}

}  // namespace

int main() {
  fdrms::Rng rng(31337);
  const int kRacks = 20;
  const int kPerRack = 150;

  fdrms::FdRmsOptions options;
  options.k = 1;
  options.r = 12;
  options.eps = 0.03;
  options.max_utilities = 768;
  fdrms::FdRms algo(kDim, options);

  // Rack r hosts sensors [r*kPerRack, (r+1)*kPerRack).
  std::vector<std::pair<int, Point>> fleet;
  std::unordered_map<int, double> health;
  for (int rack = 0; rack < kRacks; ++rack) {
    double rack_health = 0.5 + 0.5 * rng.Uniform();
    for (int s = 0; s < kPerRack; ++s) {
      int id = rack * kPerRack + s;
      health[id] = rack_health;
      fleet.emplace_back(id, Telemetry(&rng, rack_health));
    }
  }
  fdrms::Status st = algo.Initialize(fleet);
  if (!st.ok()) {
    std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("fleet of %d sensors; initial representatives:", algo.size());
  for (int id : algo.Result()) std::printf(" S%d", id);
  std::printf("\n");

  fdrms::TimeAccumulator heartbeat_time;
  fdrms::TimeAccumulator outage_time;
  std::vector<bool> online(kRacks * kPerRack, true);

  for (int tick = 0; tick < 30; ++tick) {
    // 1) Heartbeats: 200 random online sensors refresh statistics.
    for (int h = 0; h < 200; ++h) {
      int id = rng.UniformInt(kRacks * kPerRack);
      if (!online[id]) continue;
      fdrms::Stopwatch watch;
      st = algo.Delete(id);
      if (st.ok()) st = algo.Insert(id, Telemetry(&rng, health[id]));
      heartbeat_time.Add(watch.ElapsedSeconds());
      if (!st.ok()) {
        std::fprintf(stderr, "heartbeat: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    // 2) Every 10 ticks a rack fails or recovers in bulk.
    if (tick % 10 == 9) {
      int rack = rng.UniformInt(kRacks);
      bool fail = online[rack * kPerRack];
      fdrms::Stopwatch watch;
      for (int s = 0; s < kPerRack; ++s) {
        int id = rack * kPerRack + s;
        if (fail && online[id]) {
          st = algo.Delete(id);
          online[id] = false;
        } else if (!fail && !online[id]) {
          st = algo.Insert(id, Telemetry(&rng, health[id]));
          online[id] = true;
        }
        if (!st.ok()) {
          std::fprintf(stderr, "outage: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      outage_time.Add(watch.ElapsedSeconds());
      std::printf("tick %2d: rack %2d %s; fleet=%d representatives:", tick,
                  rack, fail ? "FAILED " : "restored", algo.size());
      for (int id : algo.Result()) std::printf(" S%d", id);
      std::printf("\n");
    }
  }
  // Double-delete is reported, not fatal — Status carries the error.
  fdrms::Status dup = algo.Delete(0);
  if (algo.topk().tree().Contains(0)) {
    dup = algo.Delete(0);
    dup = algo.Delete(0);  // second delete must fail cleanly
  }
  std::printf("duplicate delete handled: %s\n", dup.ToString().c_str());
  std::printf("mean heartbeat update: %.3f ms; mean rack event: %.1f ms "
              "(%ld heartbeats, %ld rack events)\n",
              heartbeat_time.MeanMillis(), outage_time.MeanMillis(),
              heartbeat_time.count(), outage_time.count());
  return 0;
}
