/// Live service demo: a product catalog served concurrently.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/live_service
///
/// One FdRmsService owns the catalog. Two "ingest" threads stream catalog
/// changes (new items, delistings, attribute updates) into the bounded
/// update queue while four "frontend" threads answer shortlist requests
/// from the lock-free snapshot — nobody ever waits for the update
/// algorithm. At the end the demo prints what each side saw.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/fdrms_service.h"

using fdrms::FdRms;
using fdrms::FdRmsService;
using fdrms::FdRmsServiceOptions;
using fdrms::Point;
using fdrms::ResultSnapshot;

int main() {
  // A catalog of 3000 items with 4 quality attributes in [0, 1].
  const int kDim = 4;
  const int kCatalog = 3000;
  fdrms::Rng rng(2025);
  std::vector<std::pair<int, Point>> catalog;
  for (int id = 0; id < kCatalog; ++id) {
    Point p(kDim);
    for (double& v : p) v = rng.Uniform();
    catalog.emplace_back(id, p);
  }

  FdRmsServiceOptions sopt;
  sopt.algo.k = 1;
  sopt.algo.r = 8;          // shortlist size served to users
  sopt.algo.eps = 0.02;
  sopt.algo.max_utilities = 512;
  sopt.queue_capacity = 1024;
  sopt.max_batch = 64;
  FdRmsService service(kDim, sopt);
  fdrms::Status st = service.Start(catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("service up: %d items, shortlist size %d, snapshot v%llu\n",
              kCatalog, sopt.algo.r,
              static_cast<unsigned long long>(service.Query()->version));

  // Two ingest threads: each streams 600 catalog changes.
  const int kIngestThreads = 2;
  const int kChangesPerThread = 600;
  std::vector<std::thread> ingest;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingest.emplace_back([&service, t] {
      fdrms::Rng local(7000 + t);
      int next_id = kCatalog + t * kChangesPerThread;  // disjoint id ranges
      for (int step = 0; step < kChangesPerThread; ++step) {
        double dice = local.Uniform();
        Point p(kDim);
        for (double& v : p) v = local.Uniform();
        fdrms::Status op_status;
        if (dice < 0.4) {  // new listing
          op_status = service.SubmitInsert(next_id++, p);
        } else if (dice < 0.7) {  // attribute change of a stable id
          op_status = service.SubmitUpdate(local.UniformInt(kCatalog), p);
        } else {  // delisting (may already be gone — the service shrugs)
          op_status = service.SubmitDelete(local.UniformInt(kCatalog));
        }
        if (!op_status.ok()) {
          std::fprintf(stderr, "submit failed: %s\n",
                       op_status.ToString().c_str());
          return;
        }
      }
    });
  }

  // Four frontend threads answer requests until ingest finishes.
  std::atomic<bool> open_for_business{true};
  std::atomic<long> requests_served{0};
  std::vector<std::thread> frontends;
  for (int t = 0; t < 4; ++t) {
    frontends.emplace_back([&] {
      uint64_t last_version = 0;
      while (open_for_business.load(std::memory_order_acquire)) {
        std::shared_ptr<const ResultSnapshot> snap = service.Query();
        requests_served.fetch_add(1, std::memory_order_relaxed);
        last_version = snap->version;  // monotone per thread
        std::this_thread::yield();
      }
      (void)last_version;
    });
  }

  for (std::thread& th : ingest) th.join();
  st = service.Flush();  // drain the queue so the final snapshot is current
  if (!st.ok()) {
    std::fprintf(stderr, "Flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  open_for_business.store(false, std::memory_order_release);
  for (std::thread& th : frontends) th.join();

  std::shared_ptr<const ResultSnapshot> final_snap = service.Query();
  std::printf("ingest done: %llu ops applied, %llu rejected, %llu batches\n",
              static_cast<unsigned long long>(final_snap->ops_applied),
              static_cast<unsigned long long>(final_snap->ops_rejected),
              static_cast<unsigned long long>(final_snap->batches));
  std::printf("frontends served %ld snapshot reads; final snapshot v%llu has "
              "%zu items over %d live tuples (m = %d):\n",
              requests_served.load(),
              static_cast<unsigned long long>(final_snap->version),
              final_snap->ids.size(), final_snap->live_tuples,
              final_snap->sample_size_m);
  for (size_t i = 0; i < final_snap->ids.size(); ++i) {
    std::printf("  #%-5d [", final_snap->ids[i]);
    for (int j = 0; j < kDim; ++j) {
      std::printf("%s%.2f", j ? ", " : "", final_snap->points[i][j]);
    }
    std::printf("]\n");
  }
  (void)service.Stop();
  std::printf("service stopped cleanly.\n");
  return 0;
}
