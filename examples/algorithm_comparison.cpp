/// Side-by-side comparison of every k-RMS algorithm in the library on one
/// static snapshot — a miniature of the paper's Table-style evaluation and
/// a tour of the baseline APIs.
///
/// Run with an optional dataset name:  ./algorithm_comparison AntiCor

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dmm.h"
#include "baselines/exact2d.h"
#include "baselines/greedy.h"
#include "baselines/kernel_hs.h"
#include "baselines/sphere.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "geometry/sampling.h"

using namespace fdrms;

int main(int argc, char** argv) {
  std::string dataset = argc > 1 ? argv[1] : "Indep";
  const int n = 5000;
  const int r = 10;
  Result<PointSet> gen = GenerateByName(dataset, n, 11);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    std::fprintf(stderr, "datasets: BB AQ CT Movie Indep AntiCor\n");
    return 1;
  }
  const PointSet& ps = gen.value();
  Database db;
  db.dim = ps.dim();
  for (int i = 0; i < ps.size(); ++i) {
    db.ids.push_back(i);
    db.points.push_back(ps.Get(i));
  }
  std::printf("dataset %s: n=%d d=%d, skyline=%zu, RMS(1, %d)\n\n",
              dataset.c_str(), db.size(), db.dim, SkylineIndices(db).size(),
              r);

  std::vector<std::unique_ptr<RmsAlgorithm>> algos;
  algos.push_back(std::make_unique<GreedyRms>());
  algos.push_back(std::make_unique<GeoGreedyRms>());
  algos.push_back(std::make_unique<GreedyStarRms>());
  algos.push_back(std::make_unique<DmmRrms>());
  algos.push_back(std::make_unique<DmmGreedy>());
  algos.push_back(std::make_unique<EpsKernelRms>());
  algos.push_back(std::make_unique<HittingSetRms>());
  algos.push_back(std::make_unique<SphereRms>());
  algos.push_back(std::make_unique<CubeRms>());

  // Shared regret yardstick.
  Rng eval_rng(1);
  std::vector<Point> dirs = SampleDirections(20000, db.dim, &eval_rng);
  std::vector<double> omega = OmegaKForDirections(dirs, db.points, 1);

  TablePrinter table({"algorithm", "time(ms)", "|Q|", "mrr_1"});
  Rng rng(5);
  for (const auto& algo : algos) {
    Stopwatch watch;
    std::vector<int> q = algo->Compute(db, 1, r, &rng);
    double ms = watch.ElapsedMillis();
    std::vector<int> q_indices(q.begin(), q.end());  // ids == indices here
    double regret = SampledMaxRegret(dirs, omega, db.points, q_indices);
    table.BeginRow();
    table.AddCell(algo->name());
    table.AddNumber(ms, 1);
    table.AddInt(static_cast<long>(q.size()));
    table.AddNumber(regret, 4);
  }
  table.Print(std::cout);
  std::printf("\n(mrr_1 estimated on %zu sampled utilities; smaller is "
              "better)\n", dirs.size());
  return 0;
}
