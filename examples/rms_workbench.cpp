/// rms_workbench — command-line driver for every algorithm in the library
/// on any generated dataset; the "swiss army knife" example.
///
/// Usage:
///   rms_workbench [--dataset=Indep] [--n=4000] [--k=1] [--r=10]
///                 [--algo=fdrms|greedy|greedy*|geogreedy|dmm-rrms|
///                        dmm-greedy|eps-kernel|hs|sphere|cube|arm]
///                 [--ops=2000] [--seed=42] [--eps=auto]
///
/// With --algo=fdrms it replays a dynamic half-insert/half-delete stream
/// and reports per-update cost; static algorithms run once on the snapshot.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/average_regret.h"
#include "baselines/dmm.h"
#include "baselines/greedy.h"
#include "baselines/kernel_hs.h"
#include "baselines/sphere.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "eval/runner.h"
#include "eval/tuning.h"
#include "eval/workload.h"

using namespace fdrms;

namespace {

struct Args {
  std::string dataset = "Indep";
  std::string algo = "fdrms";
  int n = 4000;
  int k = 1;
  int r = 10;
  uint64_t seed = 42;
  std::string eps = "auto";
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--dataset=")) {
      out->dataset = v;
    } else if (const char* v = value("--algo=")) {
      out->algo = v;
    } else if (const char* v = value("--n=")) {
      out->n = std::atoi(v);
    } else if (const char* v = value("--k=")) {
      out->k = std::atoi(v);
    } else if (const char* v = value("--r=")) {
      out->r = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--eps=")) {
      out->eps = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return out->n > 0 && out->k >= 1 && out->r >= 1;
}

std::unique_ptr<RmsAlgorithm> MakeStatic(const std::string& name) {
  if (name == "greedy") return std::make_unique<GreedyRms>();
  if (name == "greedy*") return std::make_unique<GreedyStarRms>();
  if (name == "geogreedy") return std::make_unique<GeoGreedyRms>();
  if (name == "dmm-rrms") return std::make_unique<DmmRrms>();
  if (name == "dmm-greedy") return std::make_unique<DmmGreedy>();
  if (name == "eps-kernel") return std::make_unique<EpsKernelRms>();
  if (name == "hs") return std::make_unique<HittingSetRms>();
  if (name == "sphere") return std::make_unique<SphereRms>();
  if (name == "cube") return std::make_unique<CubeRms>();
  if (name == "arm") return std::make_unique<AverageRegretGreedy>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: rms_workbench [--dataset=NAME] [--n=N] [--k=K] "
                 "[--r=R] [--algo=NAME] [--seed=S] [--eps=auto|VALUE]\n");
    return 2;
  }
  Result<PointSet> gen = GenerateByName(args.dataset, args.n, args.seed);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s (datasets: BB AQ CT Movie Indep AntiCor)\n",
                 gen.status().ToString().c_str());
    return 2;
  }
  const PointSet& ps = gen.value();
  std::printf("dataset=%s n=%d d=%d  RMS(k=%d, r=%d)  algo=%s\n",
              args.dataset.c_str(), ps.size(), ps.dim(), args.k, args.r,
              args.algo.c_str());
  Workload wl(&ps, args.seed);
  WorkloadRunner runner(&wl, args.k,
                        static_cast<int>(GetEnvLong("FDRMS_EVAL_VECTORS", 5000)),
                        args.seed + 1);
  RunResult res;
  if (args.algo == "fdrms") {
    FdRmsOptions opt;
    opt.k = args.k;
    opt.r = args.r;
    opt.max_utilities = static_cast<int>(GetEnvLong("FDRMS_MAX_UTILITIES", 2048));
    opt.seed = args.seed;
    if (args.eps == "auto") {
      std::vector<std::pair<int, Point>> tuples;
      for (int id : wl.initial_ids()) tuples.emplace_back(id, ps.Get(id));
      TuneResult tuned = AutoTuneEpsilon(tuples, ps.dim(), opt);
      opt = tuned.options;
      std::printf("auto-tuned eps=%.4f (probes:", opt.eps);
      for (const auto& probe : tuned.probes) {
        std::printf(" {eps=%.4f mrr=%.3f m=%d}", probe.eps,
                    probe.sampled_regret, probe.m);
      }
      std::printf(")\n");
    } else {
      opt.eps = std::atof(args.eps.c_str());
    }
    res = runner.RunFdRms(opt);
    std::printf("init: %.1f ms; final m=%d\n", res.init_ms, res.final_m);
  } else {
    std::unique_ptr<RmsAlgorithm> algo = MakeStatic(args.algo);
    if (algo == nullptr) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", args.algo.c_str());
      return 2;
    }
    if (args.k > 1 && !algo->SupportsKGreaterThan1()) {
      std::fprintf(stderr, "%s supports k = 1 only\n", algo->name().c_str());
      return 2;
    }
    res = runner.RunStatic(*algo, args.r);
    std::printf("skyline-change triggers: %ld of %zu ops\n",
                res.skyline_triggers, wl.operations().size());
  }
  std::printf("mean update time: %.4f ms/op\n", res.mean_update_ms);
  std::printf("mean mrr_%d over checkpoints: %.4f\n", args.k, res.mean_regret);
  std::printf("final result (%zu ids):", res.final_result.size());
  for (int id : res.final_result) std::printf(" %d", id);
  std::printf("\n");
  return 0;
}
