#ifndef FDRMS_SHARD_MERGED_SNAPSHOT_H_
#define FDRMS_SHARD_MERGED_SNAPSHOT_H_

/// \file merged_snapshot.h
/// The read-side unit of the sharded serving layer: one immutable
/// composition of the S independently published per-shard ResultSnapshots.
///
/// Consistency model: each component is point-in-time consistent for its
/// shard (a prefix of that shard's applied operation stream), but the
/// composition is *vector consistent*, not globally point-in-time — shards
/// publish independently, so the merged view may pair shard A's state
/// after operation 100 with shard B's after operation 90. The version
/// vector records exactly which per-shard publications were composed; a
/// reader comparing two merged snapshots sees component-wise monotone
/// versions. Because the tuple space is id-partitioned, every tuple's
/// history still lives on one shard, so no merged view ever shows a tuple
/// in two states at once.

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/point.h"
#include "serve/result_snapshot.h"

namespace fdrms {

/// One merged view over S shard snapshots. Immutable after construction;
/// holds the component snapshots alive for per-shard inspection.
struct MergedSnapshot {
  /// Routing epoch this view was composed under (see shard/migration.h).
  /// Monotone across merged snapshots observed by any single reader; the
  /// shard count — and so the version vector's length — only changes when
  /// the epoch advances.
  uint64_t epoch = 0;

  /// Version vector: versions[s] is the publication version of shard s's
  /// component. Component-wise monotone across merged snapshots observed
  /// by any single reader *within one epoch*; a topology-changing epoch
  /// re-indexes the components.
  std::vector<uint64_t> versions;

  /// Degraded-read annotation, aligned with `versions`: degraded[s] is true
  /// when component s is the *last* snapshot a now-dead shard writer
  /// published. A degraded component keeps serving but stops advancing —
  /// its versions[s] is frozen while healthy components advance, which is
  /// exactly the staleness bound a reader gets: everything the dead shard
  /// applied before its death is visible, everything submitted after is
  /// not (those submits fail fast with kUnavailable). Empty or all-false
  /// when every shard is healthy.
  std::vector<bool> degraded;
  int degraded_shards = 0;

  /// Operation counters summed across shards.
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;
  uint64_t batches = 0;
  uint64_t persisted = 0;

  /// Live tuples summed across shards.
  int live_tuples = 0;

  /// Smallest per-shard sample size m. With a shared utility-sampling seed
  /// every shard draws the same utility sequence, so utilities with index
  /// below this are covered by *every* shard's (1-ε) guarantee — the merged
  /// result inherits the k=1 regret bound on that shared prefix.
  int min_sample_size_m = 0;

  /// Merged result set: ids ascending (disjoint across shards by routing),
  /// points parallel to ids. Union of the shard results, optionally
  /// reduced to ShardedServiceOptions::merged_budget_r by the greedy
  /// re-cover (`reduced` says whether that happened; `union_size` is the
  /// pre-reduction size).
  std::vector<int> ids;
  std::vector<Point> points;
  size_t union_size = 0;
  bool reduced = false;

  /// Writer-side cost aggregates: the max is the critical path a multi-core
  /// deployment pays (the slowest shard bounds completion), the sum is the
  /// total work all writers did.
  double writer_busy_seconds_max = 0.0;
  double writer_busy_seconds_sum = 0.0;

  /// Worst per-shard publication latency quantiles (µs).
  double publish_p50_us_max = 0.0;
  double publish_p99_us_max = 0.0;

  /// Batching telemetry across shards: the largest adaptive batch bound
  /// any shard is running at, plus the per-shard queue-depth and
  /// batch-size histograms summed bucket-wise (see obs::Pow2HistBucket) — the
  /// constellation-wide ingestion profile an operator sizes max_batch and
  /// queue_capacity from.
  uint64_t effective_max_batch_max = 0;
  std::vector<uint64_t> queue_depth_hist;
  std::vector<uint64_t> batch_size_hist;

  /// The composed per-shard snapshots, index-aligned with `versions`.
  std::vector<std::shared_ptr<const ResultSnapshot>> shards;
};

}  // namespace fdrms

#endif  // FDRMS_SHARD_MERGED_SNAPSHOT_H_
