#include "shard/migration.h"

#include <algorithm>
#include <string>

namespace fdrms {

namespace {
constexpr char kMagic[] = "FDRMS-ROUTING-v1";
}  // namespace

std::shared_ptr<const RoutingTable> RoutingTable::Slotted(int num_shards) {
  FDRMS_CHECK(num_shards >= 1);
  auto table = std::shared_ptr<RoutingTable>(new RoutingTable());
  table->num_shards_ = num_shards;
  table->slot_to_shard_.resize(kNumHashSlots);
  for (int slot = 0; slot < kNumHashSlots; ++slot) {
    table->slot_to_shard_[slot] = slot % num_shards;
  }
  return table;
}

std::shared_ptr<const RoutingTable> RoutingTable::Delegating(
    std::shared_ptr<const ShardRouter> base) {
  FDRMS_CHECK(base != nullptr);
  auto table = std::shared_ptr<RoutingTable>(new RoutingTable());
  table->num_shards_ = base->num_shards();
  table->base_ = std::move(base);
  return table;
}

int RoutingTable::Route(int id) const {
  for (auto it = id_rules_.rbegin(); it != id_rules_.rend(); ++it) {
    if (id >= it->begin && id < it->end) return it->target;
  }
  if (slotted()) return slot_to_shard_[static_cast<size_t>(HashSlotOf(id))];
  return base_->Route(id);
}

std::vector<int> RoutingTable::SlotsOwnedBy(int shard) const {
  FDRMS_CHECK(slotted());
  std::vector<int> owned;
  for (int slot = 0; slot < kNumHashSlots; ++slot) {
    if (slot_to_shard_[static_cast<size_t>(slot)] == shard) {
      owned.push_back(slot);
    }
  }
  return owned;
}

std::vector<int> RoutingTable::SlotLoad() const {
  FDRMS_CHECK(slotted());
  std::vector<int> load(static_cast<size_t>(num_shards_), 0);
  for (int owner : slot_to_shard_) {
    if (owner >= 0 && owner < num_shards_) ++load[static_cast<size_t>(owner)];
  }
  return load;
}

Result<std::shared_ptr<const RoutingTable>> RoutingTable::Apply(
    const MigrationPlan& plan, int new_num_shards) const {
  if (plan.empty()) {
    return Status::Invalid("migration plan moves nothing");
  }
  if (new_num_shards < num_shards_) {
    return Status::Invalid("Apply cannot shrink the shard space (use "
                           "WithoutLastShard after migrating ownership away)");
  }
  if (!plan.slot_moves.empty() && !slotted()) {
    return Status::FailedPrecondition(
        "slot moves require the default slot-mapped router; this "
        "constellation routes through a custom ShardRouter");
  }
  for (const MigrationPlan::SlotMove& move : plan.slot_moves) {
    if (move.slot < 0 || move.slot >= kNumHashSlots) {
      return Status::Invalid("slot " + std::to_string(move.slot) +
                             " out of range");
    }
    if (move.target < 0 || move.target >= new_num_shards) {
      return Status::Invalid("slot target " + std::to_string(move.target) +
                             " out of range");
    }
  }
  if (plan.has_range() &&
      (plan.id_target < 0 || plan.id_target >= new_num_shards)) {
    return Status::Invalid("range target " + std::to_string(plan.id_target) +
                           " out of range");
  }

  auto next = std::shared_ptr<RoutingTable>(new RoutingTable());
  next->epoch_ = epoch_ + 1;
  next->num_shards_ = new_num_shards;
  next->slot_to_shard_ = slot_to_shard_;
  next->base_ = base_;
  next->id_rules_ = id_rules_;
  for (const MigrationPlan::SlotMove& move : plan.slot_moves) {
    next->slot_to_shard_[static_cast<size_t>(move.slot)] = move.target;
  }
  if (plan.has_range()) {
    // Replace an exact-range rule in place so repeated re-targeting of the
    // same range does not grow the rule list without bound.
    bool replaced = false;
    for (IdRangeRule& rule : next->id_rules_) {
      if (rule.begin == plan.id_begin && rule.end == plan.id_end) {
        rule.target = plan.id_target;
        replaced = true;
      }
    }
    if (!replaced) {
      next->id_rules_.push_back({plan.id_begin, plan.id_end, plan.id_target});
    }
  }
  return std::shared_ptr<const RoutingTable>(std::move(next));
}

std::shared_ptr<const RoutingTable> RoutingTable::WithNumShards(
    int num_shards) const {
  FDRMS_CHECK(num_shards >= num_shards_)
      << "WithNumShards cannot shrink the shard space";
  auto next = std::shared_ptr<RoutingTable>(new RoutingTable());
  next->epoch_ = epoch_ + 1;
  next->num_shards_ = num_shards;
  next->slot_to_shard_ = slot_to_shard_;
  next->base_ = base_;
  next->id_rules_ = id_rules_;
  return next;
}

Result<std::shared_ptr<const RoutingTable>> RoutingTable::WithoutLastShard()
    const {
  if (num_shards_ < 2) {
    return Status::FailedPrecondition("cannot remove the only shard");
  }
  const int victim = num_shards_ - 1;
  for (int owner : slot_to_shard_) {
    if (owner == victim) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(victim) +
          " still owns slots; migrate them away first");
    }
  }
  for (const IdRangeRule& rule : id_rules_) {
    if (rule.target == victim) {
      return Status::FailedPrecondition(
          "an id-range rule still targets shard " + std::to_string(victim) +
          "; re-target it first");
    }
  }
  auto next = std::shared_ptr<RoutingTable>(new RoutingTable());
  next->epoch_ = epoch_ + 1;
  next->num_shards_ = num_shards_ - 1;
  next->slot_to_shard_ = slot_to_shard_;
  next->base_ = base_;
  next->id_rules_ = id_rules_;
  return std::shared_ptr<const RoutingTable>(std::move(next));
}

Status RoutingTable::Save(std::ostream* os) const {
  if (os == nullptr) return Status::Invalid("null output stream");
  if (!slotted()) {
    return Status::FailedPrecondition(
        "only slot-mapped routing tables serialize (custom ShardRouters "
        "cannot round-trip)");
  }
  *os << kMagic << "\n";
  *os << epoch_ << " " << num_shards_ << " " << id_rules_.size() << "\n";
  for (int slot = 0; slot < kNumHashSlots; ++slot) {
    *os << (slot ? " " : "") << slot_to_shard_[static_cast<size_t>(slot)];
  }
  *os << "\n";
  for (const IdRangeRule& rule : id_rules_) {
    *os << rule.begin << " " << rule.end << " " << rule.target << "\n";
  }
  if (!os->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<std::shared_ptr<const RoutingTable>> RoutingTable::Load(
    std::istream* is) {
  if (is == nullptr) return Status::Invalid("null input stream");
  std::string magic;
  if (!std::getline(*is, magic) || magic != kMagic) {
    return Status::Invalid("bad routing table header: '" + magic + "'");
  }
  uint64_t epoch = 0;
  int num_shards = 0;
  size_t num_rules = 0;
  *is >> epoch >> num_shards >> num_rules;
  if (!is->good() || num_shards < 1 || num_rules > 1u << 20) {
    return Status::Invalid("bad routing table parameter block");
  }
  auto table = std::shared_ptr<RoutingTable>(new RoutingTable());
  table->epoch_ = epoch;
  table->num_shards_ = num_shards;
  table->slot_to_shard_.resize(kNumHashSlots);
  for (int slot = 0; slot < kNumHashSlots; ++slot) {
    int owner = -1;
    *is >> owner;
    if (is->fail() || owner < 0 || owner >= num_shards) {
      return Status::Invalid("bad slot owner at slot " + std::to_string(slot));
    }
    table->slot_to_shard_[static_cast<size_t>(slot)] = owner;
  }
  for (size_t i = 0; i < num_rules; ++i) {
    IdRangeRule rule{};
    *is >> rule.begin >> rule.end >> rule.target;
    if (is->fail() || rule.end <= rule.begin || rule.target < 0 ||
        rule.target >= num_shards) {
      return Status::Invalid("bad id-range rule " + std::to_string(i));
    }
    table->id_rules_.push_back(rule);
  }
  return std::shared_ptr<const RoutingTable>(std::move(table));
}

}  // namespace fdrms
