#include "shard/manifest.h"

#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>

#include "common/durable_io.h"

namespace fdrms {

namespace {

constexpr const char* kMagic = "FDRMS-MANIFEST-v1";

std::string DirOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

bool ParseHex64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

// Consumes `prefix` off the front of *s; false (s untouched) on mismatch.
bool ConsumePrefix(std::string* s, const char* prefix) {
  std::size_t n = std::char_traits<char>::length(prefix);
  if (s->compare(0, n, prefix) != 0) return false;
  s->erase(0, n);
  return true;
}

// Consumes a non-empty run of digits.
bool ConsumeDigits(std::string* s) {
  std::size_t n = 0;
  while (n < s->size() && (*s)[n] >= '0' && (*s)[n] <= '9') ++n;
  if (n == 0) return false;
  s->erase(0, n);
  return true;
}

// True iff `rest` (the part after the base name) is a versioned snapshot
// suffix this layer owns: ".shard<i>.g<g>.b<b>" or ".routing.e<e>",
// optionally with a trailing ".tmp".
bool IsVersionedSuffix(std::string rest, bool* is_tmp) {
  *is_tmp = false;
  if (rest.size() > 4 && rest.compare(rest.size() - 4, 4, ".tmp") == 0) {
    *is_tmp = true;
    rest.erase(rest.size() - 4);
  }
  std::string s = rest;
  if (ConsumePrefix(&s, ".shard") && ConsumeDigits(&s) &&
      ConsumePrefix(&s, ".g") && ConsumeDigits(&s) &&
      ConsumePrefix(&s, ".b") && ConsumeDigits(&s) && s.empty()) {
    return true;
  }
  s = rest;
  return ConsumePrefix(&s, ".routing.e") && ConsumeDigits(&s) && s.empty();
}

}  // namespace

std::string EncodeManifest(const ConstellationManifest& m) {
  std::ostringstream body;
  body << kMagic << "\n"
       << "generation " << m.generation << "\n"
       << "epoch " << m.epoch << "\n"
       << "shard_count " << m.shard_count << "\n"
       << "routing " << ChecksumHex(m.routing_checksum) << " "
       << (m.routing_file.empty() ? "-" : m.routing_file.c_str()) << "\n";
  for (const ManifestShardEntry& e : m.shards) {
    body << "shard " << e.index << " " << e.gen << " " << e.batches << " "
         << ChecksumHex(e.checksum) << " "
         << (e.file.empty() ? "-" : e.file.c_str()) << "\n";
  }
  std::string text = body.str();
  // The trailer's checksum covers exactly the bytes before the trailer
  // itself (the decoder splits at the final "\nchecksum " and hashes what
  // precedes it) — compute it before appending the trailer prefix.
  const std::string cksum = ChecksumHex(Fnv1a64(text.data(), text.size()));
  text += "checksum ";
  text += cksum;
  text += "\n";
  return text;
}

Result<ConstellationManifest> DecodeManifest(const std::string& text) {
  // Split off the trailer; the checksum covers every byte before it,
  // including the preceding newline.
  std::size_t pos = text.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    return Status::Internal("manifest: missing checksum trailer");
  }
  const std::string body = text.substr(0, pos + 1);
  std::string trailer = text.substr(pos + 1);
  while (!trailer.empty() &&
         (trailer.back() == '\n' || trailer.back() == '\r')) {
    trailer.pop_back();
  }
  std::uint64_t want = 0;
  if (!ConsumePrefix(&trailer, "checksum ") || !ParseHex64(trailer, &want)) {
    return Status::Internal("manifest: malformed checksum trailer");
  }
  if (Fnv1a64(body.data(), body.size()) != want) {
    return Status::Internal("manifest: body checksum mismatch (torn write?)");
  }

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Internal("manifest: bad magic");
  }
  ConstellationManifest m;
  bool saw_generation = false, saw_epoch = false, saw_count = false,
       saw_routing = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "generation") {
      ls >> m.generation;
      saw_generation = static_cast<bool>(ls);
    } else if (key == "epoch") {
      ls >> m.epoch;
      saw_epoch = static_cast<bool>(ls);
    } else if (key == "shard_count") {
      ls >> m.shard_count;
      saw_count = static_cast<bool>(ls);
    } else if (key == "routing") {
      std::string cksum, file;
      ls >> cksum >> file;
      if (!ls || !ParseHex64(cksum, &m.routing_checksum)) {
        return Status::Internal("manifest: malformed routing row");
      }
      m.routing_file = (file == "-") ? std::string() : file;
      saw_routing = true;
    } else if (key == "shard") {
      ManifestShardEntry e;
      std::string cksum, file;
      ls >> e.index >> e.gen >> e.batches >> cksum >> file;
      if (!ls || !ParseHex64(cksum, &e.checksum)) {
        return Status::Internal("manifest: malformed shard row");
      }
      e.file = (file == "-") ? std::string() : file;
      m.shards.push_back(std::move(e));
    } else {
      return Status::Internal("manifest: unknown row '" + key + "'");
    }
  }
  if (!saw_generation || !saw_epoch || !saw_count || !saw_routing) {
    return Status::Internal("manifest: missing required row");
  }
  if (static_cast<int>(m.shards.size()) != m.shard_count) {
    return Status::Internal("manifest: shard rows != shard_count");
  }
  for (int i = 0; i < m.shard_count; ++i) {
    if (m.shards[static_cast<std::size_t>(i)].index != i) {
      return Status::Internal("manifest: shard rows out of order");
    }
  }
  return m;
}

std::string ManifestSlotPath(const std::string& base, int slot) {
  return base + (slot == 0 ? ".manifest.a" : ".manifest.b");
}

std::string ShardSnapshotPath(const std::string& base, int index,
                              long long gen, long long batches) {
  std::ostringstream oss;
  oss << base << ".shard" << index << ".g" << gen << ".b" << batches;
  return oss.str();
}

std::string RoutingSnapshotPath(const std::string& base, long long epoch) {
  std::ostringstream oss;
  oss << base << ".routing.e" << epoch;
  return oss.str();
}

Result<LoadedManifest> LoadNewestManifest(const std::string& base) {
  LoadedManifest out;
  std::string torn_detail;
  for (int slot = 0; slot < 2; ++slot) {
    Result<std::string> text = ReadFileToString(ManifestSlotPath(base, slot));
    if (!text.ok()) {
      if (text.status().code() != StatusCode::kNotFound) {
        torn_detail += text.status().ToString() + "; ";
      }
      continue;
    }
    ++out.present_slots;
    Result<ConstellationManifest> m = DecodeManifest(text.value());
    if (!m.ok()) {
      torn_detail += ManifestSlotPath(base, slot) + ": " +
                     m.status().ToString() + "; ";
      continue;
    }
    ++out.valid_slots;
    if (!m.value().routing_file.empty()) {
      out.referenced.push_back(m.value().routing_file);
    }
    for (const ManifestShardEntry& e : m.value().shards) {
      if (!e.file.empty()) out.referenced.push_back(e.file);
    }
    if (out.slot < 0 || m.value().generation > out.manifest.generation) {
      out.manifest = std::move(m).value();
      out.slot = slot;
    }
  }
  if (out.present_slots == 0) {
    return Status::NotFound("no manifest at " + base + ".manifest.{a,b}");
  }
  if (out.valid_slots == 0) {
    return Status::Internal("manifest slots present but none valid at " +
                            base + ": " + torn_detail);
  }
  return out;
}

Status CommitManifestSlot(const std::string& base,
                          const ConstellationManifest& m) {
  const int slot = static_cast<int>(m.generation & 1);
  return WriteFileDurable(ManifestSlotPath(base, slot), EncodeManifest(m),
                          "shard.manifest");
}

std::string FileBasename(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string JoinDirOf(const std::string& base, const std::string& name) {
  const std::string dir = DirOf(base);
  if (dir == ".") return name;
  return (dir == "/") ? "/" + name : dir + "/" + name;
}

Result<std::uint64_t> ChecksumFile(const std::string& path) {
  std::string contents;
  FDRMS_ASSIGN_OR_RETURN(contents, ReadFileToString(path));
  return Fnv1a64(contents.data(), contents.size());
}

int GarbageCollectConstellationFiles(
    const std::string& base, const std::vector<std::string>& referenced,
    bool include_tmp) {
  std::set<std::string> keep;
  for (const std::string& r : referenced) {
    if (!r.empty()) keep.insert(FileBasename(r));
  }
  const std::string prefix = FileBasename(base);
  const std::filesystem::path dir(DirOf(base));
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  const std::filesystem::directory_iterator end;
  int removed = 0;
  while (!ec && it != end) {
    const std::string name = it->path().filename().string();
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      bool is_tmp = false;
      if (IsVersionedSuffix(name.substr(prefix.size()), &is_tmp) &&
          (include_tmp || !is_tmp) && keep.count(name) == 0) {
        std::error_code rm_ec;
        if (std::filesystem::remove(it->path(), rm_ec) && !rm_ec) ++removed;
      }
    }
    it.increment(ec);
  }
  return removed;
}

ConstellationFileScan ScanConstellationFiles(const std::string& base) {
  ConstellationFileScan scan;
  const std::string prefix = FileBasename(base);
  std::error_code ec;
  std::filesystem::directory_iterator it(DirOf(base), ec);
  const std::filesystem::directory_iterator end;
  while (!ec && it != end) {
    const std::string name = it->path().filename().string();
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = name.substr(prefix.size());
      bool is_tmp = false;
      if (IsVersionedSuffix(rest, &is_tmp)) {
        if (!is_tmp) scan.any_versioned = true;
      } else if (rest == ".routing") {
        scan.any_legacy = true;
      } else {
        std::string s = rest;
        if (ConsumePrefix(&s, ".shard") && ConsumeDigits(&s) && s.empty()) {
          scan.any_legacy = true;
        }
      }
    }
    it.increment(ec);
  }
  return scan;
}

}  // namespace fdrms
