#ifndef FDRMS_SHARD_MANIFEST_H_
#define FDRMS_SHARD_MANIFEST_H_

/// \file manifest.h
/// The constellation manifest: one small file that makes the *set* of
/// persisted files (per-shard snapshots + routing table) atomic, even
/// though each file is written independently on its own cadence.
///
/// Format (text, checksummed):
///
///     FDRMS-MANIFEST-v1
///     generation 7
///     epoch 3
///     shard_count 2
///     routing <fnv1a64-hex> <file|->
///     shard 0 <gen> <batches> <fnv1a64-hex> <file|->
///     shard 1 <gen> <batches> <fnv1a64-hex> <file|->
///     checksum <fnv1a64-hex of everything above>
///
/// Commit protocol: the manifest alternates between two slots
/// (`<base>.manifest.a` / `<base>.manifest.b`, slot = generation & 1), each
/// written via WriteFileDurable (tmp → fsync → rename → dir fsync). A torn
/// or half-written newest slot therefore never destroys the previous
/// generation: the loader decodes both slots, verifies the body checksum,
/// and picks the highest fully-valid generation. Everything a resume needs
/// — topology size, epoch, which snapshot file is current per shard, and
/// the checksum each file must hash to — is inside the manifest, so resume
/// is self-describing: no "construct with the right shard count" contract,
/// and stale/orphaned `.tmp`/superseded snapshot files are simply never
/// referenced.
///
/// Snapshot files are immutable once referenced: shard saves go to new
/// `<base>.shard<i>.g<gen>.b<batches>` names and routing epochs to
/// `<base>.routing.e<epoch>`, so a crash mid-save can only orphan a new
/// file, never corrupt a referenced one. GarbageCollectConstellationFiles
/// unlinks versioned files no manifest generation references anymore.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fdrms {

/// One shard's row in the manifest. `file` is empty when the shard has
/// never persisted (encoded as "-"): a resume constructs it empty.
struct ManifestShardEntry {
  int index = 0;
  long long gen = 0;       ///< persist generation (filename uniqueness)
  long long batches = 0;   ///< writer batches applied at save time
  std::uint64_t checksum = 0;
  std::string file;
};

struct ConstellationManifest {
  long long generation = 0;  ///< commit counter; picks the A/B slot
  long long epoch = 0;       ///< routing epoch this manifest describes
  int shard_count = 0;
  std::uint64_t routing_checksum = 0;
  std::string routing_file;  ///< empty when no routing snapshot yet
  std::vector<ManifestShardEntry> shards;  ///< sorted by index, one per shard
};

/// Serializes to the checksummed text format above.
std::string EncodeManifest(const ConstellationManifest& m);

/// Parses + verifies. Internal on bad magic, malformed rows, shard-count
/// mismatch, or checksum mismatch (a torn slot decodes as Internal, which
/// is what triggers the fall-back-to-other-slot path in LoadNewestManifest).
Result<ConstellationManifest> DecodeManifest(const std::string& text);

/// `<base>.manifest.a` for slot 0, `<base>.manifest.b` for slot 1.
std::string ManifestSlotPath(const std::string& base, int slot);

/// Versioned snapshot-file names. These never collide across boots because
/// `gen` is seeded from the manifest at resume.
std::string ShardSnapshotPath(const std::string& base, int index,
                              long long gen, long long batches);
std::string RoutingSnapshotPath(const std::string& base, long long epoch);

struct LoadedManifest {
  ConstellationManifest manifest;
  int slot = -1;          ///< slot the winning generation came from
  int present_slots = 0;  ///< slot files that existed on disk
  int valid_slots = 0;    ///< slot files that decoded + checksummed clean
  /// Basenames referenced by ANY valid slot (not just the winner) — the
  /// keep-set for resume-time garbage collection, since the losing slot's
  /// files must survive until its generation is superseded on disk.
  std::vector<std::string> referenced;
};

/// Reads both slots and returns the highest fully-valid generation.
/// NotFound when neither slot file exists (fresh directory); Internal when
/// slots exist but none is valid (never silently serve a torn store).
Result<LoadedManifest> LoadNewestManifest(const std::string& base);

/// Durably writes `m` into its slot (generation & 1) via the
/// tmp/fsync/rename/dir-fsync protocol under the "shard.manifest" crash
/// prefix.
Status CommitManifestSlot(const std::string& base,
                          const ConstellationManifest& m);

/// FNV-1a of the file's bytes. NotFound / Internal from ReadFileToString.
Result<std::uint64_t> ChecksumFile(const std::string& path);

/// Path helpers. Manifest rows store basenames so a persisted directory
/// stays relocatable; JoinDirOf re-roots a stored name into the directory
/// containing `base`.
std::string FileBasename(const std::string& path);
std::string JoinDirOf(const std::string& base, const std::string& name);

/// Unlinks versioned snapshot files (`<base>.shard<i>.g<g>.b<b>`,
/// `<base>.routing.e<e>`) whose full path is not in `referenced` — i.e.
/// superseded by newer manifest generations. Never touches manifest slots
/// or non-constellation files. `.tmp` orphans of those patterns are removed
/// only when `include_tmp` is set (safe at resume, when no writer lives).
/// Best-effort: I/O errors are ignored. Returns the number unlinked.
int GarbageCollectConstellationFiles(
    const std::string& base, const std::vector<std::string>& referenced,
    bool include_tmp);

/// Scans base's directory for snapshot files this layer could own. Used at
/// resume to tell an empty store (fresh boot) from one that lost its
/// manifest — the latter must fail loudly, never be silently re-seeded.
struct ConstellationFileScan {
  bool any_versioned = false;  ///< `.shard<i>.g<g>.b<b>` / `.routing.e<e>`
  bool any_legacy = false;     ///< pre-manifest `.shard<i>` / `.routing`
};
ConstellationFileScan ScanConstellationFiles(const std::string& base);

}  // namespace fdrms

#endif  // FDRMS_SHARD_MANIFEST_H_
