#ifndef FDRMS_SHARD_SHARD_ROUTER_H_
#define FDRMS_SHARD_SHARD_ROUTER_H_

/// \file shard_router.h
/// Tuple-space partitioning for the sharded serving layer.
///
/// A ShardRouter maps a tuple id to the shard that owns it. Routing must be
/// a pure function of the id: every mutation of a tuple has to land on the
/// same single-writer FdRmsService instance, or the per-shard FD-RMS states
/// diverge from the operation stream. Routers are read concurrently from
/// every submitter thread and must therefore be immutable after
/// construction.
///
/// HashShardRouter is the default: a 64-bit finalizer hash of the id mapped
/// onto kNumHashSlots fixed hash slots, each slot owned by one shard. The
/// slot indirection balances adversarial id ranges (sequential ids, id
/// ranges per tenant) without any data statistics, and gives live
/// rebalancing (shard/migration.h) a finite, enumerable unit of ownership:
/// a migration moves whole slots between shards, so routing stays a pure
/// function of the id at every epoch. Skyline-aware routing — placing
/// likely-skyline tuples so per-shard result sets stay small — can slot in
/// behind the same interface once the workload justifies it.

#include <cstdint>

#include "common/check.h"

namespace fdrms {

/// Number of fixed hash slots the id space is divided into. Every id maps
/// to exactly one slot (HashSlotOf); routers and routing tables map slots
/// to shards. 256 slots keep per-slot load near 0.4% of the id space —
/// fine-grained enough for balanced rebalancing, small enough to enumerate
/// and serialize.
inline constexpr int kNumHashSlots = 256;

/// The hash slot of `id`: splitmix64 finalizer over the id, modulo the slot
/// count. Uniform over any id distribution, no coordination, O(1).
inline int HashSlotOf(int id) {
  uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(id));
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<uint64_t>(kNumHashSlots));
}

/// Maps tuple ids to shard indices in [0, num_shards). Implementations
/// must be deterministic, stateless after construction, and thread-safe.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Number of shards this router partitions across.
  virtual int num_shards() const = 0;

  /// The owning shard of `id`; must be in [0, num_shards()) and identical
  /// for every call with the same id.
  virtual int Route(int id) const = 0;

  /// Short routing-policy name for logs and bench output.
  virtual const char* name() const = 0;
};

/// Default router: the id's hash slot modulo the shard count. Uniform over
/// any id distribution, no coordination, O(1). Slot-mapped on purpose:
/// shard s owns exactly the slots {t : t ≡ s (mod S)}, which is the
/// epoch-0 routing table live rebalancing starts from (see
/// shard/migration.h).
class HashShardRouter final : public ShardRouter {
 public:
  explicit HashShardRouter(int num_shards) : num_shards_(num_shards) {
    FDRMS_CHECK(num_shards >= 1);
  }

  int num_shards() const override { return num_shards_; }

  int Route(int id) const override {
    return HashSlotOf(id) % num_shards_;
  }

  const char* name() const override { return "hash"; }

 private:
  const int num_shards_;
};

}  // namespace fdrms

#endif  // FDRMS_SHARD_SHARD_ROUTER_H_
