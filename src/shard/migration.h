#ifndef FDRMS_SHARD_MIGRATION_H_
#define FDRMS_SHARD_MIGRATION_H_

/// \file migration.h
/// Routing-table epochs and migration plans for live shard rebalancing.
///
/// The sharded layer (sharded_service.h) fixes nothing about *which* shard
/// owns which ids beyond "routing is a pure function of the id". This file
/// makes that function versioned and movable:
///
///  - A MigrationPlan names a moving range — a set of hash slots
///    (shard_router.h) each with a target shard, and/or a contiguous id
///    range with a target — without saying anything about timing.
///  - A RoutingTable is one immutable epoch of the routing function: a full
///    slot→shard array (or a delegating wrapper around a custom ShardRouter)
///    plus the id-range rules layered on top. Applying a plan to a table
///    yields the next epoch; the table itself never mutates, so readers can
///    hold an epoch across a cutover.
///  - An EpochShardRouter is the ShardRouter the sharded service actually
///    routes through: an atomic pointer to the current table, swapped in one
///    release store at migration cutover. Route() at any instant is the pure
///    function of exactly one epoch.
///
/// Because every id maps to exactly one slot and every slot (and range rule)
/// names exactly one target, every id routes to exactly one shard at every
/// epoch — the property tests/migration_test.cpp exercises across random
/// plan sequences and across save/restore (tables serialize to a versioned
/// text format so a persisted constellation can resume with its migrated
/// routing intact).

#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "shard/shard_router.h"

namespace fdrms {

/// One rebalancing step: which ids move, and where each of them goes.
/// Declarative only — ShardedFdRmsService::Migrate supplies the freeze/
/// drain/replay/cutover mechanics. Slot moves require a slot-mapped routing
/// table (the default hash router); an id range works over any router.
struct MigrationPlan {
  struct SlotMove {
    int slot;    ///< hash slot in [0, kNumHashSlots)
    int target;  ///< shard that owns the slot after the cutover
  };
  std::vector<SlotMove> slot_moves;

  /// Id-range form, active when id_end > id_begin: every id in
  /// [id_begin, id_end) moves to id_target. Range rules are layered on top
  /// of slot routing and later rules win, so a plan's range overrides any
  /// earlier epoch's rule for the same ids.
  int id_begin = 0;
  int id_end = 0;
  int id_target = -1;

  bool has_range() const { return id_end > id_begin; }
  bool empty() const { return slot_moves.empty() && !has_range(); }

  /// Every listed slot to one target shard.
  static MigrationPlan Slots(const std::vector<int>& slots, int target) {
    MigrationPlan plan;
    plan.slot_moves.reserve(slots.size());
    for (int slot : slots) plan.slot_moves.push_back({slot, target});
    return plan;
  }

  /// Every id in [begin, end) to one target shard.
  static MigrationPlan IdRange(int begin, int end, int target) {
    MigrationPlan plan;
    plan.id_begin = begin;
    plan.id_end = end;
    plan.id_target = target;
    return plan;
  }
};

/// One immutable epoch of the routing function. Constructed via the static
/// builders or by Apply(); never mutated afterwards, so concurrent readers
/// need no synchronization beyond acquiring the pointer.
class RoutingTable {
 public:
  /// An id-range rule layered over slot routing; later rules win.
  struct IdRangeRule {
    int begin;
    int end;  ///< exclusive
    int target;
  };

  /// Epoch 0 of the default router: slot t owned by shard t mod S (exactly
  /// HashShardRouter's map).
  static std::shared_ptr<const RoutingTable> Slotted(int num_shards);

  /// Epoch 0 over a custom router: ids route through `base` unless an
  /// id-range rule claims them. Slot moves are rejected on delegating
  /// tables (a custom router's id→shard map need not be slot-expressible).
  static std::shared_ptr<const RoutingTable> Delegating(
      std::shared_ptr<const ShardRouter> base);

  /// The owning shard of `id` at this epoch: the latest matching id-range
  /// rule, else the slot owner (or the base router's choice). A delegating
  /// table forwards the base router's value unchecked, so like any custom
  /// ShardRouter it may return out of range; slotted tables never do.
  int Route(int id) const;

  uint64_t epoch() const { return epoch_; }
  int num_shards() const { return num_shards_; }

  /// True when the table carries a full slot→shard array (default router);
  /// false for delegating tables.
  bool slotted() const { return !slot_to_shard_.empty(); }
  const std::vector<int>& slot_to_shard() const { return slot_to_shard_; }
  const std::vector<IdRangeRule>& id_rules() const { return id_rules_; }

  /// Slots owned by `shard`, ascending (slotted tables only).
  std::vector<int> SlotsOwnedBy(int shard) const;

  /// Owned-slot count per shard (slotted tables only) — the balance signal
  /// AddShard/RemoveShard plan against.
  std::vector<int> SlotLoad() const;

  /// The next epoch with `plan` applied. Validates the plan against this
  /// table: targets must be in [0, new_num_shards), slots in range and only
  /// on slotted tables. `new_num_shards` >= num_shards() lets AddShard
  /// grow the shard space in the same step. Nothing is mutated on error.
  Result<std::shared_ptr<const RoutingTable>> Apply(const MigrationPlan& plan,
                                                    int new_num_shards) const;

  /// The next epoch with the shard space grown/kept at `num_shards` and
  /// every route unchanged (used to expose a freshly started shard before
  /// any slots move onto it).
  std::shared_ptr<const RoutingTable> WithNumShards(int num_shards) const;

  /// The next epoch with the last shard removed. Fails if any slot or
  /// id-range rule still routes to it — migrate its ownership away first.
  Result<std::shared_ptr<const RoutingTable>> WithoutLastShard() const;

  /// Serializes the table (slotted tables only — a delegating table's base
  /// is an arbitrary ShardRouter and cannot round-trip). Byte-exact for
  /// identical tables.
  Status Save(std::ostream* os) const;

  /// Rebuilds a table from Save()'s output; routes identically to the
  /// saved instance.
  static Result<std::shared_ptr<const RoutingTable>> Load(std::istream* is);

 private:
  RoutingTable() = default;

  uint64_t epoch_ = 0;
  int num_shards_ = 0;
  std::vector<int> slot_to_shard_;           ///< size kNumHashSlots, or empty
  std::shared_ptr<const ShardRouter> base_;  ///< used only when not slotted
  std::vector<IdRangeRule> id_rules_;        ///< later entries win
};

/// The ShardRouter the sharded service routes through: an atomic pointer to
/// the current RoutingTable. Route()/num_shards() read one coherent epoch;
/// Publish() is the single release store that makes a migration's cutover
/// visible to every submitter.
class EpochShardRouter final : public ShardRouter {
 public:
  explicit EpochShardRouter(std::shared_ptr<const RoutingTable> initial)
      : table_(std::move(initial)) {
    FDRMS_CHECK(table_.load() != nullptr);
  }

  int num_shards() const override { return table()->num_shards(); }
  int Route(int id) const override { return table()->Route(id); }
  const char* name() const override { return "epoch"; }

  uint64_t epoch() const { return table()->epoch(); }

  std::shared_ptr<const RoutingTable> table() const {
    return table_.load(std::memory_order_acquire);
  }

  /// Installs the next epoch. Epochs must advance — a stale or replayed
  /// table is a programming error.
  void Publish(std::shared_ptr<const RoutingTable> next) {
    FDRMS_CHECK(next != nullptr);
    FDRMS_CHECK(next->epoch() > table()->epoch())
        << "routing epochs must advance";
    table_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const RoutingTable>> table_;
};

}  // namespace fdrms

#endif  // FDRMS_SHARD_MIGRATION_H_
