#ifndef FDRMS_SHARD_SHARDED_SERVICE_H_
#define FDRMS_SHARD_SHARDED_SERVICE_H_

/// \file sharded_service.h
/// Sharded serving: the tuple space hash-partitioned across S independent
/// FdRmsService instances, with merged snapshot reads.
///
/// The FD-RMS update algorithm is inherently sequential, so one
/// FdRmsService tops out at a single writer thread's budget. Because the
/// update cost is per-instance, partitioning the tuple space across S
/// instances gives ~S× aggregate update capacity on id-partitionable
/// workloads: each shard runs its own writer thread over its own bounded
/// queue, and a mutation only ever touches the shard that owns its id.
///
///   ShardedServiceOptions sopt;
///   sopt.num_shards = 4;
///   sopt.shard.algo.r = 20;
///   ShardedFdRmsService service(dim, sopt);       // hash router by default
///   service.Start(initial_tuples);                // fan-out bulk load
///   service.SubmitInsert(id, p);                  // routed to the owner
///   auto merged = service.Query();                // composed view, S snapshots
///   service.Stop(ShardedFdRmsService::StopPolicy::kDrain);
///
/// Reads compose the S independently published ResultSnapshots into one
/// MergedSnapshot (see merged_snapshot.h for the version-vector consistency
/// model). The merge is cached behind an atomic shared_ptr keyed on the
/// version vector: while no shard publishes, Query() costs S+1 atomic loads
/// and a vector compare; after a publication the first reader rebuilds the
/// merge and every later reader hits the cache again.
///
/// Merge policy: the per-shard result sets are unioned (ids are disjoint by
/// routing). Every shard keeps its own budget of r, so the union can reach
/// S·r; when `merged_budget_r` is set, a greedy re-cover tops the union
/// down to the global budget by picking the members that preserve
/// (1-merge_eps) coverage of a fixed sample of utility directions.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/fdrms.h"
#include "serve/fdrms_service.h"
#include "shard/merged_snapshot.h"
#include "shard/shard_router.h"

namespace fdrms {

/// Knobs of the sharded layer; per-shard serving and algorithm knobs ride
/// in `shard` and apply to every instance.
struct ShardedServiceOptions {
  int num_shards = 4;

  /// Options handed to every shard. The shared algo.seed means all shards
  /// sample the same utility sequence, which is what makes the merged
  /// result's regret guarantee testable on the shared prefix (see
  /// MergedSnapshot::min_sample_size_m). When persistence is on, shard s
  /// writes to `persist_path + ".shard<s>"`.
  FdRmsServiceOptions shard;

  /// Global result budget of the merged view: 0 serves the pure union
  /// (|Q| <= num_shards * algo.r); > 0 greedily re-covers the union down
  /// to this size when it is larger.
  int merged_budget_r = 0;

  /// Coverage slack of the greedy re-cover: a direction counts as covered
  /// once a selected tuple scores >= (1 - merge_eps) of the union's best.
  double merge_eps = 0.05;

  /// How many utility directions the re-cover scores against (sampled once
  /// at construction from merge_seed).
  int merge_directions = 512;
  uint64_t merge_seed = 4242;
};

/// S single-writer FdRmsService instances behind one façade. Start/Stop
/// must be called from one controlling thread; Submit*/Query/Flush are safe
/// from any thread.
class ShardedFdRmsService {
 public:
  using StopPolicy = FdRmsService::StopPolicy;

  /// `router` must partition across exactly options.num_shards shards;
  /// nullptr installs HashShardRouter(options.num_shards).
  ShardedFdRmsService(int dim, const ShardedServiceOptions& options,
                      std::unique_ptr<ShardRouter> router = nullptr);

  ~ShardedFdRmsService() = default;
  ShardedFdRmsService(const ShardedFdRmsService&) = delete;
  ShardedFdRmsService& operator=(const ShardedFdRmsService&) = delete;

  /// Routes P_0 across the shards and Start()s them all concurrently (bulk
  /// load is per-shard sequential but independent). On any failure the
  /// already-started shards are aborted, the constellation is rebuilt
  /// fresh, and the first error is returned — Start may then be retried.
  /// The failure-path rebuild is not synchronized with concurrent
  /// Submit/Query; route traffic only after Start has returned OK.
  Status Start(const std::vector<std::pair<int, Point>>& initial);

  /// Fans Stop(policy) out to every shard concurrently and joins all
  /// writer threads. kDrain waits for every shard's backlog; kAbort drops
  /// the backlogs (summed in ops_dropped()). Idempotent once stopped.
  Status Stop(StopPolicy policy = StopPolicy::kDrain);

  /// Enqueues one mutation on the owning shard. Same status surface as
  /// FdRmsService::Submit, plus kInternal if the router misroutes.
  Status Submit(FdRms::BatchOp op);
  Status SubmitInsert(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kInsert, id, p});
  }
  Status SubmitDelete(int id) {
    return Submit({FdRms::BatchOp::Kind::kDelete, id, Point{}});
  }
  Status SubmitUpdate(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kUpdate, id, p});
  }

  /// Blocks until every shard has consumed everything submitted to it
  /// before this call. First per-shard failure wins.
  Status Flush();

  /// The latest merged view, or nullptr before every shard has published
  /// its version-0 snapshot. Wait-free when no shard published since the
  /// last merge (cache hit); the first reader after a publication pays the
  /// O(S·r log(S·r) + re-cover) merge.
  std::shared_ptr<const MergedSnapshot> Query() const;

  /// Aggregates across shards (each monotone).
  uint64_t ops_submitted() const;
  uint64_t ops_dropped() const;

  /// Per-shard snapshot publications observed via the on_publish hook
  /// (includes the S version-0 publications).
  uint64_t publications() const {
    return publications_.load(std::memory_order_relaxed);
  }

  bool running() const;

  int dim() const { return dim_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedServiceOptions& options() const { return options_; }
  const ShardRouter& router() const { return *router_; }

  /// Read access to one shard (counters always; journal()/algorithm() only
  /// after Stop, per FdRmsService's contract).
  const FdRmsService& shard(int s) const { return *shards_[s]; }

 private:
  /// (Re)creates the S shard services from options_. Used at construction
  /// and to reset a constellation whose Start failed partway.
  void BuildShards();

  std::shared_ptr<const MergedSnapshot> BuildMerged(
      std::vector<std::shared_ptr<const ResultSnapshot>> parts) const;

  /// Greedily selects <= merged_budget_r entries of the union that keep
  /// every merge direction covered at (1-merge_eps) of the union's best
  /// score. `entries` holds indices into ids/points; reduced in place.
  void GreedyReCover(const std::vector<int>& ids,
                     const std::vector<const Point*>& points,
                     std::vector<size_t>* keep) const;

  const int dim_;
  const ShardedServiceOptions options_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<Point> merge_directions_;
  std::atomic<uint64_t> publications_{0};
  std::atomic<bool> started_{false};

  mutable std::atomic<std::shared_ptr<const MergedSnapshot>> merged_cache_;

  // Declared last: destroyed first, so shard writer threads (joined in
  // FdRmsService's destructor) can never observe the members above gone.
  std::vector<std::unique_ptr<FdRmsService>> shards_;
};

}  // namespace fdrms

#endif  // FDRMS_SHARD_SHARDED_SERVICE_H_
