#ifndef FDRMS_SHARD_SHARDED_SERVICE_H_
#define FDRMS_SHARD_SHARDED_SERVICE_H_

/// \file sharded_service.h
/// Sharded serving: the tuple space hash-partitioned across S independent
/// FdRmsService instances, with merged snapshot reads and live rebalancing.
///
/// The FD-RMS update algorithm is inherently sequential, so one
/// FdRmsService tops out at a single writer thread's budget. Because the
/// update cost is per-instance, partitioning the tuple space across S
/// instances gives ~S× aggregate update capacity on id-partitionable
/// workloads: each shard runs its own writer thread over its own bounded
/// queue, and a mutation only ever touches the shard that owns its id.
///
///   ShardedServiceOptions sopt;
///   sopt.num_shards = 4;
///   sopt.shard.algo.r = 20;
///   ShardedFdRmsService service(dim, sopt);       // hash router by default
///   service.Start(initial_tuples);                // fan-out bulk load
///   service.SubmitInsert(id, p);                  // routed to the owner
///   auto merged = service.Query();                // composed view, S snapshots
///   service.AddShard();                           // scale out, online
///   service.Stop(ShardedFdRmsService::StopPolicy::kDrain);
///
/// Reads compose the S independently published ResultSnapshots into one
/// MergedSnapshot (see merged_snapshot.h for the version-vector consistency
/// model). The merge is cached behind an atomic shared_ptr keyed on the
/// routing epoch and version vector: while no shard publishes, Query()
/// costs S+2 atomic loads and a vector compare; after a publication the
/// first reader rebuilds the merge and every later reader hits the cache.
///
/// Merge policy: the per-shard result sets are unioned (ids are disjoint by
/// routing). Every shard keeps its own budget of r, so the union can reach
/// S·r; when `merged_budget_r` is set, a greedy re-cover tops the union
/// down to the global budget by picking the members that preserve
/// (1-merge_eps) coverage of a fixed sample of utility directions.
///
/// Live rebalancing: routing is epoch-versioned (shard/migration.h).
/// Migrate(plan) moves an id range or a set of hash slots to new owners
/// while the constellation keeps serving:
///
///   1. freeze  — a router interposer diverts new mutations of the moving
///                range into a side buffer (reads stay wait-free; the
///                frozen range just stops advancing),
///   2. drain   — every shard is Flush()ed, so each source's applied state
///                contains every pre-freeze mutation of the range,
///   3. replay  — the range's live tuples are read out of the sources via
///                the drain-range hook (FdRmsService::CollectRange) and
///                re-inserted into their targets through the normal Submit
///                path, then deleted from the sources — ordinary journaled
///                operations, exactly the delete-then-reinsert shape the
///                FD-RMS update algorithm is built from,
///   4. cutover — the side buffer is flushed to the targets and the next
///                routing epoch is published in one atomic swap; subsequent
///                reads merge the post-cutover version vector.
///
/// During a migration a moved tuple may transiently exist on both its old
/// and new shard (insert applied, delete still queued) — the merge de-dups
/// ids, so readers never see two states of one tuple — and is never absent.
/// Once Migrate returns, all shards are flushed and ownership matches the
/// published epoch exactly. AddShard()/RemoveShard() build on Migrate to
/// grow/shrink the constellation online (slot-balanced plans; RemoveShard
/// drains the last shard and retires it).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/fdrms.h"
#include "serve/fdrms_service.h"
#include "shard/manifest.h"
#include "shard/merged_snapshot.h"
#include "shard/migration.h"
#include "shard/shard_router.h"

namespace fdrms {

/// Knobs of the sharded layer; per-shard serving and algorithm knobs ride
/// in `shard` and apply to every instance.
struct ShardedServiceOptions {
  /// Shard count at construction; AddShard/RemoveShard change the live
  /// count (num_shards() reports the current topology).
  int num_shards = 4;

  /// Options handed to every shard. The shared algo.seed means all shards
  /// sample the same utility sequence, which is what makes the merged
  /// result's regret guarantee testable on the shared prefix (see
  /// MergedSnapshot::min_sample_size_m).
  ///
  /// Durability (see shard/manifest.h for the full protocol): when
  /// persistence is on (`shard.persist_every_batches > 0`), shard s writes
  /// immutable versioned snapshots `persist_path + ".shard<s>.g<G>.b<B>"`
  /// on its own batch cadence, the routing table is saved to
  /// `persist_path + ".routing.e<epoch>"`, and a checksummed constellation
  /// manifest (`persist_path + ".manifest.{a,b}"`) binding one snapshot
  /// per shard to one routing epoch is committed crash-durably at every
  /// cutover, on the manifest tick below, and at Stop(). Superseded
  /// snapshot files are garbage-collected after each commit.
  ///
  /// Resume: when `shard.resume_path` is set it must equal `persist_path`
  /// (with persistence on); Start() then resolves the whole topology —
  /// shard count, epoch, per-shard snapshot files — from the newest valid
  /// manifest, verifying every referenced file's checksum. The `num_shards`
  /// the constellation was constructed with is ignored on resume: the
  /// manifest is self-describing. A torn newest manifest falls back to the
  /// previous generation; snapshot files with no manifest at all (or the
  /// pre-manifest `.shard<s>`/`.routing` layout) fail Start loudly rather
  /// than risk serving a torn constellation.
  FdRmsServiceOptions shard;

  /// Manifest commit cadence: a background tick that commits a new
  /// manifest generation whenever shard saves have landed since the last
  /// commit, bounding how much applied-but-unreferenced work a crash can
  /// lose. Skipped while a migration holds the control plane (cutover
  /// commits its own). 0 disables the ticker (deterministic tests); commits
  /// still happen at every cutover and at Stop(). Ignored when persistence
  /// is off.
  int manifest_commit_every_ms = 250;

  /// Shard health poll cadence: a background tracker polls every shard's
  /// health() / writer_heartbeat(), keeps the fdrms_shards_unhealthy gauge
  /// current, and records a "shard.unhealthy" trace event once per death
  /// transition. 0 disables the tracker (deterministic tests); health stays
  /// readable via num_unhealthy()/unhealthy_shards(), which scan the live
  /// topology directly.
  int health_poll_every_ms = 50;

  /// Global result budget of the merged view: 0 serves the pure union
  /// (|Q| <= num_shards * algo.r); > 0 greedily re-covers the union down
  /// to this size when it is larger.
  int merged_budget_r = 0;

  /// Coverage slack of the greedy re-cover: a direction counts as covered
  /// once a selected tuple scores >= (1 - merge_eps) of the union's best.
  double merge_eps = 0.05;

  /// How many utility directions the re-cover scores against (sampled once
  /// at construction from merge_seed).
  int merge_directions = 512;
  uint64_t merge_seed = 4242;

  /// Metric registry shared by the whole constellation: every shard reports
  /// into it under a {"shard","<index>"} label (plus {"gen","<n>"} when an
  /// index is re-created, so instances never share series), and the sharded
  /// layer adds its own series (reads, merge cache, migration phases). Null = the
  /// service creates one (reachable via registry()). Any registry set on
  /// `shard.registry` is overridden by this one so the constellation never
  /// splits across registries.
  std::shared_ptr<obs::MetricRegistry> registry;

  /// Constellation-level periodic metrics dump (see
  /// FdRmsServiceOptions::metrics_dump_every_ms; per-shard dumpers are
  /// forced off — one file covers all shards). 0 = off.
  int metrics_dump_every_ms = 0;
  std::string metrics_dump_path = "fdrms_metrics.prom";
  std::string metrics_dump_json_path;
};

/// S single-writer FdRmsService instances behind one façade. Start/Stop/
/// Migrate/AddShard/RemoveShard must not race each other (they serialize
/// internally, but call them from control-plane code, not hot paths);
/// Submit*/Query/Flush are safe from any thread at any time, including
/// while a migration runs.
class ShardedFdRmsService {
 public:
  using StopPolicy = FdRmsService::StopPolicy;

  /// `router` must partition across exactly options.num_shards shards;
  /// nullptr installs the default slot-mapped hash routing (required for
  /// slot migrations and AddShard/RemoveShard; a custom router still
  /// supports id-range migrations).
  ShardedFdRmsService(int dim, const ShardedServiceOptions& options,
                      std::unique_ptr<ShardRouter> router = nullptr);

  /// Joins the manifest ticker (shard writers are joined when the topology
  /// releases the FdRmsService instances).
  ~ShardedFdRmsService();
  ShardedFdRmsService(const ShardedFdRmsService&) = delete;
  ShardedFdRmsService& operator=(const ShardedFdRmsService&) = delete;

  /// Routes P_0 across the shards and Start()s them all concurrently (bulk
  /// load is per-shard sequential but independent). With
  /// options.shard.resume_path set, the persisted routing table and shard
  /// snapshots are restored instead (see ShardedServiceOptions::shard). On
  /// any failure the already-started shards are aborted, the constellation
  /// is rebuilt fresh, and the first error is returned — Start may then be
  /// retried. The failure-path rebuild is not synchronized with concurrent
  /// Submit/Query; route traffic only after Start has returned OK.
  Status Start(const std::vector<std::pair<int, Point>>& initial);

  /// Fans Stop(policy) out to every shard concurrently and joins all
  /// writer threads. kDrain waits for every shard's backlog; kAbort drops
  /// the backlogs (summed in ops_dropped()). Idempotent once stopped.
  Status Stop(StopPolicy policy = StopPolicy::kDrain);

  /// Enqueues one mutation on the owning shard (or, mid-migration, into
  /// the side buffer of the moving range). Same status surface as
  /// FdRmsService::Submit, plus kInternal if the router misroutes. A
  /// side-buffered operation reaches its new owner before the cutover
  /// epoch publishes; the buffer is unbounded, so backpressure pauses for
  /// the moving range during the (short) migration window.
  Status Submit(FdRms::BatchOp op);
  Status SubmitInsert(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kInsert, id, p});
  }
  Status SubmitDelete(int id) {
    return Submit({FdRms::BatchOp::Kind::kDelete, id, Point{}});
  }
  Status SubmitUpdate(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kUpdate, id, p});
  }

  /// Blocks until every shard has consumed everything submitted to it
  /// before this call. First per-shard failure wins. Operations parked in
  /// a migration side buffer are not yet "submitted to a shard"; Migrate
  /// flushes them before it returns.
  Status Flush();

  /// Live rebalancing: moves the plan's id range / hash slots to their
  /// target shards with the freeze → drain → replay → cutover protocol
  /// documented above, then publishes the next routing epoch. Synchronous:
  /// when it returns OK, ownership matches routing_table() exactly, every
  /// replayed and side-buffered operation is applied, and readers merge
  /// post-cutover snapshots. Readers are never blocked; writes to the
  /// moving range are buffered (not rejected) for the duration. Serialized
  /// against Start/Stop/other migrations. Slot plans require the default
  /// hash router; id-range plans work with any router.
  Status Migrate(const MigrationPlan& plan);

  /// Scales out online: starts an empty shard, exposes it at the next
  /// epoch, then Migrate()s a slot-balanced share (~1/(S+1) of the slot
  /// space, drawn from the currently most-loaded shards) onto it.
  /// Requires the default hash router.
  Status AddShard();

  /// Scales in online: Migrate()s every slot owned by the last shard to
  /// the remaining shards (least-loaded first), publishes the shrunk
  /// epoch, drains and stops the victim, and retires it. Requires the
  /// default hash router and at least two shards.
  Status RemoveShard();

  /// Recovers shard `s` after its writer died (health() == kDead): joins
  /// the dead writer, drains its acknowledged-but-unapplied backlog, builds
  /// a successor — seeded from the warm standby when one is enabled, else
  /// from the shard's newest durable snapshot (the death epilogue force-
  /// saves the last applied state), else from the dead instance's in-memory
  /// algorithm state — swaps it into the topology under the route lock (the
  /// routing table is unchanged: same slots, same epoch), replays the
  /// backlog in submission order, and flushes. When the replay completes
  /// the revived shard's applied state equals an unfaulted run's. Fails
  /// with kFailedPrecondition when the shard is not dead; on a failed
  /// successor Start the dead shard stays in place and the call may be
  /// retried. Serialized with the rest of the control plane.
  Status ReviveShard(int s);

  /// Revives every currently dead shard; returns how many came back.
  int ReviveDeadShards();

  /// Warm standby: seeds a follower FdRms with shard `s`'s live tuple set
  /// (cloned on the shard's writer thread between batches, so the
  /// journaled-batch tap that keeps it current misses no batch and doubles
  /// none) and applies every batch the primary applies from then on, via
  /// the on_apply journal tap. A later ReviveShard(s) then promotes the
  /// follower instead of re-reading a snapshot from disk: the cutover is
  /// the in-place instance swap under the route lock. One standby per
  /// shard index; the follower costs one extra ApplyBatch per batch on the
  /// primary's writer thread.
  Status EnableStandby(int s);

  /// True when shard index `s` currently has a warm-standby follower.
  bool has_standby(int s) const;

  /// Batches the standby follower of shard `s` has applied (0 when none) —
  /// the lag oracle: equal to the primary's applied batch count whenever
  /// the primary is idle.
  uint64_t standby_batches_applied(int s) const;

  /// Shard indices whose writer is dead, scanned from the live topology.
  std::vector<int> unhealthy_shards() const;
  int num_unhealthy() const;

  /// Successful ReviveShard completions (fdrms_shard_writer_restarts_total).
  uint64_t writer_restarts() const {
    return metrics_.writer_restarts->Value();
  }

  /// Merged Query() calls served while >= 1 shard was dead
  /// (fdrms_degraded_reads_total).
  uint64_t degraded_reads() const { return metrics_.degraded_reads->Value(); }

  /// Fans FdRmsService::SetBatchBound out to every live shard and remembers
  /// the override so shards created later (AddShard, rebirths) inherit it.
  /// Returns the clamped value in force (identical on every shard — they
  /// share one options template). Safe from any thread.
  size_t SetBatchBound(size_t bound);

  /// The constellation-wide batch ceiling (options.shard.max_batch until
  /// the first SetBatchBound call).
  size_t batch_bound() const {
    return batch_bound_.load(std::memory_order_relaxed);
  }

  /// Registry-clock microsecond stamp of the last completed topology
  /// change (successful Migrate/AddShard/RemoveShard), 0 if none yet. The
  /// SLO controller's cooldown signal — it covers operator-initiated
  /// migrations too, so an external rebalance also quiets the controller.
  uint64_t last_topology_change_us() const {
    return last_topology_change_us_.load(std::memory_order_relaxed);
  }

  /// The latest merged view, or nullptr before every shard has published
  /// its version-0 snapshot. Wait-free when no shard published since the
  /// last merge (cache hit); the first reader after a publication pays the
  /// O(S·r log(S·r) + re-cover) merge. Never blocks on migrations.
  std::shared_ptr<const MergedSnapshot> Query() const;

  /// Aggregates across shards, including retired ones (each monotone).
  uint64_t ops_submitted() const;
  uint64_t ops_dropped() const;

  /// Per-shard snapshot publications observed via the on_publish hook
  /// (includes each shard's version-0 publication).
  uint64_t publications() const { return metrics_.publications->Value(); }

  /// Completed Migrate() calls (AddShard/RemoveShard count theirs).
  uint64_t migrations() const { return metrics_.migrations->Value(); }

  /// Routing-table snapshot writes completed / failed (failures used to be
  /// swallowed; now every write step — serialize, fsync, rename — counts).
  uint64_t routing_persists() const {
    return metrics_.routing_persists->Value();
  }
  uint64_t routing_persist_failures() const {
    return metrics_.routing_persist_failures->Value();
  }

  /// Constellation manifest commits completed / failed.
  uint64_t manifest_commits() const {
    return metrics_.manifest_commits->Value();
  }
  uint64_t manifest_commit_failures() const {
    return metrics_.manifest_commit_failures->Value();
  }

  /// True when Start() restored the topology from a persisted manifest
  /// instead of bulk-loading `initial`.
  bool resumed() const { return resumed_; }

  bool running() const;

  /// The constellation's shared registry: every shard's series (labelled
  /// shard="<index>") plus the sharded layer's own. Never null.
  const std::shared_ptr<obs::MetricRegistry>& registry() const {
    return registry_;
  }

  /// Constellation status page: topology + migration + merge-cache summary
  /// followed by each live shard's own DebugString() section.
  std::string DebugString() const;

  int dim() const { return dim_; }
  int num_shards() const {
    return static_cast<int>(topology()->shards.size());
  }
  const ShardedServiceOptions& options() const { return options_; }

  /// The routing view. router() reflects the current epoch; the table
  /// accessors expose it explicitly.
  const ShardRouter& router() const { return *router_; }
  std::shared_ptr<const RoutingTable> routing_table() const {
    return router_->table();
  }
  uint64_t epoch() const { return router_->epoch(); }

  /// Read access to one shard (counters always; journal()/algorithm() only
  /// after Stop, per FdRmsService's contract). Indices follow the current
  /// topology.
  const FdRmsService& shard(int s) const { return *topology()->shards[s]; }

  /// Shards retired by RemoveShard, oldest first (already stopped, so
  /// journal()/algorithm() are valid).
  int num_retired() const {
    return static_cast<int>(topology()->retired.size());
  }
  const FdRmsService& retired_shard(int i) const {
    return *topology()->retired[i];
  }

 private:
  /// The unit of topology: the routing table plus the shard set it routes
  /// over, swapped together so Submit/Query always see a coherent pair.
  struct Topology {
    std::shared_ptr<const RoutingTable> table;
    std::vector<std::shared_ptr<FdRmsService>> shards;
    std::vector<std::shared_ptr<FdRmsService>> retired;
  };

  /// The freeze interposer: while installed, Submit diverts matching ids
  /// into `buffered` instead of routing them.
  struct MigrationState;

  std::shared_ptr<const Topology> topology() const {
    return topology_.load(std::memory_order_acquire);
  }

  /// Builds one shard service (publication hook, versioned persist wiring,
  /// optional resume file) for slot `index`. `resume_file` is the exact
  /// snapshot file the manifest references for this shard (empty = start
  /// empty/from initial). The first instance at an index is labelled
  /// {shard=index}; rebirths (RemoveShard→AddShard, failed-Start rebuild,
  /// AddShard rollback retry) add a {gen=n} label so the new instance never
  /// inherits the retired instance's registry series.
  /// `initial_version` seeds the instance's publication version counter
  /// (nonzero only for a revive successor continuing the dead
  /// incarnation's sequence).
  std::shared_ptr<FdRmsService> MakeShard(int index,
                                          const std::string& resume_file,
                                          uint64_t initial_version = 0);

  /// (Re)creates the S-shard epoch-0 topology. Used at construction and to
  /// reset a constellation whose Start failed partway.
  void ResetTopology();

  /// Registers the sharded layer's own series in registry_. Ctor only,
  /// before the first MakeShard (whose publish hook touches metrics_).
  void RegisterMetrics();

  /// Refreshes the fdrms_epoch / fdrms_shards gauges after a routing
  /// publication or topology swap.
  void UpdateTopologyGauges(uint64_t epoch, size_t num_shards);

  /// Migrate body; caller holds admin_mutex_. Wraps MigrateLockedImpl to
  /// count failures exactly once per attempt.
  Status MigrateLocked(const MigrationPlan& plan);
  Status MigrateLockedImpl(const MigrationPlan& plan);

  /// Removes the freeze and re-routes anything buffered through `table`
  /// (used on early failure, before any tuple moved).
  void AbortFreeze(const std::shared_ptr<MigrationState>& state,
                   const Topology& topo);

  /// Resume path of Start (admin lock held): loads the newest valid
  /// manifest, verifies every referenced file's checksum, and swaps in the
  /// topology it describes (router at the manifest epoch, one shard per
  /// manifest row with its exact snapshot file). kNotFound when no
  /// manifest slot exists; then the caller decides between fresh boot
  /// (empty directory) and loud failure (snapshot files without a
  /// manifest).
  Status BuildResumedTopologyLocked();

  /// The commit point (admin lock held): optionally forces every shard to
  /// persist its current state (PersistNow), writes the routing snapshot
  /// for the current epoch if not yet on disk, commits the next manifest
  /// generation crash-durably, and garbage-collects snapshot files no
  /// longer referenced by the current or previous generation. No-op when
  /// persistence is off or nothing changed since the last commit.
  Status CommitConstellationLocked(bool persist_shards);

  /// Durably writes the routing snapshot for `table` (immutable
  /// `.routing.e<epoch>` file) and reports its checksum. Every failure is
  /// counted in fdrms_routing_persist_failures_total.
  Status PersistRoutingLocked(const RoutingTable& table, std::string* file,
                              std::uint64_t* checksum);

  /// on_persist hook target (shard writer threads): records shard
  /// `index`'s newest durable snapshot in the ledger and marks it dirty.
  void OnShardPersist(int index, const PersistEvent& ev);

  /// on_apply hook target (shard writer threads): forwards the applied
  /// batch to shard `index`'s warm-standby follower when one is enabled.
  /// One relaxed atomic load when no standby exists anywhere.
  void OnShardApply(int index, const std::vector<FdRms::BatchOp>& batch);

  /// ReviveShard body; caller holds admin_mutex_.
  Status ReviveShardLocked(int s);

  void StartManifestTickerLocked();
  void StopManifestTicker();
  void ManifestTickerLoop();

  void StartHealthTrackerLocked();
  void StopHealthTracker();
  void HealthTrackerLoop();

  std::shared_ptr<const MergedSnapshot> BuildMerged(
      std::vector<std::shared_ptr<const ResultSnapshot>> parts,
      uint64_t epoch, std::vector<bool> degraded, int num_degraded) const;

  /// Greedily selects <= merged_budget_r entries of the union that keep
  /// every merge direction covered at (1-merge_eps) of the union's best
  /// score. `entries` holds indices into ids/points; reduced in place.
  void GreedyReCover(const std::vector<int>& ids,
                     const std::vector<const Point*>& points,
                     std::vector<size_t>* keep) const;

  const int dim_;
  const ShardedServiceOptions options_;
  std::shared_ptr<const RoutingTable> initial_table_;  ///< epoch 0
  std::unique_ptr<EpochShardRouter> router_;
  std::vector<Point> merge_directions_;
  std::atomic<bool> started_{false};
  bool resumed_ = false;  ///< written under admin_mutex_ in Start

  /// Manifest-backed versioned persistence is on (persist interval + path
  /// both configured). Const after construction.
  bool versioned_persist_ = false;

  /// Topology construction is deferred to Start (resume_path set): the
  /// manifest, not the constructor argument, decides the shard count.
  bool defer_topology_ = false;

  /// Constellation-wide batch ceiling; fan-out target of SetBatchBound and
  /// the value MakeShard seeds new instances with.
  std::atomic<size_t> batch_bound_;

  /// NowMicros() of the last successful Migrate/AddShard/RemoveShard; 0
  /// before any. Written under admin_mutex_, read lock-free.
  std::atomic<uint64_t> last_topology_change_us_{0};

  /// Shared by every shard; the sharded layer's own series live here too.
  std::shared_ptr<obs::MetricRegistry> registry_;
  std::unique_ptr<obs::PeriodicDumper> dumper_;

  /// Instances ever created per shard index, driving MakeShard's gen label.
  /// Guarded by admin_mutex_ (the constructor's use is pre-publication).
  std::vector<uint64_t> shard_incarnations_;

  /// Persist-generation floor per shard index (decoupled from the metric
  /// gen label above): seeded from the manifest at resume and from the
  /// ledger when an index retires, so a reborn shard's snapshot filenames
  /// never collide with a dead incarnation's. Guarded by admin_mutex_.
  std::vector<long long> persist_gen_seeds_;

  /// Each shard's newest durable snapshot, fed by OnShardPersist from the
  /// shard writer threads; `dirty` means some save landed (or a shard
  /// retired) since the last manifest commit.
  struct PersistLedger {
    std::mutex mu;
    std::map<int, ManifestShardEntry> entries;
    bool dirty = false;
    /// Snapshot files a newer save replaced before any manifest referenced
    /// them (writer cadence can outpace the commit cadence). No current or
    /// future manifest can name them, so the next successful commit's GC
    /// unlinks them — without this they would leak until the next resume.
    std::vector<std::string> superseded;
  };
  PersistLedger ledger_;

  /// Manifest commit state, guarded by admin_mutex_ (all commits hold it).
  long long manifest_generation_ = 0;   ///< last committed generation
  long long manifest_epoch_ = -1;       ///< epoch of the last commit
  int manifest_shard_count_ = -1;       ///< shard count of the last commit
  long long routing_epoch_written_ = -1;  ///< newest .routing.e<E> on disk
  std::string routing_file_;            ///< its basename
  std::uint64_t routing_checksum_ = 0;
  /// Basenames the last committed generation references, and the union the
  /// last two reference. Live GC unlinks only files that drop out of the
  /// two-generation union — never scans the directory — so a snapshot a
  /// shard writer lands concurrently (not yet in any manifest) can't be
  /// swept; the other slot's fallback set always stays restorable.
  std::vector<std::string> prev_referenced_;
  std::vector<std::string> disk_referenced_;

  /// Manifest ticker (manifest_commit_every_ms): wakes, try-locks the
  /// admin mutex (never contends with a live migration or Stop), and
  /// commits when the ledger is dirty.
  std::thread manifest_ticker_;
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;

  /// Health tracker (health_poll_every_ms): polls every live shard's
  /// health, maintains the fdrms_shards_unhealthy gauge + num_unhealthy_,
  /// and traces each death transition once.
  std::thread health_tracker_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;
  std::atomic<int> num_unhealthy_{0};  ///< tracker's last poll result

  /// One warm-standby follower per shard index. standby_count_ gates the
  /// writer-thread hot path (OnShardApply) with a single relaxed load;
  /// standby_mu_ guards the map and the followers behind it (each follower
  /// is only ever applied under the mutex, so the map's mutation sites and
  /// the per-batch tap serialize).
  struct Standby {
    std::unique_ptr<FdRms> follower;
    uint64_t batches_applied = 0;
  };
  mutable std::mutex standby_mu_;
  std::map<int, Standby> standbys_;
  std::atomic<int> standby_count_{0};

  /// Constellation-level handles into registry_ (unlabelled — the shard
  /// label belongs to per-shard series). Counters/histograms are
  /// multi-writer-safe; the gauges are written under admin/route locking
  /// (topology) or by the buffering submitter (side-buffer depth).
  struct ShardedMetrics {
    obs::Counter* publications;        ///< on_publish events, all shards
    obs::Counter* reads;               ///< Query() calls reaching a merge
    obs::Counter* merge_cache_hits;
    obs::Counter* merge_cache_misses;
    obs::Counter* merge_recovers;      ///< merges that ran GreedyReCover
    obs::Counter* migrations;          ///< completed Migrate() calls
    obs::Counter* migration_failures;
    obs::Counter* migration_ops_replayed;
    obs::Counter* migration_ops_side_buffered;
    obs::Counter* routing_persists;
    obs::Counter* routing_persist_failures;
    obs::Counter* manifest_commits;
    obs::Counter* manifest_commit_failures;
    obs::Counter* writer_restarts;     ///< ReviveShard successes
    obs::Counter* shard_deaths;        ///< tracker-observed death transitions
    obs::Counter* degraded_reads;      ///< merged reads with a dead shard
    obs::Gauge* epoch;
    obs::Gauge* shards;
    obs::Gauge* shards_unhealthy;      ///< health tracker's last poll
    obs::Gauge* migration_side_buffer_depth;
    obs::Gauge* manifest_generation;
    obs::LatencyHistogram* manifest_commit_us;
    obs::LatencyHistogram* merge_build_us;
    obs::LatencyHistogram* merge_recover_us;
    obs::LatencyHistogram* migration_freeze_us;
    obs::LatencyHistogram* migration_drain_us;
    obs::LatencyHistogram* migration_replay_us;
    obs::LatencyHistogram* migration_cutover_us;
  };
  ShardedMetrics metrics_;

  /// Serializes the control plane: Start, Stop, Migrate, AddShard,
  /// RemoveShard.
  std::mutex admin_mutex_;

  /// Submitters hold it shared while routing+enqueuing one operation; a
  /// migration holds it exclusive only for the freeze and cutover swaps,
  /// so no submit can straddle an epoch boundary.
  mutable std::shared_mutex route_mutex_;

  std::atomic<std::shared_ptr<MigrationState>> migration_;

  mutable std::atomic<std::shared_ptr<const MergedSnapshot>> merged_cache_;

  // Declared last: destroyed first, so shard writer threads (joined in
  // FdRmsService's destructor when the topology releases them) can never
  // observe the members above gone.
  std::atomic<std::shared_ptr<const Topology>> topology_;
};

}  // namespace fdrms

#endif  // FDRMS_SHARD_SHARDED_SERVICE_H_
