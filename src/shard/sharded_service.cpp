#include "shard/sharded_service.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <thread>

#include <sstream>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/durable_io.h"
#include "common/fault_point.h"
#include "common/rng.h"
#include "geometry/sampling.h"
#include "obs/phase_span.h"

namespace fdrms {

namespace {

/// Combines fan-out statuses: the first non-OK wins (shard order, so the
/// report is deterministic).
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

/// Runs `fn(s)` for every shard index on its own thread and joins. Used
/// for lifecycle fan-out (Start bulk loads, Stop drains) where the
/// per-shard work is independent and potentially long.
void ForEachShardConcurrently(size_t num_shards,
                              const std::function<void(size_t)>& fn) {
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) workers.emplace_back(fn, s);
  for (std::thread& w : workers) w.join();
}

/// Submits a migration-internal operation, absorbing kResourceExhausted
/// backpressure (Overflow::kReject shards shed load at the edge, but a
/// migration's replay must land). kUnavailable is NOT retried: a dead
/// writer never drains its queue, so spinning here would hang the control
/// plane — the caller gets the error and the revive path owns recovery.
Status SubmitWithRetry(FdRmsService* shard, FdRms::BatchOp op) {
  for (;;) {
    Status st = shard->Submit(op);
    if (st.code() != StatusCode::kResourceExhausted) return st;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

/// Consults a control-plane fault site (common/fault_point.h). kDie is not
/// meaningful off the writer thread, so it acts like kError here: the
/// surrounding operation fails with the injected status.
Status ControlFaultSite(const char* prefix, const char* step) {
  FaultAction act = FaultPoints::Hit(prefix, step);
  if (act.error() || act.die()) return act.ToStatus();
  return Status::OK();
}

}  // namespace

/// The freeze interposer of one in-flight migration: Submit diverts every
/// operation whose id matches the moving range into `buffered` (in
/// submission order); the migration drains the buffer into the targets
/// before the cutover epoch publishes.
struct ShardedFdRmsService::MigrationState {
  explicit MigrationState(const MigrationPlan& plan) {
    for (const MigrationPlan::SlotMove& move : plan.slot_moves) {
      slot_moved[static_cast<size_t>(move.slot)] = true;
      any_slot = true;
    }
    if (plan.has_range()) {
      id_begin = plan.id_begin;
      id_end = plan.id_end;
    }
  }

  bool Matches(int id) const {
    if (id_begin < id_end && id >= id_begin && id < id_end) return true;
    return any_slot && slot_moved[static_cast<size_t>(HashSlotOf(id))];
  }

  std::array<bool, kNumHashSlots> slot_moved{};
  bool any_slot = false;
  int id_begin = 0;
  int id_end = 0;

  std::mutex mu;
  std::vector<FdRms::BatchOp> buffered;
};

ShardedFdRmsService::ShardedFdRmsService(int dim,
                                         const ShardedServiceOptions& options,
                                         std::unique_ptr<ShardRouter> router)
    : dim_(dim),
      options_(options),
      batch_bound_(options.shard.max_batch),
      registry_(options.registry ? options.registry
                                 : std::make_shared<obs::MetricRegistry>()) {
  FDRMS_CHECK(options.num_shards >= 1);
  versioned_persist_ = options_.shard.persist_every_batches > 0 &&
                       !options_.shard.persist_path.empty();
  // With a resume path the manifest decides the topology, so shard
  // construction waits for Start (keeps non-resume behavior bit-identical).
  defer_topology_ = !options_.shard.resume_path.empty();
  RegisterMetrics();
  if (router != nullptr) {
    FDRMS_CHECK(router->num_shards() == options.num_shards)
        << "router partitions " << router->num_shards()
        << " shards, service has " << options.num_shards;
    initial_table_ = RoutingTable::Delegating(std::move(router));
  } else {
    initial_table_ = RoutingTable::Slotted(options.num_shards);
  }
  if (options_.merged_budget_r > 0) {
    FDRMS_CHECK(options_.merge_directions > 0);
    Rng rng(options_.merge_seed);
    merge_directions_.reserve(static_cast<size_t>(options_.merge_directions));
    for (int i = 0; i < options_.merge_directions; ++i) {
      merge_directions_.push_back(SampleUnitVectorNonneg(dim, &rng));
    }
  }
  ResetTopology();
}

ShardedFdRmsService::~ShardedFdRmsService() {
  // Runs before member destruction, so the ticker can still see every
  // member; shard writer threads are joined when topology_ (declared last,
  // destroyed first) releases the FdRmsService instances.
  StopHealthTracker();
  StopManifestTicker();
}

void ShardedFdRmsService::RegisterMetrics() {
  obs::MetricRegistry& r = *registry_;
  metrics_.publications = r.GetCounter(
      "fdrms_shard_publications_total",
      "Per-shard snapshot publications observed by the sharded layer");
  metrics_.reads = r.GetCounter(
      "fdrms_reads_total", "Merged Query() calls served");
  metrics_.merge_cache_hits = r.GetCounter(
      "fdrms_merge_cache_hits_total",
      "Query() calls answered from the cached merged snapshot");
  metrics_.merge_cache_misses = r.GetCounter(
      "fdrms_merge_cache_misses_total",
      "Query() calls that rebuilt the merged snapshot");
  metrics_.merge_recovers = r.GetCounter(
      "fdrms_merge_recovers_total",
      "Merge rebuilds that ran the greedy re-cover to the global budget");
  metrics_.migrations = r.GetCounter(
      "fdrms_migrations_total",
      "Completed Migrate() calls (AddShard/RemoveShard count theirs)");
  metrics_.migration_failures = r.GetCounter(
      "fdrms_migration_failures_total", "Migrate() attempts that failed");
  metrics_.migration_ops_replayed = r.GetCounter(
      "fdrms_migration_ops_replayed_total",
      "Tuples moved between shards by migration replay");
  metrics_.migration_ops_side_buffered = r.GetCounter(
      "fdrms_migration_ops_side_buffered_total",
      "Operations parked in a migration side buffer at submit time");
  metrics_.routing_persists = r.GetCounter(
      "fdrms_routing_persists_total",
      "Routing-table snapshot files written crash-durably");
  metrics_.routing_persist_failures = r.GetCounter(
      "fdrms_routing_persist_failures_total",
      "Routing-table snapshot writes that failed at any step "
      "(serialize, write, fsync, rename, dir sync)");
  metrics_.manifest_commits = r.GetCounter(
      "fdrms_manifest_commits_total",
      "Constellation manifest generations committed crash-durably");
  metrics_.manifest_commit_failures = r.GetCounter(
      "fdrms_manifest_commit_failures_total",
      "Manifest commit attempts that failed (shard save, routing write, "
      "or manifest slot write)");
  metrics_.writer_restarts = r.GetCounter(
      "fdrms_shard_writer_restarts_total",
      "Dead shards brought back by ReviveShard (cold restart from the "
      "newest snapshot, or warm-standby promotion)");
  metrics_.shard_deaths = r.GetCounter(
      "fdrms_shard_deaths_total",
      "Shard writer deaths observed by the health tracker (one per dead "
      "instance; a revived shard's next death counts again)");
  metrics_.degraded_reads = r.GetCounter(
      "fdrms_degraded_reads_total",
      "Merged Query() calls served while at least one shard was dead "
      "(that component frozen at its last published snapshot)");
  metrics_.epoch = r.GetGauge(
      "fdrms_epoch", "Published routing epoch");
  metrics_.shards = r.GetGauge(
      "fdrms_shards", "Live shard count of the current topology");
  metrics_.shards_unhealthy = r.GetGauge(
      "fdrms_shards_unhealthy",
      "Live shards whose writer thread is dead, per the health tracker's "
      "last poll");
  metrics_.migration_side_buffer_depth = r.GetGauge(
      "fdrms_migration_side_buffer_depth",
      "Operations currently parked in the in-flight migration's side buffer");
  metrics_.manifest_generation = r.GetGauge(
      "fdrms_manifest_generation",
      "Generation of the last committed constellation manifest");
  metrics_.manifest_commit_us = r.GetLatencyHistogram(
      "fdrms_manifest_commit_us",
      "Constellation manifest commit: routing snapshot + manifest slot "
      "write + snapshot GC (us)");
  metrics_.merge_build_us = r.GetLatencyHistogram(
      "fdrms_merge_build_us",
      "Merged-snapshot rebuild on a read-cache miss (us)");
  metrics_.merge_recover_us = r.GetLatencyHistogram(
      "fdrms_merge_recover_us",
      "Greedy re-cover portion of a merge rebuild (us)");
  metrics_.migration_freeze_us = r.GetLatencyHistogram(
      "fdrms_migration_freeze_us",
      "Migration freeze phase: side-buffer interposer install (us)");
  metrics_.migration_drain_us = r.GetLatencyHistogram(
      "fdrms_migration_drain_us",
      "Migration drain phase: all-shard flush + frozen-range collect (us)");
  metrics_.migration_replay_us = r.GetLatencyHistogram(
      "fdrms_migration_replay_us",
      "Migration replay phase: target inserts, flush, source deletes (us)");
  metrics_.migration_cutover_us = r.GetLatencyHistogram(
      "fdrms_migration_cutover_us",
      "Migration cutover phase: side-buffer drain + epoch publish + "
      "post-cutover flush (us)");
}

void ShardedFdRmsService::UpdateTopologyGauges(uint64_t epoch,
                                               size_t num_shards) {
  metrics_.epoch->Set(static_cast<double>(epoch));
  metrics_.shards->Set(static_cast<double>(num_shards));
}

std::shared_ptr<FdRmsService> ShardedFdRmsService::MakeShard(
    int index, const std::string& resume_file, uint64_t initial_version) {
  FdRmsServiceOptions per_shard = options_.shard;
  per_shard.initial_version = initial_version;
  if (versioned_persist_) {
    // Manifest mode: every save goes to a fresh immutable
    // `<base>.shard<i>.g<G>.b<B>` file and reports into the ledger; the
    // persist-generation floor keeps filenames unique across rebirths and
    // process restarts.
    if (static_cast<size_t>(index) >= persist_gen_seeds_.size()) {
      persist_gen_seeds_.resize(static_cast<size_t>(index) + 1, 0);
    }
    const std::string base = options_.shard.persist_path;
    per_shard.persist_versioned = true;
    per_shard.persist_gen_start = persist_gen_seeds_[static_cast<size_t>(index)];
    per_shard.persist_version_path = [base, index](long long gen,
                                                   long long batches) {
      return ShardSnapshotPath(base, index, gen, batches);
    };
    auto user_persist = per_shard.on_persist;
    per_shard.on_persist = [this, index, user_persist = std::move(
                                             user_persist)](
                               const PersistEvent& ev) {
      OnShardPersist(index, ev);
      if (user_persist) user_persist(ev);
    };
  } else if (per_shard.persist_every_batches > 0) {
    per_shard.persist_path += ".shard" + std::to_string(index);
  }
  // `resume_file` is the exact snapshot the manifest references (resume
  // boots only); a shard added to a live constellation starts empty.
  per_shard.resume_path = resume_file;
  // One registry for the constellation: shards are told apart by label, and
  // the sharded layer owns the (single) dumper. GetOrCreate hands the same
  // series back for the same (name, labels), so a reborn index must not
  // reuse the retired instance's labels — its counters would resume at the
  // dead instance's totals, inflating the new shard's stats. The first
  // instance keeps the plain {shard=i} label; rebirths add {gen=n}.
  per_shard.registry = registry_;
  if (static_cast<size_t>(index) >= shard_incarnations_.size()) {
    shard_incarnations_.resize(static_cast<size_t>(index) + 1, 0);
  }
  const uint64_t gen = shard_incarnations_[static_cast<size_t>(index)]++;
  per_shard.metrics_labels.emplace_back("shard", std::to_string(index));
  if (gen > 0) {
    per_shard.metrics_labels.emplace_back("gen", std::to_string(gen));
  }
  per_shard.metrics_dump_every_ms = 0;
  auto user_hook = per_shard.on_publish;
  per_shard.on_publish = [this, user_hook = std::move(user_hook)](
                             const ResultSnapshot& snap) {
    metrics_.publications->Increment();
    if (user_hook) user_hook(snap);
  };
  // Journal tap for warm standby: every shard gets the hook (one relaxed
  // load per batch when no standby is enabled anywhere).
  auto user_apply = per_shard.on_apply;
  per_shard.on_apply = [this, index, user_apply = std::move(user_apply)](
                           const std::vector<FdRms::BatchOp>& batch) {
    OnShardApply(index, batch);
    if (user_apply) user_apply(batch);
  };
  auto shard = std::make_shared<FdRmsService>(dim_, per_shard);
  // A shard born under an active controller override must start throttled:
  // the controller only re-asserts the bound on its next adjustment.
  const size_t bound = batch_bound_.load(std::memory_order_relaxed);
  if (bound != options_.shard.max_batch) shard->SetBatchBound(bound);
  return shard;
}

size_t ShardedFdRmsService::SetBatchBound(size_t bound) {
  // Remember the override first so a shard being created concurrently
  // (MakeShard reads batch_bound_) can never miss both the fan-out below
  // and the seeded value.
  size_t in_force =
      std::min(std::max(bound, options_.shard.min_batch),
               options_.shard.max_batch);
  batch_bound_.store(in_force, std::memory_order_relaxed);
  std::shared_ptr<const Topology> topo = topology();
  for (const auto& shard : topo->shards) {
    in_force = shard->SetBatchBound(bound);
  }
  return in_force;
}

void ShardedFdRmsService::ResetTopology() {
  auto topo = std::make_shared<Topology>();
  topo->table = initial_table_;
  if (!defer_topology_) {
    topo->shards.reserve(static_cast<size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
      topo->shards.push_back(MakeShard(s, /*resume_file=*/""));
    }
  }
  // Deferred (resume) constellations stay shard-less until Start resolves
  // the manifest: the persisted shard count, not options_.num_shards, is
  // authoritative there.
  router_ = std::make_unique<EpochShardRouter>(initial_table_);
  merged_cache_.store(nullptr, std::memory_order_release);
  UpdateTopologyGauges(initial_table_->epoch(), topo->shards.size());
  topology_.store(std::move(topo), std::memory_order_release);
}

Status ShardedFdRmsService::Start(
    const std::vector<std::pair<int, Point>>& initial) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("sharded service already started");
  }
  // On resume the whole topology — shard count, epoch, per-shard snapshot
  // files — comes out of the constellation manifest; a torn or missing
  // store fails loudly here instead of serving a guessed topology.
  if (defer_topology_) {
    Status resolved = BuildResumedTopologyLocked();
    if (!resolved.ok()) {
      started_.store(false);
      return resolved;
    }
  }

  std::shared_ptr<const Topology> topo = topology();
  const size_t num_shards = topo->shards.size();

  std::vector<std::vector<std::pair<int, Point>>> partitions(num_shards);
  for (const auto& [id, point] : initial) {
    const int s = topo->table->Route(id);
    if (s < 0 || s >= static_cast<int>(num_shards)) {
      started_.store(false);  // no shard started yet: plain retryable failure
      return Status::Internal("router sent id " + std::to_string(id) +
                              " to out-of-range shard " + std::to_string(s));
    }
    partitions[static_cast<size_t>(s)].emplace_back(id, point);
  }
  std::vector<Status> statuses(num_shards);
  ForEachShardConcurrently(num_shards, [&](size_t s) {
    statuses[s] = topo->shards[s]->Start(partitions[s]);
  });
  Status combined = FirstError(statuses);
  if (!combined.ok()) {
    // A partial constellation must not accept traffic: abort the shards
    // that did come up, then rebuild everything fresh (a stopped
    // FdRmsService cannot restart) so the caller may retry Start.
    for (size_t s = 0; s < num_shards; ++s) {
      if (statuses[s].ok()) (void)topo->shards[s]->Stop(StopPolicy::kAbort);
    }
    {
      std::lock_guard<std::mutex> lg(ledger_.mu);
      ledger_.entries.clear();
      ledger_.dirty = false;
    }
    resumed_ = false;
    ResetTopology();
    started_.store(false);
    return combined;
  }
  if (versioned_persist_) {
    // Durability root: commit a manifest for the just-started constellation
    // (forcing every shard's first save) so a crash from here on always
    // resumes — without this, files-without-manifest is indistinguishable
    // from a torn store and resume must refuse it. Failures are counted,
    // not fatal: a full disk must not take the serving path down.
    (void)CommitConstellationLocked(/*persist_shards=*/true);
    StartManifestTickerLocked();
  }
  if (options_.metrics_dump_every_ms > 0 && dumper_ == nullptr) {
    obs::PeriodicDumperOptions dump;
    dump.prometheus_path = options_.metrics_dump_path;
    dump.json_path = options_.metrics_dump_json_path;
    dump.interval_ms = options_.metrics_dump_every_ms;
    dumper_ = std::make_unique<obs::PeriodicDumper>(registry_, dump);
    dumper_->Start();
  }
  StartHealthTrackerLocked();
  return combined;
}

Status ShardedFdRmsService::Stop(StopPolicy policy) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  // The ticker only try-locks admin_mutex_, so joining it while holding the
  // lock cannot deadlock; stopping it first means no commit races the
  // shard shutdown below. The health tracker goes first for the same
  // reason (it takes no locks at all — pure atomic polling).
  StopHealthTracker();
  StopManifestTicker();
  std::shared_ptr<const Topology> topo = topology();
  std::vector<Status> statuses(topo->shards.size());
  ForEachShardConcurrently(topo->shards.size(), [&](size_t s) {
    statuses[s] = topo->shards[s]->Stop(policy);
  });
  // Final manifest: every shard's exit save has landed in the ledger, so
  // this commit makes the terminal state the restorable one.
  (void)CommitConstellationLocked(/*persist_shards=*/false);
  // Stop the dumper after the shards so its final dump carries the shards'
  // terminal counter values.
  if (dumper_ != nullptr) dumper_->Stop();
  return FirstError(statuses);
}

Status ShardedFdRmsService::Submit(FdRms::BatchOp op) {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  std::shared_ptr<MigrationState> mig =
      migration_.load(std::memory_order_acquire);
  if (mig != nullptr && mig->Matches(op.id)) {
    std::lock_guard<std::mutex> g(mig->mu);
    mig->buffered.push_back(std::move(op));
    metrics_.migration_ops_side_buffered->Increment();
    metrics_.migration_side_buffer_depth->Set(
        static_cast<double>(mig->buffered.size()));
    return Status::OK();
  }
  std::shared_ptr<const Topology> topo = topology();
  if (topo->shards.empty()) {
    // A resume-deferred constellation has no shards until Start resolves
    // the manifest.
    return Status::FailedPrecondition("sharded service never started");
  }
  const int s = topo->table->Route(op.id);
  if (s < 0 || s >= static_cast<int>(topo->shards.size())) {
    return Status::Internal("router sent id " + std::to_string(op.id) +
                            " to out-of-range shard " + std::to_string(s));
  }
  return topo->shards[static_cast<size_t>(s)]->Submit(std::move(op));
}

Status ShardedFdRmsService::Flush() {
  std::shared_ptr<const Topology> topo = topology();
  if (topo->shards.empty()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::vector<Status> statuses(topo->shards.size());
  for (size_t s = 0; s < topo->shards.size(); ++s) {
    statuses[s] = topo->shards[s]->Flush();
  }
  return FirstError(statuses);
}

Status ShardedFdRmsService::Migrate(const MigrationPlan& plan) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  return MigrateLocked(plan);
}

Status ShardedFdRmsService::MigrateLocked(const MigrationPlan& plan) {
  Status st = MigrateLockedImpl(plan);
  if (st.ok()) {
    metrics_.migrations->Increment();
    // Cooldown anchor for the SLO controller: every completed migration
    // (including AddShard/RemoveShard's internal ones) resets the window.
    last_topology_change_us_.store(registry_->NowMicros(),
                                   std::memory_order_relaxed);
  } else {
    metrics_.migration_failures->Increment();
  }
  return st;
}

Status ShardedFdRmsService::MigrateLockedImpl(const MigrationPlan& plan) {
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::shared_ptr<const Topology> topo = topology();
  const int num_shards = static_cast<int>(topo->shards.size());
  auto next_or = topo->table->Apply(plan, num_shards);
  if (!next_or.ok()) return next_or.status();
  std::shared_ptr<const RoutingTable> next = *next_or;

  // Nothing installed yet: an injected freeze failure is a clean reject.
  FDRMS_RETURN_NOT_OK(ControlFaultSite("migration.freeze", "pre"));

  // (1) Freeze: divert new mutations of the moving range into the side
  // buffer. The exclusive section is only the pointer swap, so no submit
  // can be mid-route across the freeze.
  auto state = std::make_shared<MigrationState>(plan);
  {
    obs::PhaseSpan freeze(registry_.get(), metrics_.migration_freeze_us,
                          "migration.freeze");
    freeze.set_args(next->epoch());
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    migration_.store(state, std::memory_order_release);
  }

  // (2) Drain: once every queue is flushed, each source's applied state
  // holds every pre-freeze mutation of the range, and the range can no
  // longer change there (new matching mutations sit in the buffer).
  struct MovedTuple {
    int source;
    int target;
    int id;
    Point point;
  };
  std::vector<MovedTuple> moved;
  {
    // An aborted drain still records its span (partial duration) — the
    // trace then shows a freeze with no matching replay/cutover.
    obs::PhaseSpan drain(registry_.get(), metrics_.migration_drain_us,
                         "migration.drain");
    drain.set_args(next->epoch());
    Status injected = ControlFaultSite("migration.drain", "pre");
    if (!injected.ok()) {
      AbortFreeze(state, *topo);
      return injected;
    }
    for (int s = 0; s < num_shards; ++s) {
      Status st = topo->shards[s]->Flush();
      if (!st.ok()) {
        AbortFreeze(state, *topo);
        return st;
      }
    }

    // Read the frozen range out of its sources (drain-range hook; runs on
    // each shard's writer thread against a consistent cut).
    for (int s = 0; s < num_shards; ++s) {
      std::vector<std::pair<int, Point>> in_range;
      Status st = topo->shards[s]->CollectRange(
          [&state](int id) { return state->Matches(id); }, &in_range);
      if (!st.ok()) {
        AbortFreeze(state, *topo);
        return st;
      }
      for (auto& [id, point] : in_range) {
        const int target = next->Route(id);
        if (target < 0 || target >= num_shards) {
          AbortFreeze(state, *topo);
          return Status::Internal("post-migration route of id " +
                                  std::to_string(id) + " is out of range");
        }
        if (target != s) moved.push_back({s, target, id, std::move(point)});
      }
    }
    drain.set_args(next->epoch(), moved.size());
  }

  // (3) Replay, as ordinary journaled operations (the FD-RMS update is
  // delete-then-reinsert by construction, so a migration is just those two
  // halves landing on different shards). Inserts reach the targets and are
  // flushed before any source delete is issued: no merged view ever loses
  // a moved tuple, and transient double-ownership de-duplicates in the
  // merge. Failures past this point are not rolled back — they are
  // unreachable through the public API (Stop serializes behind the
  // migration) — the first error is reported after the cutover unfreezes
  // the range.
  Status first_error = Status::OK();
  auto note = [&first_error](Status st) {
    if (!st.ok() && first_error.ok()) first_error = std::move(st);
  };
  {
    // Still nothing moved: an injected replay failure aborts cleanly (the
    // sources keep the range, the side buffer replays to them).
    Status injected = ControlFaultSite("migration.replay", "pre");
    if (!injected.ok()) {
      AbortFreeze(state, *topo);
      return injected;
    }
    obs::PhaseSpan replay(registry_.get(), metrics_.migration_replay_us,
                          "migration.replay");
    replay.set_args(next->epoch(), moved.size());
    for (const MovedTuple& m : moved) {
      note(SubmitWithRetry(topo->shards[static_cast<size_t>(m.target)].get(),
                           {FdRms::BatchOp::Kind::kInsert, m.id, m.point}));
    }
    for (int s = 0; s < num_shards; ++s) {
      note(topo->shards[s]->Flush());  // the targets now hold the range
    }
    for (const MovedTuple& m : moved) {
      note(SubmitWithRetry(topo->shards[static_cast<size_t>(m.source)].get(),
                           {FdRms::BatchOp::Kind::kDelete, m.id, Point{}}));
    }
    metrics_.migration_ops_replayed->Increment(moved.size());
  }

  // (4) Cutover: catch the side buffer up without blocking submitters,
  // then swap the epoch with the last stragglers under the exclusive lock.
  // Buffer order is preserved, and every buffered op follows the replayed
  // inserts already flushed into its target, so per-id order holds.
  {
    // Tuples have moved; aborting now would strand the range. Like any
    // post-replay failure the injected error is noted and reported after
    // the cutover unfreezes the range.
    note(ControlFaultSite("migration.cutover", "pre"));
    obs::PhaseSpan cutover(registry_.get(), metrics_.migration_cutover_us,
                           "migration.cutover");
    uint64_t drained = 0;
    for (int round = 0; round < 4; ++round) {
      std::vector<FdRms::BatchOp> chunk;
      {
        std::lock_guard<std::mutex> g(state->mu);
        chunk.swap(state->buffered);
      }
      if (chunk.empty()) break;
      drained += chunk.size();
      for (FdRms::BatchOp& op : chunk) {
        const int target = next->Route(op.id);
        note(SubmitWithRetry(topo->shards[static_cast<size_t>(target)].get(),
                             std::move(op)));
      }
    }
    {
      std::unique_lock<std::shared_mutex> lock(route_mutex_);
      std::vector<FdRms::BatchOp> rest;
      {
        std::lock_guard<std::mutex> g(state->mu);
        rest.swap(state->buffered);
      }
      drained += rest.size();
      for (FdRms::BatchOp& op : rest) {
        const int target = next->Route(op.id);
        note(SubmitWithRetry(topo->shards[static_cast<size_t>(target)].get(),
                             std::move(op)));
      }
      router_->Publish(next);
      auto cut = std::make_shared<Topology>(*topo);
      cut->table = next;
      UpdateTopologyGauges(next->epoch(), cut->shards.size());
      topology_.store(std::move(cut), std::memory_order_release);
      migration_.store(nullptr, std::memory_order_release);
      metrics_.migration_side_buffer_depth->Set(0.0);
    }
    cutover.set_args(next->epoch(), drained);

    // Post-cutover flush: the source deletes and side-buffered operations
    // are all applied before Migrate reports success, so ownership matches
    // the published epoch exactly when we return.
    for (int s = 0; s < num_shards; ++s) {
      note(topo->shards[s]->Flush());
    }
  }
  if (first_error.ok()) {
    // The manifest is the migration's durability commit point: a crash
    // before the slot rename resumes into the pre-migration constellation
    // (replay covers the gap); after it, into the post-migration one.
    CrashPoints::Hit("shard.cutover", "pre_manifest");
    (void)CommitConstellationLocked(/*persist_shards=*/true);
    CrashPoints::Hit("shard.cutover", "committed");
  }
  return first_error;
}

void ShardedFdRmsService::AbortFreeze(
    const std::shared_ptr<MigrationState>& state, const Topology& topo) {
  std::unique_lock<std::shared_mutex> lock(route_mutex_);
  std::vector<FdRms::BatchOp> leftover;
  {
    std::lock_guard<std::mutex> g(state->mu);
    leftover.swap(state->buffered);
  }
  migration_.store(nullptr, std::memory_order_release);
  metrics_.migration_side_buffer_depth->Set(0.0);
  // Nothing has moved yet: the pre-migration table still owns the range,
  // so the buffer replays to the old owners. These operations were already
  // acknowledged to their submitters, so backpressure is absorbed (retry on
  // kResourceExhausted) rather than shedding them; only a shard that has
  // stopped accepting work can still lose one, and in that state the whole
  // constellation is down and Migrate is returning the underlying error.
  for (FdRms::BatchOp& op : leftover) {
    const int s = topo.table->Route(op.id);
    if (s >= 0 && s < static_cast<int>(topo.shards.size())) {
      (void)SubmitWithRetry(topo.shards[static_cast<size_t>(s)].get(),
                            std::move(op));
    }
  }
}

Status ShardedFdRmsService::AddShard() {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::shared_ptr<const Topology> topo = topology();
  if (!topo->table->slotted()) {
    return Status::FailedPrecondition(
        "AddShard requires the default slot-mapped hash router");
  }
  const int num_shards = static_cast<int>(topo->shards.size());
  std::shared_ptr<FdRmsService> fresh =
      MakeShard(num_shards, /*resume_file=*/"");
  FDRMS_RETURN_NOT_OK(fresh->Start({}));
  std::shared_ptr<const RoutingTable> grown =
      topo->table->WithNumShards(num_shards + 1);
  {
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    auto next = std::make_shared<Topology>(*topo);
    next->table = grown;
    next->shards.push_back(std::move(fresh));
    router_->Publish(grown);
    UpdateTopologyGauges(grown->epoch(), next->shards.size());
    topology_.store(std::move(next), std::memory_order_release);
  }

  // Slot-balanced plan: hand the newcomer its even share, drawn one slot
  // at a time from whichever shard currently owns the most.
  std::vector<int> load = grown->SlotLoad();
  std::vector<std::vector<int>> owned(static_cast<size_t>(num_shards + 1));
  for (int s = 0; s <= num_shards; ++s) {
    owned[static_cast<size_t>(s)] = grown->SlotsOwnedBy(s);
  }
  const int want = kNumHashSlots / (num_shards + 1);
  std::vector<int> slots;
  for (int i = 0; i < want; ++i) {
    int donor = -1;
    for (int s = 0; s < num_shards; ++s) {
      if (!owned[static_cast<size_t>(s)].empty() &&
          (donor < 0 || load[static_cast<size_t>(s)] >
                            load[static_cast<size_t>(donor)])) {
        donor = s;
      }
    }
    if (donor < 0 || load[static_cast<size_t>(donor)] <= want) break;
    slots.push_back(owned[static_cast<size_t>(donor)].back());
    owned[static_cast<size_t>(donor)].pop_back();
    --load[static_cast<size_t>(donor)];
  }
  if (slots.empty()) {
    (void)CommitConstellationLocked(/*persist_shards=*/true);
    last_topology_change_us_.store(registry_->NowMicros(),
                                   std::memory_order_relaxed);
    return Status::OK();  // degenerate: more shards than slots
  }
  Status migrated = MigrateLocked(MigrationPlan::Slots(slots, num_shards));
  if (!migrated.ok() && topology()->table->epoch() == grown->epoch()) {
    // The migration failed before its cutover, so the newcomer still owns
    // nothing: roll the topology back instead of leaking an idle shard per
    // retry. (After a cutover the newcomer owns slots and stays.)
    auto shrunk_or = grown->WithoutLastShard();
    if (shrunk_or.ok()) {
      std::shared_ptr<const Topology> topo_now = topology();
      std::shared_ptr<FdRmsService> newcomer = topo_now->shards.back();
      {
        std::unique_lock<std::shared_mutex> lock(route_mutex_);
        auto next = std::make_shared<Topology>(*topo_now);
        next->table = *shrunk_or;
        next->shards.pop_back();
        router_->Publish(*shrunk_or);
        UpdateTopologyGauges((*shrunk_or)->epoch(), next->shards.size());
        topology_.store(std::move(next), std::memory_order_release);
      }
      (void)newcomer->Stop(FdRmsService::StopPolicy::kAbort);
    }
  }
  return migrated;
}

Status ShardedFdRmsService::RemoveShard() {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::shared_ptr<const Topology> topo = topology();
  if (!topo->table->slotted()) {
    return Status::FailedPrecondition(
        "RemoveShard requires the default slot-mapped hash router");
  }
  const int num_shards = static_cast<int>(topo->shards.size());
  if (num_shards < 2) {
    return Status::FailedPrecondition("cannot remove the only shard");
  }
  const int victim = num_shards - 1;
  for (const RoutingTable::IdRangeRule& rule : topo->table->id_rules()) {
    if (rule.target == victim) {
      return Status::FailedPrecondition(
          "an id-range rule targets the last shard; Migrate it to another "
          "shard first");
    }
  }

  // Hand every slot the victim owns to the least-loaded survivor.
  std::vector<int> load = topo->table->SlotLoad();
  MigrationPlan plan;
  for (int slot : topo->table->SlotsOwnedBy(victim)) {
    int t = 0;
    for (int s = 1; s < victim; ++s) {
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(t)]) t = s;
    }
    plan.slot_moves.push_back({slot, t});
    ++load[static_cast<size_t>(t)];
  }
  if (!plan.slot_moves.empty()) {
    FDRMS_RETURN_NOT_OK(MigrateLocked(plan));
  }

  topo = topology();  // the post-cutover epoch
  auto shrunk_or = topo->table->WithoutLastShard();
  if (!shrunk_or.ok()) return shrunk_or.status();
  std::shared_ptr<const RoutingTable> shrunk = *shrunk_or;
  std::shared_ptr<FdRmsService> victim_shard = topo->shards.back();
  {
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    auto next = std::make_shared<Topology>(*topo);
    next->table = shrunk;
    next->shards.pop_back();
    next->retired.push_back(victim_shard);
    router_->Publish(shrunk);
    UpdateTopologyGauges(shrunk->epoch(), next->shards.size());
    topology_.store(std::move(next), std::memory_order_release);
  }
  {
    // A retired index has no primary to follow; drop its standby.
    std::lock_guard<std::mutex> lg(standby_mu_);
    if (standbys_.erase(victim) > 0) {
      standby_count_.store(static_cast<int>(standbys_.size()),
                           std::memory_order_release);
    }
  }
  Status stopped = victim_shard->Stop(FdRmsService::StopPolicy::kDrain);
  // Retire the victim from the durable constellation: drop its ledger row
  // (the exit save above already reported into it) but remember its persist
  // generation, so a reborn shard at this index keeps filenames unique. The
  // next manifest commit stops referencing the victim's snapshot, and GC
  // unlinks it once no slot references it — the fix for resurrected dead
  // tuples on rebirth + crash + resume.
  if (versioned_persist_) {
    {
      std::lock_guard<std::mutex> lg(ledger_.mu);
      auto it = ledger_.entries.find(victim);
      if (it != ledger_.entries.end()) {
        if (static_cast<size_t>(victim) >= persist_gen_seeds_.size()) {
          persist_gen_seeds_.resize(static_cast<size_t>(victim) + 1, 0);
        }
        persist_gen_seeds_[static_cast<size_t>(victim)] =
            std::max(persist_gen_seeds_[static_cast<size_t>(victim)],
                     it->second.gen);
        ledger_.entries.erase(it);
      }
      ledger_.dirty = true;
    }
    (void)CommitConstellationLocked(/*persist_shards=*/false);
  }
  if (stopped.ok()) {
    last_topology_change_us_.store(registry_->NowMicros(),
                                   std::memory_order_relaxed);
  }
  return stopped;
}

Status ShardedFdRmsService::ReviveShard(int s) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  return ReviveShardLocked(s);
}

int ShardedFdRmsService::ReviveDeadShards() {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) return 0;
  int revived = 0;
  std::shared_ptr<const Topology> topo = topology();
  for (int s = 0; s < static_cast<int>(topo->shards.size()); ++s) {
    if (topo->shards[s]->health() == FdRmsService::Health::kDead &&
        ReviveShardLocked(s).ok()) {
      ++revived;
    }
  }
  return revived;
}

Status ShardedFdRmsService::ReviveShardLocked(int s) {
  std::shared_ptr<const Topology> topo = topology();
  if (s < 0 || s >= static_cast<int>(topo->shards.size())) {
    return Status::Invalid("no shard " + std::to_string(s));
  }
  std::shared_ptr<FdRmsService> dead = topo->shards[static_cast<size_t>(s)];
  if (dead->health() != FdRmsService::Health::kDead) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(s) + " is not dead; nothing to revive");
  }
  const uint64_t t0 = registry_->NowMicros();

  // Join the dead writer. kDrain, not kAbort: kAbort would Clear() the
  // queue and drop the acknowledged-but-unapplied backlog we are about to
  // replay. The Stop status itself is uninteresting (the writer is already
  // gone); the backlog drain below is what matters.
  (void)dead->Stop(FdRmsService::StopPolicy::kDrain);
  std::vector<FdRms::BatchOp> backlog;
  (void)dead->DrainDeadBacklog(&backlog);

  // Successor seed, in preference order: warm standby (already tracking
  // the applied stream, promotion is just the instance swap), the newest
  // durable snapshot (the death epilogue force-saved the last applied
  // state, so it is current), or the dead instance's in-memory algorithm
  // state (no persistence configured — an in-process revive must still
  // lose nothing).
  std::vector<std::pair<int, Point>> seed;
  bool warm = false;
  {
    std::lock_guard<std::mutex> lg(standby_mu_);
    auto it = standbys_.find(s);
    if (it != standbys_.end() && it->second.follower != nullptr) {
      it->second.follower->topk().tree().ForEach(
          [&seed](int id, const Point& p) { seed.emplace_back(id, p); });
      warm = true;
      standbys_.erase(it);
      standby_count_.store(static_cast<int>(standbys_.size()),
                           std::memory_order_release);
    }
  }
  std::string resume_file;
  if (!warm) {
    if (versioned_persist_) {
      std::lock_guard<std::mutex> lg(ledger_.mu);
      auto it = ledger_.entries.find(s);
      if (it != ledger_.entries.end() && !it->second.file.empty()) {
        resume_file = JoinDirOf(options_.shard.persist_path, it->second.file);
        // The successor's save generations must not collide with the dead
        // incarnation's filenames.
        if (static_cast<size_t>(s) >= persist_gen_seeds_.size()) {
          persist_gen_seeds_.resize(static_cast<size_t>(s) + 1, 0);
        }
        persist_gen_seeds_[static_cast<size_t>(s)] =
            std::max(persist_gen_seeds_[static_cast<size_t>(s)],
                     it->second.gen);
      }
    } else if (options_.shard.persist_every_batches > 0 &&
               !options_.shard.persist_path.empty()) {
      resume_file = options_.shard.persist_path + ".shard" + std::to_string(s);
    }
    if (resume_file.empty()) {
      // algorithm() is valid now that the dead service is stopped.
      dead->algorithm().topk().tree().ForEach(
          [&seed](int id, const Point& p) { seed.emplace_back(id, p); });
    }
  }
  std::sort(seed.begin(), seed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // The successor continues the dead incarnation's publication sequence:
  // its seed publication is stamped one past the last version the dead
  // writer published, so readers' per-component version monotonicity holds
  // straight through the revive (the epoch does not change).
  std::shared_ptr<const ResultSnapshot> last_pub = dead->Query();
  const uint64_t next_version = last_pub != nullptr ? last_pub->version + 1 : 0;
  std::shared_ptr<FdRmsService> fresh = MakeShard(s, resume_file, next_version);
  Status st = fresh->Start(seed);
  if (!st.ok()) return st;  // dead shard left in place; ReviveShard may retry

  // Cutover: the routing table (and so the epoch) is unchanged — the
  // successor owns exactly the slots the dead instance did — so the swap
  // is the in-place instance replacement under the route lock. The dead
  // instance retires for post-mortem inspection.
  {
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    std::shared_ptr<const Topology> now = topology();
    auto next = std::make_shared<Topology>(*now);
    next->retired.push_back(next->shards[static_cast<size_t>(s)]);
    next->shards[static_cast<size_t>(s)] = fresh;
    topology_.store(std::move(next), std::memory_order_release);
    merged_cache_.store(nullptr, std::memory_order_release);
  }

  // Replay the dead writer's acknowledged-but-unapplied ops, in submission
  // order, then flush: once this returns the revived shard's applied state
  // equals an unfaulted run over the same submit sequence.
  Status first = Status::OK();
  for (FdRms::BatchOp& op : backlog) {
    Status rst = SubmitWithRetry(fresh.get(), std::move(op));
    if (!rst.ok() && first.ok()) first = rst;
  }
  Status flushed = fresh->Flush();
  if (!flushed.ok() && first.ok()) first = flushed;

  metrics_.writer_restarts->Increment();
  registry_->trace().Record("shard.revive", t0, registry_->NowMicros() - t0,
                            static_cast<uint64_t>(s), backlog.size());
  if (versioned_persist_) {
    // Bind the successor's state into the durable constellation (forces
    // its first save): a crash after the revive must resume post-replay.
    (void)CommitConstellationLocked(/*persist_shards=*/true);
  }
  // Cooldown anchor: a revive is a topology event for the SLO controller —
  // let the constellation stabilize before scaling resumes.
  last_topology_change_us_.store(registry_->NowMicros(),
                                 std::memory_order_relaxed);
  return first;
}

Status ShardedFdRmsService::EnableStandby(int s) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::shared_ptr<const Topology> topo = topology();
  if (s < 0 || s >= static_cast<int>(topo->shards.size())) {
    return Status::Invalid("no shard " + std::to_string(s));
  }
  {
    std::lock_guard<std::mutex> lg(standby_mu_);
    if (standbys_.count(s) > 0) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) + " already has a standby");
    }
  }
  std::shared_ptr<FdRmsService> shard = topo->shards[static_cast<size_t>(s)];
  auto follower = std::make_unique<FdRms>(dim_, options_.shard.algo);
  Status seeded = Status::OK();
  // The writer is parked between batches for the duration of the callback:
  // the clone and the tap installation are atomic with respect to the
  // apply stream, so the follower misses no batch and doubles none.
  Status st = shard->Inspect([&](const FdRms& algo) {
    std::vector<std::pair<int, Point>> tuples;
    algo.topk().tree().ForEach([&tuples](int id, const Point& p) {
      tuples.emplace_back(id, p);
    });
    std::sort(tuples.begin(), tuples.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    seeded = follower->Initialize(tuples);
    if (!seeded.ok()) return;
    std::lock_guard<std::mutex> lg(standby_mu_);
    Standby& sb = standbys_[s];
    sb.follower = std::move(follower);
    sb.batches_applied = 0;
    standby_count_.store(static_cast<int>(standbys_.size()),
                         std::memory_order_release);
  });
  if (!st.ok()) return st;  // kUnavailable when the writer is already dead
  return seeded;
}

bool ShardedFdRmsService::has_standby(int s) const {
  std::lock_guard<std::mutex> lg(standby_mu_);
  return standbys_.count(s) > 0;
}

uint64_t ShardedFdRmsService::standby_batches_applied(int s) const {
  std::lock_guard<std::mutex> lg(standby_mu_);
  auto it = standbys_.find(s);
  return it == standbys_.end() ? 0 : it->second.batches_applied;
}

void ShardedFdRmsService::OnShardApply(
    int index, const std::vector<FdRms::BatchOp>& batch) {
  if (standby_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lg(standby_mu_);
  auto it = standbys_.find(index);
  if (it == standbys_.end() || it->second.follower == nullptr) return;
  // Same resume-past-reject loop as the primary's writer: the follower is
  // state-for-state identical, so it rejects exactly the operations the
  // primary rejected and stays identical.
  FdRms& f = *it->second.follower;
  size_t pos = 0;
  while (pos < batch.size()) {
    size_t applied = 0;
    Status st = f.ApplyBatch(batch, pos, &applied);
    pos += applied;
    if (!st.ok()) ++pos;  // skip the offender, like the primary did
  }
  ++it->second.batches_applied;
}

std::vector<int> ShardedFdRmsService::unhealthy_shards() const {
  std::shared_ptr<const Topology> topo = topology();
  std::vector<int> out;
  for (int s = 0; s < static_cast<int>(topo->shards.size()); ++s) {
    if (topo->shards[s]->health() == FdRmsService::Health::kDead) {
      out.push_back(s);
    }
  }
  return out;
}

int ShardedFdRmsService::num_unhealthy() const {
  std::shared_ptr<const Topology> topo = topology();
  int n = 0;
  for (const auto& shard : topo->shards) {
    if (shard->health() == FdRmsService::Health::kDead) ++n;
  }
  return n;
}

void ShardedFdRmsService::StartHealthTrackerLocked() {
  if (options_.health_poll_every_ms <= 0 || health_tracker_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lg(health_mu_);
    health_stop_ = false;
  }
  health_tracker_ = std::thread(&ShardedFdRmsService::HealthTrackerLoop, this);
}

void ShardedFdRmsService::StopHealthTracker() {
  if (!health_tracker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lg(health_mu_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  health_tracker_.join();
}

void ShardedFdRmsService::HealthTrackerLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.health_poll_every_ms);
  // Death transitions already traced, keyed by instance (a revived index
  // is a new instance, so its next death traces again).
  std::set<const FdRmsService*> traced;
  std::unique_lock<std::mutex> lk(health_mu_);
  while (!health_stop_) {
    health_cv_.wait_for(lk, interval, [this] { return health_stop_; });
    if (health_stop_) return;
    lk.unlock();
    std::shared_ptr<const Topology> topo = topology();
    int dead = 0;
    for (size_t s = 0; s < topo->shards.size(); ++s) {
      const FdRmsService* shard = topo->shards[s].get();
      if (shard->health() == FdRmsService::Health::kDead) {
        ++dead;
        if (traced.insert(shard).second) {
          metrics_.shard_deaths->Increment();
          registry_->trace().Record("shard.unhealthy", registry_->NowMicros(),
                                    0, static_cast<uint64_t>(s),
                                    shard->writer_heartbeat());
        }
      }
    }
    num_unhealthy_.store(dead, std::memory_order_relaxed);
    metrics_.shards_unhealthy->Set(static_cast<double>(dead));
    lk.lock();
  }
}

Status ShardedFdRmsService::PersistRoutingLocked(const RoutingTable& table,
                                                 std::string* file,
                                                 std::uint64_t* checksum) {
  // Serialize first: the checksum must cover the exact bytes on disk, and a
  // serialization failure must count like any other persist failure instead
  // of leaving a half-written file.
  std::ostringstream buf;
  Status st = table.Save(&buf);
  if (!st.ok()) {
    metrics_.routing_persist_failures->Increment();
    return st;
  }
  const std::string bytes = buf.str();
  const std::string path = RoutingSnapshotPath(
      options_.shard.persist_path, static_cast<long long>(table.epoch()));
  st = WriteFileDurable(path, bytes, "shard.routing");
  if (!st.ok()) {
    metrics_.routing_persist_failures->Increment();
    return st;
  }
  metrics_.routing_persists->Increment();
  *file = FileBasename(path);
  *checksum = Fnv1a64(bytes.data(), bytes.size());
  return Status::OK();
}

void ShardedFdRmsService::OnShardPersist(int index, const PersistEvent& ev) {
  std::lock_guard<std::mutex> lg(ledger_.mu);
  ManifestShardEntry& e = ledger_.entries[index];
  const std::string file = FileBasename(ev.file);
  if (!e.file.empty() && e.file != file) {
    // The replaced save may never reach a manifest (the commit cadence can
    // lag the writer cadence); remember it so commit-time GC can unlink it.
    ledger_.superseded.push_back(e.file);
  }
  e.index = index;
  e.gen = ev.gen;
  e.batches = ev.batches;
  e.checksum = ev.checksum;
  e.file = file;
  ledger_.dirty = true;
}

Status ShardedFdRmsService::CommitConstellationLocked(bool persist_shards) {
  if (!versioned_persist_) return Status::OK();
  std::shared_ptr<const Topology> topo = topology();
  if (topo->shards.empty()) return Status::OK();
  if (CrashPoints::crashed()) {
    metrics_.manifest_commit_failures->Increment();
    return Status::Internal("crash injected: process is dead");
  }
  {
    // Before the ledger swap, so the ledger stays dirty and the next tick
    // retries — an injected commit failure must behave like a real one.
    Status injected = ControlFaultSite("manifest.commit", "pre");
    if (!injected.ok()) {
      metrics_.manifest_commit_failures->Increment();
      return injected;
    }
  }
  obs::PhaseSpan span(registry_.get(), metrics_.manifest_commit_us,
                      "manifest.commit");

  if (persist_shards) {
    // Cutover/Start commits force every shard's applied state to disk first
    // so the manifest binds the constellation *as of this epoch*, not as of
    // each shard's last lazy save.
    for (const auto& shard : topo->shards) {
      Status st = shard->PersistNow();
      if (!st.ok()) {
        metrics_.manifest_commit_failures->Increment();
        return st;
      }
    }
  }

  const std::shared_ptr<const RoutingTable> table = topo->table;
  const long long epoch = static_cast<long long>(table->epoch());
  const int shard_count = static_cast<int>(topo->shards.size());
  std::map<int, ManifestShardEntry> entries;
  std::vector<std::string> superseded;
  {
    std::lock_guard<std::mutex> lg(ledger_.mu);
    if (!ledger_.dirty && epoch == manifest_epoch_ &&
        shard_count == manifest_shard_count_ && manifest_generation_ > 0) {
      return Status::OK();  // nothing changed since the last commit
    }
    entries = ledger_.entries;
    superseded.swap(ledger_.superseded);
    ledger_.dirty = false;
  }
  // Any failure from here re-dirties the ledger (and returns the taken
  // superseded list, unswept) so the next tick retries.
  auto fail = [this, &superseded](Status st) {
    {
      std::lock_guard<std::mutex> lg(ledger_.mu);
      ledger_.dirty = true;
      ledger_.superseded.insert(ledger_.superseded.end(), superseded.begin(),
                                superseded.end());
    }
    metrics_.manifest_commit_failures->Increment();
    return st;
  };

  if (epoch != routing_epoch_written_) {
    std::string file;
    std::uint64_t cksum = 0;
    Status st = PersistRoutingLocked(*table, &file, &cksum);
    if (!st.ok()) return fail(st);
    routing_epoch_written_ = epoch;
    routing_file_ = file;
    routing_checksum_ = cksum;
  }

  ConstellationManifest m;
  m.generation = manifest_generation_ + 1;
  m.epoch = epoch;
  m.shard_count = shard_count;
  m.routing_file = routing_file_;
  m.routing_checksum = routing_checksum_;
  for (int s = 0; s < shard_count; ++s) {
    ManifestShardEntry e;
    e.index = s;  // no ledger row yet = never persisted, encoded "-"
    auto it = entries.find(s);
    if (it != entries.end()) e = it->second;
    m.shards.push_back(std::move(e));
  }
  Status st = CommitManifestSlot(options_.shard.persist_path, m);
  if (!st.ok()) return fail(st);
  manifest_generation_ = m.generation;
  manifest_epoch_ = epoch;
  manifest_shard_count_ = shard_count;
  metrics_.manifest_commits->Increment();
  metrics_.manifest_generation->Set(static_cast<double>(m.generation));

  // Unlink snapshots that just dropped out of the two-generation window
  // (this commit's slot + the other slot), plus saves a newer save
  // superseded before any manifest referenced them. Only ever files an
  // older manifest referenced or the ledger reported replaced — never a
  // directory scan — so a snapshot a shard writer lands concurrently can't
  // be swept before it is referenced.
  std::vector<std::string> current;
  if (!m.routing_file.empty()) current.push_back(m.routing_file);
  for (const ManifestShardEntry& e : m.shards) {
    if (!e.file.empty()) current.push_back(e.file);
  }
  std::set<std::string> need(current.begin(), current.end());
  need.insert(prev_referenced_.begin(), prev_referenced_.end());
  std::set<std::string> drop(superseded.begin(), superseded.end());
  drop.insert(disk_referenced_.begin(), disk_referenced_.end());
  for (const std::string& name : drop) {
    if (need.count(name) == 0) {
      std::error_code ec;
      std::filesystem::remove(
          JoinDirOf(options_.shard.persist_path, name), ec);
    }
  }
  disk_referenced_.assign(need.begin(), need.end());
  prev_referenced_ = std::move(current);
  return Status::OK();
}

Status ShardedFdRmsService::BuildResumedTopologyLocked() {
  const std::string& base = options_.shard.persist_path;
  if (!versioned_persist_) {
    return Status::Invalid(
        "resume_path requires persistence (persist_every_batches > 0 and "
        "persist_path set)");
  }
  if (options_.shard.resume_path != base) {
    return Status::Invalid("resume_path must equal persist_path ('" +
                           options_.shard.resume_path + "' vs '" + base +
                           "'): the manifest names the per-shard files");
  }
  Result<LoadedManifest> loaded_or = LoadNewestManifest(base);
  if (!loaded_or.ok()) {
    if (loaded_or.status().code() != StatusCode::kNotFound) {
      return loaded_or.status();  // slots exist but none valid: stay down
    }
    ConstellationFileScan scan = ScanConstellationFiles(base);
    if (scan.any_legacy) {
      return Status::FailedPrecondition(
          "pre-manifest snapshot layout at " + base +
          " (.shard<i>/.routing): nothing binds those files to one "
          "consistent cut; refusing to resume from them");
    }
    if (scan.any_versioned) {
      return Status::FailedPrecondition(
          "snapshot files at " + base +
          " but no manifest references them (manifest lost or store torn); "
          "refusing to guess a topology");
    }
    // Fresh directory: fall through to a normal first boot with the
    // configured shard count (the Start-end commit then writes gen 1).
    auto topo = std::make_shared<Topology>();
    topo->table = initial_table_;
    topo->shards.reserve(static_cast<size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
      topo->shards.push_back(MakeShard(s, /*resume_file=*/""));
    }
    router_ = std::make_unique<EpochShardRouter>(initial_table_);
    merged_cache_.store(nullptr, std::memory_order_release);
    UpdateTopologyGauges(initial_table_->epoch(), topo->shards.size());
    topology_.store(std::move(topo), std::memory_order_release);
    return Status::OK();
  }
  const LoadedManifest& loaded = loaded_or.value();
  const ConstellationManifest& m = loaded.manifest;

  // Routing table at the manifest's epoch.
  std::shared_ptr<const RoutingTable> table;
  if (m.routing_file.empty()) {
    if (m.epoch != 0) {
      return Status::Internal("manifest generation " +
                              std::to_string(m.generation) + " is at epoch " +
                              std::to_string(m.epoch) +
                              " but names no routing snapshot");
    }
    table = RoutingTable::Slotted(m.shard_count);
  } else {
    const std::string path = JoinDirOf(base, m.routing_file);
    Result<std::string> bytes_or = ReadFileToString(path);
    if (!bytes_or.ok()) {
      return Status::Internal("manifest references routing snapshot " + path +
                              ": " + bytes_or.status().ToString());
    }
    const std::string& bytes = bytes_or.value();
    if (Fnv1a64(bytes.data(), bytes.size()) != m.routing_checksum) {
      return Status::Internal("routing snapshot " + path +
                              " fails its manifest checksum");
    }
    std::istringstream in(bytes);
    auto table_or = RoutingTable::Load(&in);
    if (!table_or.ok()) return table_or.status();
    table = *table_or;
    if (table->num_shards() != m.shard_count) {
      return Status::Internal(
          "routing snapshot partitions " +
          std::to_string(table->num_shards()) + " shards, manifest says " +
          std::to_string(m.shard_count));
    }
    if (static_cast<long long>(table->epoch()) != m.epoch) {
      return Status::Internal("routing snapshot is epoch " +
                              std::to_string(table->epoch()) +
                              ", manifest says " + std::to_string(m.epoch));
    }
  }

  // Verify every referenced shard snapshot against its manifest checksum
  // before constructing anything: resume is all-or-nothing.
  std::vector<std::string> resume_files(
      static_cast<size_t>(m.shard_count));
  for (const ManifestShardEntry& e : m.shards) {
    if (e.file.empty()) continue;  // never persisted: shard resumes empty
    const std::string path = JoinDirOf(base, e.file);
    Result<std::uint64_t> cksum = ChecksumFile(path);
    if (!cksum.ok()) {
      return Status::Internal("manifest references shard snapshot " + path +
                              ": " + cksum.status().ToString());
    }
    if (cksum.value() != e.checksum) {
      return Status::Internal("shard snapshot " + path +
                              " fails its manifest checksum");
    }
    resume_files[static_cast<size_t>(e.index)] = path;
  }

  // Seed persist generations and the ledger from the manifest: reborn
  // filenames stay unique across restarts, and an immediate re-commit
  // reproduces the same rows.
  persist_gen_seeds_.assign(static_cast<size_t>(m.shard_count), 0);
  {
    std::lock_guard<std::mutex> lg(ledger_.mu);
    ledger_.entries.clear();
    for (const ManifestShardEntry& e : m.shards) {
      persist_gen_seeds_[static_cast<size_t>(e.index)] = e.gen;
      if (!e.file.empty()) ledger_.entries[e.index] = e;
    }
    ledger_.dirty = false;
  }

  auto topo = std::make_shared<Topology>();
  topo->table = table;
  topo->shards.reserve(static_cast<size_t>(m.shard_count));
  for (int s = 0; s < m.shard_count; ++s) {
    topo->shards.push_back(MakeShard(s, resume_files[static_cast<size_t>(s)]));
  }
  router_ = std::make_unique<EpochShardRouter>(table);
  merged_cache_.store(nullptr, std::memory_order_release);
  UpdateTopologyGauges(table->epoch(), topo->shards.size());
  topology_.store(std::move(topo), std::memory_order_release);

  manifest_generation_ = m.generation;
  manifest_epoch_ = -1;  // force the Start-end commit to write a new one
  manifest_shard_count_ = m.shard_count;
  routing_epoch_written_ = m.epoch;
  routing_file_ = m.routing_file;
  routing_checksum_ = m.routing_checksum;
  prev_referenced_.clear();
  if (!m.routing_file.empty()) prev_referenced_.push_back(m.routing_file);
  for (const ManifestShardEntry& e : m.shards) {
    if (!e.file.empty()) prev_referenced_.push_back(e.file);
  }
  disk_referenced_ = loaded.referenced;

  // No writer lives yet, so a directory sweep is safe: drop `.tmp` orphans
  // and snapshots no valid manifest slot references (crash leftovers).
  GarbageCollectConstellationFiles(base, loaded.referenced,
                                   /*include_tmp=*/true);
  resumed_ = true;
  return Status::OK();
}

void ShardedFdRmsService::StartManifestTickerLocked() {
  if (!versioned_persist_ || options_.manifest_commit_every_ms <= 0 ||
      manifest_ticker_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lg(ticker_mu_);
    ticker_stop_ = false;
  }
  manifest_ticker_ =
      std::thread(&ShardedFdRmsService::ManifestTickerLoop, this);
}

void ShardedFdRmsService::StopManifestTicker() {
  if (!manifest_ticker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lg(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  manifest_ticker_.join();
}

void ShardedFdRmsService::ManifestTickerLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.manifest_commit_every_ms);
  std::unique_lock<std::mutex> lk(ticker_mu_);
  while (!ticker_stop_) {
    ticker_cv_.wait_for(lk, interval, [this] { return ticker_stop_; });
    if (ticker_stop_) return;
    lk.unlock();
    bool dirty;
    {
      std::lock_guard<std::mutex> lg(ledger_.mu);
      dirty = ledger_.dirty;
    }
    if (dirty) {
      // try_to_lock: while a migration or Stop holds the control plane the
      // tick is skipped — the cutover/Stop commits its own manifest, and a
      // mid-migration commit could bind a half-moved constellation.
      std::unique_lock<std::mutex> admin(admin_mutex_, std::try_to_lock);
      if (admin.owns_lock()) {
        (void)CommitConstellationLocked(/*persist_shards=*/false);
      }
    }
    lk.lock();
  }
}

uint64_t ShardedFdRmsService::ops_submitted() const {
  std::shared_ptr<const Topology> topo = topology();
  uint64_t total = 0;
  for (const auto& shard : topo->shards) total += shard->ops_submitted();
  for (const auto& shard : topo->retired) total += shard->ops_submitted();
  return total;
}

uint64_t ShardedFdRmsService::ops_dropped() const {
  std::shared_ptr<const Topology> topo = topology();
  uint64_t total = 0;
  for (const auto& shard : topo->shards) total += shard->ops_dropped();
  for (const auto& shard : topo->retired) total += shard->ops_dropped();
  return total;
}

bool ShardedFdRmsService::running() const {
  std::shared_ptr<const Topology> topo = topology();
  for (const auto& shard : topo->shards) {
    if (!shard->running()) return false;
  }
  return started_.load();
}

std::shared_ptr<const MergedSnapshot> ShardedFdRmsService::Query() const {
  metrics_.reads->Increment();
  std::shared_ptr<const Topology> topo = topology();
  const size_t num_shards = topo->shards.size();
  if (num_shards == 0) return nullptr;  // resume-deferred, Start not yet run
  const uint64_t epoch = topo->table->epoch();
  std::vector<std::shared_ptr<const ResultSnapshot>> parts(num_shards);
  // A dead shard's last published snapshot keeps serving — reads degrade,
  // they do not fail — but the merged view must say so: the degraded bits
  // join the cache key, so a death (or revive) transition invalidates any
  // cached merge even though the frozen component's version is unchanged.
  std::vector<bool> degraded(num_shards, false);
  int num_degraded = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    parts[s] = topo->shards[s]->Query();
    if (parts[s] == nullptr) return nullptr;  // not every shard is up yet
    if (topo->shards[s]->health() == FdRmsService::Health::kDead) {
      degraded[s] = true;
      ++num_degraded;
    }
  }
  std::shared_ptr<const MergedSnapshot> cached =
      merged_cache_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->epoch == epoch &&
      cached->versions.size() == num_shards && cached->degraded == degraded) {
    bool fresh = true;
    for (size_t s = 0; s < num_shards; ++s) {
      if (cached->versions[s] != parts[s]->version) {
        fresh = false;
        break;
      }
    }
    if (fresh) {
      metrics_.merge_cache_hits->Increment();
      if (num_degraded > 0) metrics_.degraded_reads->Increment();
      return cached;
    }
  }
  metrics_.merge_cache_misses->Increment();
  std::shared_ptr<const MergedSnapshot> merged;
  {
    obs::PhaseSpan span(registry_.get(), metrics_.merge_build_us,
                        "read.merge_build");
    span.set_args(epoch, num_shards);
    merged = BuildMerged(std::move(parts), epoch, std::move(degraded),
                         num_degraded);
  }
  if (num_degraded > 0) metrics_.degraded_reads->Increment();
  // Racing readers may each publish their own merge; every candidate is
  // internally consistent and version-keyed, so last-writer-wins is safe —
  // a reader that loads a "stale" cache entry just rebuilds.
  merged_cache_.store(merged, std::memory_order_release);
  return merged;
}

std::shared_ptr<const MergedSnapshot> ShardedFdRmsService::BuildMerged(
    std::vector<std::shared_ptr<const ResultSnapshot>> parts,
    uint64_t epoch, std::vector<bool> degraded, int num_degraded) const {
  auto merged = std::make_shared<MergedSnapshot>();
  const size_t num_shards = parts.size();
  merged->epoch = epoch;
  merged->degraded = std::move(degraded);
  merged->degraded_shards = num_degraded;
  merged->versions.reserve(num_shards);

  std::vector<int> ids;
  std::vector<const Point*> points;
  std::vector<size_t> order;
  for (size_t s = 0; s < num_shards; ++s) {
    const ResultSnapshot& snap = *parts[s];
    merged->versions.push_back(snap.version);
    merged->ops_applied += snap.ops_applied;
    merged->ops_rejected += snap.ops_rejected;
    merged->batches += snap.batches;
    merged->persisted += snap.persisted;
    merged->live_tuples += snap.live_tuples;
    merged->min_sample_size_m =
        s == 0 ? snap.sample_size_m
               : std::min(merged->min_sample_size_m, snap.sample_size_m);
    merged->writer_busy_seconds_max =
        std::max(merged->writer_busy_seconds_max, snap.writer_busy_seconds);
    merged->writer_busy_seconds_sum += snap.writer_busy_seconds;
    merged->publish_p50_us_max =
        std::max(merged->publish_p50_us_max, snap.publish_p50_us);
    merged->publish_p99_us_max =
        std::max(merged->publish_p99_us_max, snap.publish_p99_us);
    merged->effective_max_batch_max =
        std::max(merged->effective_max_batch_max, snap.effective_max_batch);
    if (merged->queue_depth_hist.size() < snap.queue_depth_hist.size()) {
      merged->queue_depth_hist.resize(snap.queue_depth_hist.size(), 0);
    }
    for (size_t b = 0; b < snap.queue_depth_hist.size(); ++b) {
      merged->queue_depth_hist[b] += snap.queue_depth_hist[b];
    }
    if (merged->batch_size_hist.size() < snap.batch_size_hist.size()) {
      merged->batch_size_hist.resize(snap.batch_size_hist.size(), 0);
    }
    for (size_t b = 0; b < snap.batch_size_hist.size(); ++b) {
      merged->batch_size_hist[b] += snap.batch_size_hist[b];
    }
    for (size_t i = 0; i < snap.ids.size(); ++i) {
      ids.push_back(snap.ids[i]);
      points.push_back(&snap.points[i]);
    }
  }
  order.resize(ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  // Ids are disjoint across shards by routing; drop duplicates anyway so a
  // misbehaving custom router — or the transient double-ownership window of
  // a live migration — degrades to a correct view.
  order.erase(std::unique(order.begin(), order.end(),
                          [&](size_t a, size_t b) { return ids[a] == ids[b]; }),
              order.end());
  merged->union_size = order.size();

  if (options_.merged_budget_r > 0 &&
      order.size() > static_cast<size_t>(options_.merged_budget_r)) {
    obs::PhaseSpan span(registry_.get(), metrics_.merge_recover_us,
                        "read.merge_recover");
    span.set_args(order.size(),
                  static_cast<uint64_t>(options_.merged_budget_r));
    GreedyReCover(ids, points, &order);
    metrics_.merge_recovers->Increment();
    merged->reduced = true;
  }

  merged->ids.reserve(order.size());
  merged->points.reserve(order.size());
  for (size_t i : order) {
    merged->ids.push_back(ids[i]);
    merged->points.push_back(*points[i]);
  }
  merged->shards = std::move(parts);
  return merged;
}

std::string ShardedFdRmsService::DebugString() const {
  std::shared_ptr<const Topology> topo = topology();
  std::ostringstream out;
  out << "=== ShardedFdRmsService ===\n"
      << "epoch=" << topo->table->epoch() << " shards=" << topo->shards.size()
      << " retired=" << topo->retired.size()
      << " running=" << (running() ? "yes" : "no") << "\n"
      << "reads=" << metrics_.reads->Value()
      << " merge_cache_hits=" << metrics_.merge_cache_hits->Value()
      << " merge_cache_misses=" << metrics_.merge_cache_misses->Value()
      << " merge_recovers=" << metrics_.merge_recovers->Value() << "\n"
      << "migrations=" << metrics_.migrations->Value()
      << " failures=" << metrics_.migration_failures->Value()
      << " ops_replayed=" << metrics_.migration_ops_replayed->Value()
      << " ops_side_buffered="
      << metrics_.migration_ops_side_buffered->Value() << "\n";
  {
    std::vector<int> dead = unhealthy_shards();
    size_t standbys;
    {
      std::lock_guard<std::mutex> lg(standby_mu_);
      standbys = standbys_.size();
    }
    out << "health: unhealthy=" << dead.size();
    if (!dead.empty()) {
      out << " [";
      for (size_t i = 0; i < dead.size(); ++i) {
        out << (i > 0 ? "," : "") << dead[i];
      }
      out << "]";
    }
    out << " degraded_reads=" << metrics_.degraded_reads->Value()
        << " writer_restarts=" << metrics_.writer_restarts->Value()
        << " standbys=" << standbys << "\n";
  }
  if (versioned_persist_) {
    out << "durability: manifest_gen="
        << static_cast<long long>(metrics_.manifest_generation->Value())
        << " commits=" << metrics_.manifest_commits->Value()
        << " commit_failures=" << metrics_.manifest_commit_failures->Value()
        << " routing_persists=" << metrics_.routing_persists->Value()
        << " routing_failures=" << metrics_.routing_persist_failures->Value()
        << " resumed=" << (resumed_ ? "yes" : "no") << "\n";
  }
  for (size_t s = 0; s < topo->shards.size(); ++s) {
    out << "--- shard " << s << " ---\n" << topo->shards[s]->DebugString();
  }
  return out.str();
}

void ShardedFdRmsService::GreedyReCover(const std::vector<int>& ids,
                                        const std::vector<const Point*>& points,
                                        std::vector<size_t>* keep) const {
  const size_t budget = static_cast<size_t>(options_.merged_budget_r);
  const std::vector<size_t>& candidates = *keep;
  const size_t num_dirs = merge_directions_.size();

  // Score matrix + the union's per-direction optimum.
  std::vector<double> scores(candidates.size() * num_dirs);
  std::vector<double> best(num_dirs, 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const Point& p = *points[candidates[c]];
    for (size_t j = 0; j < num_dirs; ++j) {
      const double score = Dot(merge_directions_[j], p);
      scores[c * num_dirs + j] = score;
      best[j] = std::max(best[j], score);
    }
  }

  // A direction with no positive optimum is trivially covered; otherwise it
  // wants a selected tuple within (1-merge_eps) of the union's best.
  std::vector<bool> covered(num_dirs);
  size_t uncovered = 0;
  for (size_t j = 0; j < num_dirs; ++j) {
    covered[j] = best[j] <= 0.0;
    if (!covered[j]) ++uncovered;
  }

  std::vector<bool> picked(candidates.size(), false);
  std::vector<size_t> selection;  // slots into `candidates`/`scores`
  while (selection.size() < budget && uncovered > 0) {
    size_t best_c = candidates.size();
    size_t best_gain = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      size_t gain = 0;
      for (size_t j = 0; j < num_dirs; ++j) {
        if (!covered[j] && scores[c * num_dirs + j] >=
                               (1.0 - options_.merge_eps) * best[j]) {
          ++gain;
        }
      }
      if (gain > best_gain) {  // ties resolve to the smallest id (scan order)
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c == candidates.size()) break;  // nobody covers anything new
    picked[best_c] = true;
    selection.push_back(best_c);
    for (size_t j = 0; j < num_dirs; ++j) {
      if (!covered[j] && scores[best_c * num_dirs + j] >=
                             (1.0 - options_.merge_eps) * best[j]) {
        covered[j] = true;
        --uncovered;
      }
    }
  }

  // Top-up: coverage can saturate well before the budget (a few strong
  // tuples clear the (1-ε) bar everywhere). Spend the remaining slots on
  // the picks that raise the selected set's per-direction optimum the
  // most, so the served set keeps closing the gap to the union's quality.
  std::vector<double> selected_best(num_dirs, 0.0);
  for (size_t slot : selection) {
    for (size_t j = 0; j < num_dirs; ++j) {
      selected_best[j] = std::max(selected_best[j], scores[slot * num_dirs + j]);
    }
  }
  while (selection.size() < budget) {
    size_t best_c = candidates.size();
    double best_gain = 0.0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < num_dirs; ++j) {
        gain += std::max(0.0, scores[c * num_dirs + j] - selected_best[j]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c == candidates.size()) break;  // nobody improves any direction
    picked[best_c] = true;
    selection.push_back(best_c);
    for (size_t j = 0; j < num_dirs; ++j) {
      selected_best[j] =
          std::max(selected_best[j], scores[best_c * num_dirs + j]);
    }
  }

  std::vector<size_t> kept;
  kept.reserve(selection.size());
  for (size_t slot : selection) kept.push_back(candidates[slot]);
  std::sort(kept.begin(), kept.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  *keep = std::move(kept);
}

}  // namespace fdrms
