#include "shard/sharded_service.h"

#include <algorithm>
#include <functional>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "geometry/sampling.h"

namespace fdrms {

namespace {

/// Combines fan-out statuses: the first non-OK wins (shard order, so the
/// report is deterministic).
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

/// Runs `fn(s)` for every shard index on its own thread and joins. Used
/// for lifecycle fan-out (Start bulk loads, Stop drains) where the
/// per-shard work is independent and potentially long.
void ForEachShardConcurrently(size_t num_shards,
                              const std::function<void(size_t)>& fn) {
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) workers.emplace_back(fn, s);
  for (std::thread& w : workers) w.join();
}

}  // namespace

ShardedFdRmsService::ShardedFdRmsService(int dim,
                                         const ShardedServiceOptions& options,
                                         std::unique_ptr<ShardRouter> router)
    : dim_(dim),
      options_(options),
      router_(router ? std::move(router)
                     : std::make_unique<HashShardRouter>(options.num_shards)) {
  FDRMS_CHECK(options.num_shards >= 1);
  FDRMS_CHECK(router_->num_shards() == options.num_shards)
      << "router partitions " << router_->num_shards() << " shards, service has "
      << options.num_shards;
  if (options_.merged_budget_r > 0) {
    FDRMS_CHECK(options_.merge_directions > 0);
    Rng rng(options_.merge_seed);
    merge_directions_.reserve(static_cast<size_t>(options_.merge_directions));
    for (int i = 0; i < options_.merge_directions; ++i) {
      merge_directions_.push_back(SampleUnitVectorNonneg(dim, &rng));
    }
  }
  BuildShards();
}

void ShardedFdRmsService::BuildShards() {
  shards_.clear();
  for (int s = 0; s < options_.num_shards; ++s) {
    FdRmsServiceOptions per_shard = options_.shard;
    if (per_shard.persist_every_batches > 0) {
      per_shard.persist_path += ".shard" + std::to_string(s);
    }
    auto user_hook = per_shard.on_publish;
    per_shard.on_publish = [this,
                            user_hook = std::move(user_hook)](
                               const ResultSnapshot& snap) {
      publications_.fetch_add(1, std::memory_order_relaxed);
      if (user_hook) user_hook(snap);
    };
    shards_.push_back(std::make_unique<FdRmsService>(dim_, per_shard));
  }
}

Status ShardedFdRmsService::Start(
    const std::vector<std::pair<int, Point>>& initial) {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("sharded service already started");
  }
  const size_t num_shards = shards_.size();
  std::vector<std::vector<std::pair<int, Point>>> partitions(num_shards);
  for (const auto& [id, point] : initial) {
    const int s = router_->Route(id);
    if (s < 0 || s >= static_cast<int>(num_shards)) {
      started_.store(false);  // no shard started yet: plain retryable failure
      return Status::Internal("router sent id " + std::to_string(id) +
                              " to out-of-range shard " + std::to_string(s));
    }
    partitions[static_cast<size_t>(s)].emplace_back(id, point);
  }
  std::vector<Status> statuses(num_shards);
  ForEachShardConcurrently(num_shards, [&](size_t s) {
    statuses[s] = shards_[s]->Start(partitions[s]);
  });
  Status combined = FirstError(statuses);
  if (!combined.ok()) {
    // A partial constellation must not accept traffic: abort the shards
    // that did come up, then rebuild everything fresh (a stopped
    // FdRmsService cannot restart) so the caller may retry Start.
    for (size_t s = 0; s < num_shards; ++s) {
      if (statuses[s].ok()) (void)shards_[s]->Stop(StopPolicy::kAbort);
    }
    BuildShards();
    started_.store(false);
  }
  return combined;
}

Status ShardedFdRmsService::Stop(StopPolicy policy) {
  if (!started_.load()) {
    return Status::FailedPrecondition("sharded service never started");
  }
  std::vector<Status> statuses(shards_.size());
  ForEachShardConcurrently(shards_.size(), [&](size_t s) {
    statuses[s] = shards_[s]->Stop(policy);
  });
  return FirstError(statuses);
}

Status ShardedFdRmsService::Submit(FdRms::BatchOp op) {
  const int s = router_->Route(op.id);
  if (s < 0 || s >= num_shards()) {
    return Status::Internal("router sent id " + std::to_string(op.id) +
                            " to out-of-range shard " + std::to_string(s));
  }
  return shards_[static_cast<size_t>(s)]->Submit(std::move(op));
}

Status ShardedFdRmsService::Flush() {
  std::vector<Status> statuses(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    statuses[s] = shards_[s]->Flush();
  }
  return FirstError(statuses);
}

uint64_t ShardedFdRmsService::ops_submitted() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->ops_submitted();
  return total;
}

uint64_t ShardedFdRmsService::ops_dropped() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->ops_dropped();
  return total;
}

bool ShardedFdRmsService::running() const {
  for (const auto& shard : shards_) {
    if (!shard->running()) return false;
  }
  return started_.load();
}

std::shared_ptr<const MergedSnapshot> ShardedFdRmsService::Query() const {
  const size_t num_shards = shards_.size();
  std::vector<std::shared_ptr<const ResultSnapshot>> parts(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    parts[s] = shards_[s]->Query();
    if (parts[s] == nullptr) return nullptr;  // not every shard is up yet
  }
  std::shared_ptr<const MergedSnapshot> cached =
      merged_cache_.load(std::memory_order_acquire);
  if (cached != nullptr) {
    bool fresh = true;
    for (size_t s = 0; s < num_shards; ++s) {
      if (cached->versions[s] != parts[s]->version) {
        fresh = false;
        break;
      }
    }
    if (fresh) return cached;
  }
  std::shared_ptr<const MergedSnapshot> merged = BuildMerged(std::move(parts));
  // Racing readers may each publish their own merge; every candidate is
  // internally consistent and version-keyed, so last-writer-wins is safe —
  // a reader that loads a "stale" cache entry just rebuilds.
  merged_cache_.store(merged, std::memory_order_release);
  return merged;
}

std::shared_ptr<const MergedSnapshot> ShardedFdRmsService::BuildMerged(
    std::vector<std::shared_ptr<const ResultSnapshot>> parts) const {
  auto merged = std::make_shared<MergedSnapshot>();
  const size_t num_shards = parts.size();
  merged->versions.reserve(num_shards);

  std::vector<int> ids;
  std::vector<const Point*> points;
  std::vector<size_t> order;
  for (size_t s = 0; s < num_shards; ++s) {
    const ResultSnapshot& snap = *parts[s];
    merged->versions.push_back(snap.version);
    merged->ops_applied += snap.ops_applied;
    merged->ops_rejected += snap.ops_rejected;
    merged->batches += snap.batches;
    merged->persisted += snap.persisted;
    merged->live_tuples += snap.live_tuples;
    merged->min_sample_size_m =
        s == 0 ? snap.sample_size_m
               : std::min(merged->min_sample_size_m, snap.sample_size_m);
    merged->writer_busy_seconds_max =
        std::max(merged->writer_busy_seconds_max, snap.writer_busy_seconds);
    merged->writer_busy_seconds_sum += snap.writer_busy_seconds;
    merged->publish_p50_us_max =
        std::max(merged->publish_p50_us_max, snap.publish_p50_us);
    merged->publish_p99_us_max =
        std::max(merged->publish_p99_us_max, snap.publish_p99_us);
    for (size_t i = 0; i < snap.ids.size(); ++i) {
      ids.push_back(snap.ids[i]);
      points.push_back(&snap.points[i]);
    }
  }
  order.resize(ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  // Ids are disjoint across shards by routing; drop duplicates anyway so a
  // misbehaving custom router degrades to a correct (if lopsided) view.
  order.erase(std::unique(order.begin(), order.end(),
                          [&](size_t a, size_t b) { return ids[a] == ids[b]; }),
              order.end());
  merged->union_size = order.size();

  if (options_.merged_budget_r > 0 &&
      order.size() > static_cast<size_t>(options_.merged_budget_r)) {
    GreedyReCover(ids, points, &order);
    merged->reduced = true;
  }

  merged->ids.reserve(order.size());
  merged->points.reserve(order.size());
  for (size_t i : order) {
    merged->ids.push_back(ids[i]);
    merged->points.push_back(*points[i]);
  }
  merged->shards = std::move(parts);
  return merged;
}

void ShardedFdRmsService::GreedyReCover(const std::vector<int>& ids,
                                        const std::vector<const Point*>& points,
                                        std::vector<size_t>* keep) const {
  const size_t budget = static_cast<size_t>(options_.merged_budget_r);
  const std::vector<size_t>& candidates = *keep;
  const size_t num_dirs = merge_directions_.size();

  // Score matrix + the union's per-direction optimum.
  std::vector<double> scores(candidates.size() * num_dirs);
  std::vector<double> best(num_dirs, 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const Point& p = *points[candidates[c]];
    for (size_t j = 0; j < num_dirs; ++j) {
      const double score = Dot(merge_directions_[j], p);
      scores[c * num_dirs + j] = score;
      best[j] = std::max(best[j], score);
    }
  }

  // A direction with no positive optimum is trivially covered; otherwise it
  // wants a selected tuple within (1-merge_eps) of the union's best.
  std::vector<bool> covered(num_dirs);
  size_t uncovered = 0;
  for (size_t j = 0; j < num_dirs; ++j) {
    covered[j] = best[j] <= 0.0;
    if (!covered[j]) ++uncovered;
  }

  std::vector<bool> picked(candidates.size(), false);
  std::vector<size_t> selection;  // slots into `candidates`/`scores`
  while (selection.size() < budget && uncovered > 0) {
    size_t best_c = candidates.size();
    size_t best_gain = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      size_t gain = 0;
      for (size_t j = 0; j < num_dirs; ++j) {
        if (!covered[j] && scores[c * num_dirs + j] >=
                               (1.0 - options_.merge_eps) * best[j]) {
          ++gain;
        }
      }
      if (gain > best_gain) {  // ties resolve to the smallest id (scan order)
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c == candidates.size()) break;  // nobody covers anything new
    picked[best_c] = true;
    selection.push_back(best_c);
    for (size_t j = 0; j < num_dirs; ++j) {
      if (!covered[j] && scores[best_c * num_dirs + j] >=
                             (1.0 - options_.merge_eps) * best[j]) {
        covered[j] = true;
        --uncovered;
      }
    }
  }

  // Top-up: coverage can saturate well before the budget (a few strong
  // tuples clear the (1-ε) bar everywhere). Spend the remaining slots on
  // the picks that raise the selected set's per-direction optimum the
  // most, so the served set keeps closing the gap to the union's quality.
  std::vector<double> selected_best(num_dirs, 0.0);
  for (size_t slot : selection) {
    for (size_t j = 0; j < num_dirs; ++j) {
      selected_best[j] = std::max(selected_best[j], scores[slot * num_dirs + j]);
    }
  }
  while (selection.size() < budget) {
    size_t best_c = candidates.size();
    double best_gain = 0.0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < num_dirs; ++j) {
        gain += std::max(0.0, scores[c * num_dirs + j] - selected_best[j]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c == candidates.size()) break;  // nobody improves any direction
    picked[best_c] = true;
    selection.push_back(best_c);
    for (size_t j = 0; j < num_dirs; ++j) {
      selected_best[j] =
          std::max(selected_best[j], scores[best_c * num_dirs + j]);
    }
  }

  std::vector<size_t> kept;
  kept.reserve(selection.size());
  for (size_t slot : selection) kept.push_back(candidates[slot]);
  std::sort(kept.begin(), kept.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  *keep = std::move(kept);
}

}  // namespace fdrms
