#include "baselines/sphere.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

std::vector<int> SphereRms::Compute(const Database& db, int k, int r,
                                    Rng* rng) const {
  FDRMS_CHECK(k == 1) << "Sphere supports k = 1 only";
  if (db.size() == 0 || r <= 0) return {};
  std::vector<int> skyline = SkylineIndices(db);
  std::vector<Point> dirs = SampleDirections(num_directions_, db.dim, rng);
  // Stage 1 (ε-kernel style): r/2 well-spread representative directions
  // (basis included) contribute their boundary tuples.
  std::vector<Point> pool = dirs;
  for (int j = 0; j < db.dim; ++j) {
    Point e(db.dim, 0.0);
    e[j] = 1.0;
    pool.insert(pool.begin(), std::move(e));
  }
  int seed_count = std::max(db.dim, r / 2);
  std::vector<Point> spread = FarthestPointDirections(pool, seed_count);
  std::unordered_set<int> chosen_set;
  for (const Point& u : spread) {
    int best = skyline.front();
    double best_score = -1.0;
    for (int idx : skyline) {
      double s = Dot(u, db.points[idx]);
      if (s > best_score) {
        best_score = s;
        best = idx;
      }
    }
    chosen_set.insert(best);
    if (static_cast<int>(chosen_set.size()) >= r) break;
  }
  // Stage 2 (greedy completion): fill the remaining budget with the tuples
  // minimizing the sampled maximum regret.
  std::vector<double> omega(dirs.size(), 0.0);
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    for (int idx : skyline) {
      omega[ui] = std::max(omega[ui], Dot(dirs[ui], db.points[idx]));
    }
  }
  std::vector<double> best_in_q(dirs.size(), 0.0);
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    for (int idx : chosen_set) {
      best_in_q[ui] = std::max(best_in_q[ui], Dot(dirs[ui], db.points[idx]));
    }
  }
  while (static_cast<int>(chosen_set.size()) < r) {
    int best_idx = -1;
    double best_value = std::numeric_limits<double>::infinity();
    for (int idx : skyline) {
      if (chosen_set.count(idx) > 0) continue;
      double value = 0.0;
      for (size_t ui = 0; ui < dirs.size(); ++ui) {
        if (omega[ui] <= 0.0) continue;
        double q = std::max(best_in_q[ui], Dot(dirs[ui], db.points[idx]));
        value = std::max(value, 1.0 - q / omega[ui]);
      }
      if (value < best_value) {
        best_value = value;
        best_idx = idx;
      }
    }
    if (best_idx < 0) break;
    chosen_set.insert(best_idx);
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      best_in_q[ui] =
          std::max(best_in_q[ui], Dot(dirs[ui], db.points[best_idx]));
    }
    if (best_value <= 1e-12) break;
  }
  std::vector<int> ids;
  for (int idx : chosen_set) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int> CubeRms::Compute(const Database& db, int k, int r,
                                  Rng* rng) const {
  FDRMS_CHECK(k == 1) << "Cube supports k = 1 only";
  (void)rng;  // deterministic
  if (db.size() == 0 || r <= 0) return {};
  const int d = db.dim;
  if (d == 1) {
    int best = 0;
    for (int i = 1; i < db.size(); ++i) {
      if (db.points[i][0] > db.points[best][0]) best = i;
    }
    return {db.ids[best]};
  }
  // t buckets per first d-1 attributes with t^{d-1} <= r.
  int t = std::max(1, static_cast<int>(std::floor(
                          std::pow(static_cast<double>(r),
                                   1.0 / static_cast<double>(d - 1)))));
  // Cell key -> index of the tuple maximizing the last attribute.
  std::unordered_map<long long, int> cell_best;
  for (int i = 0; i < db.size(); ++i) {
    long long key = 0;
    for (int j = 0; j < d - 1; ++j) {
      int bucket = std::min(t - 1, static_cast<int>(db.points[i][j] * t));
      key = key * t + bucket;
    }
    auto it = cell_best.find(key);
    if (it == cell_best.end() ||
        db.points[i][d - 1] > db.points[it->second][d - 1]) {
      cell_best[key] = i;
    }
  }
  std::vector<int> ids;
  for (const auto& [key, idx] : cell_best) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  if (static_cast<int>(ids.size()) > r) ids.resize(r);
  return ids;
}

}  // namespace fdrms
