#include "baselines/average_regret.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

std::vector<int> AverageRegretGreedy::Compute(const Database& db, int k, int r,
                                              Rng* rng) const {
  if (db.size() == 0 || r <= 0) return {};
  std::vector<Point> dirs = SampleDirections(num_directions_, db.dim, rng);
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  // Candidates: skyline only (the per-direction best tuple is always on the
  // skyline, and happiness is monotone in per-direction bests).
  std::vector<int> candidates = SkylineIndices(db);
  // best_in_q[u]: happiness numerator achieved so far on direction u.
  std::vector<double> best_in_q(dirs.size(), 0.0);
  auto gain_of = [&](int idx) {
    double gain = 0.0;
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      if (omega_k[ui] <= 0.0) continue;
      double s = Dot(dirs[ui], db.points[idx]);
      double now = std::min(1.0, best_in_q[ui] / omega_k[ui]);
      double then = std::min(1.0, std::max(best_in_q[ui], s) / omega_k[ui]);
      gain += then - now;
    }
    return gain;
  };
  // Lazy greedy: stale upper bounds re-evaluated on pop (valid because the
  // objective is submodular — gains only shrink).
  std::priority_queue<std::pair<double, int>> heap;
  for (int idx : candidates) heap.push({gain_of(idx), idx});
  std::vector<int> chosen;
  std::unordered_set<int> taken;
  while (static_cast<int>(chosen.size()) < r && !heap.empty()) {
    auto [g, idx] = heap.top();
    heap.pop();
    if (taken.count(idx) > 0) continue;
    double fresh = gain_of(idx);
    if (!heap.empty() && fresh < heap.top().first - 1e-12) {
      heap.push({fresh, idx});
      continue;
    }
    if (fresh <= 1e-12) break;  // average happiness saturated
    taken.insert(idx);
    chosen.push_back(idx);
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      best_in_q[ui] = std::max(best_in_q[ui], Dot(dirs[ui], db.points[idx]));
    }
  }
  std::vector<int> ids;
  for (int idx : chosen) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double AverageRegretGreedy::AverageRegret(const Database& db,
                                          const std::vector<int>& q_ids,
                                          int k, int num_directions,
                                          Rng* rng) {
  if (db.size() == 0) return 0.0;
  std::vector<Point> dirs = SampleDirections(num_directions, db.dim, rng);
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  std::unordered_set<int> chosen(q_ids.begin(), q_ids.end());
  double total = 0.0;
  int counted = 0;
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    if (omega_k[ui] <= 0.0) continue;
    double best = 0.0;
    for (int i = 0; i < db.size(); ++i) {
      if (chosen.count(db.ids[i]) > 0) {
        best = std::max(best, Dot(dirs[ui], db.points[i]));
      }
    }
    total += std::max(0.0, 1.0 - best / omega_k[ui]);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

}  // namespace fdrms
