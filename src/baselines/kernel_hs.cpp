#include "baselines/kernel_hs.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

std::vector<int> EpsKernelRms::Compute(const Database& db, int k, int r,
                                       Rng* rng) const {
  (void)k;  // the coreset construction is rank-oblivious
  if (db.size() == 0 || r <= 0) return {};
  // A farthest-point ordering of sampled directions approximates a δ-net
  // whose resolution grows with the prefix length; the extreme tuple along
  // each direction is the coreset.
  std::vector<Point> pool = SampleDirections(max_directions_, db.dim, rng);
  // Seed with the standard basis so the coreset always contains the
  // per-attribute maxima (required by the ε-kernel normalization).
  for (int j = 0; j < db.dim; ++j) {
    Point e(db.dim, 0.0);
    e[j] = 1.0;
    pool.push_back(std::move(e));
  }
  std::rotate(pool.begin(), pool.end() - db.dim, pool.end());
  std::vector<Point> ordered = FarthestPointDirections(pool, max_directions_);
  std::vector<int> skyline = SkylineIndices(db);
  auto extreme = [&](const Point& u) {
    int best = skyline.front();
    double best_score = -1.0;
    for (int idx : skyline) {
      double s = Dot(u, db.points[idx]);
      if (s > best_score) {
        best_score = s;
        best = idx;
      }
    }
    return best;
  };
  // The distinct-extreme count is monotone in the direction-prefix length;
  // binary search the longest prefix fitting the budget.
  auto coreset_of = [&](int prefix) {
    std::unordered_set<int> distinct;
    for (int i = 0; i < prefix && i < static_cast<int>(ordered.size()); ++i) {
      distinct.insert(extreme(ordered[i]));
    }
    return distinct;
  };
  int lo = 1;
  int hi = static_cast<int>(ordered.size());
  std::unordered_set<int> best = coreset_of(1);
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    std::unordered_set<int> cand = coreset_of(mid);
    if (static_cast<int>(cand.size()) <= r) {
      if (cand.size() >= best.size()) best = std::move(cand);
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  std::vector<int> ids;
  for (int idx : best) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int> HittingSetRms::Compute(const Database& db, int k, int r,
                                        Rng* rng) const {
  if (db.size() == 0 || r <= 0) return {};
  std::vector<Point> dirs = SampleDirections(num_directions_, db.dim, rng);
  const int num_dirs = static_cast<int>(dirs.size());
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  // Candidate tuples: the best few along each direction. A minimal hitting
  // set at the (small) optimal ε draws from near-top tuples; large-ε probes
  // are only easier to cover, so the restriction does not affect the binary
  // search's feasible region in practice.
  constexpr int kTopPerDirection = 48;
  std::vector<bool> is_candidate(db.size(), false);
  for (const Point& u : dirs) {
    std::vector<std::pair<double, int>> best;  // min-heap by score
    for (int i = 0; i < db.size(); ++i) {
      double s = Dot(u, db.points[i]);
      if (static_cast<int>(best.size()) < kTopPerDirection) {
        best.emplace_back(s, i);
        std::push_heap(best.begin(), best.end(), std::greater<>());
      } else if (s > best.front().first) {
        std::pop_heap(best.begin(), best.end(), std::greater<>());
        best.back() = {s, i};
        std::push_heap(best.begin(), best.end(), std::greater<>());
      }
    }
    for (const auto& [s, i] : best) is_candidate[i] = true;
  }
  std::vector<int> candidates;
  for (int i = 0; i < db.size(); ++i) {
    if (is_candidate[i]) candidates.push_back(i);
  }
  // Dense candidate-by-direction score matrix so probes run on lookups.
  std::vector<std::vector<double>> score(candidates.size(),
                                         std::vector<double>(num_dirs));
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (int u = 0; u < num_dirs; ++u) {
      score[c][u] = Dot(dirs[u], db.points[candidates[c]]);
    }
  }
  // Greedy hitting set at a given ε; empty result = needs more than r.
  auto cover_at = [&](double eps) {
    std::vector<bool> covered(num_dirs, false);
    int remaining = num_dirs;
    std::vector<int> chosen;
    std::vector<bool> used(candidates.size(), false);
    while (remaining > 0 && static_cast<int>(chosen.size()) < r) {
      int best_c = -1;
      int best_gain = 0;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (used[c]) continue;
        int gain = 0;
        for (int u = 0; u < num_dirs; ++u) {
          if (!covered[u] && score[c][u] >= (1.0 - eps) * omega_k[u]) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_c = static_cast<int>(c);
        }
      }
      if (best_c < 0) break;
      used[best_c] = true;
      chosen.push_back(candidates[best_c]);
      for (int u = 0; u < num_dirs; ++u) {
        if (!covered[u] && score[best_c][u] >= (1.0 - eps) * omega_k[u]) {
          covered[u] = true;
          --remaining;
        }
      }
    }
    if (remaining > 0) return std::vector<int>();
    return chosen;
  };
  double lo = 0.0;
  double hi = 1.0;
  std::vector<int> best = cover_at(hi);
  for (int it = 0; it < search_iterations_; ++it) {
    double mid = 0.5 * (lo + hi);
    std::vector<int> cand = cover_at(mid);
    if (!cand.empty()) {
      best = std::move(cand);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<int> ids;
  for (int idx : best) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fdrms
