#include "baselines/rms_algorithm.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fdrms {

std::vector<int> SkylineIndices(const Database& db) {
  const int n = db.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (double v : db.points[i]) sums[i] += v;
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return sums[a] > sums[b]; });
  std::vector<int> skyline;
  for (int idx : order) {
    bool dominated = false;
    for (int s : skyline) {
      if (Dominates(db.points[s], db.points[idx])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<double> OmegaKForDirections(const std::vector<Point>& dirs,
                                        const std::vector<Point>& points,
                                        int k) {
  FDRMS_CHECK(k >= 1);
  std::vector<double> out(dirs.size(), 0.0);
  if (static_cast<int>(points.size()) < k) return out;
  std::vector<double> best(k);
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    const Point& u = dirs[ui];
    // Keep the k best scores seen so far in ascending order (k is tiny).
    int filled = 0;
    for (const Point& p : points) {
      double s = Dot(u, p);
      if (filled < k) {
        best[filled++] = s;
        if (filled == k) std::sort(best.begin(), best.end());
      } else if (s > best[0]) {
        // Replace the current k-th best and restore order by insertion.
        int pos = 1;
        while (pos < k && best[pos] < s) {
          best[pos - 1] = best[pos];
          ++pos;
        }
        best[pos - 1] = s;
      }
    }
    out[ui] = best[0];
  }
  return out;
}

double SampledMaxRegret(const std::vector<Point>& dirs,
                        const std::vector<double>& omega_k,
                        const std::vector<Point>& points,
                        const std::vector<int>& q_indices) {
  FDRMS_CHECK(dirs.size() == omega_k.size());
  double worst = 0.0;
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    if (omega_k[ui] <= 0.0) continue;
    double best = 0.0;
    for (int qi : q_indices) {
      best = std::max(best, Dot(dirs[ui], points[qi]));
    }
    double rr = 1.0 - best / omega_k[ui];
    if (rr > worst) worst = rr;
  }
  return worst;
}

}  // namespace fdrms
