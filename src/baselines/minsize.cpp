#include "baselines/minsize.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

std::vector<int> MinSizeHittingSet(const Database& db, int k, double eps,
                                   int num_directions, Rng* rng) {
  FDRMS_CHECK(eps > 0.0 && eps < 1.0);
  if (db.size() == 0) return {};
  std::vector<Point> dirs = SampleDirections(num_directions, db.dim, rng);
  const int num_dirs = static_cast<int>(dirs.size());
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  // Greedy set cover over directions, unbounded size.
  std::vector<bool> covered(num_dirs, false);
  int remaining = num_dirs;
  std::vector<int> chosen;
  std::vector<bool> used(db.size(), false);
  while (remaining > 0) {
    int best_idx = -1;
    int best_gain = 0;
    for (int i = 0; i < db.size(); ++i) {
      if (used[i]) continue;
      int gain = 0;
      for (int u = 0; u < num_dirs; ++u) {
        if (!covered[u] &&
            Dot(dirs[u], db.points[i]) >= (1.0 - eps) * omega_k[u]) {
          ++gain;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx < 0) break;  // numerically uncoverable directions remain
    used[best_idx] = true;
    chosen.push_back(best_idx);
    for (int u = 0; u < num_dirs; ++u) {
      if (!covered[u] &&
          Dot(dirs[u], db.points[best_idx]) >= (1.0 - eps) * omega_k[u]) {
        covered[u] = true;
        --remaining;
      }
    }
  }
  std::vector<int> ids;
  for (int idx : chosen) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int> MinSizeEpsKernel(const Database& db, double eps, Rng* rng) {
  FDRMS_CHECK(eps > 0.0 && eps < 1.0);
  if (db.size() == 0) return {};
  // Direction net at angular resolution δ ~ sqrt(eps): a coreset containing
  // the extreme point of every net direction is an O(eps)-kernel (Agarwal
  // et al. 2004). Net size grows as (1/δ)^{d-1}, capped for sanity.
  double delta = std::sqrt(eps);
  double count_d = std::pow(1.0 / delta, db.dim - 1);
  int net_size = static_cast<int>(std::min(count_d, 65536.0)) + db.dim;
  std::vector<Point> pool = SampleDirections(net_size * 2, db.dim, rng);
  for (int j = 0; j < db.dim; ++j) {
    Point e(db.dim, 0.0);
    e[j] = 1.0;
    pool.insert(pool.begin(), std::move(e));
  }
  std::vector<Point> net = FarthestPointDirections(pool, net_size);
  std::vector<int> skyline = SkylineIndices(db);
  std::unordered_set<int> distinct;
  for (const Point& u : net) {
    int best = skyline.front();
    double best_score = -1.0;
    for (int idx : skyline) {
      double s = Dot(u, db.points[idx]);
      if (s > best_score) {
        best_score = s;
        best = idx;
      }
    }
    distinct.insert(best);
  }
  std::vector<int> ids;
  for (int idx : distinct) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int> AlphaHappinessQuery(const Database& db, double alpha,
                                     int num_directions, Rng* rng) {
  FDRMS_CHECK(alpha > 0.0 && alpha < 1.0);
  return MinSizeHittingSet(db, /*k=*/1, /*eps=*/1.0 - alpha, num_directions,
                           rng);
}

}  // namespace fdrms
