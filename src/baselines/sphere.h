#ifndef FDRMS_BASELINES_SPHERE_H_
#define FDRMS_BASELINES_SPHERE_H_

/// \file sphere.h
///  * SphereRms — SPHERE of Xie et al. (SIGMOD 2018): seed the answer with
///    the boundary tuples of r well-spread directions (the ε-kernel stage),
///    then complete the budget greedily against a sampled utility set (the
///    GREEDY stage). See DESIGN.md §4 for the substitution notes.
///  * CubeRms — CUBE of Nanongkai et al. (VLDB 2010): the classic
///    grid-partition reference algorithm whose bound Corollary 1 compares
///    against.

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// SPHERE [32]; k = 1 only.
class SphereRms : public RmsAlgorithm {
 public:
  explicit SphereRms(int num_directions = 1024)
      : num_directions_(num_directions) {}

  std::string name() const override { return "Sphere"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
};

/// CUBE [22]; k = 1 only.
class CubeRms : public RmsAlgorithm {
 public:
  std::string name() const override { return "Cube"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_SPHERE_H_
