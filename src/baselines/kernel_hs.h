#ifndef FDRMS_BASELINES_KERNEL_HS_H_
#define FDRMS_BASELINES_KERNEL_HS_H_

/// \file kernel_hs.h
/// The coreset-flavoured baselines:
///  * EpsKernelRms — ε-KERNEL [3,10]: the coreset of extreme tuples along a
///    spread of directions is itself the answer; the direction count is
///    binary-searched so the coreset fits the budget r (the paper's
///    min-size -> min-error adaptation).
///  * HittingSetRms — HS [3]: universe = sampled directions, sets = tuples
///    covering the directions where they are ε-approximate top-k; binary
///    search on ε for the smallest value whose greedy hitting set fits r.

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// ε-KERNEL [3, 10]; any k (the coreset construction ignores k; its
/// guarantee transfers to k-regret as in the cited papers).
class EpsKernelRms : public RmsAlgorithm {
 public:
  explicit EpsKernelRms(int max_directions = 4096)
      : max_directions_(max_directions) {}

  std::string name() const override { return "eps-Kernel"; }
  bool SupportsKGreaterThan1() const override { return true; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int max_directions_;
};

/// HS [3]; any k.
class HittingSetRms : public RmsAlgorithm {
 public:
  explicit HittingSetRms(int num_directions = 384, int search_iterations = 16)
      : num_directions_(num_directions),
        search_iterations_(search_iterations) {}

  std::string name() const override { return "HS"; }
  bool SupportsKGreaterThan1() const override { return true; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
  int search_iterations_;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_KERNEL_HS_H_
