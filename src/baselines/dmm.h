#ifndef FDRMS_BASELINES_DMM_H_
#define FDRMS_BASELINES_DMM_H_

/// \file dmm.h
/// DMM-RRMS and DMM-GREEDY of Asudeh et al. (SIGMOD 2017): both discretize
/// the utility space into N sampled directions and operate on the implied
/// (skyline tuple x direction) regret matrix.
///  * DMM-RRMS   — binary search on the regret threshold θ; feasibility of
///                 a θ is a set-cover instance (tuples cover the directions
///                 on which their regret is <= θ) solved greedily.
///  * DMM-GREEDY — greedy min-max row selection on the same matrix.

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// DMM-RRMS [4]; k = 1 only.
class DmmRrms : public RmsAlgorithm {
 public:
  explicit DmmRrms(int num_directions = 512, int search_iterations = 24)
      : num_directions_(num_directions), search_iterations_(search_iterations) {}

  std::string name() const override { return "DMM-RRMS"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
  int search_iterations_;
};

/// DMM-GREEDY [4]; k = 1 only.
class DmmGreedy : public RmsAlgorithm {
 public:
  explicit DmmGreedy(int num_directions = 512)
      : num_directions_(num_directions) {}

  std::string name() const override { return "DMM-Greedy"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_DMM_H_
