#include "baselines/greedy.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "geometry/sampling.h"
#include "lp/simplex.h"

namespace fdrms {

namespace {

/// Index (into db.points) of the tuple with the largest attribute sum — the
/// deterministic seed all greedy variants start from.
int MaxSumIndex(const Database& db, const std::vector<int>& candidates) {
  int best = candidates.front();
  double best_sum = -1.0;
  for (int idx : candidates) {
    double s = std::accumulate(db.points[idx].begin(), db.points[idx].end(), 0.0);
    if (s > best_sum) {
      best_sum = s;
      best = idx;
    }
  }
  return best;
}

std::vector<Point> GatherPoints(const Database& db,
                                const std::vector<int>& indices) {
  std::vector<Point> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(db.points[i]);
  return out;
}

std::vector<int> ToIds(const Database& db, const std::vector<int>& indices) {
  std::vector<int> ids;
  ids.reserve(indices.size());
  for (int i : indices) ids.push_back(db.ids[i]);
  return ids;
}

}  // namespace

std::vector<int> GreedyRms::Compute(const Database& db, int k, int r,
                                    Rng* rng) const {
  FDRMS_CHECK(k == 1) << "Greedy supports k = 1 only";
  if (db.size() == 0 || r <= 0) return {};
  std::vector<int> skyline = SkylineIndices(db);
  if (static_cast<int>(skyline.size()) > max_witness_candidates_) {
    rng->Shuffle(&skyline);
    skyline.resize(max_witness_candidates_);
  }
  std::vector<int> chosen{MaxSumIndex(db, skyline)};
  std::vector<bool> taken(db.size(), false);
  taken[chosen[0]] = true;
  while (static_cast<int>(chosen.size()) < r) {
    std::vector<Point> q_points = GatherPoints(db, chosen);
    double best_regret = 0.0;
    int best_idx = -1;
    for (int idx : skyline) {
      if (taken[idx]) continue;
      double regret = MaxRegretForWitness(db.points[idx], q_points);
      if (regret > best_regret) {
        best_regret = regret;
        best_idx = idx;
      }
    }
    if (best_idx < 0 || best_regret <= 1e-12) break;  // zero regret reached
    chosen.push_back(best_idx);
    taken[best_idx] = true;
  }
  return ToIds(db, chosen);
}

std::vector<int> GeoGreedyRms::Compute(const Database& db, int k, int r,
                                       Rng* rng) const {
  FDRMS_CHECK(k == 1) << "GeoGreedy supports k = 1 only";
  if (db.size() == 0 || r <= 0) return {};
  std::vector<int> skyline = SkylineIndices(db);
  std::vector<Point> dirs = SampleDirections(num_directions_, db.dim, rng);
  // Per-direction top score over the skyline (the reference for regret).
  std::vector<double> omega(dirs.size(), 0.0);
  std::vector<int> top_of(dirs.size(), skyline.front());
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    for (int idx : skyline) {
      double s = Dot(dirs[ui], db.points[idx]);
      if (s > omega[ui]) {
        omega[ui] = s;
        top_of[ui] = idx;
      }
    }
  }
  std::vector<int> chosen{MaxSumIndex(db, skyline)};
  std::vector<bool> taken(db.size(), false);
  taken[chosen[0]] = true;
  // best_in_q[u]: the best score Q achieves along direction u.
  std::vector<double> best_in_q(dirs.size(), 0.0);
  for (size_t ui = 0; ui < dirs.size(); ++ui) {
    best_in_q[ui] = Dot(dirs[ui], db.points[chosen[0]]);
  }
  while (static_cast<int>(chosen.size()) < r) {
    // Sampled witness scan: rank candidate tuples by the regret of the
    // direction they win.
    std::vector<std::pair<double, int>> witness;  // (regret, point index)
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      if (omega[ui] <= 0.0 || taken[top_of[ui]]) continue;
      double rr = 1.0 - best_in_q[ui] / omega[ui];
      if (rr > 1e-12) witness.emplace_back(rr, top_of[ui]);
    }
    if (witness.empty()) break;
    std::sort(witness.begin(), witness.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    // Exact-LP refinement on the leading distinct candidates (this is the
    // role GEOGREEDY's convex-hull machinery plays: confirm the true
    // maximum-regret witness among the geometric front-runners).
    std::vector<Point> q_points = GatherPoints(db, chosen);
    double best_regret = 0.0;
    int best_idx = -1;
    int refined = 0;
    std::vector<bool> seen(db.size(), false);
    for (const auto& [rr, idx] : witness) {
      if (seen[idx]) continue;
      seen[idx] = true;
      double regret = MaxRegretForWitness(db.points[idx], q_points);
      if (regret > best_regret) {
        best_regret = regret;
        best_idx = idx;
      }
      if (++refined >= refine_top_) break;
    }
    if (best_idx < 0 || best_regret <= 1e-12) break;
    chosen.push_back(best_idx);
    taken[best_idx] = true;
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      best_in_q[ui] =
          std::max(best_in_q[ui], Dot(dirs[ui], db.points[best_idx]));
    }
  }
  return ToIds(db, chosen);
}

std::vector<int> GreedyStarRms::Compute(const Database& db, int k, int r,
                                        Rng* rng) const {
  if (db.size() == 0 || r <= 0) return {};
  std::vector<Point> dirs = SampleDirections(num_directions_, db.dim, rng);
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  // Candidates: tuples appearing in the top-k of at least one sampled
  // direction — anything else cannot reduce the sampled regret more than a
  // candidate can.
  std::vector<bool> is_candidate(db.size(), false);
  for (const Point& u : dirs) {
    // Collect the indices of the k best tuples along u.
    std::vector<std::pair<double, int>> best;  // min-heap by score
    for (int i = 0; i < db.size(); ++i) {
      double s = Dot(u, db.points[i]);
      if (static_cast<int>(best.size()) < k) {
        best.emplace_back(s, i);
        std::push_heap(best.begin(), best.end(), std::greater<>());
      } else if (s > best.front().first) {
        std::pop_heap(best.begin(), best.end(), std::greater<>());
        best.back() = {s, i};
        std::push_heap(best.begin(), best.end(), std::greater<>());
      }
    }
    for (const auto& [s, i] : best) is_candidate[i] = true;
  }
  std::vector<int> candidates;
  for (int i = 0; i < db.size(); ++i) {
    if (is_candidate[i]) candidates.push_back(i);
  }
  // Greedy: repeatedly add the candidate minimizing the sampled mrr_k.
  std::vector<int> chosen;
  std::vector<bool> taken(db.size(), false);
  std::vector<double> best_in_q(dirs.size(), 0.0);
  while (static_cast<int>(chosen.size()) < r) {
    double best_value = std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (int idx : candidates) {
      if (taken[idx]) continue;
      double value = 0.0;  // resulting mrr_k if idx is added
      for (size_t ui = 0; ui < dirs.size(); ++ui) {
        if (omega_k[ui] <= 0.0) continue;
        double q = std::max(best_in_q[ui], Dot(dirs[ui], db.points[idx]));
        double rr = 1.0 - q / omega_k[ui];
        if (rr > value) value = rr;
      }
      if (value < best_value) {
        best_value = value;
        best_idx = idx;
      }
    }
    if (best_idx < 0) break;
    chosen.push_back(best_idx);
    taken[best_idx] = true;
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      best_in_q[ui] =
          std::max(best_in_q[ui], Dot(dirs[ui], db.points[best_idx]));
    }
    if (best_value <= 1e-12) break;  // sampled regret already zero
  }
  return ToIds(db, chosen);
}

}  // namespace fdrms
