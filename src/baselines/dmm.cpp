#include "baselines/dmm.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

namespace {

/// Regret matrix over the skyline: regret[i][u] of skyline tuple i on
/// direction u, with row/column ids resolved by the caller.
struct RegretMatrix {
  std::vector<int> rows;                      // indices into db.points
  std::vector<std::vector<double>> regret;    // rows x dirs
  int num_dirs = 0;
};

RegretMatrix BuildMatrix(const Database& db, int num_directions, Rng* rng) {
  RegretMatrix m;
  m.rows = SkylineIndices(db);
  std::vector<Point> dirs = SampleDirections(num_directions, db.dim, rng);
  m.num_dirs = static_cast<int>(dirs.size());
  std::vector<double> omega(dirs.size(), 0.0);
  std::vector<std::vector<double>> score(m.rows.size(),
                                         std::vector<double>(dirs.size()));
  for (size_t i = 0; i < m.rows.size(); ++i) {
    for (size_t u = 0; u < dirs.size(); ++u) {
      score[i][u] = Dot(dirs[u], db.points[m.rows[i]]);
      omega[u] = std::max(omega[u], score[i][u]);
    }
  }
  m.regret.assign(m.rows.size(), std::vector<double>(dirs.size(), 0.0));
  for (size_t i = 0; i < m.rows.size(); ++i) {
    for (size_t u = 0; u < dirs.size(); ++u) {
      m.regret[i][u] = omega[u] <= 0.0 ? 0.0 : 1.0 - score[i][u] / omega[u];
    }
  }
  return m;
}

/// Greedy set cover: can `r` rows cover all directions with per-direction
/// regret <= theta? Returns the chosen row indices (empty = infeasible).
std::vector<int> CoverAtThreshold(const RegretMatrix& m, double theta, int r) {
  std::vector<bool> covered(m.num_dirs, false);
  int remaining = m.num_dirs;
  std::vector<int> chosen;
  std::vector<bool> used(m.rows.size(), false);
  while (remaining > 0 && static_cast<int>(chosen.size()) < r) {
    int best_row = -1;
    int best_gain = 0;
    for (size_t i = 0; i < m.rows.size(); ++i) {
      if (used[i]) continue;
      int gain = 0;
      for (int u = 0; u < m.num_dirs; ++u) {
        if (!covered[u] && m.regret[i][u] <= theta) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_row = static_cast<int>(i);
      }
    }
    if (best_row < 0) return {};  // no row makes progress
    used[best_row] = true;
    chosen.push_back(best_row);
    for (int u = 0; u < m.num_dirs; ++u) {
      if (!covered[u] && m.regret[best_row][u] <= theta) {
        covered[u] = true;
        --remaining;
      }
    }
  }
  if (remaining > 0) return {};
  return chosen;
}

}  // namespace

std::vector<int> DmmRrms::Compute(const Database& db, int k, int r,
                                  Rng* rng) const {
  FDRMS_CHECK(k == 1) << "DMM-RRMS supports k = 1 only";
  if (db.size() == 0 || r <= 0) return {};
  RegretMatrix m = BuildMatrix(db, num_directions_, rng);
  double lo = 0.0;
  double hi = 1.0;
  std::vector<int> best_rows = CoverAtThreshold(m, hi, r);
  FDRMS_CHECK(!best_rows.empty() || m.num_dirs == 0);
  for (int it = 0; it < search_iterations_; ++it) {
    double mid = 0.5 * (lo + hi);
    std::vector<int> rows = CoverAtThreshold(m, mid, r);
    if (!rows.empty()) {
      best_rows = std::move(rows);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<int> ids;
  for (int row : best_rows) ids.push_back(db.ids[m.rows[row]]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int> DmmGreedy::Compute(const Database& db, int k, int r,
                                    Rng* rng) const {
  FDRMS_CHECK(k == 1) << "DMM-Greedy supports k = 1 only";
  if (db.size() == 0 || r <= 0) return {};
  RegretMatrix m = BuildMatrix(db, num_directions_, rng);
  // best_regret[u]: regret the chosen rows achieve on direction u so far.
  std::vector<double> best_regret(m.num_dirs, 1.0);
  std::vector<bool> used(m.rows.size(), false);
  std::vector<int> chosen;
  while (static_cast<int>(chosen.size()) < r) {
    int best_row = -1;
    double best_value = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m.rows.size(); ++i) {
      if (used[i]) continue;
      double value = 0.0;  // resulting max regret if row i is added
      for (int u = 0; u < m.num_dirs; ++u) {
        value = std::max(value, std::min(best_regret[u], m.regret[i][u]));
      }
      if (value < best_value) {
        best_value = value;
        best_row = static_cast<int>(i);
      }
    }
    if (best_row < 0) break;
    used[best_row] = true;
    chosen.push_back(best_row);
    for (int u = 0; u < m.num_dirs; ++u) {
      best_regret[u] = std::min(best_regret[u], m.regret[best_row][u]);
    }
    if (best_value <= 1e-12) break;
  }
  std::vector<int> ids;
  for (int row : chosen) ids.push_back(db.ids[m.rows[row]]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fdrms
