#ifndef FDRMS_BASELINES_AVERAGE_REGRET_H_
#define FDRMS_BASELINES_AVERAGE_REGRET_H_

/// \file average_regret.h
/// Average regret minimization (ARM) — the related problem of [26, 28, 35]
/// (Section V): choose r tuples minimizing the *average* (not maximum)
/// k-regret ratio over a utility distribution. The objective
///   f(Q) = E_u[ min(1, ω(u,Q) / ω_k(u,P)) ]
/// is monotone submodular, so lazy greedy gives a (1 - 1/e)-approximation
/// (Storandt & Funke, AAAI 2019).

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// ARM solver over a sampled utility set; returns at most r tuple ids.
class AverageRegretGreedy : public RmsAlgorithm {
 public:
  explicit AverageRegretGreedy(int num_directions = 1024)
      : num_directions_(num_directions) {}

  std::string name() const override { return "ARM-Greedy"; }
  bool SupportsKGreaterThan1() const override { return true; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

  /// Average k-regret ratio of `q_ids` over `db` on a fresh utility sample
  /// (the ARM objective this class minimizes).
  static double AverageRegret(const Database& db, const std::vector<int>& q_ids,
                              int k, int num_directions, Rng* rng);

 private:
  int num_directions_;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_AVERAGE_REGRET_H_
