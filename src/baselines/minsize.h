#ifndef FDRMS_BASELINES_MINSIZE_H_
#define FDRMS_BASELINES_MINSIZE_H_

/// \file minsize.h
/// The *min-size* form of k-RMS studied in [3, 19] and the α-happiness
/// query of Xie et al. (ICDE 2020): instead of fixing the result size r and
/// minimizing regret, fix a regret (or happiness) target and return the
/// smallest subset meeting it. The paper adapts these algorithms to the
/// min-error form by binary search (Section IV-A); this header exposes the
/// native min-size interfaces as well.

#include "baselines/rms_algorithm.h"
#include "common/result.h"

namespace fdrms {

/// Smallest hitting set whose tuples ε-cover every sampled utility: for
/// each direction u of the sample, some returned tuple scores at least
/// (1-eps) * ω_k(u, P). This is HS [3] in its native min-size form.
///
/// \param eps regret budget in (0, 1)
/// \param num_directions utility sample size (guarantee sharpens with it)
std::vector<int> MinSizeHittingSet(const Database& db, int k, double eps,
                                   int num_directions, Rng* rng);

/// ε-kernel coreset at resolution matched to `eps`: extreme tuples along a
/// direction net of angular spacing ~ sqrt(eps), the classic Agarwal et al.
/// construction adapted to the nonnegative orthant. Rank-oblivious.
std::vector<int> MinSizeEpsKernel(const Database& db, double eps, Rng* rng);

/// α-happiness query [33]: minimum subset with happiness ratio at least
/// `alpha` for every sampled utility, where happiness = 1 - regret. Thin
/// adapter over MinSizeHittingSet with k = 1 (the paper's formulation).
std::vector<int> AlphaHappinessQuery(const Database& db, double alpha,
                                     int num_directions, Rng* rng);

}  // namespace fdrms

#endif  // FDRMS_BASELINES_MINSIZE_H_
