#ifndef FDRMS_BASELINES_RMS_ALGORITHM_H_
#define FDRMS_BASELINES_RMS_ALGORITHM_H_

/// \file rms_algorithm.h
/// Common interface for the static k-RMS algorithms the paper compares
/// against (Section IV-A). Static algorithms recompute from scratch; the
/// dynamic adapter in src/eval re-runs them whenever the skyline changes.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"

namespace fdrms {

/// A snapshot of the database handed to a static algorithm.
struct Database {
  int dim = 0;
  std::vector<int> ids;       ///< tuple ids, parallel to points
  std::vector<Point> points;  ///< attribute vectors

  int size() const { return static_cast<int>(ids.size()); }
};

/// Indices (into db.points) of the skyline of `db`.
std::vector<int> SkylineIndices(const Database& db);

/// Interface of a static k-RMS algorithm: one-shot compute on a snapshot.
class RmsAlgorithm {
 public:
  virtual ~RmsAlgorithm() = default;

  /// Human-readable name matching the paper's legend (e.g. "Greedy").
  virtual std::string name() const = 0;

  /// Whether the algorithm handles k > 1 (Fig. 7 only compares those).
  virtual bool SupportsKGreaterThan1() const { return false; }

  /// Computes a result of at most `r` tuple ids for RMS(k, r) on `db`.
  /// `rng` seeds any internal sampling so runs are reproducible.
  virtual std::vector<int> Compute(const Database& db, int k, int r,
                                   Rng* rng) const = 0;
};

/// Shared helper: ω_k(u, P) for every direction (0 when |P| < k).
std::vector<double> OmegaKForDirections(const std::vector<Point>& dirs,
                                        const std::vector<Point>& points,
                                        int k);

/// Shared helper: sampled maximum k-regret ratio of the points `q_indices`
/// (indices into `points`) against precomputed ω_k values.
double SampledMaxRegret(const std::vector<Point>& dirs,
                        const std::vector<double>& omega_k,
                        const std::vector<Point>& points,
                        const std::vector<int>& q_indices);

}  // namespace fdrms

#endif  // FDRMS_BASELINES_RMS_ALGORITHM_H_
