#include "baselines/exact2d.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fdrms {

namespace {

/// Upper envelope of the lines f_p(t) = (px - py) t + py over t ∈ [0, 1],
/// built with the convex-hull trick and evaluated by binary search.
class UpperEnvelope {
 public:
  explicit UpperEnvelope(const std::vector<Point>& points) {
    std::vector<std::pair<double, double>> lines;  // (slope, intercept)
    lines.reserve(points.size());
    for (const Point& p : points) {
      lines.emplace_back(p[0] - p[1], p[1]);
    }
    std::sort(lines.begin(), lines.end());
    // Deduplicate slopes, keeping the highest intercept.
    std::vector<std::pair<double, double>> dedup;
    for (const auto& ln : lines) {
      if (!dedup.empty() && dedup.back().first == ln.first) {
        dedup.back().second = std::max(dedup.back().second, ln.second);
      } else {
        dedup.push_back(ln);
      }
    }
    // Build the upper hull: a line is kept if it beats its neighbors
    // somewhere.
    for (const auto& ln : dedup) {
      while (hull_.size() >= 2 && !Useful(hull_[hull_.size() - 2],
                                          hull_[hull_.size() - 1], ln)) {
        hull_.pop_back();
      }
      // Drop a new line dominated by the last one (parallel handled above).
      hull_.push_back(ln);
    }
    // Breakpoints between consecutive hull lines.
    breaks_.clear();
    for (size_t i = 0; i + 1 < hull_.size(); ++i) {
      breaks_.push_back(Cross(hull_[i], hull_[i + 1]));
    }
  }

  double Evaluate(double t) const {
    size_t idx =
        std::upper_bound(breaks_.begin(), breaks_.end(), t) - breaks_.begin();
    return hull_[idx].first * t + hull_[idx].second;
  }

 private:
  using Line = std::pair<double, double>;

  static double Cross(const Line& a, const Line& b) {
    return (a.second - b.second) / (b.first - a.first);
  }
  // Is line `b` above the crossing of `a` and `c` somewhere between them?
  static bool Useful(const Line& a, const Line& b, const Line& c) {
    return Cross(a, c) > Cross(a, b);
  }

  std::vector<Line> hull_;
  std::vector<double> breaks_;
};

struct Interval {
  double lo;
  double hi;
  int index;  // tuple index
};

/// Coverage interval of tuple `p` at error eps: {t : f_p(t) >= (1-eps)env}.
/// Returns false when empty. Exploits concavity of the margin.
bool CoverageInterval(const Point& p, double eps, const UpperEnvelope& env,
                      Interval* out) {
  auto margin = [&](double t) {
    return (p[0] - p[1]) * t + p[1] - (1.0 - eps) * env.Evaluate(t);
  };
  // Ternary search for the maximum of the concave margin.
  double lo = 0.0;
  double hi = 1.0;
  for (int it = 0; it < 80; ++it) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (margin(m1) < margin(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  double peak = 0.5 * (lo + hi);
  if (margin(peak) < 0.0) {
    // The peak can sit exactly on the boundary; check the ends too.
    if (margin(0.0) >= 0.0) {
      peak = 0.0;
    } else if (margin(1.0) >= 0.0) {
      peak = 1.0;
    } else {
      return false;
    }
  }
  // Left endpoint: margin crosses zero once in [0, peak].
  double a = 0.0;
  double b = peak;
  if (margin(0.0) >= 0.0) {
    out->lo = 0.0;
  } else {
    for (int it = 0; it < 60; ++it) {
      double mid = 0.5 * (a + b);
      if (margin(mid) >= 0.0) {
        b = mid;
      } else {
        a = mid;
      }
    }
    out->lo = b;
  }
  a = peak;
  b = 1.0;
  if (margin(1.0) >= 0.0) {
    out->hi = 1.0;
  } else {
    for (int it = 0; it < 60; ++it) {
      double mid = 0.5 * (a + b);
      if (margin(mid) >= 0.0) {
        a = mid;
      } else {
        b = mid;
      }
    }
    out->hi = a;
  }
  return out->hi >= out->lo;
}

/// Greedy interval covering of [0, 1]; empty = infeasible with r intervals.
std::vector<int> GreedyIntervalCover(std::vector<Interval> intervals, int r) {
  constexpr double kTol = 1e-9;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<int> chosen;
  double covered_to = 0.0;
  size_t i = 0;
  while (covered_to < 1.0 - kTol) {
    double best_hi = -1.0;
    int best_index = -1;
    while (i < intervals.size() && intervals[i].lo <= covered_to + kTol) {
      if (intervals[i].hi > best_hi) {
        best_hi = intervals[i].hi;
        best_index = intervals[i].index;
      }
      ++i;
    }
    if (best_index < 0 || best_hi <= covered_to + 1e-15) return {};
    chosen.push_back(best_index);
    covered_to = best_hi;
    if (static_cast<int>(chosen.size()) > r) return {};
  }
  return chosen;
}

}  // namespace

std::vector<int> Exact2dRms::Compute(const Database& db, int k, int r,
                                     Rng* rng) const {
  FDRMS_CHECK(k == 1) << "Exact2D supports k = 1 only";
  FDRMS_CHECK(db.dim == 2) << "Exact2D supports d = 2 only";
  (void)rng;
  if (db.size() == 0 || r <= 0) return {};
  std::vector<int> skyline = SkylineIndices(db);
  std::vector<Point> sky_points;
  for (int idx : skyline) sky_points.push_back(db.points[idx]);
  UpperEnvelope env(sky_points);
  auto cover_at = [&](double eps) {
    std::vector<Interval> intervals;
    Interval iv;
    for (size_t i = 0; i < sky_points.size(); ++i) {
      if (CoverageInterval(sky_points[i], eps, env, &iv)) {
        iv.index = skyline[i];
        intervals.push_back(iv);
      }
    }
    return GreedyIntervalCover(std::move(intervals), r);
  };
  double lo = 0.0;
  double hi = 1.0;
  std::vector<int> best = cover_at(hi);
  FDRMS_CHECK(!best.empty()) << "covering at eps=1 must succeed";
  while (hi - lo > precision_) {
    double mid = 0.5 * (lo + hi);
    std::vector<int> cand = cover_at(mid);
    if (!cand.empty()) {
      best = std::move(cand);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<int> ids;
  for (int idx : best) ids.push_back(db.ids[idx]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double Exact2dRms::OptimalRegret(const Database& db, int r) const {
  FDRMS_CHECK(db.dim == 2);
  if (db.size() == 0 || r <= 0) return 1.0;
  std::vector<int> skyline = SkylineIndices(db);
  std::vector<Point> sky_points;
  for (int idx : skyline) sky_points.push_back(db.points[idx]);
  if (static_cast<int>(sky_points.size()) <= r) return 0.0;
  UpperEnvelope env(sky_points);
  auto feasible = [&](double eps) {
    std::vector<Interval> intervals;
    Interval iv;
    for (size_t i = 0; i < sky_points.size(); ++i) {
      if (CoverageInterval(sky_points[i], eps, env, &iv)) {
        iv.index = static_cast<int>(i);
        intervals.push_back(iv);
      }
    }
    return !GreedyIntervalCover(std::move(intervals), r).empty();
  };
  double lo = 0.0;
  double hi = 1.0;
  while (hi - lo > precision_) {
    double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace fdrms
