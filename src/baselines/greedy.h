#ifndef FDRMS_BASELINES_GREEDY_H_
#define FDRMS_BASELINES_GREEDY_H_

/// \file greedy.h
/// The greedy family of RMS baselines:
///  * GreedyRms     — GREEDY of Nanongkai et al. (VLDB 2010): at every step
///                    an exact LP per skyline candidate finds the tuple
///                    realizing the current maximum regret, which is added.
///  * GeoGreedyRms  — GEOGREEDY of Peng & Wong (ICDE 2014): the same greedy
///                    objective with the geometric candidate pruning
///                    replaced by a sampled-witness scan refined by exact
///                    LPs on the top candidates (see DESIGN.md §4).
///  * GreedyStarRms — GREEDY* of Chester et al. (PVLDB 2014): randomized
///                    greedy for k >= 1 driven by a sampled utility set.

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// GREEDY [22]; k = 1 only.
class GreedyRms : public RmsAlgorithm {
 public:
  /// \param max_witness_candidates caps the per-iteration LP count on huge
  ///        skylines (the paper's implementation scans all; the cap only
  ///        matters above bench scale).
  explicit GreedyRms(int max_witness_candidates = 1200)
      : max_witness_candidates_(max_witness_candidates) {}

  std::string name() const override { return "Greedy"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int max_witness_candidates_;
};

/// GEOGREEDY [23]; k = 1 only.
class GeoGreedyRms : public RmsAlgorithm {
 public:
  /// \param num_directions sampled witness directions per iteration
  /// \param refine_top exact LPs run on the best candidates per iteration
  explicit GeoGreedyRms(int num_directions = 512, int refine_top = 8)
      : num_directions_(num_directions), refine_top_(refine_top) {}

  std::string name() const override { return "GeoGreedy"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
  int refine_top_;
};

/// GREEDY* [11]; any k.
class GreedyStarRms : public RmsAlgorithm {
 public:
  explicit GreedyStarRms(int num_directions = 1024)
      : num_directions_(num_directions) {}

  std::string name() const override { return "Greedy*"; }
  bool SupportsKGreaterThan1() const override { return true; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

 private:
  int num_directions_;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_GREEDY_H_
