#ifndef FDRMS_BASELINES_EXACT2D_H_
#define FDRMS_BASELINES_EXACT2D_H_

/// \file exact2d.h
/// Exact 1-RMS for d = 2 — the "first type" of algorithm the paper's
/// introduction catalogs (dynamic-programming/optimal methods that exist
/// only in two dimensions). Used in this repo as a ground-truth oracle for
/// property tests and as a runnable extension baseline.
///
/// Method: parameterize utilities as u(t) = (t, 1-t)/||.||, t ∈ [0, 1]
/// (regret ratios are scale-invariant, so the unnormalized pencil
/// suffices). For a fixed error ε, tuple p covers the set
/// { t : score_t(p) >= (1-ε) * env(t) } where env is the (convex,
/// piecewise-linear) upper envelope of all tuples. score_t(p) - (1-ε)env(t)
/// is concave in t, so each tuple's coverage is an interval: RMS(1, r)
/// with error ε reduces to covering [0, 1] by r intervals, which the
/// classic left-to-right greedy solves exactly. Binary search on ε yields
/// the optimum to any precision.

#include "baselines/rms_algorithm.h"

namespace fdrms {

/// Exact (to binary-search precision) 1-RMS in two dimensions.
class Exact2dRms : public RmsAlgorithm {
 public:
  explicit Exact2dRms(double precision = 1e-7) : precision_(precision) {}

  std::string name() const override { return "Exact2D"; }
  std::vector<int> Compute(const Database& db, int k, int r,
                           Rng* rng) const override;

  /// The optimal maximum regret ratio ε*_{1,r} itself.
  double OptimalRegret(const Database& db, int r) const;

 private:
  double precision_;
};

}  // namespace fdrms

#endif  // FDRMS_BASELINES_EXACT2D_H_
