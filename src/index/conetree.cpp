#include "index/conetree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace fdrms {

namespace {

/// Leaf scans run through a fixed stack buffer in chunks, so any leaf_size
/// works without per-query allocation.
constexpr int kLeafChunk = 32;

}  // namespace

ConeTree::ConeTree(const std::vector<Point>& utilities, int leaf_size)
    : utilities_(utilities), thresholds_(utilities.size(), 0.0),
      leaf_of_(utilities.size(), -1) {
  FDRMS_CHECK(leaf_size >= 2);
  if (utilities_.empty()) return;
  std::vector<int> indices(utilities_.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  leaf_size_build_ = leaf_size;
  root_ = Build(&indices, 0, static_cast<int>(indices.size()), -1);
  // The recursive build partitions `indices` in place, so afterwards every
  // leaf's utilities occupy a contiguous range of it: `indices` *is* the
  // build permutation. Freeze the permuted hot-path slabs from it.
  perm_ = std::move(indices);
  pos_in_perm_.assign(perm_.size(), -1);
  perm_thresholds_.assign(perm_.size(), 0.0);
  std::vector<Point> permuted_rows;
  permuted_rows.reserve(perm_.size());
  for (size_t pos = 0; pos < perm_.size(); ++pos) {
    pos_in_perm_[perm_[pos]] = static_cast<int>(pos);
    permuted_rows.push_back(utilities_[perm_[pos]]);
  }
  perm_utilities_ = ScoreMatrix(permuted_rows);
  centers_ = ScoreMatrix(build_centers_);  // Build() staged one row per node
  build_centers_.clear();
  build_centers_.shrink_to_fit();
}

int ConeTree::Build(std::vector<int>* indices, int lo, int hi, int parent) {
  Node node;
  node.parent = parent;
  // Center: normalized mean direction of the covered utilities.
  const int dim = static_cast<int>(utilities_[(*indices)[lo]].size());
  Point center(dim, 0.0);
  for (int i = lo; i < hi; ++i) {
    const Point& u = utilities_[(*indices)[i]];
    for (int j = 0; j < dim; ++j) center[j] += u[j];
  }
  if (Norm(center) < 1e-12) {
    // Degenerate (cannot happen for nonnegative orthant vectors, but keep
    // the structure safe): fall back to the first utility.
    center = utilities_[(*indices)[lo]];
  }
  Normalize(&center);
  double half_angle = 0.0;
  for (int i = lo; i < hi; ++i) {
    half_angle = std::max(half_angle, Angle(center, utilities_[(*indices)[i]]));
  }
  node.cos_half = std::cos(half_angle);
  node.sin_half = std::sin(half_angle);
  node.min_tau = 0.0;
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  build_centers_.push_back(center);
  if (hi - lo <= leaf_size_build_) {
    nodes_[node_id].first = lo;
    nodes_[node_id].count = hi - lo;
    for (int i = lo; i < hi; ++i) leaf_of_[(*indices)[i]] = node_id;
    return node_id;
  }
  // Angular 2-means-style split: pivot a = farthest from first element,
  // pivot b = farthest from a; assign each utility to the closer pivot.
  auto farthest_from = [&](const Point& ref) {
    int best = lo;
    double best_angle = -1.0;
    for (int i = lo; i < hi; ++i) {
      double ang = Angle(ref, utilities_[(*indices)[i]]);
      if (ang > best_angle) {
        best_angle = ang;
        best = i;
      }
    }
    return best;
  };
  int ia = farthest_from(utilities_[(*indices)[lo]]);
  int ib = farthest_from(utilities_[(*indices)[ia]]);
  Point a = utilities_[(*indices)[ia]];
  Point b = utilities_[(*indices)[ib]];
  auto mid = std::partition(indices->begin() + lo, indices->begin() + hi,
                            [&](int idx) {
                              const Point& u = utilities_[idx];
                              return Dot(u, a) >= Dot(u, b);
                            });
  int split = static_cast<int>(mid - indices->begin());
  if (split == lo || split == hi) split = (lo + hi) / 2;  // duplicate vectors
  int left = Build(indices, lo, split, node_id);
  int right = Build(indices, split, hi, node_id);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void ConeTree::SetThreshold(int utility_index, double tau) {
  FDRMS_DCHECK(utility_index >= 0 &&
               utility_index < static_cast<int>(utilities_.size()));
  thresholds_[utility_index] = tau;
  perm_thresholds_[pos_in_perm_[utility_index]] = tau;
  int node_id = leaf_of_[utility_index];
  while (node_id >= 0) {
    Node& node = nodes_[node_id];
    double new_min;
    if (node.is_leaf()) {
      new_min = std::numeric_limits<double>::infinity();
      for (int i = node.first; i < node.first + node.count; ++i) {
        new_min = std::min(new_min, perm_thresholds_[i]);
      }
    } else {
      new_min = std::min(nodes_[node.left].min_tau, nodes_[node.right].min_tau);
    }
    if (new_min == node.min_tau && node_id != leaf_of_[utility_index]) break;
    node.min_tau = new_min;
    node_id = node.parent;
  }
}

void ConeTree::Collect(int node_id, const Point& p, double p_norm,
                       std::vector<int>* out) const {
  const Node& node = nodes_[node_id];
  // Upper bound of <u, p> over the cone, computed trig-free: with
  // cos_ang = <center, p> / ||p||, the bound ||p|| * cos(ang - half)
  // expands through cos(ang - half) = cos_ang*cos_half + sin_ang*sin_half
  // (and is just ||p|| when the point lies inside the cone, ang <= half,
  // i.e. cos_ang >= cos_half). The identity can lose a few ulps, so pad
  // the bound before pruning: a tuple scoring exactly tau must never be
  // missed.
  const double center_dot =
      DotContiguous(centers_.row(node_id), p.data(), centers_.dim());
  double cos_ang = center_dot / p_norm;
  cos_ang = cos_ang < -1.0 ? -1.0 : (cos_ang > 1.0 ? 1.0 : cos_ang);
  double bound;
  if (cos_ang >= node.cos_half) {
    bound = p_norm;
  } else {
    const double sin_ang = std::sqrt(1.0 - cos_ang * cos_ang);
    bound = p_norm * (cos_ang * node.cos_half + sin_ang * node.sin_half);
  }
  bound += 1e-9 * (1.0 + p_norm);
  if (bound < node.min_tau) return;
  if (node.is_leaf()) {
    // Contiguous leaf range: one blocked kernel call per chunk, then exact
    // per-utility threshold checks.
    double scores[kLeafChunk];
    for (int off = 0; off < node.count; off += kLeafChunk) {
      const int chunk = std::min(kLeafChunk, node.count - off);
      ScoreBlock(perm_utilities_.row(node.first + off),
                 perm_utilities_.stride(), perm_utilities_.dim(),
                 static_cast<size_t>(chunk), p.data(), scores);
      for (int i = 0; i < chunk; ++i) {
        const int pos = node.first + off + i;
        if (scores[i] >= perm_thresholds_[pos]) out->push_back(perm_[pos]);
      }
    }
    return;
  }
  Collect(node.left, p, p_norm, out);
  Collect(node.right, p, p_norm, out);
}

std::vector<int> ConeTree::FindReached(const Point& p) const {
  std::vector<int> out;
  if (root_ < 0) return out;
  double p_norm = Norm(p);
  if (p_norm == 0.0) {
    // The zero point only reaches utilities with tau <= 0.
    for (size_t i = 0; i < utilities_.size(); ++i) {
      if (thresholds_[i] <= 0.0) out.push_back(static_cast<int>(i));
    }
    return out;
  }
  Collect(root_, p, p_norm, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> ConeTree::FindReachedBruteForce(const Point& p) const {
  std::vector<int> out;
  for (size_t i = 0; i < utilities_.size(); ++i) {
    if (Dot(utilities_[i], p) >= thresholds_[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace fdrms
