#include "index/conetree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace fdrms {

ConeTree::ConeTree(const std::vector<Point>& utilities, int leaf_size)
    : utilities_(utilities), thresholds_(utilities.size(), 0.0),
      leaf_of_(utilities.size(), -1) {
  FDRMS_CHECK(leaf_size >= 2);
  if (utilities_.empty()) return;
  std::vector<int> indices(utilities_.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  // leaf_size captured via member through Build's closure over this param.
  leaf_size_build_ = leaf_size;
  root_ = Build(&indices, 0, static_cast<int>(indices.size()), -1);
}

int ConeTree::Build(std::vector<int>* indices, int lo, int hi, int parent) {
  Node node;
  node.parent = parent;
  // Center: normalized mean direction of the covered utilities.
  const int dim = static_cast<int>(utilities_[(*indices)[lo]].size());
  node.center.assign(dim, 0.0);
  for (int i = lo; i < hi; ++i) {
    const Point& u = utilities_[(*indices)[i]];
    for (int j = 0; j < dim; ++j) node.center[j] += u[j];
  }
  if (Norm(node.center) < 1e-12) {
    // Degenerate (cannot happen for nonnegative orthant vectors, but keep
    // the structure safe): fall back to the first utility.
    node.center = utilities_[(*indices)[lo]];
  }
  Normalize(&node.center);
  node.half_angle = 0.0;
  for (int i = lo; i < hi; ++i) {
    node.half_angle =
        std::max(node.half_angle, Angle(node.center, utilities_[(*indices)[i]]));
  }
  node.min_tau = 0.0;
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  if (hi - lo <= leaf_size_build_) {
    nodes_[node_id].utility_indices.assign(indices->begin() + lo,
                                           indices->begin() + hi);
    for (int i = lo; i < hi; ++i) leaf_of_[(*indices)[i]] = node_id;
    return node_id;
  }
  // Angular 2-means-style split: pivot a = farthest from first element,
  // pivot b = farthest from a; assign each utility to the closer pivot.
  auto farthest_from = [&](const Point& ref) {
    int best = lo;
    double best_angle = -1.0;
    for (int i = lo; i < hi; ++i) {
      double ang = Angle(ref, utilities_[(*indices)[i]]);
      if (ang > best_angle) {
        best_angle = ang;
        best = i;
      }
    }
    return best;
  };
  int ia = farthest_from(utilities_[(*indices)[lo]]);
  int ib = farthest_from(utilities_[(*indices)[ia]]);
  Point a = utilities_[(*indices)[ia]];
  Point b = utilities_[(*indices)[ib]];
  auto mid = std::partition(indices->begin() + lo, indices->begin() + hi,
                            [&](int idx) {
                              const Point& u = utilities_[idx];
                              return Dot(u, a) >= Dot(u, b);
                            });
  int split = static_cast<int>(mid - indices->begin());
  if (split == lo || split == hi) split = (lo + hi) / 2;  // duplicate vectors
  int left = Build(indices, lo, split, node_id);
  int right = Build(indices, split, hi, node_id);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void ConeTree::SetThreshold(int utility_index, double tau) {
  FDRMS_DCHECK(utility_index >= 0 &&
               utility_index < static_cast<int>(utilities_.size()));
  thresholds_[utility_index] = tau;
  int node_id = leaf_of_[utility_index];
  while (node_id >= 0) {
    Node& node = nodes_[node_id];
    double new_min;
    if (node.is_leaf()) {
      new_min = std::numeric_limits<double>::infinity();
      for (int u : node.utility_indices) {
        new_min = std::min(new_min, thresholds_[u]);
      }
    } else {
      new_min = std::min(nodes_[node.left].min_tau, nodes_[node.right].min_tau);
    }
    if (new_min == node.min_tau && node_id != leaf_of_[utility_index]) break;
    node.min_tau = new_min;
    node_id = node.parent;
  }
}

void ConeTree::Collect(int node_id, const Point& p, double p_norm,
                       std::vector<int>* out) const {
  const Node& node = nodes_[node_id];
  // Upper bound of <u, p> over the cone. The acos/cos round trip can lose
  // a few ulps, so pad the bound before pruning: a tuple scoring exactly
  // tau must never be missed.
  double ang = Angle(node.center, p);
  double gap = std::max(0.0, ang - node.half_angle);
  double bound = p_norm * std::cos(gap) + 1e-9 * (1.0 + p_norm);
  if (bound < node.min_tau) return;
  if (node.is_leaf()) {
    for (int u : node.utility_indices) {
      if (Dot(utilities_[u], p) >= thresholds_[u]) out->push_back(u);
    }
    return;
  }
  Collect(node.left, p, p_norm, out);
  Collect(node.right, p, p_norm, out);
}

std::vector<int> ConeTree::FindReached(const Point& p) const {
  std::vector<int> out;
  if (root_ < 0) return out;
  double p_norm = Norm(p);
  if (p_norm == 0.0) {
    // The zero point only reaches utilities with tau <= 0.
    for (size_t i = 0; i < utilities_.size(); ++i) {
      if (thresholds_[i] <= 0.0) out.push_back(static_cast<int>(i));
    }
    return out;
  }
  Collect(root_, p, p_norm, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> ConeTree::FindReachedBruteForce(const Point& p) const {
  std::vector<int> out;
  for (size_t i = 0; i < utilities_.size(); ++i) {
    if (Dot(utilities_[i], p) >= thresholds_[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace fdrms
