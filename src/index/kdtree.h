#ifndef FDRMS_INDEX_KDTREE_H_
#define FDRMS_INDEX_KDTREE_H_

/// \file kdtree.h
/// Dynamic kd-tree over database tuples — the tuple index "TI" of the
/// paper's dual-tree (Section III-C).
///
/// The paper maps top-k linear-scoring queries to kNN queries in R^{d+1};
/// because every utility vector lies in the nonnegative orthant, an
/// axis-aligned bounding box gives the exact branch-and-bound bound
/// max_{p in box} <u, p> = <u, box.max>, so this tree runs the same
/// best-first search directly in the original space (see DESIGN.md).
///
/// Dynamism: inserts append to a linearly scanned buffer, deletes tombstone
/// their slot; the tree is rebuilt when either exceeds a fraction of the
/// indexed size (standard amortized-logarithmic strategy).
///
/// Hot-path layout: tuple coordinates live in a slot-indexed ScoreMatrix
/// slab rather than per-slot heap Points, and Rebuild() permutes slots into
/// build order so every leaf owns a contiguous row range [first, first +
/// count). A leaf scan is then one blocked kernel call over consecutive
/// rows, the best-first frontier scores both children's box-max rows with
/// one gather call, and only buffer entries (inserted since the last
/// rebuild, not yet tree-ordered) are scanned scalar. All kernel paths are
/// bit-identical to scalar Dot (see geometry/score_kernel.h), so queries
/// return exactly what the heap-scattered layout returned.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "geometry/point.h"
#include "geometry/score_kernel.h"

namespace fdrms {

/// (score, tuple id) pair returned by queries; sorted by descending score,
/// ties broken by ascending id (the paper's "any consistent rule").
struct ScoredId {
  double score;
  int id;
  bool operator==(const ScoredId& o) const = default;
};

/// Orders results the way top-k lists are reported.
inline bool BetterScore(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Dynamic kd-tree with exact top-k and score-range queries under
/// nonnegative linear utilities.
class KdTree {
 public:
  /// \param dim attribute count d
  /// \param leaf_size max points per leaf before splitting
  explicit KdTree(int dim, int leaf_size = 16);

  /// Adds tuple `id`. Fails with AlreadyExists if `id` is live.
  Status Insert(int id, const Point& p);

  /// Removes tuple `id`. Fails with NotFound if `id` is not live.
  Status Delete(int id);

  /// Number of live tuples.
  int size() const { return live_count_; }
  int dim() const { return dim_; }
  bool Contains(int id) const { return slot_of_.count(id) > 0; }

  /// Copy of a live tuple's attributes.
  Point GetPoint(int id) const;

  /// Borrowed, allocation-free view of a live tuple's attributes — the
  /// hot-path variant of GetPoint. Invalidated by the next Insert/Delete/
  /// Rebuild (the point slab may reallocate or be permuted), so callers
  /// must not hold one across mutations; debug builds stamp each ref with
  /// the tree's generation and DCHECK-fail on any stale access instead of
  /// reading through a dangling row pointer.
  class PointRef {
   public:
    const double* data() const {
      CheckFresh();
      return tree_->points_.row(row_);
    }
    double operator[](int k) const { return data()[k]; }
    int dim() const { return tree_->dim_; }

   private:
    friend class KdTree;
    PointRef(const KdTree* tree, int row, uint64_t gen)
        : tree_(tree), row_(row), gen_(gen) {}
    void CheckFresh() const {
#ifndef NDEBUG
      FDRMS_CHECK(gen_ == tree_->generation_)
          << "stale KdTree::PointRef: the tree mutated since this ref was "
             "acquired; re-acquire after Insert/Delete/Rebuild";
#endif
      (void)gen_;
    }

    const KdTree* tree_;
    int row_;
    uint64_t gen_;
  };

  PointRef GetPointRef(int id) const;

  /// Exact top-k under utility `u` (fewer if size() < k), best first.
  std::vector<ScoredId> TopK(const Point& u, int k) const;

  /// All live tuples with <u, p> >= threshold, best first.
  std::vector<ScoredId> ScoreRange(const Point& u, double threshold) const;

  /// Batch scores: out[j] = <u, point(ids[j])> via the dispatched gather
  /// kernel over the point slab (bit-identical to per-id Dot). Every id
  /// must be live. `u` points at dim() contiguous doubles.
  void ScoreIds(const double* u, const std::vector<int>& ids,
                double* out) const;

  /// Applies `fn(id, point)` to every live tuple (no particular order).
  /// The Point reference is a scratch reused across iterations — copy it
  /// if it must outlive the callback.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    Point scratch(static_cast<size_t>(dim_));
    for (size_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      const double* r = points_.row(static_cast<int>(s));
      for (int k = 0; k < dim_; ++k) scratch[static_cast<size_t>(k)] = r[k];
      fn(slots_[s].id, static_cast<const Point&>(scratch));
    }
  }

  /// Forces a rebuild now (also exposed for benchmarks).
  void Rebuild();

 private:
  struct Slot {
    int id;
    bool alive;
  };
  struct Node {
    int left = -1;
    int right = -1;
    // Leaf payload: the contiguous slot/row range [first, first + count).
    // Internal nodes keep count == 0.
    int first = 0;
    int count = 0;
    bool is_leaf() const { return left < 0; }
  };

  int BuildNode(std::vector<int>* order, int lo, int hi);
  void MaybeRebuild();
  /// <u, box_max(node)> — exact bound since u >= 0.
  double NodeUpperBound(int node_id, const Point& u) const;
  void CollectRange(int node_id, const Point& u, double threshold,
                    std::vector<double>* leaf_scores,
                    std::vector<ScoredId>* out) const;

  int dim_;
  int leaf_size_;
  std::vector<Slot> slots_;
  ScoreMatrix points_;  // slot-indexed coordinate rows (slot s = row s)
  std::unordered_map<int, int> slot_of_;  // id -> slot index
  std::vector<Node> nodes_;
  ScoreMatrix boxmax_;  // node-indexed box-max rows (node n = row n)
  int root_ = -1;
  int indexed_count_ = 0;       // live slots covered by the tree
  std::vector<int> buffer_;     // slot indices inserted since last rebuild
  int dead_in_tree_ = 0;        // tombstoned slots still referenced by tree
  int live_count_ = 0;
  uint64_t generation_ = 0;     // bumped by every mutation (PointRef guard)
};

}  // namespace fdrms

#endif  // FDRMS_INDEX_KDTREE_H_
