#ifndef FDRMS_INDEX_KDTREE_H_
#define FDRMS_INDEX_KDTREE_H_

/// \file kdtree.h
/// Dynamic kd-tree over database tuples — the tuple index "TI" of the
/// paper's dual-tree (Section III-C).
///
/// The paper maps top-k linear-scoring queries to kNN queries in R^{d+1};
/// because every utility vector lies in the nonnegative orthant, an
/// axis-aligned bounding box gives the exact branch-and-bound bound
/// max_{p in box} <u, p> = <u, box.max>, so this tree runs the same
/// best-first search directly in the original space (see DESIGN.md).
///
/// Dynamism: inserts append to a linearly scanned buffer, deletes tombstone
/// their slot; the tree is rebuilt when either exceeds a fraction of the
/// indexed size (standard amortized-logarithmic strategy).

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"

namespace fdrms {

/// (score, tuple id) pair returned by queries; sorted by descending score,
/// ties broken by ascending id (the paper's "any consistent rule").
struct ScoredId {
  double score;
  int id;
  bool operator==(const ScoredId& o) const = default;
};

/// Orders results the way top-k lists are reported.
inline bool BetterScore(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Dynamic kd-tree with exact top-k and score-range queries under
/// nonnegative linear utilities.
class KdTree {
 public:
  /// \param dim attribute count d
  /// \param leaf_size max points per leaf before splitting
  explicit KdTree(int dim, int leaf_size = 16);

  /// Adds tuple `id`. Fails with AlreadyExists if `id` is live.
  Status Insert(int id, const Point& p);

  /// Removes tuple `id`. Fails with NotFound if `id` is not live.
  Status Delete(int id);

  /// Number of live tuples.
  int size() const { return live_count_; }
  int dim() const { return dim_; }
  bool Contains(int id) const { return slot_of_.count(id) > 0; }

  /// Copy of a live tuple's attributes.
  Point GetPoint(int id) const;

  /// Borrowed view of a live tuple's attributes — the hot-path variant of
  /// GetPoint (no allocation). Invalidated by the next Insert/Delete/
  /// Rebuild, so callers must not hold it across mutations.
  const Point& GetPointRef(int id) const;

  /// Exact top-k under utility `u` (fewer if size() < k), best first.
  std::vector<ScoredId> TopK(const Point& u, int k) const;

  /// All live tuples with <u, p> >= threshold, best first.
  std::vector<ScoredId> ScoreRange(const Point& u, double threshold) const;

  /// Applies `fn(id, point)` to every live tuple (no particular order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].alive) fn(slots_[s].id, slots_[s].point);
    }
  }

  /// Forces a rebuild now (also exposed for benchmarks).
  void Rebuild();

 private:
  struct Slot {
    int id;
    Point point;
    bool alive;
  };
  struct Node {
    // Bounding box over the subtree's points.
    Point box_min;
    Point box_max;
    int left = -1;
    int right = -1;
    // Leaf payload: indices into slots_. Internal nodes keep it empty.
    std::vector<int> slot_indices;
    bool is_leaf() const { return left < 0; }
  };

  int BuildNode(std::vector<int>* indices, int lo, int hi);
  void MaybeRebuild();
  double BoxUpperBound(const Node& node, const Point& u) const;
  void CollectRange(int node_id, const Point& u, double threshold,
                    std::vector<ScoredId>* out) const;

  int dim_;
  int leaf_size_;
  std::vector<Slot> slots_;
  std::unordered_map<int, int> slot_of_;  // id -> slot index
  std::vector<Node> nodes_;
  int root_ = -1;
  int indexed_count_ = 0;       // live slots covered by the tree
  std::vector<int> buffer_;     // slot indices inserted since last rebuild
  int dead_in_tree_ = 0;        // tombstoned slots still referenced by tree
  int live_count_ = 0;
};

}  // namespace fdrms

#endif  // FDRMS_INDEX_KDTREE_H_
