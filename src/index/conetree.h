#ifndef FDRMS_INDEX_CONETREE_H_
#define FDRMS_INDEX_CONETREE_H_

/// \file conetree.h
/// Cone tree over the sampled utility vectors — the utility index "UI" of
/// the paper's dual-tree, after Ram & Gray's angular binary space
/// partitioning (KDD 2012).
///
/// The structure answers the reverse question the top-k maintainer asks on
/// every tuple insertion: "which utility vectors u have <u, p> >= tau(u)?"
/// where tau(u) = (1 - eps) * omega_k(u) is that utility's current
/// approximate-top-k admission threshold. Each node covers a cone (unit
/// center + half angle) and stores the minimum tau in its subtree; a node
/// is pruned when even the best-aligned utility in the cone cannot reach
/// the smallest threshold under it:
///   max_{u in cone} <u, p> = ||p|| * cos(max(0, angle(center, p) - half)).
///
/// Hot-path layout: the build permutation places every leaf's utilities in
/// a contiguous range, and the permuted utility matrix, the per-utility
/// thresholds, and the node centers all live in contiguous slabs
/// (geometry/score_kernel.h), so a leaf scan is one blocked kernel call.
/// The traversal bound is evaluated trig-free: each node precomputes
/// cos/sin of its half angle, and cos(angle - half) expands through the
/// angle-difference identity from the center dot — no acos/cos per node.
///
/// Utility vectors are fixed at construction (FD-RMS samples all M up
/// front); only the thresholds change over time.

#include <vector>

#include "geometry/point.h"
#include "geometry/score_kernel.h"

namespace fdrms {

/// Cone tree with mutable per-utility thresholds.
class ConeTree {
 public:
  /// Builds over `utilities` (unit vectors). All thresholds start at 0,
  /// i.e. every utility matches every nonnegative point until raised.
  explicit ConeTree(const std::vector<Point>& utilities, int leaf_size = 8);

  int size() const { return static_cast<int>(utilities_.size()); }

  /// Updates tau(utility_index) and repairs subtree minima along its path.
  void SetThreshold(int utility_index, double tau);

  double GetThreshold(int utility_index) const {
    return thresholds_[utility_index];
  }

  /// Indices of all utilities with <u, p> >= tau(u), ascending. `p` need
  /// not be normalized.
  std::vector<int> FindReached(const Point& p) const;

  /// Brute-force reference of FindReached (for tests/benchmarks); scalar
  /// Dot on purpose — this is the oracle the kernel path is checked
  /// against.
  std::vector<int> FindReachedBruteForce(const Point& p) const;

 private:
  struct Node {
    double cos_half;    // cos/sin of the cone's half angle
    double sin_half;
    double min_tau;     // min threshold in subtree
    int left = -1;
    int right = -1;
    int parent = -1;
    // Leaf payload: a contiguous range [first, first + count) of the build
    // permutation (internal nodes keep count == 0).
    int first = 0;
    int count = 0;
    bool is_leaf() const { return left < 0; }
  };

  int Build(std::vector<int>* indices, int lo, int hi, int parent);
  void Collect(int node_id, const Point& p, double p_norm,
               std::vector<int>* out) const;

  std::vector<Point> utilities_;  ///< original order (reference/API)
  int leaf_size_build_ = 8;
  std::vector<double> thresholds_;       ///< by original utility index
  std::vector<int> leaf_of_;             ///< original index -> leaf node id
  std::vector<Node> nodes_;
  int root_ = -1;

  // Permuted hot-path slabs, all indexed by build-permutation position.
  std::vector<int> perm_;                ///< position -> original index
  std::vector<int> pos_in_perm_;         ///< original index -> position
  std::vector<double> perm_thresholds_;  ///< thresholds in permuted order
  ScoreMatrix perm_utilities_;           ///< utility rows in permuted order
  ScoreMatrix centers_;                  ///< node centers, row = node id
  std::vector<Point> build_centers_;     ///< construction-time staging only
};

}  // namespace fdrms

#endif  // FDRMS_INDEX_CONETREE_H_
