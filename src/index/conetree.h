#ifndef FDRMS_INDEX_CONETREE_H_
#define FDRMS_INDEX_CONETREE_H_

/// \file conetree.h
/// Cone tree over the sampled utility vectors — the utility index "UI" of
/// the paper's dual-tree, after Ram & Gray's angular binary space
/// partitioning (KDD 2012).
///
/// The structure answers the reverse question the top-k maintainer asks on
/// every tuple insertion: "which utility vectors u have <u, p> >= tau(u)?"
/// where tau(u) = (1 - eps) * omega_k(u) is that utility's current
/// approximate-top-k admission threshold. Each node covers a cone (unit
/// center + half angle) and stores the minimum tau in its subtree; a node
/// is pruned when even the best-aligned utility in the cone cannot reach
/// the smallest threshold under it:
///   max_{u in cone} <u, p> = ||p|| * cos(max(0, angle(center, p) - half)).
///
/// Utility vectors are fixed at construction (FD-RMS samples all M up
/// front); only the thresholds change over time.

#include <vector>

#include "geometry/point.h"

namespace fdrms {

/// Cone tree with mutable per-utility thresholds.
class ConeTree {
 public:
  /// Builds over `utilities` (unit vectors). All thresholds start at 0,
  /// i.e. every utility matches every nonnegative point until raised.
  explicit ConeTree(const std::vector<Point>& utilities, int leaf_size = 8);

  int size() const { return static_cast<int>(utilities_.size()); }

  /// Updates tau(utility_index) and repairs subtree minima along its path.
  void SetThreshold(int utility_index, double tau);

  double GetThreshold(int utility_index) const {
    return thresholds_[utility_index];
  }

  /// Indices of all utilities with <u, p> >= tau(u). `p` need not be
  /// normalized.
  std::vector<int> FindReached(const Point& p) const;

  /// Brute-force reference of FindReached (for tests/benchmarks).
  std::vector<int> FindReachedBruteForce(const Point& p) const;

 private:
  struct Node {
    Point center;       // unit vector
    double half_angle;  // radians
    double min_tau;     // min threshold in subtree
    int left = -1;
    int right = -1;
    int parent = -1;
    std::vector<int> utility_indices;  // leaf payload
    bool is_leaf() const { return left < 0; }
  };

  int Build(std::vector<int>* indices, int lo, int hi, int parent);
  void Collect(int node_id, const Point& p, double p_norm,
               std::vector<int>* out) const;

  std::vector<Point> utilities_;
  int leaf_size_build_ = 8;
  std::vector<double> thresholds_;
  std::vector<int> leaf_of_;  // utility index -> leaf node id
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace fdrms

#endif  // FDRMS_INDEX_CONETREE_H_
