#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geometry/score_kernel.h"

namespace fdrms {

KdTree::KdTree(int dim, int leaf_size) : dim_(dim), leaf_size_(leaf_size) {
  FDRMS_CHECK(dim > 0);
  FDRMS_CHECK(leaf_size >= 2);
}

Status KdTree::Insert(int id, const Point& p) {
  if (static_cast<int>(p.size()) != dim_) {
    return Status::Invalid("point dimension mismatch");
  }
  if (slot_of_.count(id) > 0) {
    return Status::AlreadyExists("tuple id " + std::to_string(id) +
                                 " already indexed");
  }
  slots_.push_back(Slot{id, p, true});
  int slot = static_cast<int>(slots_.size()) - 1;
  slot_of_[id] = slot;
  buffer_.push_back(slot);
  ++live_count_;
  MaybeRebuild();
  return Status::OK();
}

Status KdTree::Delete(int id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("tuple id " + std::to_string(id) + " not indexed");
  }
  int slot = it->second;
  slots_[slot].alive = false;
  slot_of_.erase(it);
  --live_count_;
  // Buffer slots are scanned with a liveness check, so only tree-referenced
  // tombstones count toward rebuild pressure. We cannot cheaply tell which
  // kind `slot` is; counting all deletions as tree pressure only makes
  // rebuilds slightly more eager.
  ++dead_in_tree_;
  MaybeRebuild();
  return Status::OK();
}

Point KdTree::GetPoint(int id) const { return GetPointRef(id); }

const Point& KdTree::GetPointRef(int id) const {
  auto it = slot_of_.find(id);
  FDRMS_CHECK(it != slot_of_.end()) << "GetPoint on missing id " << id;
  return slots_[it->second].point;
}

void KdTree::MaybeRebuild() {
  int total = indexed_count_ + static_cast<int>(buffer_.size());
  bool buffer_heavy = static_cast<int>(buffer_.size()) > std::max(64, total / 4);
  bool tombstone_heavy = dead_in_tree_ > std::max(64, total / 2);
  if (buffer_heavy || tombstone_heavy) Rebuild();
}

void KdTree::Rebuild() {
  nodes_.clear();
  buffer_.clear();
  dead_in_tree_ = 0;
  // Compact tombstoned slots away so slot indices stay dense.
  std::vector<Slot> live;
  live.reserve(live_count_);
  for (auto& s : slots_) {
    if (s.alive) live.push_back(std::move(s));
  }
  slots_ = std::move(live);
  slot_of_.clear();
  for (size_t i = 0; i < slots_.size(); ++i) {
    slot_of_[slots_[i].id] = static_cast<int>(i);
  }
  indexed_count_ = static_cast<int>(slots_.size());
  if (slots_.empty()) {
    root_ = -1;
    return;
  }
  std::vector<int> indices(slots_.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  root_ = BuildNode(&indices, 0, static_cast<int>(indices.size()));
}

int KdTree::BuildNode(std::vector<int>* indices, int lo, int hi) {
  Node node;
  node.box_min.assign(dim_, std::numeric_limits<double>::infinity());
  node.box_max.assign(dim_, -std::numeric_limits<double>::infinity());
  for (int i = lo; i < hi; ++i) {
    const Point& p = slots_[(*indices)[i]].point;
    for (int j = 0; j < dim_; ++j) {
      node.box_min[j] = std::min(node.box_min[j], p[j]);
      node.box_max[j] = std::max(node.box_max[j], p[j]);
    }
  }
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  if (hi - lo <= leaf_size_) {
    nodes_[node_id].slot_indices.assign(indices->begin() + lo,
                                        indices->begin() + hi);
    return node_id;
  }
  // Split on the widest dimension at the median.
  int split_dim = 0;
  double best_extent = -1.0;
  for (int j = 0; j < dim_; ++j) {
    double extent = nodes_[node_id].box_max[j] - nodes_[node_id].box_min[j];
    if (extent > best_extent) {
      best_extent = extent;
      split_dim = j;
    }
  }
  int mid = (lo + hi) / 2;
  std::nth_element(indices->begin() + lo, indices->begin() + mid,
                   indices->begin() + hi, [&](int a, int b) {
                     return slots_[a].point[split_dim] <
                            slots_[b].point[split_dim];
                   });
  int left = BuildNode(indices, lo, mid);
  int right = BuildNode(indices, mid, hi);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double KdTree::BoxUpperBound(const Node& node, const Point& u) const {
  // u >= 0, so the box corner box_max maximizes the inner product.
  double s = 0.0;
  for (int j = 0; j < dim_; ++j) s += u[j] * node.box_max[j];
  return s;
}

std::vector<ScoredId> KdTree::TopK(const Point& u, int k) const {
  FDRMS_CHECK(static_cast<int>(u.size()) == dim_);
  FDRMS_CHECK(k >= 1);
  // Bounded "worst at top" heap of the best k seen so far.
  auto worse = [](const ScoredId& a, const ScoredId& b) {
    return BetterScore(a, b);
  };
  std::priority_queue<ScoredId, std::vector<ScoredId>, decltype(worse)> best(
      worse);
  auto offer = [&](const Slot& s) {
    if (!s.alive) return;
    ScoredId cand{DotContiguous(u.data(), s.point.data(), dim_), s.id};
    if (static_cast<int>(best.size()) < k) {
      best.push(cand);
    } else if (BetterScore(cand, best.top())) {
      best.pop();
      best.push(cand);
    }
  };
  double kth_bound = -std::numeric_limits<double>::infinity();
  auto current_bound = [&]() {
    return static_cast<int>(best.size()) < k
               ? -std::numeric_limits<double>::infinity()
               : best.top().score;
  };
  // Best-first traversal of the tree.
  if (root_ >= 0) {
    using Pq = std::pair<double, int>;  // (upper bound, node)
    std::priority_queue<Pq> frontier;
    frontier.push({BoxUpperBound(nodes_[root_], u), root_});
    while (!frontier.empty()) {
      auto [bound, node_id] = frontier.top();
      frontier.pop();
      kth_bound = current_bound();
      if (bound < kth_bound) break;  // nothing better remains
      const Node& node = nodes_[node_id];
      if (node.is_leaf()) {
        for (int slot : node.slot_indices) offer(slots_[slot]);
      } else {
        frontier.push({BoxUpperBound(nodes_[node.left], u), node.left});
        frontier.push({BoxUpperBound(nodes_[node.right], u), node.right});
      }
    }
  }
  for (int slot : buffer_) offer(slots_[slot]);
  std::vector<ScoredId> out(best.size());
  for (int i = static_cast<int>(best.size()) - 1; i >= 0; --i) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

void KdTree::CollectRange(int node_id, const Point& u, double threshold,
                          std::vector<ScoredId>* out) const {
  const Node& node = nodes_[node_id];
  if (BoxUpperBound(node, u) < threshold) return;
  if (node.is_leaf()) {
    for (int slot : node.slot_indices) {
      const Slot& s = slots_[slot];
      if (!s.alive) continue;
      double score = DotContiguous(u.data(), s.point.data(), dim_);
      if (score >= threshold) out->push_back({score, s.id});
    }
    return;
  }
  CollectRange(node.left, u, threshold, out);
  CollectRange(node.right, u, threshold, out);
}

std::vector<ScoredId> KdTree::ScoreRange(const Point& u,
                                         double threshold) const {
  FDRMS_CHECK(static_cast<int>(u.size()) == dim_);
  std::vector<ScoredId> out;
  if (root_ >= 0) CollectRange(root_, u, threshold, &out);
  for (int slot : buffer_) {
    const Slot& s = slots_[slot];
    if (!s.alive) continue;
    double score = DotContiguous(u.data(), s.point.data(), dim_);
    if (score >= threshold) out.push_back({score, s.id});
  }
  std::sort(out.begin(), out.end(), BetterScore);
  return out;
}

}  // namespace fdrms
