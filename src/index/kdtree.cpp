#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geometry/score_kernel.h"

namespace fdrms {

KdTree::KdTree(int dim, int leaf_size)
    : dim_(dim), leaf_size_(leaf_size), points_(dim), boxmax_(dim) {
  FDRMS_CHECK(dim > 0);
  FDRMS_CHECK(leaf_size >= 2);
}

Status KdTree::Insert(int id, const Point& p) {
  if (static_cast<int>(p.size()) != dim_) {
    return Status::Invalid("point dimension mismatch");
  }
  if (slot_of_.count(id) > 0) {
    return Status::AlreadyExists("tuple id " + std::to_string(id) +
                                 " already indexed");
  }
  ++generation_;
  const int slot = points_.AppendRow(p);  // may reallocate the slab
  FDRMS_DCHECK(slot == static_cast<int>(slots_.size()));
  slots_.push_back(Slot{id, true});
  slot_of_[id] = slot;
  buffer_.push_back(slot);
  ++live_count_;
  MaybeRebuild();
  return Status::OK();
}

Status KdTree::Delete(int id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("tuple id " + std::to_string(id) + " not indexed");
  }
  ++generation_;
  int slot = it->second;
  slots_[slot].alive = false;
  slot_of_.erase(it);
  --live_count_;
  // Buffer slots are scanned with a liveness check, so only tree-referenced
  // tombstones count toward rebuild pressure. We cannot cheaply tell which
  // kind `slot` is; counting all deletions as tree pressure only makes
  // rebuilds slightly more eager.
  ++dead_in_tree_;
  MaybeRebuild();
  return Status::OK();
}

Point KdTree::GetPoint(int id) const {
  auto it = slot_of_.find(id);
  FDRMS_CHECK(it != slot_of_.end()) << "GetPoint on missing id " << id;
  const double* r = points_.row(it->second);
  return Point(r, r + dim_);
}

KdTree::PointRef KdTree::GetPointRef(int id) const {
  auto it = slot_of_.find(id);
  FDRMS_CHECK(it != slot_of_.end()) << "GetPoint on missing id " << id;
  return PointRef(this, it->second, generation_);
}

void KdTree::ScoreIds(const double* u, const std::vector<int>& ids,
                      double* out) const {
  if (ids.empty()) return;
  std::vector<int> rows(ids.size());
  for (size_t j = 0; j < ids.size(); ++j) {
    auto it = slot_of_.find(ids[j]);
    FDRMS_CHECK(it != slot_of_.end()) << "ScoreIds on missing id " << ids[j];
    rows[j] = it->second;
  }
  ScoreGather(points_.row(0), points_.stride(), dim_, rows.data(), rows.size(),
              u, out);
}

void KdTree::MaybeRebuild() {
  int total = indexed_count_ + static_cast<int>(buffer_.size());
  bool buffer_heavy = static_cast<int>(buffer_.size()) > std::max(64, total / 4);
  bool tombstone_heavy = dead_in_tree_ > std::max(64, total / 2);
  if (buffer_heavy || tombstone_heavy) Rebuild();
}

void KdTree::Rebuild() {
  ++generation_;
  nodes_.clear();
  buffer_.clear();
  dead_in_tree_ = 0;
  boxmax_ = ScoreMatrix(dim_);
  // Compact tombstoned slots away; `order` holds the surviving old slot
  // indices and is permuted in place by the build so that when it returns,
  // position pos belongs to exactly one leaf's [first, first + count).
  std::vector<int> order;
  order.reserve(static_cast<size_t>(live_count_));
  for (size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].alive) order.push_back(static_cast<int>(s));
  }
  if (order.empty()) {
    slots_.clear();
    slot_of_.clear();
    points_ = ScoreMatrix(dim_);
    indexed_count_ = 0;
    root_ = -1;
    return;
  }
  root_ = BuildNode(&order, 0, static_cast<int>(order.size()));
  // Apply the build permutation to the slot array and the point slab so
  // each leaf's rows are physically contiguous.
  ScoreMatrix new_points(dim_);
  new_points.Reserve(static_cast<int>(order.size()));
  std::vector<Slot> new_slots;
  new_slots.reserve(order.size());
  slot_of_.clear();
  for (size_t pos = 0; pos < order.size(); ++pos) {
    new_points.AppendRowUnchecked(points_.row(order[pos]));
    new_slots.push_back(Slot{slots_[static_cast<size_t>(order[pos])].id, true});
    slot_of_[new_slots.back().id] = static_cast<int>(pos);
  }
  points_ = std::move(new_points);
  slots_ = std::move(new_slots);
  indexed_count_ = static_cast<int>(slots_.size());
}

int KdTree::BuildNode(std::vector<int>* order, int lo, int hi) {
  // Bounding box over rows order[lo..hi) of the (pre-permutation) slab.
  std::vector<double> box_min(static_cast<size_t>(dim_),
                              std::numeric_limits<double>::infinity());
  std::vector<double> box_max(static_cast<size_t>(dim_),
                              -std::numeric_limits<double>::infinity());
  for (int i = lo; i < hi; ++i) {
    const double* p = points_.row((*order)[i]);
    for (int j = 0; j < dim_; ++j) {
      const size_t sj = static_cast<size_t>(j);
      box_min[sj] = std::min(box_min[sj], p[j]);
      box_max[sj] = std::max(box_max[sj], p[j]);
    }
  }
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  FDRMS_CHECK(boxmax_.AppendRowUnchecked(box_max.data()) == node_id);
  if (hi - lo <= leaf_size_) {
    nodes_[node_id].first = lo;
    nodes_[node_id].count = hi - lo;
    return node_id;
  }
  // Split on the widest dimension at the median.
  int split_dim = 0;
  double best_extent = -1.0;
  for (int j = 0; j < dim_; ++j) {
    const size_t sj = static_cast<size_t>(j);
    double extent = box_max[sj] - box_min[sj];
    if (extent > best_extent) {
      best_extent = extent;
      split_dim = j;
    }
  }
  int mid = (lo + hi) / 2;
  std::nth_element(order->begin() + lo, order->begin() + mid,
                   order->begin() + hi, [&](int a, int b) {
                     return points_.row(a)[split_dim] <
                            points_.row(b)[split_dim];
                   });
  int left = BuildNode(order, lo, mid);
  int right = BuildNode(order, mid, hi);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double KdTree::NodeUpperBound(int node_id, const Point& u) const {
  // u >= 0, so the box corner box_max maximizes the inner product.
  return DotContiguous(u.data(), boxmax_.row(node_id), dim_);
}

std::vector<ScoredId> KdTree::TopK(const Point& u, int k) const {
  FDRMS_CHECK(static_cast<int>(u.size()) == dim_);
  FDRMS_CHECK(k >= 1);
  // Bounded "worst at top" heap of the best k seen so far.
  auto worse = [](const ScoredId& a, const ScoredId& b) {
    return BetterScore(a, b);
  };
  std::priority_queue<ScoredId, std::vector<ScoredId>, decltype(worse)> best(
      worse);
  auto offer = [&](double score, int id) {
    ScoredId cand{score, id};
    if (static_cast<int>(best.size()) < k) {
      best.push(cand);
    } else if (BetterScore(cand, best.top())) {
      best.pop();
      best.push(cand);
    }
  };
  auto current_bound = [&]() {
    return static_cast<int>(best.size()) < k
               ? -std::numeric_limits<double>::infinity()
               : best.top().score;
  };
  // Best-first traversal of the tree. Leaves stream the blocked kernel
  // over their contiguous row range; frontier expansion scores both
  // children's box-max rows with one gather call.
  if (root_ >= 0) {
    std::vector<double> leaf_scores(static_cast<size_t>(leaf_size_));
    using Pq = std::pair<double, int>;  // (upper bound, node)
    std::priority_queue<Pq> frontier;
    frontier.push({NodeUpperBound(root_, u), root_});
    while (!frontier.empty()) {
      auto [bound, node_id] = frontier.top();
      frontier.pop();
      if (bound < current_bound()) break;  // nothing better remains
      const Node& node = nodes_[node_id];
      if (node.is_leaf()) {
        ScoreBlock(points_.row(node.first), points_.stride(), dim_,
                   static_cast<size_t>(node.count), u.data(),
                   leaf_scores.data());
        for (int i = 0; i < node.count; ++i) {
          const int slot = node.first + i;
          if (slots_[static_cast<size_t>(slot)].alive) {
            offer(leaf_scores[static_cast<size_t>(i)],
                  slots_[static_cast<size_t>(slot)].id);
          }
        }
      } else {
        const int child_idx[2] = {node.left, node.right};
        double child_bound[2];
        ScoreGather(boxmax_.row(0), boxmax_.stride(), dim_, child_idx, 2,
                    u.data(), child_bound);
        frontier.push({child_bound[0], node.left});
        frontier.push({child_bound[1], node.right});
      }
    }
  }
  // Buffer entries are not tree-ordered yet; scan them scalar.
  for (int slot : buffer_) {
    if (slots_[static_cast<size_t>(slot)].alive) {
      offer(DotContiguous(u.data(), points_.row(slot), dim_),
            slots_[static_cast<size_t>(slot)].id);
    }
  }
  std::vector<ScoredId> out(best.size());
  for (int i = static_cast<int>(best.size()) - 1; i >= 0; --i) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

void KdTree::CollectRange(int node_id, const Point& u, double threshold,
                          std::vector<double>* leaf_scores,
                          std::vector<ScoredId>* out) const {
  const Node& node = nodes_[node_id];
  if (NodeUpperBound(node_id, u) < threshold) return;
  if (node.is_leaf()) {
    ScoreBlock(points_.row(node.first), points_.stride(), dim_,
               static_cast<size_t>(node.count), u.data(), leaf_scores->data());
    for (int i = 0; i < node.count; ++i) {
      const int slot = node.first + i;
      const double score = (*leaf_scores)[static_cast<size_t>(i)];
      if (slots_[static_cast<size_t>(slot)].alive && score >= threshold) {
        out->push_back({score, slots_[static_cast<size_t>(slot)].id});
      }
    }
    return;
  }
  CollectRange(node.left, u, threshold, leaf_scores, out);
  CollectRange(node.right, u, threshold, leaf_scores, out);
}

std::vector<ScoredId> KdTree::ScoreRange(const Point& u,
                                         double threshold) const {
  FDRMS_CHECK(static_cast<int>(u.size()) == dim_);
  std::vector<ScoredId> out;
  if (root_ >= 0) {
    std::vector<double> leaf_scores(static_cast<size_t>(leaf_size_));
    CollectRange(root_, u, threshold, &leaf_scores, &out);
  }
  for (int slot : buffer_) {
    if (!slots_[static_cast<size_t>(slot)].alive) continue;
    double score = DotContiguous(u.data(), points_.row(slot), dim_);
    if (score >= threshold) {
      out.push_back({score, slots_[static_cast<size_t>(slot)].id});
    }
  }
  std::sort(out.begin(), out.end(), BetterScore);
  return out;
}

}  // namespace fdrms
