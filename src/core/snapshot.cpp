#include "core/snapshot.h"

#include <algorithm>
#include <iomanip>
#include <string>
#include <vector>

namespace fdrms {

namespace {
constexpr char kMagic[] = "FDRMS-SNAPSHOT-v1";
}  // namespace

Status SaveSnapshot(const FdRms& algo, std::ostream* os) {
  if (os == nullptr) return Status::Invalid("null output stream");
  const FdRmsOptions& opt = algo.options();
  *os << kMagic << "\n";
  // 17 significant decimal digits round-trip IEEE doubles exactly (and,
  // unlike hexfloat, istream extraction can read them back).
  *os << std::setprecision(17);
  *os << algo.dim() << " " << opt.k << " " << opt.r << " " << opt.eps << " "
      << opt.max_utilities << " " << opt.seed << "\n";
  *os << algo.size() << "\n";
  std::vector<std::pair<int, Point>> tuples;
  tuples.reserve(algo.size());
  algo.topk().tree().ForEach([&](int id, const Point& p) {
    tuples.emplace_back(id, p);
  });
  // Stable order so identical states produce identical bytes.
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [id, p] : tuples) {
    *os << id;
    for (double v : p) *os << " " << v;
    *os << "\n";
  }
  if (!os->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<std::unique_ptr<FdRms>> LoadSnapshot(std::istream* is) {
  if (is == nullptr) return Status::Invalid("null input stream");
  std::string magic;
  if (!std::getline(*is, magic) || magic != kMagic) {
    return Status::Invalid("bad snapshot header: '" + magic + "'");
  }
  int dim = 0;
  FdRmsOptions opt;
  *is >> dim >> opt.k >> opt.r >> opt.eps >> opt.max_utilities >> opt.seed;
  if (!is->good() || dim <= 0 || opt.k < 1 || opt.r < 1 ||
      opt.eps < 0.0 || opt.eps >= 1.0 || opt.max_utilities < 1) {
    return Status::Invalid("bad snapshot parameter block");
  }
  int count = 0;
  *is >> count;
  if (!is->good() || count < 0) {
    return Status::Invalid("bad snapshot tuple count");
  }
  std::vector<std::pair<int, Point>> tuples;
  tuples.reserve(count);
  for (int i = 0; i < count; ++i) {
    int id = 0;
    Point p(dim);
    *is >> id;
    for (int j = 0; j < dim; ++j) *is >> p[j];
    if (is->fail()) {
      return Status::Invalid("truncated snapshot at tuple " +
                             std::to_string(i));
    }
    tuples.emplace_back(id, std::move(p));
  }
  auto algo = std::make_unique<FdRms>(dim, opt);
  FDRMS_RETURN_NOT_OK(algo->Initialize(tuples));
  return algo;
}

}  // namespace fdrms
