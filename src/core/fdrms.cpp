#include "core/fdrms.h"

#include <algorithm>

#include "common/check.h"
#include "geometry/sampling.h"

namespace fdrms {

namespace {

std::vector<Point> MakeUtilities(int dim, const FdRmsOptions& options) {
  Rng rng(options.seed);
  int m_count = std::max(options.max_utilities, std::max(options.r, dim));
  return SampleUtilityVectors(m_count, dim, &rng);
}

}  // namespace

FdRms::FdRms(int dim, const FdRmsOptions& options)
    : dim_(dim),
      options_(options),
      topk_(dim, options.k, options.eps, MakeUtilities(dim, options)),
      cover_(topk_.num_utilities()) {
  FDRMS_CHECK(options_.r >= 1);
  FDRMS_CHECK(options_.k >= 1);
  // M may have been raised to fit r and the basis prefix.
  options_.max_utilities = topk_.num_utilities();
}

Status FdRms::Initialize(const std::vector<std::pair<int, Point>>& tuples) {
  if (initialized_) {
    return Status::FailedPrecondition("Initialize called twice");
  }
  // Bulk-load the dual-tree; deltas are not needed yet (the set system is
  // built from the finished Φ sets below).
  for (const auto& [id, p] : tuples) {
    FDRMS_RETURN_NOT_OK(topk_.Insert(id, p, /*deltas=*/nullptr));
  }
  // Incidence for all M utilities: S(p) = { u_i : p ∈ Φ_{k,ε}(u_i, P_0) }.
  // DynamicSetCover owns the system; memberships for i >= m simply sit
  // outside the universe until UPDATEM needs them.
  const int M = topk_.num_utilities();
  for (int i = 0; i < M; ++i) {
    for (int id : topk_.ApproxTopK(i)) {
      cover_.AddMembership(i, id);
    }
  }
  // Binary search m ∈ [r, M] for greedy cover size r (Algorithm 2 Lines
  // 3-14). Cover size is (approximately) monotone in m; we keep the best
  // m whose cover fits the budget.
  // The paper assumes r >= d (Definition 1) and floors the sample size at
  // r; we allow r < d by letting the universe shrink below the basis prefix
  // (quality degrades gracefully, the budget always holds).
  const int r = options_.r;
  int lo = std::min(r, M);
  int hi = M;
  int best_m = lo;
  auto greedy_at = [&](int m) {
    std::vector<int> universe(m);
    for (int i = 0; i < m; ++i) universe[i] = i;
    cover_.InitializeGreedy(universe);
    return cover_.CoverSize();
  };
  int size_at_best = greedy_at(lo);
  if (size_at_best <= r) {
    int lo_search = lo + 1;
    while (lo_search <= hi) {
      int mid = lo_search + (hi - lo_search) / 2;
      int size = greedy_at(mid);
      if (size <= r) {
        best_m = mid;
        size_at_best = size;
        if (size == r) break;
        lo_search = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
  }
  // Rebuild the solution at the chosen m (the last greedy run may have
  // probed a different prefix).
  greedy_at(best_m);
  m_ = best_m;
  initialized_ = true;
  // The greedy probe can land under r; grow the universe like Algorithm 4
  // to use the full budget when possible.
  if (cover_.CoverSize() != r) UpdateM();
  return Status::OK();
}

void FdRms::ApplyDeltas(const std::vector<TopKDelta>& deltas) {
  // Additions first: a reassignment triggered by a removal can then land on
  // a set that just gained the element.
  for (const TopKDelta& delta : deltas) {
    if (delta.added) cover_.AddMembership(delta.utility, delta.tuple_id);
  }
  for (const TopKDelta& delta : deltas) {
    if (!delta.added) cover_.RemoveMembership(delta.utility, delta.tuple_id);
  }
}

Status FdRms::Insert(int id, const Point& p) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  std::vector<TopKDelta> deltas;
  FDRMS_RETURN_NOT_OK(topk_.Insert(id, p, &deltas));
  ApplyDeltas(deltas);
  if (cover_.CoverSize() != options_.r) UpdateM();
  return Status::OK();
}

Status FdRms::Delete(int id) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  std::vector<TopKDelta> deltas;
  FDRMS_RETURN_NOT_OK(topk_.Delete(id, &deltas));
  ApplyDeltas(deltas);
  // Purge the (now empty) set of the deleted tuple (Algorithm 3 Line 10).
  cover_.RemoveSet(id);
  if (cover_.CoverSize() != options_.r) UpdateM();
  return Status::OK();
}

Status FdRms::Update(int id, const Point& p) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (!topk_.tree().Contains(id)) {
    return Status::NotFound("tuple id " + std::to_string(id) + " not present");
  }
  FDRMS_RETURN_NOT_OK(Delete(id));
  Status reinsert = Insert(id, p);
  if (!reinsert.ok()) {
    // The deletion stands (documented contract); say so in the error.
    return Status::Invalid("update removed tuple " + std::to_string(id) +
                           " but could not re-insert it: " +
                           reinsert.message());
  }
  return Status::OK();
}

Status FdRms::ApplyBatch(const std::vector<BatchOp>& ops) {
  size_t num_applied = 0;
  return ApplyBatch(ops, &num_applied);
}

Status FdRms::ApplyBatch(const std::vector<BatchOp>& ops, size_t* num_applied) {
  return ApplyBatch(ops, 0, num_applied);
}

Status FdRms::ApplyBatch(const std::vector<BatchOp>& ops, size_t begin,
                         size_t* num_applied) {
  for (size_t i = begin; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    Status st;
    switch (op.kind) {
      case BatchOp::Kind::kInsert:
        st = Insert(op.id, op.point);
        break;
      case BatchOp::Kind::kDelete:
        st = Delete(op.id);
        break;
      case BatchOp::Kind::kUpdate:
        st = Update(op.id, op.point);
        break;
    }
    if (!st.ok()) {
      *num_applied = i - begin;
      return st;
    }
  }
  *num_applied = ops.size() - begin;
  return Status::OK();
}

std::vector<FdRms::ResultEntry> FdRms::ResolvedResult() const {
  std::vector<int> ids = cover_.CoverSetIds();
  std::vector<ResultEntry> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back({id, topk_.tree().GetPoint(id)});
  return out;
}

void FdRms::UpdateM() {
  const int r = options_.r;
  const int M = topk_.num_utilities();
  const int m_floor = std::max(1, std::min(r, M));
  if (cover_.CoverSize() < r) {
    while (m_ < M && cover_.CoverSize() < r) {
      cover_.AddToUniverse(m_);
      ++m_;
    }
  } else if (cover_.CoverSize() > r) {
    while (cover_.CoverSize() > r && m_ > m_floor) {
      --m_;
      cover_.RemoveFromUniverse(m_);
    }
  }
}

Status FdRms::Validate() const {
  FDRMS_RETURN_NOT_OK(topk_.ValidateAgainstBruteForce());
  FDRMS_RETURN_NOT_OK(cover_.CheckInvariants());
  // Cross-check: the set system's membership must mirror the Φ sets for
  // every utility (universe or not), and every universe utility with a
  // nonempty Φ set must be covered by Q_t.
  const int M = topk_.num_utilities();
  for (int i = 0; i < M; ++i) {
    const auto& phi_set = topk_.ApproxTopK(i);
    const auto& sets = cover_.system().SetsContaining(i);
    if (phi_set.size() != sets.size()) {
      return Status::Internal("set system incidence out of sync at utility " +
                              std::to_string(i));
    }
    for (int id : phi_set) {
      if (sets.count(id) == 0) {
        return Status::Internal("membership missing for utility " +
                                std::to_string(i));
      }
    }
    if (i < m_ && !phi_set.empty() &&
        cover_.AssignmentOf(i) == DynamicSetCover::kUnassigned) {
      return Status::Internal("universe utility uncovered: " +
                              std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace fdrms
