#ifndef FDRMS_CORE_SNAPSHOT_H_
#define FDRMS_CORE_SNAPSHOT_H_

/// \file snapshot.h
/// Persistence for a running FD-RMS instance.
///
/// A long-lived dynamic index needs to survive process restarts without
/// replaying its whole update history. SaveSnapshot writes the logical
/// state — options (including the utility-sampling seed), the current
/// sample size m, and every live tuple — in a versioned, byte-exact text
/// format. LoadSnapshot rebuilds the dual-tree and the stable set-cover
/// solution deterministically from that state.
///
/// Note: the set-cover solution itself is *recomputed* (greedy + stabilize)
/// on load rather than serialized. Any stable solution is a valid result
/// carrier (Theorem 1), so the loaded instance is equivalent in guarantees,
/// though its Q_t may be a different same-quality representative set than
/// the one in memory at save time.

#include <iostream>
#include <memory>

#include "common/result.h"
#include "core/fdrms.h"

namespace fdrms {

/// Writes `algo`'s logical state to `os`. Fails on stream errors.
Status SaveSnapshot(const FdRms& algo, std::ostream* os);

/// Reconstructs an instance from a snapshot produced by SaveSnapshot.
Result<std::unique_ptr<FdRms>> LoadSnapshot(std::istream* is);

}  // namespace fdrms

#endif  // FDRMS_CORE_SNAPSHOT_H_
