#ifndef FDRMS_CORE_FDRMS_H_
#define FDRMS_CORE_FDRMS_H_

/// \file fdrms.h
/// FD-RMS — the paper's fully dynamic algorithm for k-regret minimizing
/// sets (Section III-B, Algorithms 2-4).
///
/// Usage:
///   FdRmsOptions opt;
///   opt.k = 1; opt.r = 50; opt.eps = 0.01; opt.max_utilities = 2048;
///   FdRms algo(dim, opt);
///   algo.Initialize(initial_tuples);           // Algorithm 2
///   algo.Insert(id, point); algo.Delete(id);   // Algorithm 3 (+4)
///   std::vector<int> q = algo.Result();        // current Q_t
///
/// The maintained Q_t corresponds to a *stable* set-cover solution over the
/// ε-approximate top-k sets of m <= M sampled utility vectors; m is adapted
/// online (UPDATEM) so |Q_t| tracks the budget r.

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/point.h"
#include "setcover/dynamic_set_cover.h"
#include "topk/topk_maintainer.h"

namespace fdrms {

/// Tuning parameters of FD-RMS (Section III-C).
struct FdRmsOptions {
  int k = 1;                ///< rank parameter of RMS(k, r)
  int r = 10;               ///< result size budget (r >= d recommended)
  double eps = 0.01;        ///< approximation factor of top-k results
  int max_utilities = 1024; ///< M, the upper bound of the sample size m
  uint64_t seed = 42;       ///< utility sampling seed
};

/// The fully dynamic k-RMS algorithm.
class FdRms {
 public:
  /// Samples the M utility vectors (basis prefix + uniform, Algorithm 2
  /// Line 1) but indexes no tuples yet.
  FdRms(int dim, const FdRmsOptions& options);

  /// Algorithm 2: bulk-loads P_0, then binary-searches the sample size
  /// m ∈ [r, M] so the greedy cover has size (as close as possible to) r.
  /// Call exactly once, before any Insert/Delete.
  Status Initialize(const std::vector<std::pair<int, Point>>& tuples);

  /// Algorithm 3, insertion ∆_t = <p, +>.
  Status Insert(int id, const Point& p);

  /// Algorithm 3, deletion ∆_t = <p, ->.
  Status Delete(int id);

  /// Attribute update of an existing tuple: a deletion followed by an
  /// insertion (Section II-B). Fails without side effects if `id` is not
  /// live; fails with the tuple removed if the re-insertion is invalid
  /// (dimension mismatch), which the returned Status reports.
  Status Update(int id, const Point& p);

  /// One entry of a batch mutation.
  struct BatchOp {
    enum class Kind { kInsert, kDelete, kUpdate } kind;
    int id;
    Point point;  ///< unused for kDelete
  };

  /// Applies a sequence of mutations, stopping at (and returning) the first
  /// failure. Convenience for replaying update streams.
  Status ApplyBatch(const std::vector<BatchOp>& ops);

  /// As above, but additionally reports how many leading operations were
  /// applied (all of them on success; the index of the failed operation
  /// otherwise). The serving layer uses this to resume a drained batch past
  /// a rejected operation instead of discarding its tail.
  Status ApplyBatch(const std::vector<BatchOp>& ops, size_t* num_applied);

  /// Applies ops[begin..ops.size()); `*num_applied` counts from `begin`.
  /// Lets a caller resume past a failed operation without copying the
  /// batch tail.
  Status ApplyBatch(const std::vector<BatchOp>& ops, size_t begin,
                    size_t* num_applied);

  /// Current result Q_t (tuple ids, ascending); |Q_t| <= r.
  std::vector<int> Result() const { return cover_.CoverSetIds(); }

  /// One member of a published result: a Q_t id with its attribute vector.
  struct ResultEntry {
    int id;
    Point point;
  };

  /// Q_t with attributes resolved from the live index (ids ascending).
  /// This is the state a serving snapshot publishes: readers get usable
  /// tuples without a second lookup against the (mutating) index.
  std::vector<ResultEntry> ResolvedResult() const;

  int current_m() const { return m_; }
  int dim() const { return dim_; }
  const FdRmsOptions& options() const { return options_; }
  int size() const { return topk_.size(); }
  const TopKMaintainer& topk() const { return topk_; }
  const DynamicSetCover& cover() const { return cover_; }

  /// Test hook: full invariant sweep over the top-k state and the cover.
  Status Validate() const;

 private:
  /// Feeds one batch of Φ membership deltas into the set-cover state
  /// (additions before removals so reassignments see new targets).
  void ApplyDeltas(const std::vector<TopKDelta>& deltas);

  /// Algorithm 4: grows/shrinks the universe prefix until |C| = r (or the
  /// m-range is exhausted).
  void UpdateM();

  int dim_;
  FdRmsOptions options_;
  bool initialized_ = false;
  int m_ = 0;
  TopKMaintainer topk_;
  DynamicSetCover cover_;
};

}  // namespace fdrms

#endif  // FDRMS_CORE_FDRMS_H_
