#ifndef FDRMS_DATA_GENERATORS_H_
#define FDRMS_DATA_GENERATORS_H_

/// \file generators.h
/// Dataset generators for the experimental study (Section IV-A).
///
/// Indep and AntiCor follow Börzsönyi et al. (ICDE 2001) exactly. The four
/// real datasets of the paper (BB, AQ, CT, Movie) cannot be downloaded in
/// this offline environment, so each has a documented synthetic stand-in
/// that matches its dimensionality, value range, and attribute-correlation
/// structure — the properties that drive skyline density and therefore the
/// relative behaviour of every algorithm under test (see DESIGN.md §4).
/// All attributes are scaled to [0, 1], larger is better.

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/pointset.h"

namespace fdrms {

/// Uniform on the unit hypercube; attributes independent.
PointSet GenerateIndep(int n, int d, uint64_t seed);

/// Anti-correlated: points concentrated around the plane Σx_i = d/2, where
/// being good on one attribute means being bad on others (Börzsönyi's
/// generator: sample a plane offset, then redistribute mass between random
/// attribute pairs).
PointSet GenerateAntiCor(int n, int d, uint64_t seed);

/// Positively correlated attributes (small skylines; used by ablations).
PointSet GenerateCorrelated(int n, int d, uint64_t seed);

/// BB stand-in: 5 attributes; players share a latent skill that drives all
/// box-score stats, with specialist archetypes (scorer, rebounder, ...)
/// boosting subsets. Yields the small skyline (~1% of n) the paper reports.
PointSet GenerateBasketball(int n, uint64_t seed);

/// AQ stand-in: 9 attributes; pollutant concentrations move together within
/// two correlated groups while the meteorological block is independent,
/// giving the mid-density skyline of the paper's AQ.
PointSet GenerateAirQuality(int n, uint64_t seed);

/// CT stand-in: 8 attributes; smooth functions of a 2-D latent terrain
/// location plus heavy independent noise, giving a large skyline (>10% of
/// n) like the forest-cover data.
PointSet GenerateCoverType(int n, uint64_t seed);

/// Movie stand-in: 12 attributes; each movie is relevant to a few tags
/// (sparse Dirichlet-style relevance scaled by popularity), giving the very
/// dense skyline (~25% of n) of the tag-genome data.
PointSet GenerateMovie(int n, uint64_t seed);

/// Descriptor used by the benchmark harness to iterate "the paper's
/// datasets".
struct DatasetSpec {
  std::string name;  ///< BB, AQ, CT, Movie, Indep, AntiCor
  int paper_n;       ///< size used in the paper
  int dim;
};

/// The six datasets of Table I, in paper order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Generates `name` with `n` tuples (paper dimensionality). Supports the
/// six Table I names; Indep/AntiCor use d = 6 like the paper's defaults.
Result<PointSet> GenerateByName(const std::string& name, int n, uint64_t seed);

}  // namespace fdrms

#endif  // FDRMS_DATA_GENERATORS_H_
