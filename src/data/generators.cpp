#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace fdrms {

namespace {

double Clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

}  // namespace

PointSet GenerateIndep(int n, int d, uint64_t seed) {
  Rng rng(seed);
  PointSet out(d);
  Point p(d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) p[j] = rng.Uniform();
    out.Add(p);
  }
  return out;
}

PointSet GenerateAntiCor(int n, int d, uint64_t seed) {
  Rng rng(seed);
  PointSet out(d);
  Point p(d);
  for (int i = 0; i < n; ++i) {
    // Börzsönyi et al.: a plane offset normally distributed around 0.5,
    // plus a zero-sum spread within the plane Σx_j = d·v, so a gain on one
    // attribute is exactly a loss on the others. Out-of-range draws are
    // rejected (clamping would break the constant-sum structure that makes
    // the family anti-correlated).
    while (true) {
      double v = 0.5 + 0.05 * rng.Gaussian();
      double mean = 0.0;
      for (int j = 0; j < d; ++j) {
        p[j] = rng.Uniform();
        mean += p[j];
      }
      mean /= d;
      bool in_range = true;
      for (int j = 0; j < d; ++j) {
        p[j] = v + (p[j] - mean);
        if (p[j] < 0.0 || p[j] > 1.0) in_range = false;
      }
      if (in_range) break;
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateCorrelated(int n, int d, uint64_t seed) {
  Rng rng(seed);
  PointSet out(d);
  Point p(d);
  for (int i = 0; i < n; ++i) {
    double base = rng.Uniform();
    for (int j = 0; j < d; ++j) {
      p[j] = Clamp01(base + 0.1 * rng.Gaussian());
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateBasketball(int n, uint64_t seed) {
  constexpr int kDim = 5;  // points, rebounds, assists, steals, blocks
  Rng rng(seed);
  PointSet out(kDim);
  Point p(kDim);
  for (int i = 0; i < n; ++i) {
    // Latent overall skill: most players are average, stars are rare
    // (squaring a uniform skews the mass low like real box-score data).
    double skill = rng.Uniform();
    skill *= skill;
    // Archetype boosts a specialist stat.
    int archetype = rng.UniformInt(kDim);
    for (int j = 0; j < kDim; ++j) {
      double v = 0.75 * skill + 0.2 * rng.Uniform();
      if (j == archetype) v += 0.25 * rng.Uniform();
      p[j] = Clamp01(v);
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateAirQuality(int n, uint64_t seed) {
  constexpr int kDim = 9;  // 6 pollutants + 3 meteorological readings
  Rng rng(seed);
  PointSet out(kDim);
  Point p(kDim);
  for (int i = 0; i < n; ++i) {
    // Two pollution regimes move the two pollutant groups coherently
    // (particulates track each other; gases track each other loosely).
    double particulate = rng.Uniform();
    double gas = Clamp01(0.6 * particulate + 0.4 * rng.Uniform());
    for (int j = 0; j < 3; ++j) {
      p[j] = Clamp01(particulate + 0.15 * rng.Gaussian());
    }
    for (int j = 3; j < 6; ++j) {
      p[j] = Clamp01(gas + 0.2 * rng.Gaussian());
    }
    for (int j = 6; j < 9; ++j) {  // weather block: independent
      p[j] = rng.Uniform();
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateCoverType(int n, uint64_t seed) {
  constexpr int kDim = 8;  // elevation, slope, distances, hillshades, ...
  Rng rng(seed);
  PointSet out(kDim);
  Point p(kDim);
  for (int i = 0; i < n; ++i) {
    // Each cell sits at a latent terrain location; cartographic fields are
    // distinct smooth functions of it, plus strong per-field noise — enough
    // shared structure to bound the skyline, enough noise to keep it large.
    double x = rng.Uniform();
    double y = rng.Uniform();
    p[0] = Clamp01(0.5 + 0.35 * std::sin(6.0 * x) * std::cos(4.0 * y) +
                   0.25 * rng.Gaussian());
    p[1] = Clamp01(x * y + 0.3 * rng.Gaussian());
    p[2] = Clamp01(0.5 * (x + 1.0 - y) + 0.3 * rng.Gaussian());
    p[3] = Clamp01(0.5 + 0.4 * std::cos(8.0 * y) + 0.3 * rng.Gaussian());
    p[4] = Clamp01(1.0 - x + 0.35 * rng.Gaussian());
    p[5] = Clamp01(0.5 + 0.35 * std::sin(5.0 * (x + y)) + 0.3 * rng.Gaussian());
    p[6] = Clamp01(y + 0.35 * rng.Gaussian());
    p[7] = Clamp01(0.3 + 0.5 * x * (1.0 - y) + 0.3 * rng.Gaussian());
    out.Add(p);
  }
  return out;
}

PointSet GenerateMovie(int n, uint64_t seed) {
  constexpr int kDim = 12;  // tag-relevance scores
  Rng rng(seed);
  PointSet out(kDim);
  Point p(kDim);
  for (int i = 0; i < n; ++i) {
    // Movies are strongly relevant to a few tags and weakly to the rest;
    // overall popularity scales everything. Sparse high scores in 12-d
    // produce the paper's very dense skyline.
    double popularity = 0.4 + 0.6 * rng.Uniform();
    int strong_tags = 1 + rng.UniformInt(3);
    for (int j = 0; j < kDim; ++j) p[j] = 0.25 * rng.Uniform();
    for (int t = 0; t < strong_tags; ++t) {
      p[rng.UniformInt(kDim)] = 0.5 + 0.5 * rng.Uniform();
    }
    for (int j = 0; j < kDim; ++j) p[j] = Clamp01(p[j] * popularity);
    out.Add(p);
  }
  return out;
}

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"BB", 21961, 5},      {"AQ", 382168, 9},  {"CT", 581012, 8},
      {"Movie", 13176, 12},  {"Indep", 100000, 6}, {"AntiCor", 100000, 6},
  };
  return kSpecs;
}

Result<PointSet> GenerateByName(const std::string& name, int n,
                                uint64_t seed) {
  if (name == "BB") return GenerateBasketball(n, seed);
  if (name == "AQ") return GenerateAirQuality(n, seed);
  if (name == "CT") return GenerateCoverType(n, seed);
  if (name == "Movie") return GenerateMovie(n, seed);
  if (name == "Indep") return GenerateIndep(n, 6, seed);
  if (name == "AntiCor") return GenerateAntiCor(n, 6, seed);
  return Status::Invalid("unknown dataset: " + name);
}

}  // namespace fdrms
