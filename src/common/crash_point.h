#ifndef FDRMS_COMMON_CRASH_POINT_H_
#define FDRMS_COMMON_CRASH_POINT_H_

/// \file crash_point.h
/// Test-only crash injection compiled into the persistence paths.
///
/// Every durability-critical step names itself before proceeding:
///
///   CrashPoints::Hit("shard.manifest", "renamed");
///
/// In production the call is a single relaxed atomic load (the registry
/// stays in the `kIdle` state and nothing else happens). Two modes arm it:
///
///  * **Hard mode** (process granularity, used by the CI kill-and-resume
///    smoke): set `FDRMS_CRASH_POINT=<prefix>.<step>` in the environment and
///    the process `_Exit(137)`s the first time that point is reached —
///    no destructors, no flushes, exactly like a SIGKILL at that instant.
///  * **Soft mode** (in-process crash matrix, used by tests/manifest_test):
///    `CrashPoints::Arm("shard.manifest.renamed")` latches a sticky
///    `crashed()` flag when the point is reached. The durable-write helpers
///    and persistence loops consult `crashed()` and refuse to touch disk
///    once it is set, so everything after the "crash" behaves as if the
///    process had died: no later rename lands, no counter advances, and the
///    test can then resume a second service instance against the files that
///    made it to disk. `Reset()` disarms between cases.
///
/// `Arm(name, skip_hits)` skips the first `skip_hits` occurrences, so a
/// point that fires once per shard can be crashed on shard k specifically.

#include <atomic>
#include <string>

namespace fdrms {

class CrashPoints {
 public:
  /// Names a crash point. Returns true when the caller should simulate a
  /// crash (soft mode only; hard mode never returns). The fast path — no
  /// env var, nothing armed — is one relaxed atomic load.
  static bool Hit(const char* prefix, const char* step) {
    State s = state_.load(std::memory_order_relaxed);
    if (s == State::kIdle) return false;
    return HitSlow(prefix, step);
  }

  /// Arms soft mode: the `skip_hits+1`-th reach of `name` latches
  /// `crashed()`. Replaces any previous arming; clears `crashed()`.
  static void Arm(const std::string& name, int skip_hits = 0);

  /// Disarms soft mode and clears `crashed()`. Hard mode (env var) is
  /// re-probed on the next Hit after a Reset.
  static void Reset();

  /// True once an armed soft crash point has been reached. Persistence
  /// paths treat this as "the process is dead": they stop writing.
  static bool crashed() {
    return state_.load(std::memory_order_relaxed) == State::kArmed &&
           crashed_.load(std::memory_order_acquire);
  }

 private:
  enum class State : int {
    kUninit = 0,  ///< env var not probed yet
    kIdle = 1,    ///< nothing armed, env empty: Hit is a no-op
    kArmed = 2,   ///< soft-armed (or env probing found a hard point)
  };

  static bool HitSlow(const char* prefix, const char* step);

  static std::atomic<State> state_;
  static std::atomic<bool> crashed_;
};

}  // namespace fdrms

#endif  // FDRMS_COMMON_CRASH_POINT_H_
