#ifndef FDRMS_COMMON_DURABLE_IO_H_
#define FDRMS_COMMON_DURABLE_IO_H_

/// \file durable_io.h
/// Crash-durable file replacement and the checksum it is paired with.
///
/// `WriteFileDurable` is the one primitive every persistence path in the
/// repo goes through: write `<path>.tmp` → fsync(tmp) → rename over `path`
/// → fsync(parent dir). After it returns OK the bytes are on disk under
/// `path` even across power loss; if the process dies at any interior step
/// the previous contents of `path` are intact (the tmp file may linger and
/// is ignored/garbage-collected at resume). Each step names a CrashPoint
/// (`<crash_prefix>.tmp_written` / `.renamed` / `.dir_synced`) so the crash
/// matrix can kill the protocol between any two steps.
///
/// `Fnv1a64` is the manifest/snapshot checksum: not cryptographic, just a
/// cheap, dependency-free detector for torn or bit-rotted files.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace fdrms {

/// FNV-1a 64-bit over `data`. Seed chaining: pass a previous digest as
/// `basis` to extend.
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t basis = 0xcbf29ce484222325ull);

/// Lower-case hex of a 64-bit digest, zero-padded to 16 chars.
std::string ChecksumHex(std::uint64_t digest);

/// Atomically + durably replaces `path` with `contents` via the
/// tmp/fsync/rename/dir-fsync protocol. `crash_prefix` names the CrashPoint
/// family compiled into the steps (e.g. "shard.manifest"); pass a distinct
/// prefix per call site so the crash matrix can target them independently.
/// Returns Internal with the failing step + errno text on any error —
/// including a failed fsync, which the caller must count as a persist
/// failure, not a success.
Status WriteFileDurable(const std::string& path, const std::string& contents,
                        const char* crash_prefix);

/// Reads all of `path`. NotFound if it does not exist, Internal on I/O
/// errors.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace fdrms

#endif  // FDRMS_COMMON_DURABLE_IO_H_
