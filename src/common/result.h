#ifndef FDRMS_COMMON_RESULT_H_
#define FDRMS_COMMON_RESULT_H_

/// \file result.h
/// Result<T>: a value or a Status, Arrow-style.

#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace fdrms {

#if defined(__GNUC__) || defined(__clang__)
#define FDRMS_RESULT_COLD __attribute__((noinline, cold))
#else
#define FDRMS_RESULT_COLD
#endif

/// Holds either a successfully produced T or the Status explaining why the
/// value could not be produced. Accessing the value of an errored Result is
/// a checked programming error.
///
/// Storage is an explicit discriminant plus union (absl::StatusOr-style)
/// rather than std::variant: the destructor dispatch is a plain branch the
/// optimizer can follow, and the discriminant shares no word with payload.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : has_value_(true) {  // NOLINT(runtime/explicit)
    ::new (static_cast<void*>(&value_)) T(std::move(value));
  }

  /// Implicit from error status. `status.ok()` is a programming error.
  Result(Status status) : has_value_(false) {  // NOLINT(runtime/explicit)
    ::new (static_cast<void*>(&status_)) Status(std::move(status));
    FDRMS_DCHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result& other) : has_value_(other.has_value_) {
    if (has_value_) {
      ::new (static_cast<void*>(&value_)) T(other.value_);
    } else {
      ::new (static_cast<void*>(&status_)) Status(other.status_);
    }
  }

  Result(Result&& other) noexcept(std::is_nothrow_move_constructible_v<T>)
      : has_value_(other.has_value_) {
    if (has_value_) {
      ::new (static_cast<void*>(&value_)) T(std::move(other.value_));
    } else {
      ::new (static_cast<void*>(&status_)) Status(std::move(other.status_));
    }
  }

  Result& operator=(const Result& other) {
    if (this != &other) {
      // Copy into a temporary first so a throwing T copy constructor leaves
      // *this untouched (the old payload is only torn down on success).
      Result tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }

  Result& operator=(Result&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        ::new (static_cast<void*>(&value_)) T(std::move(other.value_));
      } else {
        ::new (static_cast<void*>(&status_)) Status(std::move(other.status_));
      }
    }
    return *this;
  }

  ~Result() { Destroy(); }

  bool ok() const { return has_value_; }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    return has_value_ ? ok_status : status_;
  }

  const T& value() const& {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return value_;
  }
  T& value() & {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return value_;
  }
  T&& value() && {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(value_) : std::move(alternative);
  }

 private:
  void Destroy() {
    if (has_value_) {
      value_.~T();
    } else {
      DestroyStatus();
    }
  }

  /// Outlined so the (cold) error-path teardown stays off the hot path.
  FDRMS_RESULT_COLD void DestroyStatus() { status_.~Status(); }

  bool has_value_;
  union {
    T value_;
    Status status_;
  };
};

/// Propagates the error of a Result-producing expression, otherwise binds
/// its value to `lhs`.
#define FDRMS_ASSIGN_OR_RETURN(lhs, expr)         \
  auto FDRMS_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!FDRMS_CONCAT_(_res_, __LINE__).ok())       \
    return FDRMS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FDRMS_CONCAT_(_res_, __LINE__)).value()

#define FDRMS_CONCAT_IMPL_(a, b) a##b
#define FDRMS_CONCAT_(a, b) FDRMS_CONCAT_IMPL_(a, b)

}  // namespace fdrms

#endif  // FDRMS_COMMON_RESULT_H_
