#ifndef FDRMS_COMMON_RESULT_H_
#define FDRMS_COMMON_RESULT_H_

/// \file result.h
/// Result<T>: a value or a Status, Arrow-style.

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace fdrms {

/// Holds either a successfully produced T or the Status explaining why the
/// value could not be produced. Accessing the value of an errored Result is
/// a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. `status.ok()` is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    FDRMS_DCHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    return ok() ? ok_status : std::get<Status>(repr_);
  }

  const T& value() const& {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    FDRMS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a Result-producing expression, otherwise binds
/// its value to `lhs`.
#define FDRMS_ASSIGN_OR_RETURN(lhs, expr)         \
  auto FDRMS_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!FDRMS_CONCAT_(_res_, __LINE__).ok())       \
    return FDRMS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FDRMS_CONCAT_(_res_, __LINE__)).value()

#define FDRMS_CONCAT_IMPL_(a, b) a##b
#define FDRMS_CONCAT_(a, b) FDRMS_CONCAT_IMPL_(a, b)

}  // namespace fdrms

#endif  // FDRMS_COMMON_RESULT_H_
