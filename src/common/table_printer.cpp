#include "common/table_printer.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace fdrms {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::BeginRow() { rows_.emplace_back(); }

void TablePrinter::AddCell(std::string value) {
  FDRMS_CHECK(!rows_.empty()) << "AddCell before BeginRow";
  rows_.back().push_back(std::move(value));
}

void TablePrinter::AddNumber(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  AddCell(oss.str());
}

void TablePrinter::AddInt(long value) { AddCell(std::to_string(value)); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(header_);
  std::string sep;
  for (size_t i = 0; i < widths.size(); ++i) sep += std::string(widths[i], '-') + "  ";
  os << sep << "\n";
  for (const auto& row : rows_) print_row(row);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return default_value;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0) return default_value;
  return parsed;
}

long GetEnvLong(const char* name, long default_value) {
  return static_cast<long>(GetEnvDouble(name, static_cast<double>(default_value)));
}

}  // namespace fdrms
