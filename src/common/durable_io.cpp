#include "common/durable_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crash_point.h"

namespace fdrms {

std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t basis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ChecksumHex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

namespace {

Status IoError(const std::string& step, const std::string& path, int err) {
  std::ostringstream oss;
  oss << step << " failed for " << path;
  if (err != 0) oss << ": " << std::strerror(err);
  return Status::Internal(oss.str());
}

#ifndef _WIN32

Status SyncDirOf(const std::string& path) {
  std::string dir;
  std::size_t slash = path.find_last_of('/');
  dir = (slash == std::string::npos) ? std::string(".")
                                     : path.substr(0, slash == 0 ? 1 : slash);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open(dir)", dir, errno);
  int rc = ::fsync(fd);
  int err = errno;
  ::close(fd);
  if (rc != 0) return IoError("fsync(dir)", dir, err);
  return Status::OK();
}

Status WriteDurablePosix(const std::string& path, const std::string& contents,
                         const char* crash_prefix) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open(tmp)", tmp, errno);
  const char* p = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      std::remove(tmp.c_str());
      return IoError("write(tmp)", tmp, err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    std::remove(tmp.c_str());
    return IoError("fsync(tmp)", tmp, err);
  }
  if (::close(fd) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return IoError("close(tmp)", tmp, err);
  }
  if (CrashPoints::Hit(crash_prefix, "tmp_written")) {
    return Status::Internal("crash injected after tmp write");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return IoError("rename", path, err);
  }
  if (CrashPoints::Hit(crash_prefix, "renamed")) {
    return Status::Internal("crash injected after rename");
  }
  FDRMS_RETURN_NOT_OK(SyncDirOf(path));
  if (CrashPoints::Hit(crash_prefix, "dir_synced")) {
    return Status::Internal("crash injected after dir sync");
  }
  return Status::OK();
}

#else  // _WIN32

// No directory fsync on Windows; ofstream+flush then rename is the best
// portable approximation. The crash points keep the same names so the
// matrix still exercises the protocol ordering.
Status WriteDurablePosix(const std::string& path, const std::string& contents,
                         const char* crash_prefix) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("open(tmp)", tmp, 0);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return IoError("write(tmp)", tmp, 0);
    }
  }
  if (CrashPoints::Hit(crash_prefix, "tmp_written")) {
    return Status::Internal("crash injected after tmp write");
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return IoError("rename", path, err);
  }
  if (CrashPoints::Hit(crash_prefix, "renamed")) {
    return Status::Internal("crash injected after rename");
  }
  if (CrashPoints::Hit(crash_prefix, "dir_synced")) {
    return Status::Internal("crash injected after dir sync");
  }
  return Status::OK();
}

#endif

}  // namespace

Status WriteFileDurable(const std::string& path, const std::string& contents,
                        const char* crash_prefix) {
  // A soft-crashed process never touches disk again: callers above us see a
  // persist failure and must not run their post-commit actions.
  if (CrashPoints::crashed()) {
    return Status::Internal("crash injected: process is dead");
  }
  return WriteDurablePosix(path, contents, crash_prefix);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  if (in.bad()) return IoError("read", path, 0);
  return oss.str();
}

}  // namespace fdrms
