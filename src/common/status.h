#ifndef FDRMS_COMMON_STATUS_H_
#define FDRMS_COMMON_STATUS_H_

/// \file status.h
/// Arrow/RocksDB-style error propagation. Public library APIs that can fail
/// return a Status (or Result<T>, see result.h) instead of throwing; no
/// exception crosses a library boundary.

#include <ostream>
#include <string>
#include <utility>

namespace fdrms {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kUnavailable = 9,
};

/// Returns a short human-readable name for a StatusCode ("OK", "Invalid", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or a code plus message.
///
/// The OK state carries no allocation; error states carry a message. Status
/// is cheap to move and to test (`if (!s.ok()) return s;`).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define FDRMS_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::fdrms::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace fdrms

#endif  // FDRMS_COMMON_STATUS_H_
