#ifndef FDRMS_COMMON_TABLE_PRINTER_H_
#define FDRMS_COMMON_TABLE_PRINTER_H_

/// \file table_printer.h
/// Aligned-column text tables for the benchmark harness: every bench binary
/// prints the same rows/series a paper table or figure reports.

#include <ostream>
#include <string>
#include <vector>

namespace fdrms {

/// Collects rows of string cells and prints them with aligned columns.
/// Numeric helpers format with fixed precision so series are comparable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Starts a new row; fill it with AddCell/AddNumber calls.
  void BeginRow();
  void AddCell(std::string value);
  void AddNumber(double value, int precision = 3);
  void AddInt(long value);

  /// Writes the header, a separator, and all rows to `os`.
  void Print(std::ostream& os) const;

  /// Rows added so far (excluding the header).
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a positive numeric environment variable, falling back to
/// `default_value` when unset or unparsable. Used for bench scaling knobs
/// (FDRMS_BENCH_SCALE, FDRMS_EVAL_VECTORS, ...).
double GetEnvDouble(const char* name, double default_value);
long GetEnvLong(const char* name, long default_value);

}  // namespace fdrms

#endif  // FDRMS_COMMON_TABLE_PRINTER_H_
