#ifndef FDRMS_COMMON_STOPWATCH_H_
#define FDRMS_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock and per-thread CPU timing utilities for the experiment
/// harness.

#include <chrono>
#include <ctime>

namespace fdrms {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time and a call count across many timed sections; used
/// to report mean per-operation update time.
class TimeAccumulator {
 public:
  void Add(double seconds) {
    total_seconds_ += seconds;
    ++count_;
  }
  double total_seconds() const { return total_seconds_; }
  long count() const { return count_; }
  /// Mean milliseconds per recorded section (0 if none recorded).
  double MeanMillis() const {
    return count_ == 0 ? 0.0 : total_seconds_ * 1e3 / static_cast<double>(count_);
  }

 private:
  double total_seconds_ = 0.0;
  long count_ = 0;
};

/// CPU seconds consumed by the *calling thread* so far. Unlike wall time,
/// this excludes periods the thread spent descheduled or blocked, so on an
/// oversubscribed host (more busy threads than cores) it still measures the
/// work a thread actually did — the serving layer uses it to report
/// per-writer cost that is meaningful regardless of how many writers share
/// a core. Falls back to wall time where the POSIX clock is unavailable.
inline double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fdrms

#endif  // FDRMS_COMMON_STOPWATCH_H_
