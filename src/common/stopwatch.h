#ifndef FDRMS_COMMON_STOPWATCH_H_
#define FDRMS_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing utilities for the experiment harness.

#include <chrono>

namespace fdrms {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time and a call count across many timed sections; used
/// to report mean per-operation update time.
class TimeAccumulator {
 public:
  void Add(double seconds) {
    total_seconds_ += seconds;
    ++count_;
  }
  double total_seconds() const { return total_seconds_; }
  long count() const { return count_; }
  /// Mean milliseconds per recorded section (0 if none recorded).
  double MeanMillis() const {
    return count_ == 0 ? 0.0 : total_seconds_ * 1e3 / static_cast<double>(count_);
  }

 private:
  double total_seconds_ = 0.0;
  long count_ = 0;
};

}  // namespace fdrms

#endif  // FDRMS_COMMON_STOPWATCH_H_
