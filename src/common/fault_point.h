#ifndef FDRMS_COMMON_FAULT_POINT_H_
#define FDRMS_COMMON_FAULT_POINT_H_

/// \file fault_point.h
/// Named fault-injection sites compiled into the hot paths — the
/// generalization of crash_point.h from "die here" to "misbehave here".
///
/// Every fault-prone step names itself before proceeding:
///
///   FaultAction act = FaultPoints::Hit("writer.apply", "pre");
///   if (act.kind == FaultKind::kError) return act.ToStatus();
///
/// In production the call is a single relaxed atomic load (nothing armed,
/// env empty) and returns `kNone`. Sites can be armed two ways:
///
///  * **Env mode** (process granularity, used by the CI fault-smoke job):
///    `FDRMS_FAULT=<prefix>.<step>=<action>[:<arg>][@<skip>]`, e.g.
///      FDRMS_FAULT=writer.apply.pre=die            # kill the writer thread
///      FDRMS_FAULT=writer.drain.post=delay:5000    # 5ms stall, every hit
///      FDRMS_FAULT=serve.persist.pre=error         # one-shot kInternal
///      FDRMS_FAULT=shard.replay.pre=sticky_error@2 # skip 2 hits, then fail
///                                                  # that hit and all later
///    Multiple directives are comma-separated. Probed once, on first Hit.
///  * **API mode** (in-process fault matrix, used by tests/fault_test):
///    `FaultPoints::Arm("writer.apply.pre", {FaultKind::kError})`. Replaces
///    any previous arming of that site; `Reset()` disarms everything and
///    re-probes the env on the next Hit.
///
/// Actions:
///  * `kDelay`  — the site sleeps `delay_us` and proceeds (every hit).
///  * `kError`  — the site fails once with `Status::Internal` (the arming
///                is consumed); later hits proceed normally.
///  * `kStickyError` — the site fails this hit and every later one.
///  * `kDie`    — the *thread* reaching the site must terminate as if the
///                writer had crashed: the service's writer loop exits
///                through its death epilogue (queue closed, rendezvous
///                failed, health = kDead). One-shot, like kError.
///
/// `skip` hits are skipped before the action applies, so a site that fires
/// once per batch can be faulted on batch k specifically. FaultPoints and
/// CrashPoints coexist: crash points model whole-process death for the
/// durability story; fault points model partial failure inside a live
/// process.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace fdrms {

enum class FaultKind : int {
  kNone = 0,         ///< proceed normally
  kDelay = 1,        ///< sleep delay_us, then proceed
  kError = 2,        ///< fail once with kInternal
  kStickyError = 3,  ///< fail this hit and every later hit
  kDie = 4,          ///< the hitting thread must die (writer-death epilogue)
};

/// What an armed site told the caller to do. `kind == kNone` on the fast
/// path. For kDelay the sleep already happened inside Hit(); the action is
/// returned anyway so call sites can count injected stalls if they care.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  /// The full "<prefix>.<step>" site name, for error messages.
  std::string site;

  bool none() const { return kind == FaultKind::kNone; }
  bool error() const {
    return kind == FaultKind::kError || kind == FaultKind::kStickyError;
  }
  bool die() const { return kind == FaultKind::kDie; }

  /// Canonical Status for an injected error at this site.
  Status ToStatus() const {
    return Status::Internal("fault injected at " + site);
  }
};

/// Arming descriptor for API mode.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  uint64_t delay_us = 0;  ///< kDelay only
  int skip_hits = 0;      ///< hits to let pass before the action applies
};

class FaultPoints {
 public:
  /// Names a fault site. The fast path — nothing armed, env unset — is one
  /// relaxed atomic load returning kNone. kDelay sleeps before returning.
  static FaultAction Hit(const char* prefix, const char* step) {
    if (state_.load(std::memory_order_relaxed) == State::kIdle) return {};
    return HitSlow(prefix, step);
  }

  /// Arms `name` ("<prefix>.<step>") with `spec`. Replaces any previous
  /// arming of that site; other sites stay armed.
  static void Arm(const std::string& name, const FaultSpec& spec);

  /// Disarms every site (API- and env-armed). The env var is re-probed on
  /// the next Hit, matching CrashPoints::Reset semantics.
  static void Reset();

  /// Total actions injected (delays, errors, deaths) since the last Reset.
  /// Smoke runs assert this is nonzero when a fault was supposed to fire.
  static uint64_t injected();

 private:
  enum class State : int {
    kUninit = 0,  ///< env var not probed yet
    kIdle = 1,    ///< nothing armed, env empty: Hit is a no-op
    kArmed = 2,
  };

  static FaultAction HitSlow(const char* prefix, const char* step);

  static std::atomic<State> state_;
};

}  // namespace fdrms

#endif  // FDRMS_COMMON_FAULT_POINT_H_
