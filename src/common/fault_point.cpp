#include "common/fault_point.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fdrms {

std::atomic<FaultPoints::State> FaultPoints::state_{
    FaultPoints::State::kUninit};

namespace {

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

// Guarded by Mu().
struct ArmedSite {
  FaultSpec spec;
  bool consumed = false;  // one-shot kinds (kError, kDie) fire once
};

std::unordered_map<std::string, ArmedSite>& Sites() {
  static std::unordered_map<std::string, ArmedSite> m;
  return m;
}

std::atomic<uint64_t>& InjectedCount() {
  static std::atomic<uint64_t> n{0};
  return n;
}

// Parses one "<site>=<action>[:<arg>][@<skip>]" directive into Sites().
// Malformed directives are ignored (an env typo must not take down
// production; the smoke gates assert injected() > 0 instead).
void ParseDirective(const std::string& directive) {
  const size_t eq = directive.find('=');
  if (eq == std::string::npos || eq == 0) return;
  std::string site = directive.substr(0, eq);
  std::string action = directive.substr(eq + 1);
  FaultSpec spec;
  const size_t at = action.find('@');
  if (at != std::string::npos) {
    spec.skip_hits = std::atoi(action.c_str() + at + 1);
    action.resize(at);
  }
  const size_t colon = action.find(':');
  std::string arg;
  if (colon != std::string::npos) {
    arg = action.substr(colon + 1);
    action.resize(colon);
  }
  if (action == "delay") {
    spec.kind = FaultKind::kDelay;
    spec.delay_us = arg.empty() ? 1000 : std::strtoull(arg.c_str(), nullptr, 10);
  } else if (action == "error") {
    spec.kind = FaultKind::kError;
  } else if (action == "sticky_error") {
    spec.kind = FaultKind::kStickyError;
  } else if (action == "die") {
    spec.kind = FaultKind::kDie;
  } else {
    return;
  }
  Sites()[site] = ArmedSite{spec, false};
}

// Guarded by Mu(). Probes FDRMS_FAULT (comma-separated directives).
void ProbeEnv() {
  const char* env = std::getenv("FDRMS_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  std::string all = env;
  size_t pos = 0;
  while (pos <= all.size()) {
    size_t comma = all.find(',', pos);
    if (comma == std::string::npos) comma = all.size();
    if (comma > pos) ParseDirective(all.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

void FaultPoints::Arm(const std::string& name, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(Mu());
  // Make sure a later env probe cannot wipe an API arming: force the probe
  // now so kUninit never follows an Arm.
  if (state_.load(std::memory_order_relaxed) == State::kUninit) ProbeEnv();
  Sites()[name] = ArmedSite{spec, false};
  state_.store(State::kArmed, std::memory_order_release);
}

void FaultPoints::Reset() {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().clear();
  InjectedCount().store(0, std::memory_order_relaxed);
  // Back to kUninit, not kIdle: the env var is re-probed on the next Hit so
  // a Reset inside a test cannot mask an env arming for the process.
  state_.store(State::kUninit, std::memory_order_release);
}

uint64_t FaultPoints::injected() {
  return InjectedCount().load(std::memory_order_relaxed);
}

FaultAction FaultPoints::HitSlow(const char* prefix, const char* step) {
  FaultAction act;
  uint64_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(Mu());
    if (state_.load(std::memory_order_relaxed) == State::kUninit) {
      ProbeEnv();
      state_.store(Sites().empty() ? State::kIdle : State::kArmed,
                   std::memory_order_release);
      if (Sites().empty()) return act;
    }
    std::string name = prefix;
    name += '.';
    name += step;
    auto it = Sites().find(name);
    if (it == Sites().end()) return act;
    ArmedSite& armed = it->second;
    if (armed.consumed) return act;
    if (armed.spec.skip_hits > 0) {
      --armed.spec.skip_hits;
      return act;
    }
    act.kind = armed.spec.kind;
    act.site = std::move(name);
    delay_us = armed.spec.delay_us;
    if (act.kind == FaultKind::kError || act.kind == FaultKind::kDie) {
      armed.consumed = true;
    }
    InjectedCount().fetch_add(1, std::memory_order_relaxed);
  }
  // Sleep outside the registry lock so a delayed site cannot stall every
  // other thread's fast path.
  if (act.kind == FaultKind::kDelay && delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return act;
}

}  // namespace fdrms
