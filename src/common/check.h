#ifndef FDRMS_COMMON_CHECK_H_
#define FDRMS_COMMON_CHECK_H_

/// \file check.h
/// CHECK/DCHECK macros for programming-error invariants (not data errors —
/// those return Status). CHECK aborts with a message in all builds; DCHECK
/// compiles out in NDEBUG builds. Both support message chaining:
///   FDRMS_CHECK(n > 0) << "n was " << n;

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fdrms {
namespace internal {

/// Accumulates a failure message via `<<` and aborts on destruction (at the
/// end of the full CHECK statement).
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    oss_ << "FDRMS_CHECK failed at " << file << ":" << line << ": " << expr
         << " ";
  }
  ~CheckFailStream() {
    std::cerr << oss_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  std::ostringstream oss_;
};

/// Swallows streamed operands when the check passes / is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace fdrms

// The if/else form keeps `FDRMS_CHECK(cond) << msg;` a single statement.
#define FDRMS_CHECK(cond)  \
  if (cond) {              \
  } else                   \
    ::fdrms::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define FDRMS_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::fdrms::internal::NullStream()
#else
#define FDRMS_DCHECK(cond) FDRMS_CHECK(cond)
#endif

#endif  // FDRMS_COMMON_CHECK_H_
