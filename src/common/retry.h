#ifndef FDRMS_COMMON_RETRY_H_
#define FDRMS_COMMON_RETRY_H_

/// \file retry.h
/// Bounded-exponential-backoff retry for transient Status codes.
///
/// The serving layer reports two retryable conditions: kResourceExhausted
/// (queue full under Overflow::kReject — back off and the writer will
/// drain it) and kUnavailable (a dead shard — back off and the health
/// tracker / operator may revive it). Everything else is permanent and
/// returned immediately.
///
///   RetryPolicy policy;  // 50us doubling to 5ms, ~200ms total budget
///   uint64_t retries = 0;
///   Status st = RetryTransient(policy, &retries, [&] {
///     return service.Submit(op);
///   });
///
/// Deliberately header-only and dependency-free so callers in any layer
/// (eval drivers, tests, future client stubs) can use it.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/status.h"

namespace fdrms {

/// Tunables for RetryTransient. Defaults suit an in-process submit path:
/// first back-off well under a batch interval, capped total delay so a
/// permanently dead shard fails in ~hundreds of milliseconds, not forever.
struct RetryPolicy {
  uint64_t initial_backoff_us = 50;
  uint64_t max_backoff_us = 5000;
  /// Total sleep budget across all attempts; once exhausted the last
  /// transient error is returned to the caller.
  uint64_t max_total_backoff_us = 200000;
  double multiplier = 2.0;
};

/// True for the codes a retry can plausibly outwait.
inline bool IsTransient(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted ||
         st.code() == StatusCode::kUnavailable;
}

/// Invokes `fn` until it returns OK or a non-transient error, sleeping an
/// exponentially growing bounded interval between attempts. Returns the
/// final Status; adds the number of re-invocations (not counting the
/// first) to *retries when `retries` is non-null.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, uint64_t* retries, Fn&& fn) {
  uint64_t backoff_us = policy.initial_backoff_us;
  uint64_t slept_us = 0;
  for (;;) {
    Status st = fn();
    if (st.ok() || !IsTransient(st)) return st;
    if (slept_us >= policy.max_total_backoff_us) return st;
    const uint64_t nap =
        std::min(backoff_us, policy.max_total_backoff_us - slept_us);
    std::this_thread::sleep_for(std::chrono::microseconds(nap));
    slept_us += nap;
    backoff_us = std::min(
        static_cast<uint64_t>(static_cast<double>(backoff_us) *
                              policy.multiplier),
        policy.max_backoff_us);
    if (retries != nullptr) ++(*retries);
  }
}

}  // namespace fdrms

#endif  // FDRMS_COMMON_RETRY_H_
