#include "common/status.h"

namespace fdrms {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace fdrms
