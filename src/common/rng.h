#ifndef FDRMS_COMMON_RNG_H_
#define FDRMS_COMMON_RNG_H_

/// \file rng.h
/// Deterministic, seedable random number generation. All randomized code in
/// the library takes an explicit Rng (or seed) so experiments reproduce
/// bit-for-bit across runs.

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace fdrms {

/// A seedable PRNG wrapper around std::mt19937_64 with the handful of
/// distributions the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n) {
    FDRMS_DCHECK(n > 0);
    return static_cast<int>(std::uniform_int_distribution<int>(0, n - 1)(engine_));
  }

  /// Standard normal deviate.
  double Gaussian() { return normal_(engine_); }

  /// Independent fresh seed for spawning child generators.
  uint64_t NextSeed() { return engine_(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[UniformInt(i + 1)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace fdrms

#endif  // FDRMS_COMMON_RNG_H_
