#include "common/crash_point.h"

#include <cstdlib>
#include <mutex>

namespace fdrms {

std::atomic<CrashPoints::State> CrashPoints::state_{CrashPoints::State::kUninit};
std::atomic<bool> CrashPoints::crashed_{false};

namespace {

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

// Guarded by Mu(). `hard` marks the env-armed flavor (_Exit instead of
// latching crashed()).
struct Armed {
  std::string name;
  int skip = 0;
  bool hard = false;
};

Armed& ArmedPoint() {
  static Armed a;
  return a;
}

}  // namespace

void CrashPoints::Arm(const std::string& name, int skip_hits) {
  std::lock_guard<std::mutex> lock(Mu());
  Armed& a = ArmedPoint();
  a.name = name;
  a.skip = skip_hits;
  a.hard = false;
  crashed_.store(false, std::memory_order_release);
  state_.store(State::kArmed, std::memory_order_release);
}

void CrashPoints::Reset() {
  std::lock_guard<std::mutex> lock(Mu());
  Armed& a = ArmedPoint();
  a.name.clear();
  a.skip = 0;
  a.hard = false;
  crashed_.store(false, std::memory_order_release);
  // Back to kUninit, not kIdle: the env var is re-probed on the next Hit so
  // a Reset inside a test cannot mask a hard point armed for the process.
  state_.store(State::kUninit, std::memory_order_release);
}

bool CrashPoints::HitSlow(const char* prefix, const char* step) {
  std::lock_guard<std::mutex> lock(Mu());
  Armed& a = ArmedPoint();
  if (state_.load(std::memory_order_relaxed) == State::kUninit) {
    if (a.name.empty()) {
      const char* env = std::getenv("FDRMS_CRASH_POINT");
      if (env != nullptr && env[0] != '\0') {
        a.name = env;
        a.skip = 0;
        a.hard = true;
        const char* skip_env = std::getenv("FDRMS_CRASH_POINT_SKIP");
        if (skip_env != nullptr) a.skip = std::atoi(skip_env);
      }
    }
    state_.store(a.name.empty() ? State::kIdle : State::kArmed,
                 std::memory_order_release);
    if (a.name.empty()) return false;
  }
  // Already "dead": every later point also reports crashed so multi-step
  // sequences stop at the first armed hit.
  if (!a.hard && crashed_.load(std::memory_order_relaxed)) return true;
  std::string name = prefix;
  name += '.';
  name += step;
  if (name != a.name) return false;
  if (a.skip > 0) {
    --a.skip;
    return false;
  }
  if (a.hard) {
    // SIGKILL semantics: no atexit handlers, no stream flushes, no stack
    // unwinding — the file system sees exactly what was durable.
    std::_Exit(137);
  }
  crashed_.store(true, std::memory_order_release);
  return true;
}

}  // namespace fdrms
