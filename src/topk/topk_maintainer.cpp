#include "topk/topk_maintainer.h"

#include <algorithm>

#include "common/check.h"

namespace fdrms {

TopKMaintainer::TopKMaintainer(int dim, int k, double eps,
                               std::vector<Point> utilities)
    : dim_(dim),
      k_(k),
      eps_(eps),
      utilities_(std::move(utilities)),
      umat_(utilities_),
      tree_(dim),
      cone_(utilities_),
      topk_(utilities_.size()),
      approx_(utilities_.size()) {
  FDRMS_CHECK(k_ >= 1);
  FDRMS_CHECK(eps_ >= 0.0 && eps_ < 1.0);
  for (const Point& u : utilities_) {
    FDRMS_CHECK(static_cast<int>(u.size()) == dim_);
  }
}

double TopKMaintainer::OmegaK(int utility) const {
  const auto& list = topk_[utility];
  if (static_cast<int>(list.size()) < k_) return 0.0;
  return list.back().score;
}

double TopKMaintainer::ThresholdFor(int utility) const {
  return (1.0 - eps_) * OmegaK(utility);
}

const std::unordered_set<int>& TopKMaintainer::MemberOf(int id) const {
  auto it = member_of_.find(id);
  return it == member_of_.end() ? empty_set_ : it->second;
}

void TopKMaintainer::EmitAdd(int utility, int id,
                             std::vector<TopKDelta>* deltas) {
  approx_[utility].insert(id);
  member_of_[id].insert(utility);
  if (deltas != nullptr) deltas->push_back({utility, id, /*added=*/true});
}

void TopKMaintainer::EmitRemove(int utility, int id,
                                std::vector<TopKDelta>* deltas) {
  approx_[utility].erase(id);
  auto it = member_of_.find(id);
  if (it != member_of_.end()) {
    it->second.erase(utility);
    if (it->second.empty()) member_of_.erase(it);
  }
  if (deltas != nullptr) deltas->push_back({utility, id, /*added=*/false});
}

Status TopKMaintainer::Insert(int id, const Point& p,
                              std::vector<TopKDelta>* deltas) {
  // Validate before the cone query: FindReached dots `p` against dim_-sized
  // utilities, so a short point would read out of bounds.
  if (static_cast<int>(p.size()) != dim_) {
    return Status::Invalid("point dimension mismatch");
  }
  // The cone tree prunes to utilities whose admission threshold `p` can
  // reach; all Φ and top-k changes are confined to those.
  std::vector<int> affected = cone_.FindReached(p);
  FDRMS_RETURN_NOT_OK(tree_.Insert(id, p));
  // Score the whole candidate set in one blocked pass over the contiguous
  // utility matrix (bit-identical to per-utility Dot).
  score_scratch_.resize(affected.size());
  umat_.ScoreSubset(p, affected, score_scratch_.data());
  for (size_t ai = 0; ai < affected.size(); ++ai) {
    const int u = affected[ai];
    double score = score_scratch_[ai];
    double old_tau = ThresholdFor(u);
    if (score < old_tau) continue;  // cone bound was loose for this u
    // Update the exact top-k list.
    auto& list = topk_[u];
    auto pos = std::lower_bound(list.begin(), list.end(), ScoredId{score, id},
                                BetterScore);
    if (static_cast<int>(list.size()) < k_) {
      list.insert(pos, {score, id});
    } else if (pos != list.end()) {
      list.insert(pos, {score, id});
      list.pop_back();
    }
    double new_tau = ThresholdFor(u);
    if (score >= new_tau) EmitAdd(u, id, deltas);
    if (new_tau > old_tau) {
      // The admission bar rose; evict members that fell below it. One
      // gather-kernel call scores the whole membership against the tree's
      // point slab — no Point copy or per-member pointer chase.
      member_scratch_.clear();
      for (int member : approx_[u]) {
        if (member != id) member_scratch_.push_back(member);
      }
      member_score_scratch_.resize(member_scratch_.size());
      tree_.ScoreIds(umat_.row(u), member_scratch_,
                     member_score_scratch_.data());
      for (size_t mi = 0; mi < member_scratch_.size(); ++mi) {
        if (member_score_scratch_[mi] < new_tau) {
          EmitRemove(u, member_scratch_[mi], deltas);
        }
      }
      cone_.SetThreshold(u, new_tau);
    }
  }
  return Status::OK();
}

Status TopKMaintainer::Delete(int id, std::vector<TopKDelta>* deltas) {
  if (!tree_.Contains(id)) {
    return Status::NotFound("tuple id " + std::to_string(id) + " not present");
  }
  // Only utilities whose Φ set contains `id` can change (S(p) in the paper).
  std::vector<int> affected(MemberOf(id).begin(), MemberOf(id).end());
  std::sort(affected.begin(), affected.end());
  FDRMS_RETURN_NOT_OK(tree_.Delete(id));
  for (int u : affected) {
    EmitRemove(u, id, deltas);
    auto& list = topk_[u];
    auto in_topk = std::find_if(list.begin(), list.end(),
                                [&](const ScoredId& s) { return s.id == id; });
    if (in_topk == list.end()) continue;  // only the approx tail changes
    RebuildUtility(u, deltas);
  }
  return Status::OK();
}

void TopKMaintainer::RebuildUtility(int utility, std::vector<TopKDelta>* deltas) {
  const Point& u = utilities_[utility];
  topk_[utility] = tree_.TopK(u, k_);
  double tau = ThresholdFor(utility);
  // ω_k only decreases on deletion, so existing members stay eligible; the
  // range query finds the (possibly new) entrants at the lowered bar.
  for (const ScoredId& s : tree_.ScoreRange(u, tau)) {
    if (approx_[utility].count(s.id) == 0) EmitAdd(utility, s.id, deltas);
  }
  cone_.SetThreshold(utility, tau);
}

Status TopKMaintainer::ValidateAgainstBruteForce() const {
  for (size_t u = 0; u < utilities_.size(); ++u) {
    // Recompute scores of all live tuples.
    std::vector<ScoredId> all;
    tree_.ForEach([&](int id, const Point& p) {
      all.push_back({Dot(utilities_[u], p), id});
    });
    std::sort(all.begin(), all.end(), BetterScore);
    double omega_k =
        static_cast<int>(all.size()) < k_ ? 0.0 : all[k_ - 1].score;
    double tau = (1.0 - eps_) * omega_k;
    std::unordered_set<int> expected;
    for (const ScoredId& s : all) {
      if (s.score >= tau) expected.insert(s.id);
    }
    if (expected != approx_[u]) {
      return Status::Internal("approx top-k mismatch for utility " +
                              std::to_string(u));
    }
    // Exact top-k list must equal the brute-force prefix.
    const auto& list = topk_[u];
    size_t expect_len = std::min<size_t>(k_, all.size());
    if (list.size() != expect_len) {
      return Status::Internal("top-k length mismatch for utility " +
                              std::to_string(u));
    }
    for (size_t i = 0; i < expect_len; ++i) {
      if (list[i].id != all[i].id) {
        return Status::Internal("top-k order mismatch for utility " +
                                std::to_string(u));
      }
    }
  }
  return Status::OK();
}

}  // namespace fdrms
