#ifndef FDRMS_TOPK_TOPK_MAINTAINER_H_
#define FDRMS_TOPK_TOPK_MAINTAINER_H_

/// \file topk_maintainer.h
/// Maintains the ε-approximate top-k result Φ_{k,ε}(u_i, P_t) of every
/// sampled utility vector u_i under tuple insertions and deletions
/// (Line 2 of Algorithm 2 and Line 3 of Algorithm 3), using the dual-tree
/// of Section III-C: a dynamic kd-tree over tuples and a cone tree over
/// utilities.
///
/// Φ_{k,ε}(u, P) = { p in P : <u, p> >= (1 - ε) * ω_k(u, P) }. When P has
/// fewer than k tuples we define ω_k = 0 so Φ contains all of P.
///
/// Every mutation reports the exact membership changes of the Φ sets as a
/// list of TopKDelta records; FD-RMS consumes them to update the set
/// system Σ and the dynamic set-cover solution.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/score_kernel.h"
#include "index/conetree.h"
#include "index/kdtree.h"

namespace fdrms {

/// One membership change of an approximate top-k set.
struct TopKDelta {
  int utility;   ///< index of the affected utility vector
  int tuple_id;  ///< tuple entering/leaving Φ_{k,ε}(u, P)
  bool added;    ///< true = entered, false = left
  bool operator==(const TopKDelta& o) const = default;
};

/// Dual-tree maintainer of all M approximate top-k sets.
class TopKMaintainer {
 public:
  /// \param dim attribute count d
  /// \param k the rank parameter of RMS(k, r)
  /// \param eps approximation factor of top-k results, in [0, 1)
  /// \param utilities the M sampled utility vectors (fixed for the run)
  TopKMaintainer(int dim, int k, double eps, std::vector<Point> utilities);

  /// Inserts tuple `id`; appends the resulting Φ membership changes to
  /// `deltas` (may be null when the caller does not track them).
  Status Insert(int id, const Point& p, std::vector<TopKDelta>* deltas);

  /// Deletes tuple `id`; appends Φ membership changes to `deltas`.
  Status Delete(int id, std::vector<TopKDelta>* deltas);

  int size() const { return tree_.size(); }
  int k() const { return k_; }
  double eps() const { return eps_; }
  int num_utilities() const { return static_cast<int>(utilities_.size()); }
  const std::vector<Point>& utilities() const { return utilities_; }
  const KdTree& tree() const { return tree_; }

  /// Current Φ_{k,ε}(u_i, P_t).
  const std::unordered_set<int>& ApproxTopK(int utility) const {
    return approx_[utility];
  }

  /// Current exact top-k list (best first) of utility i.
  const std::vector<ScoredId>& ExactTopK(int utility) const {
    return topk_[utility];
  }

  /// k-th best score of utility i (0 when fewer than k tuples are live).
  double OmegaK(int utility) const;

  /// Utilities whose Φ set currently contains tuple `id` — this is the set
  /// S(p) of the paper's set system.
  const std::unordered_set<int>& MemberOf(int id) const;

  /// Recomputes every Φ set from scratch and verifies it matches the
  /// maintained state; used by tests/failure injection. Returns the first
  /// inconsistency found, or OK.
  Status ValidateAgainstBruteForce() const;

 private:
  double ThresholdFor(int utility) const;
  void RebuildUtility(int utility, std::vector<TopKDelta>* deltas);
  void EmitAdd(int utility, int id, std::vector<TopKDelta>* deltas);
  void EmitRemove(int utility, int id, std::vector<TopKDelta>* deltas);

  int dim_;
  int k_;
  double eps_;
  std::vector<Point> utilities_;
  /// The utility matrix in contiguous form; Insert scores the cone-pruned
  /// candidate set through its blocked kernel instead of per-utility Dot
  /// calls over heap-scattered Points.
  ScoreMatrix umat_;
  /// Scratch for the per-insert candidate scores (avoids an allocation per
  /// mutation; sized to the affected set on use).
  std::vector<double> score_scratch_;
  /// Scratch for the eviction sweep: current members of one Φ set and
  /// their batch-gathered scores against the raised admission bar.
  std::vector<int> member_scratch_;
  std::vector<double> member_score_scratch_;
  KdTree tree_;
  ConeTree cone_;
  std::vector<std::vector<ScoredId>> topk_;            // per utility
  std::vector<std::unordered_set<int>> approx_;        // per utility
  std::unordered_map<int, std::unordered_set<int>> member_of_;  // S(p)
  const std::unordered_set<int> empty_set_;
};

}  // namespace fdrms

#endif  // FDRMS_TOPK_TOPK_MAINTAINER_H_
