#include "geometry/simd_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "geometry/score_kernel.h"

#if defined(FDRMS_HAVE_AVX2_KERNEL) || defined(FDRMS_HAVE_AVX512_KERNEL) || \
    defined(FDRMS_HAVE_NEON_KERNEL)
#include "geometry/simd/score_kernels_simd.h"
#endif

namespace fdrms {

namespace {

constexpr ScoreKernels kScalarKernels{&ScoreBlockScalar, &ScoreGatherScalar,
                                      SimdTier::kScalar};
#if defined(FDRMS_HAVE_AVX2_KERNEL)
constexpr ScoreKernels kAvx2Kernels{&simd::ScoreBlockAvx2,
                                    &simd::ScoreGatherAvx2, SimdTier::kAvx2};
#endif
#if defined(FDRMS_HAVE_AVX512_KERNEL)
constexpr ScoreKernels kAvx512Kernels{&simd::ScoreBlockAvx512,
                                      &simd::ScoreGatherAvx512,
                                      SimdTier::kAvx512};
#endif
#if defined(FDRMS_HAVE_NEON_KERNEL)
constexpr ScoreKernels kNeonKernels{&simd::ScoreBlockNeon,
                                    &simd::ScoreGatherNeon, SimdTier::kNeon};
#endif

const ScoreKernels* KernelsFor(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return &kScalarKernels;
#if defined(FDRMS_HAVE_AVX2_KERNEL)
    case SimdTier::kAvx2:
      return &kAvx2Kernels;
#endif
#if defined(FDRMS_HAVE_AVX512_KERNEL)
    case SimdTier::kAvx512:
      return &kAvx512Kernels;
#endif
#if defined(FDRMS_HAVE_NEON_KERNEL)
    case SimdTier::kNeon:
      return &kNeonKernels;
#endif
    default:
      return nullptr;
  }
}

/// Parses FDRMS_SIMD; nullptr/"auto"/unknown resolve to the best tier (with
/// a stderr warning for unknown or unsupported values, so a forced CI lane
/// cannot silently degrade without a trace).
SimdTier TierFromEnv() {
  const char* env = std::getenv("FDRMS_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return BestSupportedSimdTier();
  }
  SimdTier requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = SimdTier::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = SimdTier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = SimdTier::kAvx512;
  } else if (std::strcmp(env, "neon") == 0) {
    requested = SimdTier::kNeon;
  } else {
    std::fprintf(stderr,
                 "fdrms: unknown FDRMS_SIMD value '%s' "
                 "(want auto|scalar|avx2|avx512|neon); using auto\n",
                 env);
    return BestSupportedSimdTier();
  }
  if (!SimdTierSupported(requested)) {
    std::fprintf(stderr,
                 "fdrms: FDRMS_SIMD=%s is not supported on this "
                 "build/CPU; using auto (%s)\n",
                 env, SimdTierName(BestSupportedSimdTier()));
    return BestSupportedSimdTier();
  }
  return requested;
}

std::atomic<const ScoreKernels*> g_active{nullptr};

const ScoreKernels* ResolveActive() {
  const ScoreKernels* table = KernelsFor(TierFromEnv());
  // First resolver wins; a concurrent SetSimdTier is not overwritten.
  const ScoreKernels* expected = nullptr;
  g_active.compare_exchange_strong(expected, table,
                                   std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
#if defined(FDRMS_HAVE_AVX2_KERNEL)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdTier::kAvx512:
#if defined(FDRMS_HAVE_AVX512_KERNEL)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case SimdTier::kNeon:
#if defined(FDRMS_HAVE_NEON_KERNEL)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

SimdTier BestSupportedSimdTier() {
  for (SimdTier tier : {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kNeon}) {
    if (SimdTierSupported(tier)) return tier;
  }
  return SimdTier::kScalar;
}

const ScoreKernels& ActiveScoreKernels() {
  const ScoreKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveActive();
  return *table;
}

SimdTier ActiveSimdTier() { return ActiveScoreKernels().tier; }

bool SetSimdTier(SimdTier tier) {
  if (!SimdTierSupported(tier)) return false;
  g_active.store(KernelsFor(tier), std::memory_order_release);
  return true;
}

}  // namespace fdrms
