#ifndef FDRMS_GEOMETRY_SIMD_DISPATCH_H_
#define FDRMS_GEOMETRY_SIMD_DISPATCH_H_

/// \file simd_dispatch.h
/// Runtime selection of the SIMD scoring kernels.
///
/// The blocked kernels in geometry/score_kernel.h have one scalar reference
/// implementation and, where the toolchain and CPU allow, AVX2 / AVX-512
/// (x86-64) and NEON (aarch64) implementations compiled into separate
/// translation units with the matching ISA flags. This header owns the
/// choice between them:
///
///  * the first kernel call resolves the active tier — the best one the
///    running CPU supports (cpuid via __builtin_cpu_supports), unless the
///    FDRMS_SIMD environment variable forces one of "scalar", "avx2",
///    "avx512", "neon", or "auto" (unknown or unsupported values warn on
///    stderr and fall back to auto);
///  * tests and benchmarks can force a tier with SetSimdTier().
///
/// Every tier accumulates each row's inner product in the same coordinate
/// order as the scalar path (vector lanes run across *rows*, never within
/// one), so switching tiers never changes a single output bit — the
/// dispatch-matrix equivalence suite pins this down per tier.

#include <cstddef>

namespace fdrms {

/// Kernel tiers, ordered from reference to widest.
enum class SimdTier {
  kScalar = 0,  ///< portable blocked-scalar reference (always available)
  kNeon = 1,    ///< 2-lane double NEON (aarch64 baseline)
  kAvx2 = 2,    ///< 4-lane double AVX2
  kAvx512 = 3,  ///< 8-lane double AVX-512F
};

/// Stable lowercase name ("scalar", "neon", "avx2", "avx512").
const char* SimdTierName(SimdTier tier);

/// Scores `count` consecutive rows at `stride` doubles apart against `q`:
/// out[j] = <rows + j*stride, q>.
using ScoreBlockFn = void (*)(const double* rows, size_t stride, int d,
                              size_t count, const double* q, double* out);

/// Gather variant: out[j] = <base + idx[j]*stride, q>.
using ScoreGatherFn = void (*)(const double* base, size_t stride, int d,
                               const int* idx, size_t count, const double* q,
                               double* out);

/// One tier's kernel entry points.
struct ScoreKernels {
  ScoreBlockFn block;
  ScoreGatherFn gather;
  SimdTier tier;
};

/// True when `tier` was compiled in and the running CPU can execute it.
bool SimdTierSupported(SimdTier tier);

/// The widest supported tier (what "auto" resolves to).
SimdTier BestSupportedSimdTier();

/// The active kernel table; resolves FDRMS_SIMD on first use, then caches.
const ScoreKernels& ActiveScoreKernels();

/// Tier of the active kernel table.
SimdTier ActiveSimdTier();

/// Forces `tier` for subsequent kernel calls. Returns false — leaving the
/// active tier unchanged — when the tier is not supported here. Test/bench
/// hook; racing it against in-flight scoring is the caller's problem.
bool SetSimdTier(SimdTier tier);

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_SIMD_DISPATCH_H_
