#ifndef FDRMS_GEOMETRY_SCORE_KERNEL_H_
#define FDRMS_GEOMETRY_SCORE_KERNEL_H_

/// \file score_kernel.h
/// The scoring hot path: blocked inner-product kernels over a contiguous
/// utility/pivot matrix.
///
/// The maintained indexes score one tuple against *many* vectors on every
/// mutation — the cone tree's leaf scans, the kd-tree's leaf scans,
/// TopKMaintainer's insert and delete-repair loops, and the tau (admission
/// threshold) recomputation all reduce to "dot p against rows i..j".
/// Storing those rows as a `std::vector<Point>` (an array of separately
/// heap-allocated vectors) makes each dot a pointer chase; ScoreMatrix
/// flattens them into one contiguous slab (structure-of-arrays relative to
/// the old layout: all coordinates in a single allocation, rows at a fixed
/// padded stride) so the kernels below stream it.
///
/// Alignment contract: the slab base is 64-byte aligned (an aligned
/// allocation, not a plain std::vector whose base is only guaranteed
/// alignof(double)) and the stride is padded to a multiple of four doubles
/// (zero-filled), so *every row start is 32-byte aligned* and no vector
/// load of four consecutive doubles within a row straddles a cache line.
/// The SIMD tiers still issue unaligned-load instructions — ScoreBlock is
/// also used on raw caller-owned blocks with no alignment promise — but on
/// ScoreMatrix rows those loads never split a line.
///
/// Numerical contract: every kernel — the scalar reference here and the
/// runtime-dispatched AVX2/AVX-512/NEON tiers behind ScoreBlock/ScoreGather
/// (geometry/simd_dispatch.h) — accumulates each row's sum in the same
/// coordinate order as geometry/point.h `Dot`, so per-row results are
/// bit-identical to the scalar path: blocking and vectorization happen
/// *across* rows (one vector lane per row), never within a row, and no
/// tier uses FMA (the build pins -ffp-contract=off to match). Swapping
/// kernels or tiers can therefore never flip a threshold comparison
/// relative to the reference implementation.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"
#include "geometry/point.h"
#include "geometry/simd_dispatch.h"

namespace fdrms {

/// Slab base alignment in bytes (AVX-512 vector width); row starts are
/// aligned to at least half of it, see the file comment.
inline constexpr size_t kScoreSlabAlignmentBytes = 64;

/// Inner product over contiguous coordinate arrays, scalar accumulation
/// order (bit-identical to Dot on the same operands).
inline double DotContiguous(const double* a, const double* b, int d) {
  double s = 0.0;
  for (int k = 0; k < d; ++k) s += a[k] * b[k];
  return s;
}

/// Scalar reference of the block kernel: scores `count` consecutive rows of
/// a row-contiguous block against `q`, out[j] = <rows + j*stride, q>.
/// Blocked four rows per step with independent accumulators —
/// auto-vectorization-friendly without changing any row's accumulation
/// order.
inline void ScoreBlockScalar(const double* rows, size_t stride, int d,
                             size_t count, const double* q, double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* r0 = rows + (j + 0) * stride;
    const double* r1 = rows + (j + 1) * stride;
    const double* r2 = rows + (j + 2) * stride;
    const double* r3 = rows + (j + 3) * stride;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int k = 0; k < d; ++k) {
      const double qk = q[k];
      s0 += r0[k] * qk;
      s1 += r1[k] * qk;
      s2 += r2[k] * qk;
      s3 += r3[k] * qk;
    }
    out[j + 0] = s0;
    out[j + 1] = s1;
    out[j + 2] = s2;
    out[j + 3] = s3;
  }
  for (; j < count; ++j) {
    out[j] = DotContiguous(rows + j * stride, q, d);
  }
}

/// Scalar reference of the gather kernel: out[j] = <base + idx[j]*stride,
/// q>. Row starts are scattered but each row is contiguous.
inline void ScoreGatherScalar(const double* base, size_t stride, int d,
                              const int* idx, size_t count, const double* q,
                              double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* r0 = base + static_cast<size_t>(idx[j + 0]) * stride;
    const double* r1 = base + static_cast<size_t>(idx[j + 1]) * stride;
    const double* r2 = base + static_cast<size_t>(idx[j + 2]) * stride;
    const double* r3 = base + static_cast<size_t>(idx[j + 3]) * stride;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int k = 0; k < d; ++k) {
      const double qk = q[k];
      s0 += r0[k] * qk;
      s1 += r1[k] * qk;
      s2 += r2[k] * qk;
      s3 += r3[k] * qk;
    }
    out[j + 0] = s0;
    out[j + 1] = s1;
    out[j + 2] = s2;
    out[j + 3] = s3;
  }
  for (; j < count; ++j) {
    out[j] = DotContiguous(base + static_cast<size_t>(idx[j]) * stride, q, d);
  }
}

/// Dispatched block kernel (see simd_dispatch.h for tier selection).
inline void ScoreBlock(const double* rows, size_t stride, int d, size_t count,
                       const double* q, double* out) {
  ActiveScoreKernels().block(rows, stride, d, count, q, out);
}

/// Dispatched gather kernel.
inline void ScoreGather(const double* base, size_t stride, int d,
                        const int* idx, size_t count, const double* q,
                        double* out) {
  ActiveScoreKernels().gather(base, stride, d, idx, count, q, out);
}

/// A set of d-dimensional vectors in one contiguous, 64-byte-aligned slab.
/// Rows keep their append order; the stride is padded to a multiple of four
/// doubles (zero-filled) so row starts stay 32-byte aligned (see the file
/// comment for the full contract). Grows by row appends (amortized
/// doubling), so dynamic indexes can use it as their point store.
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  /// Empty matrix accepting `dim`-wide row appends.
  explicit ScoreMatrix(int dim) : dim_(dim), stride_(PaddedStride(dim)) {
    FDRMS_CHECK(dim > 0);
  }

  explicit ScoreMatrix(const std::vector<Point>& rows) {
    if (rows.empty()) return;
    dim_ = static_cast<int>(rows[0].size());
    FDRMS_CHECK(dim_ > 0) << "ScoreMatrix rows need at least one coordinate";
    stride_ = PaddedStride(dim_);
    Reserve(static_cast<int>(rows.size()));
    for (const Point& r : rows) AppendRow(r);
  }

  ScoreMatrix(const ScoreMatrix& o) { *this = o; }
  ScoreMatrix& operator=(const ScoreMatrix& o) {
    if (this == &o) return *this;
    data_.reset();
    capacity_ = 0;
    rows_ = 0;
    dim_ = o.dim_;
    stride_ = o.stride_;
    if (o.rows_ > 0) {
      Reserve(o.rows_);
      std::memcpy(data_.get(), o.data_.get(),
                  static_cast<size_t>(o.rows_) * stride_ * sizeof(double));
      rows_ = o.rows_;
    }
    return *this;
  }
  ScoreMatrix(ScoreMatrix&& o) noexcept { *this = std::move(o); }
  ScoreMatrix& operator=(ScoreMatrix&& o) noexcept {
    if (this == &o) return *this;
    data_ = std::move(o.data_);
    rows_ = o.rows_;
    dim_ = o.dim_;
    stride_ = o.stride_;
    capacity_ = o.capacity_;
    o.rows_ = o.capacity_ = 0;
    return *this;
  }

  int rows() const { return rows_; }
  int dim() const { return dim_; }
  size_t stride() const { return stride_; }

  const double* row(int i) const {
    FDRMS_DCHECK(i >= 0 && i < rows_) << "row " << i << " outside [0,"
                                      << rows_ << ")";
    return data_.get() + static_cast<size_t>(i) * stride_;
  }

  /// Grows capacity to at least `rows` (no-op when already large enough).
  void Reserve(int rows) {
    if (rows <= capacity_) return;
    FDRMS_CHECK(dim_ > 0) << "Reserve on a dimensionless ScoreMatrix";
    const size_t bytes = static_cast<size_t>(rows) * stride_ * sizeof(double);
    double* fresh = static_cast<double*>(
        ::operator new[](bytes, std::align_val_t{kScoreSlabAlignmentBytes}));
    FDRMS_CHECK(reinterpret_cast<uintptr_t>(fresh) %
                    kScoreSlabAlignmentBytes ==
                0);
    if (rows_ > 0) {
      std::memcpy(fresh, data_.get(),
                  static_cast<size_t>(rows_) * stride_ * sizeof(double));
    }
    data_.reset(fresh);
    capacity_ = rows;
  }

  /// Appends a row (the matrix's dim must match); returns its index.
  int AppendRow(const Point& p) {
    FDRMS_CHECK(static_cast<int>(p.size()) == dim_);
    return AppendRowUnchecked(p.data());
  }

  /// Appends `dim()` doubles from `src`; returns the new row's index.
  int AppendRowUnchecked(const double* src) {
    FDRMS_DCHECK(dim_ > 0);
    if (rows_ == capacity_) Reserve(capacity_ < 8 ? 8 : capacity_ * 2);
    double* dst = data_.get() + static_cast<size_t>(rows_) * stride_;
    for (int k = 0; k < dim_; ++k) dst[k] = src[k];
    for (size_t k = static_cast<size_t>(dim_); k < stride_; ++k) dst[k] = 0.0;
    return rows_++;
  }

  /// <row i, q>; bit-identical to Dot(rows[i], q).
  double RowDot(int i, const Point& q) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
    return DotContiguous(row(i), q.data(), dim_);
  }

  /// Scores every row: out[i] = <row i, q>. Dispatched block kernel.
  void ScoreAll(const Point& q, std::vector<double>* out) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
    out->resize(static_cast<size_t>(rows_));
    if (rows_ == 0) return;
    ScoreBlock(data_.get(), stride_, dim_, static_cast<size_t>(rows_),
               q.data(), out->data());
  }

  /// Scores a subset of rows: out[j] = <row idx[j], q>. Dispatched gather
  /// kernel. Every idx entry must be a valid row (DCHECK-enforced; an
  /// out-of-range index would silently read outside the slab in release
  /// builds otherwise).
  void ScoreSubset(const Point& q, const std::vector<int>& idx,
                   double* out) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
#ifndef NDEBUG
    for (int i : idx) {
      FDRMS_DCHECK(i >= 0 && i < rows_)
          << "ScoreSubset index " << i << " outside [0," << rows_ << ")";
    }
#endif
    if (idx.empty()) return;
    ScoreGather(data_.get(), stride_, dim_, idx.data(), idx.size(), q.data(),
                out);
  }

 private:
  static constexpr size_t PaddedStride(int dim) {
    return static_cast<size_t>((dim + 3) & ~3);
  }

  struct AlignedDelete {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t{kScoreSlabAlignmentBytes});
    }
  };

  int rows_ = 0;
  int dim_ = 0;
  size_t stride_ = 0;
  int capacity_ = 0;
  std::unique_ptr<double[], AlignedDelete> data_;
};

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_SCORE_KERNEL_H_
