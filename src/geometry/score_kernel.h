#ifndef FDRMS_GEOMETRY_SCORE_KERNEL_H_
#define FDRMS_GEOMETRY_SCORE_KERNEL_H_

/// \file score_kernel.h
/// The scoring hot path: blocked inner-product kernels over a contiguous
/// utility/pivot matrix.
///
/// The maintained indexes score one tuple against *many* vectors on every
/// mutation — the cone tree's leaf scans, TopKMaintainer's insert and
/// delete-repair loops, and the tau (admission threshold) recomputation all
/// reduce to "dot p against rows i..j". Storing those rows as a
/// `std::vector<Point>` (an array of separately heap-allocated vectors)
/// makes each dot a pointer chase; ScoreMatrix flattens them into one
/// contiguous slab (structure-of-arrays relative to the old layout: all
/// coordinates in a single allocation, rows at a fixed padded stride) so
/// the kernels below stream it.
///
/// Numerical contract: every kernel accumulates each row's sum in the same
/// coordinate order as geometry/point.h `Dot`, so per-row results are
/// bit-identical to the scalar path — blocking happens *across* rows (four
/// independent accumulators the compiler SLP-vectorizes), never within a
/// row. Swapping the kernels in can therefore never flip a threshold
/// comparison relative to the reference implementation.

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "geometry/point.h"

namespace fdrms {

/// Inner product over contiguous coordinate arrays, scalar accumulation
/// order (bit-identical to Dot on the same operands).
inline double DotContiguous(const double* a, const double* b, int d) {
  double s = 0.0;
  for (int k = 0; k < d; ++k) s += a[k] * b[k];
  return s;
}

/// Scores `count` consecutive rows of a row-contiguous block against `q`:
/// out[j] = <rows + j*stride, q>. Blocked four rows per step with
/// independent accumulators — auto-vectorization-friendly without changing
/// any row's accumulation order.
inline void ScoreBlock(const double* rows, size_t stride, int d, size_t count,
                       const double* q, double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* r0 = rows + (j + 0) * stride;
    const double* r1 = rows + (j + 1) * stride;
    const double* r2 = rows + (j + 2) * stride;
    const double* r3 = rows + (j + 3) * stride;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int k = 0; k < d; ++k) {
      const double qk = q[k];
      s0 += r0[k] * qk;
      s1 += r1[k] * qk;
      s2 += r2[k] * qk;
      s3 += r3[k] * qk;
    }
    out[j + 0] = s0;
    out[j + 1] = s1;
    out[j + 2] = s2;
    out[j + 3] = s3;
  }
  for (; j < count; ++j) {
    out[j] = DotContiguous(rows + j * stride, q, d);
  }
}

/// A fixed set of d-dimensional vectors in one contiguous slab. Rows keep
/// their construction order; the stride is padded to a multiple of four
/// doubles (zero-filled) so row starts stay 32-byte aligned relative to the
/// slab base.
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  explicit ScoreMatrix(const std::vector<Point>& rows) {
    rows_ = static_cast<int>(rows.size());
    dim_ = rows.empty() ? 0 : static_cast<int>(rows[0].size());
    stride_ = static_cast<size_t>((dim_ + 3) & ~3);
    data_.assign(static_cast<size_t>(rows_) * stride_, 0.0);
    for (int i = 0; i < rows_; ++i) {
      FDRMS_CHECK(static_cast<int>(rows[static_cast<size_t>(i)].size()) ==
                  dim_);
      double* dst = data_.data() + static_cast<size_t>(i) * stride_;
      for (int k = 0; k < dim_; ++k) dst[k] = rows[static_cast<size_t>(i)][static_cast<size_t>(k)];
    }
  }

  int rows() const { return rows_; }
  int dim() const { return dim_; }
  size_t stride() const { return stride_; }

  const double* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * stride_;
  }

  /// <row i, q>; bit-identical to Dot(rows[i], q).
  double RowDot(int i, const Point& q) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
    return DotContiguous(row(i), q.data(), dim_);
  }

  /// Scores every row: out[i] = <row i, q>. Blocked via ScoreBlock.
  void ScoreAll(const Point& q, std::vector<double>* out) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
    out->resize(static_cast<size_t>(rows_));
    ScoreBlock(data_.data(), stride_, dim_, static_cast<size_t>(rows_),
               q.data(), out->data());
  }

  /// Scores a subset of rows: out[j] = <row idx[j], q>. Gather variant of
  /// ScoreBlock (row starts are scattered but each row is contiguous).
  void ScoreSubset(const Point& q, const std::vector<int>& idx,
                   double* out) const {
    FDRMS_DCHECK(static_cast<int>(q.size()) == dim_);
    const double* base = data_.data();
    const double* qp = q.data();
    size_t j = 0;
    for (; j + 4 <= idx.size(); j += 4) {
      const double* r0 = base + static_cast<size_t>(idx[j + 0]) * stride_;
      const double* r1 = base + static_cast<size_t>(idx[j + 1]) * stride_;
      const double* r2 = base + static_cast<size_t>(idx[j + 2]) * stride_;
      const double* r3 = base + static_cast<size_t>(idx[j + 3]) * stride_;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int k = 0; k < dim_; ++k) {
        const double qk = qp[k];
        s0 += r0[k] * qk;
        s1 += r1[k] * qk;
        s2 += r2[k] * qk;
        s3 += r3[k] * qk;
      }
      out[j + 0] = s0;
      out[j + 1] = s1;
      out[j + 2] = s2;
      out[j + 3] = s3;
    }
    for (; j < idx.size(); ++j) {
      out[j] = DotContiguous(base + static_cast<size_t>(idx[j]) * stride_, qp,
                             dim_);
    }
  }

 private:
  int rows_ = 0;
  int dim_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;
};

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_SCORE_KERNEL_H_
