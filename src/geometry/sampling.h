#ifndef FDRMS_GEOMETRY_SAMPLING_H_
#define FDRMS_GEOMETRY_SAMPLING_H_

/// \file sampling.h
/// Sampling of utility directions from U = {u in R^d_+ : ||u|| = 1}, the
/// nonnegative orthant of the unit sphere (Section II-A of the paper).

#include <vector>

#include "common/rng.h"
#include "geometry/point.h"

namespace fdrms {

/// One utility vector drawn uniformly from the nonnegative orthant of the
/// unit sphere (|gaussian| per coordinate, then normalized).
Point SampleUnitVectorNonneg(int dim, Rng* rng);

/// The `count` utility vectors FD-RMS samples (Algorithm 2, Line 1): the
/// first `dim` are the standard basis e_1..e_d, the rest are uniform on U.
/// Requires count >= dim.
std::vector<Point> SampleUtilityVectors(int count, int dim, Rng* rng);

/// `count` uniform directions on U without the basis prefix; used by the
/// discretized baselines (DMM, eps-kernel, SPHERE) and the regret evaluator.
std::vector<Point> SampleDirections(int count, int dim, Rng* rng);

/// Greedy farthest-point subset of `candidates`: picks `count` directions
/// maximizing the minimum pairwise angle, seeded by the first candidate.
/// SPHERE uses this to spread its r representative directions.
std::vector<Point> FarthestPointDirections(const std::vector<Point>& candidates,
                                           int count);

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_SAMPLING_H_
