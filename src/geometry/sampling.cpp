#include "geometry/sampling.h"

#include <cmath>

#include "common/check.h"

namespace fdrms {

Point SampleUnitVectorNonneg(int dim, Rng* rng) {
  FDRMS_CHECK(dim > 0);
  Point u(dim);
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (int i = 0; i < dim; ++i) {
      u[i] = std::fabs(rng->Gaussian());
      norm2 += u[i] * u[i];
    }
  } while (norm2 == 0.0);
  double inv = 1.0 / std::sqrt(norm2);
  for (double& x : u) x *= inv;
  return u;
}

std::vector<Point> SampleUtilityVectors(int count, int dim, Rng* rng) {
  FDRMS_CHECK(count >= dim) << "need at least d vectors for the basis prefix";
  std::vector<Point> out;
  out.reserve(count);
  for (int i = 0; i < dim; ++i) {
    Point e(dim, 0.0);
    e[i] = 1.0;
    out.push_back(std::move(e));
  }
  for (int i = dim; i < count; ++i) out.push_back(SampleUnitVectorNonneg(dim, rng));
  return out;
}

std::vector<Point> SampleDirections(int count, int dim, Rng* rng) {
  std::vector<Point> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(SampleUnitVectorNonneg(dim, rng));
  return out;
}

std::vector<Point> FarthestPointDirections(const std::vector<Point>& candidates,
                                           int count) {
  std::vector<Point> chosen;
  if (candidates.empty() || count <= 0) return chosen;
  chosen.push_back(candidates[0]);
  // min_cos[i]: the largest cosine between candidate i and any chosen
  // direction; the next pick minimizes it (i.e., maximizes the min angle).
  std::vector<double> max_cos(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    max_cos[i] = CosineSimilarity(candidates[i], chosen[0]);
  }
  while (static_cast<int>(chosen.size()) < count) {
    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (max_cos[i] < max_cos[best]) best = i;
    }
    if (max_cos[best] >= 1.0 - 1e-12) break;  // all candidates already chosen
    chosen.push_back(candidates[best]);
    for (size_t i = 0; i < candidates.size(); ++i) {
      double c = CosineSimilarity(candidates[i], chosen.back());
      if (c > max_cos[i]) max_cos[i] = c;
    }
  }
  return chosen;
}

}  // namespace fdrms
