#ifndef FDRMS_GEOMETRY_POINTSET_H_
#define FDRMS_GEOMETRY_POINTSET_H_

/// \file pointset.h
/// A static, densely stored collection of d-dimensional points. Datasets
/// are materialized as PointSets; dynamic workloads replay insertions and
/// deletions of PointSet rows into the dynamic structures.

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "geometry/point.h"

namespace fdrms {

/// Row-major n x d matrix of points with stable integer row ids [0, n).
class PointSet {
 public:
  explicit PointSet(int dim) : dim_(dim) { FDRMS_CHECK(dim > 0); }

  /// Appends a point; returns its row id.
  int Add(const Point& p) {
    FDRMS_CHECK(static_cast<int>(p.size()) == dim_);
    data_.insert(data_.end(), p.begin(), p.end());
    return size() - 1;
  }

  int size() const { return static_cast<int>(data_.size()) / dim_; }
  int dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  /// Copies row `i` out as a Point.
  Point Get(int i) const {
    FDRMS_DCHECK(i >= 0 && i < size());
    return Point(data_.begin() + static_cast<size_t>(i) * dim_,
                 data_.begin() + static_cast<size_t>(i + 1) * dim_);
  }

  /// Raw pointer to row `i` (dim() doubles).
  const double* Row(int i) const {
    FDRMS_DCHECK(i >= 0 && i < size());
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  /// Score of row `i` under utility `u` without materializing a Point.
  double Score(const Point& u, int i) const {
    FDRMS_DCHECK(static_cast<int>(u.size()) == dim_);
    const double* row = Row(i);
    double s = 0.0;
    for (int j = 0; j < dim_; ++j) s += u[j] * row[j];
    return s;
  }

 private:
  int dim_;
  std::vector<double> data_;
};

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_POINTSET_H_
