#ifndef FDRMS_GEOMETRY_POINT_H_
#define FDRMS_GEOMETRY_POINT_H_

/// \file point.h
/// Basic vector math over tuples in the nonnegative orthant R^d_+ and
/// utility vectors on the unit sphere. Tuples and utilities are both plain
/// `std::vector<double>`s; all scoring is the inner product <u, p>.

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fdrms {

/// A tuple's attribute vector or a utility direction.
using Point = std::vector<double>;

/// Inner product <a, b>. The score of tuple `p` under utility `u` is
/// Dot(u, p).
inline double Dot(const Point& a, const Point& b) {
  FDRMS_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Euclidean norm.
inline double Norm(const Point& a) { return std::sqrt(Dot(a, a)); }

/// Scales `a` to unit norm. Requires a nonzero vector.
inline void Normalize(Point* a) {
  double n = Norm(*a);
  FDRMS_DCHECK(n > 0.0) << "cannot normalize the zero vector";
  for (double& x : *a) x /= n;
}

/// Cosine of the angle between `a` and `b` (both assumed nonzero), clamped
/// to [-1, 1] against rounding.
inline double CosineSimilarity(const Point& a, const Point& b) {
  double c = Dot(a, b) / (Norm(a) * Norm(b));
  return c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
}

/// Angle between `a` and `b` in radians.
inline double Angle(const Point& a, const Point& b) {
  return std::acos(CosineSimilarity(a, b));
}

/// Pareto domination: `a` dominates `b` iff a >= b coordinate-wise with at
/// least one strict inequality (larger is better on every attribute).
inline bool Dominates(const Point& a, const Point& b) {
  FDRMS_DCHECK(a.size() == b.size());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_POINT_H_
