/// AVX2 tier of the scoring kernels (see score_kernels_simd.h for the
/// calling contract). Strategy: four rows per step, one vector lane per
/// row. The inner loop loads a 4x4 tile (four consecutive coordinates of
/// four rows), transposes it, and accumulates column-by-column into a
/// single 4-lane accumulator — so lane i computes
///   s_i = ((s_i + r_i[k]*q[k]) + r_i[k+1]*q[k+1]) + ...
/// in exactly the scalar order, with separate multiply and add (no FMA).
/// Loads are unaligned-safe (the ScoreBlock API carries no alignment
/// promise); on 32-byte-aligned ScoreMatrix rows they never split a cache
/// line.

#include <immintrin.h>

#include <cstddef>

#include "geometry/simd/score_kernels_simd.h"

namespace fdrms {
namespace simd {
namespace {

/// Scalar-order dot of one row (tail rows below a block of four).
inline double Dot1(const double* r, const double* q, int d) {
  double s = 0.0;
  for (int k = 0; k < d; ++k) s += r[k] * q[k];
  return s;
}

/// Four rows against q, one lane per row, scalar accumulation order.
inline __m256d Dot4(const double* r0, const double* r1, const double* r2,
                    const double* r3, const double* q, int d) {
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= d; k += 4) {
    const __m256d a = _mm256_loadu_pd(r0 + k);
    const __m256d b = _mm256_loadu_pd(r1 + k);
    const __m256d c = _mm256_loadu_pd(r2 + k);
    const __m256d e = _mm256_loadu_pd(r3 + k);
    // 4x4 transpose: col_j = {r0[k+j], r1[k+j], r2[k+j], r3[k+j]}.
    const __m256d t0 = _mm256_unpacklo_pd(a, b);
    const __m256d t1 = _mm256_unpackhi_pd(a, b);
    const __m256d t2 = _mm256_unpacklo_pd(c, e);
    const __m256d t3 = _mm256_unpackhi_pd(c, e);
    const __m256d col0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d col1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d col2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d col3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(col0, _mm256_broadcast_sd(q + k)));
    acc =
        _mm256_add_pd(acc, _mm256_mul_pd(col1, _mm256_broadcast_sd(q + k + 1)));
    acc =
        _mm256_add_pd(acc, _mm256_mul_pd(col2, _mm256_broadcast_sd(q + k + 2)));
    acc =
        _mm256_add_pd(acc, _mm256_mul_pd(col3, _mm256_broadcast_sd(q + k + 3)));
  }
  for (; k < d; ++k) {
    const __m256d col = _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_broadcast_sd(q + k)));
  }
  return acc;
}

}  // namespace

void ScoreBlockAvx2(const double* rows, size_t stride, int d, size_t count,
                    const double* q, double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* r0 = rows + (j + 0) * stride;
    _mm256_storeu_pd(out + j, Dot4(r0, r0 + stride, r0 + 2 * stride,
                                   r0 + 3 * stride, q, d));
  }
  for (; j < count; ++j) out[j] = Dot1(rows + j * stride, q, d);
}

void ScoreGatherAvx2(const double* base, size_t stride, int d, const int* idx,
                     size_t count, const double* q, double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    _mm256_storeu_pd(
        out + j,
        Dot4(base + static_cast<size_t>(idx[j + 0]) * stride,
             base + static_cast<size_t>(idx[j + 1]) * stride,
             base + static_cast<size_t>(idx[j + 2]) * stride,
             base + static_cast<size_t>(idx[j + 3]) * stride, q, d));
  }
  for (; j < count; ++j) {
    out[j] = Dot1(base + static_cast<size_t>(idx[j]) * stride, q, d);
  }
}

}  // namespace simd
}  // namespace fdrms
