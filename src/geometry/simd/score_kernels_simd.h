#ifndef FDRMS_GEOMETRY_SIMD_SCORE_KERNELS_SIMD_H_
#define FDRMS_GEOMETRY_SIMD_SCORE_KERNELS_SIMD_H_

/// \file score_kernels_simd.h
/// Entry points of the per-ISA scoring kernels. Each pair is defined in a
/// translation unit compiled with the matching ISA flags (CMake gates the
/// TUs on compiler support and defines FDRMS_HAVE_*_KERNEL accordingly), so
/// they must only be called after the runtime support check in
/// simd_dispatch.cpp — calling one on a CPU without the ISA is an illegal
/// instruction, not a fallback.
///
/// Contract (shared with geometry/score_kernel.h): per-row accumulation in
/// ascending coordinate order with a single accumulator per row and no FMA,
/// so every tier's output is bit-identical to the scalar reference.

#include <cstddef>

namespace fdrms {
namespace simd {

void ScoreBlockAvx2(const double* rows, size_t stride, int d, size_t count,
                    const double* q, double* out);
void ScoreGatherAvx2(const double* base, size_t stride, int d, const int* idx,
                     size_t count, const double* q, double* out);

void ScoreBlockAvx512(const double* rows, size_t stride, int d, size_t count,
                      const double* q, double* out);
void ScoreGatherAvx512(const double* base, size_t stride, int d,
                       const int* idx, size_t count, const double* q,
                       double* out);

void ScoreBlockNeon(const double* rows, size_t stride, int d, size_t count,
                    const double* q, double* out);
void ScoreGatherNeon(const double* base, size_t stride, int d, const int* idx,
                     size_t count, const double* q, double* out);

}  // namespace simd
}  // namespace fdrms

#endif  // FDRMS_GEOMETRY_SIMD_SCORE_KERNELS_SIMD_H_
