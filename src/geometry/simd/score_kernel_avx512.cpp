/// AVX-512F tier of the scoring kernels (see score_kernels_simd.h for the
/// calling contract). Strategy: eight rows per step, one vector lane per
/// row. Columns are assembled from two 4x4 AVX2-style transposes (rows 0-3
/// and 4-7) glued into a 512-bit vector, then accumulated column-by-column
/// into one 8-lane accumulator — per-lane accumulation order is exactly the
/// scalar order, separate multiply and add (no FMA). Row counts below
/// eight fall to a 4-row AVX block and then scalar, so every row's result
/// stays bit-identical regardless of where it lands in the blocking.

#include <immintrin.h>

#include <cstddef>

#include "geometry/simd/score_kernels_simd.h"

namespace fdrms {
namespace simd {
namespace {

inline double Dot1(const double* r, const double* q, int d) {
  double s = 0.0;
  for (int k = 0; k < d; ++k) s += r[k] * q[k];
  return s;
}

/// 4x4 transpose of rows a..e at column k: out[j] = {a[k+j], b[k+j], ...}.
inline void Transpose4(const double* a, const double* b, const double* c,
                       const double* e, int k, __m256d out[4]) {
  const __m256d va = _mm256_loadu_pd(a + k);
  const __m256d vb = _mm256_loadu_pd(b + k);
  const __m256d vc = _mm256_loadu_pd(c + k);
  const __m256d ve = _mm256_loadu_pd(e + k);
  const __m256d t0 = _mm256_unpacklo_pd(va, vb);
  const __m256d t1 = _mm256_unpackhi_pd(va, vb);
  const __m256d t2 = _mm256_unpacklo_pd(vc, ve);
  const __m256d t3 = _mm256_unpackhi_pd(vc, ve);
  out[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
  out[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
  out[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
  out[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
}

/// Four rows against q (AVX sub-kernel for the 4..7-row tail).
inline __m256d Dot4(const double* r0, const double* r1, const double* r2,
                    const double* r3, const double* q, int d) {
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  __m256d cols[4];
  for (; k + 4 <= d; k += 4) {
    Transpose4(r0, r1, r2, r3, k, cols);
    for (int c = 0; c < 4; ++c) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(cols[c], _mm256_broadcast_sd(q + k + c)));
    }
  }
  for (; k < d; ++k) {
    const __m256d col = _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_broadcast_sd(q + k)));
  }
  return acc;
}

/// Eight rows against q, one lane per row, scalar accumulation order.
/// The main loop transposes a full 8x8 tile with the three-level butterfly
/// (8 unpacks + 16 shuffle_f64x2 for 64 elements) instead of gluing 4x4
/// transposes — the kernel is shuffle-port-bound, and the butterfly cuts
/// shuffle work per element by ~2x over the 4-column scheme.
inline __m512d Dot8(const double* const r[8], const double* q, int d) {
  __m512d acc = _mm512_setzero_pd();
  int k = 0;
  for (; k + 8 <= d; k += 8) {
    // Level 0: one 8-wide load per row.
    const __m512d z0 = _mm512_loadu_pd(r[0] + k);
    const __m512d z1 = _mm512_loadu_pd(r[1] + k);
    const __m512d z2 = _mm512_loadu_pd(r[2] + k);
    const __m512d z3 = _mm512_loadu_pd(r[3] + k);
    const __m512d z4 = _mm512_loadu_pd(r[4] + k);
    const __m512d z5 = _mm512_loadu_pd(r[5] + k);
    const __m512d z6 = _mm512_loadu_pd(r[6] + k);
    const __m512d z7 = _mm512_loadu_pd(r[7] + k);
    // Level 1: interleave row pairs within 128-bit lanes.
    const __m512d t0 = _mm512_unpacklo_pd(z0, z1);  // cols 0,2,4,6 of r0,r1
    const __m512d t1 = _mm512_unpackhi_pd(z0, z1);  // cols 1,3,5,7
    const __m512d t2 = _mm512_unpacklo_pd(z2, z3);
    const __m512d t3 = _mm512_unpackhi_pd(z2, z3);
    const __m512d t4 = _mm512_unpacklo_pd(z4, z5);
    const __m512d t5 = _mm512_unpackhi_pd(z4, z5);
    const __m512d t6 = _mm512_unpacklo_pd(z6, z7);
    const __m512d t7 = _mm512_unpackhi_pd(z6, z7);
    // Level 2: gather 128-bit blocks across row quads.
    const __m512d u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);  // cols 0,4 r0-3
    const __m512d u1 = _mm512_shuffle_f64x2(t0, t2, 0xDD);  // cols 2,6 r0-3
    const __m512d u2 = _mm512_shuffle_f64x2(t1, t3, 0x88);  // cols 1,5 r0-3
    const __m512d u3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);  // cols 3,7 r0-3
    const __m512d u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);  // cols 0,4 r4-7
    const __m512d u5 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
    const __m512d u6 = _mm512_shuffle_f64x2(t5, t7, 0x88);
    const __m512d u7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);
    // Level 3: full columns {r0[c], ..., r7[c]}.
    const __m512d c0 = _mm512_shuffle_f64x2(u0, u4, 0x88);
    const __m512d c1 = _mm512_shuffle_f64x2(u2, u6, 0x88);
    const __m512d c2 = _mm512_shuffle_f64x2(u1, u5, 0x88);
    const __m512d c3 = _mm512_shuffle_f64x2(u3, u7, 0x88);
    const __m512d c4 = _mm512_shuffle_f64x2(u0, u4, 0xDD);
    const __m512d c5 = _mm512_shuffle_f64x2(u2, u6, 0xDD);
    const __m512d c6 = _mm512_shuffle_f64x2(u1, u5, 0xDD);
    const __m512d c7 = _mm512_shuffle_f64x2(u3, u7, 0xDD);
    // Accumulate in ascending column order (the scalar order).
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c0, _mm512_set1_pd(q[k + 0])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c1, _mm512_set1_pd(q[k + 1])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c2, _mm512_set1_pd(q[k + 2])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c3, _mm512_set1_pd(q[k + 3])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c4, _mm512_set1_pd(q[k + 4])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c5, _mm512_set1_pd(q[k + 5])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c6, _mm512_set1_pd(q[k + 6])));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c7, _mm512_set1_pd(q[k + 7])));
  }
  __m256d lo[4], hi[4];
  for (; k + 4 <= d; k += 4) {
    Transpose4(r[0], r[1], r[2], r[3], k, lo);
    Transpose4(r[4], r[5], r[6], r[7], k, hi);
    for (int c = 0; c < 4; ++c) {
      const __m512d col =
          _mm512_insertf64x4(_mm512_castpd256_pd512(lo[c]), hi[c], 1);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(col, _mm512_set1_pd(q[k + c])));
    }
  }
  for (; k < d; ++k) {
    const __m512d col =
        _mm512_set_pd(r[7][k], r[6][k], r[5][k], r[4][k], r[3][k], r[2][k],
                      r[1][k], r[0][k]);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(col, _mm512_set1_pd(q[k])));
  }
  return acc;
}

/// d == stride == 4 fast path: eight rows are 32 contiguous doubles, so
/// four 512-bit loads + four vpermt2pd + four shuffle_f64x2 yield all four
/// columns — 8 shuffles per 32 products, with the q broadcasts hoisted out
/// of the row loop entirely.
void ScoreBlock4x4(const double* rows, size_t count, const double* q,
                   double* out) {
  const __m512i idx01 = _mm512_setr_epi64(0, 4, 8, 12, 1, 5, 9, 13);
  const __m512i idx23 = _mm512_setr_epi64(2, 6, 10, 14, 3, 7, 11, 15);
  const __m512d bq0 = _mm512_set1_pd(q[0]);
  const __m512d bq1 = _mm512_set1_pd(q[1]);
  const __m512d bq2 = _mm512_set1_pd(q[2]);
  const __m512d bq3 = _mm512_set1_pd(q[3]);
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const double* p = rows + j * 4;
    const __m512d z0 = _mm512_loadu_pd(p);       // rows j, j+1
    const __m512d z1 = _mm512_loadu_pd(p + 8);   // rows j+2, j+3
    const __m512d z2 = _mm512_loadu_pd(p + 16);  // rows j+4, j+5
    const __m512d z3 = _mm512_loadu_pd(p + 24);  // rows j+6, j+7
    // a01 = {c0 of rows 0-3 | c1 of rows 0-3} as 128-bit blocks, etc.
    const __m512d a01 = _mm512_permutex2var_pd(z0, idx01, z1);
    const __m512d b01 = _mm512_permutex2var_pd(z2, idx01, z3);
    const __m512d a23 = _mm512_permutex2var_pd(z0, idx23, z1);
    const __m512d b23 = _mm512_permutex2var_pd(z2, idx23, z3);
    const __m512d c0 = _mm512_shuffle_f64x2(a01, b01, 0x44);
    const __m512d c1 = _mm512_shuffle_f64x2(a01, b01, 0xEE);
    const __m512d c2 = _mm512_shuffle_f64x2(a23, b23, 0x44);
    const __m512d c3 = _mm512_shuffle_f64x2(a23, b23, 0xEE);
    // Start from +0.0 like the scalar loop: 0.0 + (-0.0) must stay +0.0.
    __m512d acc = _mm512_add_pd(_mm512_setzero_pd(), _mm512_mul_pd(c0, bq0));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c1, bq1));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c2, bq2));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(c3, bq3));
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j + 4 <= count; j += 4) {
    const double* r0 = rows + j * 4;
    _mm256_storeu_pd(out + j, Dot4(r0, r0 + 4, r0 + 8, r0 + 12, q, 4));
  }
  for (; j < count; ++j) out[j] = Dot1(rows + j * 4, q, 4);
}

}  // namespace

void ScoreBlockAvx512(const double* rows, size_t stride, int d, size_t count,
                      const double* q, double* out) {
  if (d == 4 && stride == 4) {
    ScoreBlock4x4(rows, count, q, out);
    return;
  }
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const double* r[8];
    for (int i = 0; i < 8; ++i) r[i] = rows + (j + i) * stride;
    _mm512_storeu_pd(out + j, Dot8(r, q, d));
  }
  for (; j + 4 <= count; j += 4) {
    const double* r0 = rows + j * stride;
    _mm256_storeu_pd(out + j, Dot4(r0, r0 + stride, r0 + 2 * stride,
                                   r0 + 3 * stride, q, d));
  }
  for (; j < count; ++j) out[j] = Dot1(rows + j * stride, q, d);
}

void ScoreGatherAvx512(const double* base, size_t stride, int d,
                       const int* idx, size_t count, const double* q,
                       double* out) {
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const double* r[8];
    for (int i = 0; i < 8; ++i) {
      r[i] = base + static_cast<size_t>(idx[j + i]) * stride;
    }
    _mm512_storeu_pd(out + j, Dot8(r, q, d));
  }
  for (; j + 4 <= count; j += 4) {
    _mm256_storeu_pd(
        out + j,
        Dot4(base + static_cast<size_t>(idx[j + 0]) * stride,
             base + static_cast<size_t>(idx[j + 1]) * stride,
             base + static_cast<size_t>(idx[j + 2]) * stride,
             base + static_cast<size_t>(idx[j + 3]) * stride, q, d));
  }
  for (; j < count; ++j) {
    out[j] = Dot1(base + static_cast<size_t>(idx[j]) * stride, q, d);
  }
}

}  // namespace simd
}  // namespace fdrms
