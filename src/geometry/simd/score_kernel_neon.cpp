/// NEON (aarch64) tier of the scoring kernels (see score_kernels_simd.h
/// for the calling contract). Strategy: two rows per step, one 64-bit lane
/// per row. The inner loop loads a 2x2 tile, transposes it with trn1/trn2,
/// and accumulates column-by-column — per-lane accumulation order is
/// exactly the scalar order. Separate vmul/vadd, never vfma: the build
/// pins -ffp-contract=off so the scalar reference does not contract either,
/// keeping the tiers bit-identical.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "geometry/simd/score_kernels_simd.h"

namespace fdrms {
namespace simd {
namespace {

inline double Dot1(const double* r, const double* q, int d) {
  double s = 0.0;
  for (int k = 0; k < d; ++k) s += r[k] * q[k];
  return s;
}

/// Two rows against q, one lane per row, scalar accumulation order.
inline float64x2_t Dot2(const double* r0, const double* r1, const double* q,
                        int d) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int k = 0;
  for (; k + 2 <= d; k += 2) {
    const float64x2_t a = vld1q_f64(r0 + k);  // {r0[k], r0[k+1]}
    const float64x2_t b = vld1q_f64(r1 + k);  // {r1[k], r1[k+1]}
    const float64x2_t col0 = vtrn1q_f64(a, b);  // {r0[k],   r1[k]}
    const float64x2_t col1 = vtrn2q_f64(a, b);  // {r0[k+1], r1[k+1]}
    acc = vaddq_f64(acc, vmulq_f64(col0, vdupq_n_f64(q[k])));
    acc = vaddq_f64(acc, vmulq_f64(col1, vdupq_n_f64(q[k + 1])));
  }
  for (; k < d; ++k) {
    const float64x2_t col = vsetq_lane_f64(r1[k], vdupq_n_f64(r0[k]), 1);
    acc = vaddq_f64(acc, vmulq_f64(col, vdupq_n_f64(q[k])));
  }
  return acc;
}

}  // namespace

void ScoreBlockNeon(const double* rows, size_t stride, int d, size_t count,
                    const double* q, double* out) {
  size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const double* r0 = rows + j * stride;
    vst1q_f64(out + j, Dot2(r0, r0 + stride, q, d));
  }
  for (; j < count; ++j) out[j] = Dot1(rows + j * stride, q, d);
}

void ScoreGatherNeon(const double* base, size_t stride, int d, const int* idx,
                     size_t count, const double* q, double* out) {
  size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    vst1q_f64(out + j,
              Dot2(base + static_cast<size_t>(idx[j + 0]) * stride,
                   base + static_cast<size_t>(idx[j + 1]) * stride, q, d));
  }
  for (; j < count; ++j) {
    out[j] = Dot1(base + static_cast<size_t>(idx[j]) * stride, q, d);
  }
}

}  // namespace simd
}  // namespace fdrms

#endif  // defined(__aarch64__)
