#include "obs/registry.h"

#include <utility>

#include "common/check.h"
#include "obs/exporters.h"

namespace fdrms {
namespace obs {

std::vector<double> DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  // 1µs · 1.5^i ladder whose last finite bucket crosses 10 seconds (41
  // finite buckets). Covers the full observed range of publish/apply/
  // migration-phase durations with ~±25% worst-case quantile quantization.
  for (double b = 1.0;; b *= 1.5) {
    bounds.push_back(b);
    if (b >= 1e7) break;
  }
  return bounds;
}

double MetricSnapshot::Quantile(double q) const {
  switch (type) {
    case MetricType::kPow2Histogram:
      return Pow2HistQuantile(buckets, q);
    case MetricType::kLatencyHistogram:
      return LatencyHistogram::QuantileFromBuckets(bounds, buckets, q);
    default:
      return 0.0;
  }
}

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name,
                                             const Labels& labels) const {
  for (const auto& m : metrics) {
    if (m.name != name) continue;
    if (!labels.empty() && m.labels != labels) continue;
    return &m;
  }
  return nullptr;
}

/// One registered series: identity plus exactly one live metric object.
struct MetricRegistry::Entry {
  std::string name;
  std::string help;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Pow2Histogram> pow2;
  std::unique_ptr<LatencyHistogram> latency;
};

namespace {

std::string SeriesKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1e');
    key += v;
  }
  return key;
}

}  // namespace

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Entry* MetricRegistry::GetOrCreate(
    const std::string& name, const std::string& help, const Labels& labels,
    MetricType type, std::vector<double> bounds_us) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  // Type consistency is enforced per NAME, not per series: a Prometheus
  // family carries one # TYPE line, so the same name registered with
  // different labels but a different type would render an exposition whose
  // TYPE mismatches some of its series.
  auto type_it = types_by_name_.find(name);
  if (type_it != types_by_name_.end()) {
    FDRMS_CHECK(type_it->second == type)
        << "metric '" << name << "' re-registered as "
        << MetricTypeName(type) << " but exists as "
        << MetricTypeName(type_it->second);
  } else {
    types_by_name_.emplace(name, type);
  }
  auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kPow2Histogram:
      entry->pow2 = std::make_unique<Pow2Histogram>();
      break;
    case MetricType::kLatencyHistogram:
      entry->latency = std::make_unique<LatencyHistogram>(
          bounds_us.empty() ? DefaultLatencyBoundsUs() : std::move(bounds_us));
      break;
  }
  Entry* raw = entry.get();
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(entry));
  return raw;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const Labels& labels) {
  return GetOrCreate(name, help, labels, MetricType::kCounter, {})
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const Labels& labels) {
  return GetOrCreate(name, help, labels, MetricType::kGauge, {})->gauge.get();
}

Pow2Histogram* MetricRegistry::GetPow2Histogram(const std::string& name,
                                                const std::string& help,
                                                const Labels& labels) {
  return GetOrCreate(name, help, labels, MetricType::kPow2Histogram, {})
      ->pow2.get();
}

LatencyHistogram* MetricRegistry::GetLatencyHistogram(
    const std::string& name, const std::string& help, const Labels& labels,
    std::vector<double> bounds_us) {
  return GetOrCreate(name, help, labels, MetricType::kLatencyHistogram,
                     std::move(bounds_us))
      ->latency.get();
}

uint64_t MetricRegistry::NowMicros() const {
  return static_cast<uint64_t>(uptime_.ElapsedMicros());
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.uptime_seconds = uptime_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.metrics.reserve(entries_.size() + 2);
    for (const auto& e : entries_) {
      MetricSnapshot m;
      m.name = e->name;
      m.help = e->help;
      m.type = e->type;
      m.labels = e->labels;
      switch (e->type) {
        case MetricType::kCounter:
          m.counter_value = e->counter->Value();
          break;
        case MetricType::kGauge:
          m.gauge_value = e->gauge->Value();
          break;
        case MetricType::kPow2Histogram:
          m.buckets = e->pow2->BucketSums();
          for (uint64_t c : m.buckets) m.count += c;
          break;
        case MetricType::kLatencyHistogram:
          m.bounds = e->latency->bounds_us();
          m.buckets = e->latency->BucketSums();
          for (uint64_t c : m.buckets) m.count += c;
          m.sum = e->latency->SumUs();
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
    // Process-level series synthesized at scrape time, so every exporter
    // (and Find) sees them without any layer having to register or update
    // them: scrapes are self-describing about the process they came from.
    MetricSnapshot uptime;
    uptime.name = "process_uptime_seconds";
    uptime.help = "Seconds since this registry (and its process) started";
    uptime.type = MetricType::kGauge;
    uptime.gauge_value = snap.uptime_seconds;
    snap.metrics.push_back(std::move(uptime));
    MetricSnapshot series;
    series.name = "obs_registry_series";
    series.help = "Registered metric series in this registry";
    series.type = MetricType::kGauge;
    series.gauge_value = static_cast<double>(entries_.size());
    snap.metrics.push_back(std::move(series));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  snap.trace = trace_.Collect();
  return snap;
}

std::string MetricRegistry::PrometheusText() const {
  return obs::PrometheusText(Snapshot());
}

std::string MetricRegistry::JsonText() const { return obs::JsonText(Snapshot()); }

std::string MetricRegistry::DebugString() const {
  return obs::DebugString(Snapshot());
}

}  // namespace obs
}  // namespace fdrms
