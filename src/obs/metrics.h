#ifndef FDRMS_OBS_METRICS_H_
#define FDRMS_OBS_METRICS_H_

/// \file metrics.h
/// Metric primitives behind the registry: counters, gauges, and two
/// histogram flavors (power-of-two and explicit-boundary latency buckets).
///
/// Write-path contract: one relaxed fetch_add on a per-thread stripe, no
/// locks, no allocation. Each metric owns kMetricStripes cache-line-padded
/// rows of relaxed atomics; threads pick a stripe once (round-robin at
/// first touch) and stay on it, so concurrent writers almost never share a
/// line. Reads aggregate across stripes — each stripe is monotone for
/// counters/histograms, so aggregated values never decrease across scrapes
/// even while writers race the reader.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/pow2_hist.h"

namespace fdrms {
namespace obs {

/// Label set stamped on a metric series (e.g. {{"shard", "3"}}). Order is
/// preserved and significant for series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Stripe fan-out per metric. 16 padded slots comfortably cover the thread
/// counts this system runs (1 writer per shard + a handful of readers and
/// submitters); collisions just mean two threads share a cache line, never
/// a correctness problem.
inline constexpr size_t kMetricStripes = 16;

/// Stable per-thread stripe index, assigned round-robin at first use.
inline size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

enum class MetricType { kCounter, kGauge, kPow2Histogram, kLatencyHistogram };

inline const char* MetricTypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kPow2Histogram: return "pow2_histogram";
    case MetricType::kLatencyHistogram: return "latency_histogram";
  }
  return "unknown";
}

/// Monotone counter. Increment is one relaxed fetch_add on the calling
/// thread's stripe; Value() sums the stripes (each monotone, so the sum
/// never goes backwards even under concurrent increments).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    stripes_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell stripes_[kMetricStripes];
};

/// Last-writer-wins gauge. Single atomic double — gauges are set from one
/// owner thread (writer loop, migration admin) and only read elsewhere, so
/// striping would buy nothing.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two histogram over integer values (queue depths, batch sizes):
/// kPow2HistBuckets buckets, bucket 0 = value 0, bucket i = [2^(i-1), 2^i),
/// last bucket open-ended. Record = bit_width + one relaxed fetch_add.
class Pow2Histogram {
 public:
  Pow2Histogram() = default;
  Pow2Histogram(const Pow2Histogram&) = delete;
  Pow2Histogram& operator=(const Pow2Histogram&) = delete;

  void Record(uint64_t v) {
    stripes_[ThreadStripe()].buckets[Pow2HistBucket(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Per-bucket counts summed across stripes, in the same layout the
  /// legacy ResultSnapshot vectors used.
  std::vector<uint64_t> BucketSums() const {
    std::vector<uint64_t> out(kPow2HistBuckets, 0);
    for (const auto& s : stripes_) {
      for (size_t b = 0; b < kPow2HistBuckets; ++b) {
        out[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) {
      for (size_t b = 0; b < kPow2HistBuckets; ++b) {
        total += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return total;
  }

  double Quantile(double q) const { return Pow2HistQuantile(BucketSums(), q); }

 private:
  struct alignas(64) Row {
    std::atomic<uint64_t> buckets[kPow2HistBuckets] = {};
  };
  Row stripes_[kMetricStripes];
};

/// Default geometric boundary ladder for latency histograms, in
/// microseconds: 1µs · 1.5^i up to 10s, 41 finite buckets plus overflow.
/// Ratio 1.5 bounds quantile quantization error to ~±25% — far inside the
/// 2x p99 inflation the perf-smoke gate tolerates.
std::vector<double> DefaultLatencyBoundsUs();

/// Explicit-boundary histogram for durations, recorded in microseconds.
/// Bucket i counts values v <= bounds[i] (first such i); the trailing
/// overflow bucket catches everything past the last boundary. Quantiles
/// interpolate linearly inside the crossing bucket, giving real
/// p50/p90/p99/p999 instead of the pow2 bucket floors.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds_us)
      : bounds_(std::move(bounds_us)),
        stripes_(new Row[kMetricStripes]) {
    for (size_t s = 0; s < kMetricStripes; ++s) {
      stripes_[s].buckets.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
      for (size_t b = 0; b <= bounds_.size(); ++b) {
        stripes_[s].buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(double us) {
    if (us < 0) us = 0;
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), us) -
        bounds_.begin());
    Row& row = stripes_[ThreadStripe()];
    row.buckets[b].fetch_add(1, std::memory_order_relaxed);
    row.sum_ns.fetch_add(static_cast<uint64_t>(us * 1e3),
                         std::memory_order_relaxed);
  }

  const std::vector<double>& bounds_us() const { return bounds_; }

  /// Per-bucket counts summed across stripes; size() == bounds size + 1
  /// (last entry is the overflow bucket).
  std::vector<uint64_t> BucketSums() const {
    std::vector<uint64_t> out(bounds_.size() + 1, 0);
    for (size_t s = 0; s < kMetricStripes; ++s) {
      for (size_t b = 0; b <= bounds_.size(); ++b) {
        out[b] += stripes_[s].buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (uint64_t c : BucketSums()) total += c;
    return total;
  }

  /// Total of recorded values in microseconds.
  double SumUs() const {
    uint64_t ns = 0;
    for (size_t s = 0; s < kMetricStripes; ++s) {
      ns += stripes_[s].sum_ns.load(std::memory_order_relaxed);
    }
    return static_cast<double>(ns) / 1e3;
  }

  double Quantile(double q) const {
    return QuantileFromBuckets(bounds_, BucketSums(), q);
  }

  /// Quantile over a frozen bucket snapshot: walk the cumulative counts to
  /// the crossing bucket and interpolate between its boundaries. Empty
  /// histograms report 0; overflow-bucket hits report the last boundary
  /// (a conservative floor, mirroring the pow2 convention).
  static double QuantileFromBuckets(const std::vector<double>& bounds,
                                    const std::vector<uint64_t>& buckets,
                                    double q) {
    uint64_t total = 0;
    for (uint64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(total);
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      const uint64_t before = seen;
      seen += buckets[b];
      if (static_cast<double>(seen) < target) continue;
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          (target - static_cast<double>(before)) /
          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    return bounds.empty() ? 0.0 : bounds.back();
  }

 private:
  struct alignas(64) Row {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> sum_ns{0};
  };
  std::vector<double> bounds_;
  std::unique_ptr<Row[]> stripes_;
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_METRICS_H_
