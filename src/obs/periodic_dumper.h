#ifndef FDRMS_OBS_PERIODIC_DUMPER_H_
#define FDRMS_OBS_PERIODIC_DUMPER_H_

/// \file periodic_dumper.h
/// Background thread that scrapes a MetricRegistry on a fixed cadence and
/// writes the Prometheus exposition (and optionally a JSON sidecar) to
/// disk with atomic tmp+rename, so external scrapers / the CI metrics-smoke
/// step always read a complete document. A final dump is flushed on Stop(),
/// guaranteeing the last scrape reflects end-of-run totals.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace fdrms {
namespace obs {

struct PeriodicDumperOptions {
  std::string prometheus_path;  ///< empty = no Prometheus file
  std::string json_path;        ///< empty = no JSON file
  int interval_ms = 1000;
};

class PeriodicDumper {
 public:
  PeriodicDumper(std::shared_ptr<MetricRegistry> registry,
                 PeriodicDumperOptions options);
  ~PeriodicDumper();  // stops if still running
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  void Start();
  /// Idempotent and safe for concurrent callers: exactly one caller joins
  /// the dump thread and writes the final dump; the others return
  /// immediately (possibly before that final dump lands).
  void Stop();

  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  uint64_t dump_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void DumpOnce();

  std::shared_ptr<MetricRegistry> registry_;
  PeriodicDumperOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<uint64_t> dumps_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_PERIODIC_DUMPER_H_
