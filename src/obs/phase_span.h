#ifndef FDRMS_OBS_PHASE_SPAN_H_
#define FDRMS_OBS_PHASE_SPAN_H_

/// \file phase_span.h
/// PhaseSpan: RAII scoped timer in the PhaseRecorder tradition — construct
/// at phase entry, and on destruction the measured duration lands in a
/// latency histogram and (optionally) as a trace event in the registry's
/// ring. The phase name must be a string literal (the trace ring stores the
/// pointer).
///
///   {
///     obs::PhaseSpan span(registry, metrics_.apply_us, "writer.apply");
///     ...work...
///     span.set_args(batch.size(), version);
///   }  // <- records here

#include <cstdint>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace fdrms {
namespace obs {

class PhaseSpan {
 public:
  /// `registry` may be null (histogram only, no trace event) and `hist`
  /// may be null (trace event only); both null makes the span inert.
  PhaseSpan(MetricRegistry* registry, LatencyHistogram* hist,
            const char* trace_name)
      : registry_(registry),
        hist_(hist),
        trace_name_(trace_name),
        start_us_(registry ? registry->NowMicros() : 0) {}

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() { Finish(); }

  /// Attach event-specific payload (e.g. epoch, op count) to the trace
  /// event this span will emit.
  void set_args(uint64_t arg0, uint64_t arg1 = 0) {
    arg0_ = arg0;
    arg1_ = arg1;
  }

  /// Record now instead of at scope exit; subsequent Finish() calls are
  /// no-ops. Returns the measured duration in microseconds.
  double Finish() {
    if (finished_) return elapsed_us_;
    finished_ = true;
    elapsed_us_ = watch_.ElapsedMicros();
    if (hist_ != nullptr) hist_->Record(elapsed_us_);
    if (registry_ != nullptr && trace_name_ != nullptr) {
      registry_->trace().Record(trace_name_, start_us_,
                                static_cast<uint64_t>(elapsed_us_), arg0_,
                                arg1_);
    }
    return elapsed_us_;
  }

 private:
  MetricRegistry* registry_;
  LatencyHistogram* hist_;
  const char* trace_name_;
  uint64_t start_us_;
  uint64_t arg0_ = 0;
  uint64_t arg1_ = 0;
  bool finished_ = false;
  double elapsed_us_ = 0.0;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_PHASE_SPAN_H_
