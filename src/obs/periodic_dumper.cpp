#include "obs/periodic_dumper.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/exporters.h"

namespace fdrms {
namespace obs {

PeriodicDumper::PeriodicDumper(std::shared_ptr<MetricRegistry> registry,
                               PeriodicDumperOptions options)
    : registry_(std::move(registry)), options_(std::move(options)) {
  FDRMS_CHECK(registry_ != nullptr) << "PeriodicDumper needs a registry";
  if (options_.interval_ms < 1) options_.interval_ms = 1;
}

PeriodicDumper::~PeriodicDumper() { Stop(); }

void PeriodicDumper::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void PeriodicDumper::Stop() {
  // Take ownership of the thread handle under the lock: exactly one caller
  // sees running_ flip and performs the join + final dump, so concurrent
  // Stop() calls can never double-join.
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
  DumpOnce();  // end-of-run totals always land on disk
}

void PeriodicDumper::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    DumpOnce();
    lock.lock();
  }
}

void PeriodicDumper::DumpOnce() {
  const RegistrySnapshot snap = registry_->Snapshot();
  bool ok = true;
  if (!options_.prometheus_path.empty()) {
    ok &= WriteFileAtomic(options_.prometheus_path, PrometheusText(snap));
  }
  if (!options_.json_path.empty()) {
    ok &= WriteFileAtomic(options_.json_path, JsonText(snap));
  }
  if (ok) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace fdrms
