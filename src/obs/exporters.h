#ifndef FDRMS_OBS_EXPORTERS_H_
#define FDRMS_OBS_EXPORTERS_H_

/// \file exporters.h
/// Render a RegistrySnapshot for the outside world:
///  - PrometheusText: text exposition format 0.0.4 (# HELP/# TYPE blocks,
///    cumulative `_bucket{le=...}` + `_sum` + `_count` for histograms).
///  - JsonText: one self-contained JSON document with raw buckets,
///    precomputed p50/p90/p99/p999, and the retained trace events.
///  - DebugString: the human status page (aligned table + trace tail).
/// All three render the same frozen snapshot, so a single scrape is
/// internally consistent across formats.

#include <string>

#include "obs/registry.h"

namespace fdrms {
namespace obs {

std::string PrometheusText(const RegistrySnapshot& snap);
std::string JsonText(const RegistrySnapshot& snap);
std::string DebugString(const RegistrySnapshot& snap);

/// Write `content` to `path` atomically (temp file + rename) so scrapers
/// never observe a half-written exposition. Returns false on any IO error.
bool WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_EXPORTERS_H_
