#ifndef FDRMS_OBS_REGISTRY_H_
#define FDRMS_OBS_REGISTRY_H_

/// \file registry.h
/// MetricRegistry: the one pipe every layer reports through. Get-or-create
/// named series (name + label set) returns a stable pointer valid for the
/// registry's lifetime; the handle's write path is lock-free (see
/// metrics.h), the registry mutex guards only series creation and
/// snapshotting. One registry is shared across all shards of a
/// ShardedFdRmsService (shards are told apart by a {"shard","i"} label);
/// standalone services own a private one.
///
/// A Snapshot() is a consistent-enough scrape: every counter value is a
/// sum of monotone stripes read at one instant, so values never decrease
/// across scrapes, and histogram count/sum pairs come from the same pass.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fdrms {
namespace obs {

/// Read-only view of one metric series at scrape time.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  uint64_t counter_value = 0;       ///< kCounter
  double gauge_value = 0.0;         ///< kGauge
  std::vector<double> bounds;       ///< kLatencyHistogram boundaries (µs)
  std::vector<uint64_t> buckets;    ///< histogram per-bucket counts
  uint64_t count = 0;               ///< histogram observation count
  double sum = 0.0;                 ///< kLatencyHistogram sum (µs)

  /// Histogram quantile (interpolated for latency, bucket floor for pow2).
  double Quantile(double q) const;
};

struct RegistrySnapshot {
  double uptime_seconds = 0.0;
  /// Sorted by (name, labels) so same-name series are contiguous — the
  /// Prometheus exporter relies on this to emit one TYPE block per family.
  std::vector<MetricSnapshot> metrics;
  std::vector<TraceEvent> trace;

  /// First series matching name (+ labels if given); nullptr if absent.
  const MetricSnapshot* Find(const std::string& name,
                             const Labels& labels = {}) const;
};

class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create. Re-registering an existing (name, labels) series
  /// returns the original handle; `help` from the first registration wins.
  /// Registering the same metric NAME under a different type — even with
  /// different labels — is a programming error (FDRMS_CHECK): a Prometheus
  /// family has exactly one type.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Pow2Histogram* GetPow2Histogram(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels = {});
  /// Empty `bounds_us` uses DefaultLatencyBoundsUs().
  LatencyHistogram* GetLatencyHistogram(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels = {},
                                        std::vector<double> bounds_us = {});

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  /// Microseconds since registry construction, on the steady clock — the
  /// timestamp base for every trace event in this registry.
  uint64_t NowMicros() const;

  RegistrySnapshot Snapshot() const;

  /// Exporters over a fresh Snapshot(); see exporters.h for the formats.
  std::string PrometheusText() const;
  std::string JsonText() const;
  std::string DebugString() const;

 private:
  struct Entry;
  Entry* GetOrCreate(const std::string& name, const std::string& help,
                     const Labels& labels, MetricType type,
                     std::vector<double> bounds_us);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, size_t> index_;  // series key -> entries_
  std::unordered_map<std::string, MetricType> types_by_name_;  // family type
  TraceRing trace_;
  Stopwatch uptime_;
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_REGISTRY_H_
