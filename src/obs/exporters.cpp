#include "obs/exporters.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fdrms {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Escapes a HELP line (backslash and newline only, per exposition spec).
std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` — with an optional extra label appended —
/// or "" when there are no labels at all.
std::string PromLabels(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += EscapeLabelValue(extra_value);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// Both histogram flavors flatten to the same exposition shape: `le` upper
/// bounds per finite bucket, +Inf for the tail, cumulative counts, sum,
/// count. Pow2 histograms have no exact sum, so we export the bucket-floor
/// lower bound — monotone across scrapes, clearly documented in HELP.
struct FlatHistogram {
  std::vector<std::string> les;      // finite bucket boundaries, rendered
  std::vector<uint64_t> cumulative;  // one per finite bucket
  uint64_t total = 0;
  double sum = 0.0;
};

FlatHistogram Flatten(const MetricSnapshot& m) {
  FlatHistogram flat;
  uint64_t running = 0;
  if (m.type == MetricType::kPow2Histogram) {
    for (size_t b = 0; b + 1 < m.buckets.size(); ++b) {
      running += m.buckets[b];
      flat.les.push_back(std::to_string(Pow2HistBucketCeil(b)));
      flat.cumulative.push_back(running);
      flat.sum += static_cast<double>(m.buckets[b]) *
                  static_cast<double>(Pow2HistBucketFloor(b));
    }
    if (!m.buckets.empty()) {
      flat.sum += static_cast<double>(m.buckets.back()) *
                  static_cast<double>(
                      Pow2HistBucketFloor(m.buckets.size() - 1));
    }
  } else {
    for (size_t b = 0; b < m.bounds.size() && b < m.buckets.size(); ++b) {
      running += m.buckets[b];
      flat.les.push_back(FormatDouble(m.bounds[b]));
      flat.cumulative.push_back(running);
    }
    flat.sum = m.sum;
  }
  flat.total = m.count;
  return flat;
}

}  // namespace

std::string PrometheusText(const RegistrySnapshot& snap) {
  std::string out;
  out.reserve(snap.metrics.size() * 96);
  const std::string* prev_name = nullptr;
  for (const auto& m : snap.metrics) {
    const bool new_family = prev_name == nullptr || *prev_name != m.name;
    prev_name = &m.name;
    switch (m.type) {
      case MetricType::kCounter:
        if (new_family) {
          out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
          out += "# TYPE " + m.name + " counter\n";
        }
        out += m.name + PromLabels(m.labels) + " " +
               std::to_string(m.counter_value) + "\n";
        break;
      case MetricType::kGauge:
        if (new_family) {
          out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
          out += "# TYPE " + m.name + " gauge\n";
        }
        out += m.name + PromLabels(m.labels) + " " +
               FormatDouble(m.gauge_value) + "\n";
        break;
      case MetricType::kPow2Histogram:
      case MetricType::kLatencyHistogram: {
        if (new_family) {
          out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
          out += "# TYPE " + m.name + " histogram\n";
        }
        const FlatHistogram flat = Flatten(m);
        for (size_t b = 0; b < flat.les.size(); ++b) {
          out += m.name + "_bucket" +
                 PromLabels(m.labels, "le", flat.les[b]) + " " +
                 std::to_string(flat.cumulative[b]) + "\n";
        }
        out += m.name + "_bucket" + PromLabels(m.labels, "le", "+Inf") + " " +
               std::to_string(flat.total) + "\n";
        out += m.name + "_sum" + PromLabels(m.labels) + " " +
               FormatDouble(flat.sum) + "\n";
        out += m.name + "_count" + PromLabels(m.labels) + " " +
               std::to_string(flat.total) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string JsonText(const RegistrySnapshot& snap) {
  std::string out = "{\n";
  out += "  \"uptime_seconds\": " + FormatDouble(snap.uptime_seconds) + ",\n";
  out += "  \"metrics\": [\n";
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    const auto& m = snap.metrics[i];
    out += "    {\"name\": \"" + EscapeJson(m.name) + "\", \"type\": \"" +
           MetricTypeName(m.type) + "\"";
    if (!m.labels.empty()) {
      out += ", \"labels\": {";
      for (size_t l = 0; l < m.labels.size(); ++l) {
        if (l > 0) out += ", ";
        out += '"';
        out += EscapeJson(m.labels[l].first);
        out += "\": \"";
        out += EscapeJson(m.labels[l].second);
        out += '"';
      }
      out += "}";
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += ", \"value\": " + std::to_string(m.counter_value);
        break;
      case MetricType::kGauge:
        out += ", \"value\": " + FormatDouble(m.gauge_value);
        break;
      case MetricType::kPow2Histogram:
      case MetricType::kLatencyHistogram: {
        if (m.type == MetricType::kLatencyHistogram) {
          out += ", \"bounds_us\": [";
          for (size_t b = 0; b < m.bounds.size(); ++b) {
            if (b > 0) out += ", ";
            out += FormatDouble(m.bounds[b]);
          }
          out += "], \"sum_us\": " + FormatDouble(m.sum);
        }
        out += ", \"buckets\": [";
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(m.buckets[b]);
        }
        out += "], \"count\": " + std::to_string(m.count);
        out += ", \"p50\": " + FormatDouble(m.Quantile(0.50));
        out += ", \"p90\": " + FormatDouble(m.Quantile(0.90));
        out += ", \"p99\": " + FormatDouble(m.Quantile(0.99));
        out += ", \"p999\": " + FormatDouble(m.Quantile(0.999));
        break;
      }
    }
    out += i + 1 < snap.metrics.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  out += "  \"trace\": [\n";
  for (size_t i = 0; i < snap.trace.size(); ++i) {
    const auto& e = snap.trace[i];
    out += "    {\"name\": \"" + EscapeJson(e.name) +
           "\", \"start_us\": " + std::to_string(e.start_us) +
           ", \"duration_us\": " + std::to_string(e.duration_us) +
           ", \"arg0\": " + std::to_string(e.arg0) +
           ", \"arg1\": " + std::to_string(e.arg1);
    out += i + 1 < snap.trace.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string DebugString(const RegistrySnapshot& snap) {
  std::ostringstream out;
  out << "=== fdrms metrics (uptime " << FormatDouble(snap.uptime_seconds)
      << "s, " << snap.metrics.size() << " series) ===\n";
  for (const auto& m : snap.metrics) {
    std::string series = m.name + PromLabels(m.labels);
    out << "  " << series;
    for (size_t pad = series.size(); pad < 52; ++pad) out << ' ';
    switch (m.type) {
      case MetricType::kCounter:
        out << " " << m.counter_value << "\n";
        break;
      case MetricType::kGauge:
        out << " " << FormatDouble(m.gauge_value) << "\n";
        break;
      case MetricType::kPow2Histogram:
        out << " count=" << m.count << " p50=" << FormatDouble(m.Quantile(0.5))
            << " p99=" << FormatDouble(m.Quantile(0.99)) << "\n";
        break;
      case MetricType::kLatencyHistogram:
        out << " count=" << m.count << " sum=" << FormatDouble(m.sum)
            << "us p50=" << FormatDouble(m.Quantile(0.5))
            << " p90=" << FormatDouble(m.Quantile(0.9))
            << " p99=" << FormatDouble(m.Quantile(0.99))
            << " p999=" << FormatDouble(m.Quantile(0.999)) << "us\n";
        break;
    }
  }
  out << "  trace: " << snap.trace.size() << " events retained\n";
  const size_t tail = snap.trace.size() > 8 ? snap.trace.size() - 8 : 0;
  for (size_t i = tail; i < snap.trace.size(); ++i) {
    const auto& e = snap.trace[i];
    out << "    [" << e.start_us << "us] " << e.name << " dur="
        << e.duration_us << "us arg0=" << e.arg0 << " arg1=" << e.arg1
        << "\n";
  }
  return out.str();
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace obs
}  // namespace fdrms
