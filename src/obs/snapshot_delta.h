#ifndef FDRMS_OBS_SNAPSHOT_DELTA_H_
#define FDRMS_OBS_SNAPSHOT_DELTA_H_

/// \file snapshot_delta.h
/// Windowed rates and quantiles between two RegistrySnapshots.
///
/// Cumulative counters and histograms answer "since process start"; a
/// controller needs "over the last tick". SnapshotDelta pins a (before,
/// after) snapshot pair and derives window-scoped views: counter deltas
/// and rates, gauge movement, and histogram quantiles computed on the
/// elementwise bucket *difference* — the distribution of only the
/// observations that landed inside the window.
///
/// Label matching is subset-based: a series matches when its label set
/// contains every (key, value) pair of the filter. That is what makes
/// per-shard selectors work against the constellation registry, where a
/// reborn shard's series carry an extra {gen="n"} label a caller has no
/// way to predict — {shard="2"} matches both {shard="2"} and
/// {shard="2", gen="1"}. Aggregating accessors (CounterDelta, GaugeDelta,
/// HistQuantile) sum every matching series; the delta of a series that
/// stopped moving (a retired incarnation) is zero, so dead generations
/// never distort a window. GaugeLatest instead picks the single live
/// (numerically highest gen) series — the right read for level signals
/// like queue depth, where a frozen retired value is a lie.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace fdrms {
namespace obs {

class SnapshotDelta {
 public:
  /// Both snapshots must come from the same registry, `before` taken no
  /// later than `after` (the usual pattern: keep last tick's snapshot).
  SnapshotDelta(const RegistrySnapshot& before, const RegistrySnapshot& after)
      : before_(&before), after_(&after) {}

  /// Window length in seconds (after.uptime - before.uptime, floored at 0).
  double WindowSeconds() const;

  /// Sum over matching after-series of (after - before), each saturating
  /// at 0 (a series born inside the window contributes its full value).
  uint64_t CounterDelta(const std::string& name,
                        const Labels& labels = {}) const;

  /// CounterDelta / WindowSeconds; 0 when the window is empty.
  double Rate(const std::string& name, const Labels& labels = {}) const;

  /// Sum of per-series gauge movement over the window. The right read for
  /// cumulative gauges (fdrms_writer_busy_seconds): a retired incarnation
  /// stops moving, so its contribution is zero.
  double GaugeDelta(const std::string& name, const Labels& labels = {}) const;

  /// The after-value of the single live matching series — among matches,
  /// the one with the numerically largest "gen" label (absent = 0). The
  /// right read for level gauges (fdrms_queue_depth), where a retired
  /// incarnation's frozen value must not shadow the live shard's.
  double GaugeLatest(const std::string& name, const Labels& labels = {}) const;

  /// Quantile of the observations recorded inside the window: elementwise
  /// bucket difference summed across matching series, then the family's
  /// quantile rule (interpolated for latency histograms, bucket floor for
  /// pow2). 0 when nothing landed in the window.
  double HistQuantile(const std::string& name, double q,
                      const Labels& labels = {}) const;

  /// Observations recorded inside the window across matching series.
  uint64_t HistCountDelta(const std::string& name,
                          const Labels& labels = {}) const;

 private:
  const RegistrySnapshot* before_;
  const RegistrySnapshot* after_;
};

/// True when `series` carries every (key, value) pair of `filter`.
bool LabelsMatchSubset(const Labels& series, const Labels& filter);

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_SNAPSHOT_DELTA_H_
