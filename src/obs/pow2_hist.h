#ifndef FDRMS_OBS_POW2_HIST_H_
#define FDRMS_OBS_POW2_HIST_H_

/// \file pow2_hist.h
/// Power-of-two bucketing vocabulary shared by the metric registry and the
/// serving layer's telemetry vectors: bucket 0 counts the value 0, bucket
/// i >= 1 counts values in [2^(i-1), 2^i), and the last bucket is
/// open-ended (everything >= 2^(kPow2HistBuckets-2) saturates into it).
/// Lived in serve/result_snapshot.h until the obs subsystem took ownership
/// of all histogram plumbing; result_snapshot.h re-exports these names for
/// its existing callers.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdrms {
namespace obs {

/// Bucket count of every power-of-two histogram in the system.
inline constexpr size_t kPow2HistBuckets = 17;

/// Bucket index of `v` in a kPow2HistBuckets-wide power-of-two histogram.
inline size_t Pow2HistBucket(uint64_t v) {
  const size_t width = static_cast<size_t>(std::bit_width(v));
  return width < kPow2HistBuckets ? width : kPow2HistBuckets - 1;
}

/// Lower bound of bucket `b` (the value the quantile helper reports).
inline uint64_t Pow2HistBucketFloor(size_t b) {
  return b == 0 ? 0 : (uint64_t{1} << (b - 1));
}

/// Inclusive upper bound of bucket `b` — the `le` boundary the Prometheus
/// exporter emits. The last bucket is open-ended (+Inf in exposition); this
/// reports its floor, which only the status page prints.
inline uint64_t Pow2HistBucketCeil(size_t b) {
  if (b + 1 >= kPow2HistBuckets) return uint64_t{1} << (kPow2HistBuckets - 2);
  return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

/// Quantile over a power-of-two histogram, reported as the lower bound of
/// the bucket where the cumulative count crosses q * total. Coarse by
/// construction — good enough to steer batching policy and spot
/// regressions, cheap enough to ride every snapshot.
///
/// Edge cases are pinned by tests/obs_test.cpp: an empty or all-zero
/// histogram reports 0 (never a bucket floor), q is clamped into [0, 1],
/// and counts saturated into the open-ended last bucket report that
/// bucket's floor.
inline double Pow2HistQuantile(const std::vector<uint64_t>& hist, double q) {
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  if (total == 0) return 0.0;  // empty or all-zero: no observations, no floor
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < hist.size(); ++b) {
    seen += hist[b];
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(Pow2HistBucketFloor(b));
    }
  }
  // Unreachable with q clamped (seen reaches total >= target), but keep the
  // last populated bucket's floor as a defensive answer.
  return static_cast<double>(Pow2HistBucketFloor(hist.size() - 1));
}

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_POW2_HIST_H_
