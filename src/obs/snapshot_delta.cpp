#include "obs/snapshot_delta.h"

#include <algorithm>
#include <cstdlib>

namespace fdrms {
namespace obs {

namespace {

/// Exact-label lookup in `snap` (Find's empty-labels wildcard would grab
/// an arbitrary first series, which is wrong for pairing before/after).
const MetricSnapshot* FindExact(const RegistrySnapshot& snap,
                                const std::string& name,
                                const Labels& labels) {
  for (const MetricSnapshot& m : snap.metrics) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

uint64_t GenOf(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k == "gen") {
      return static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
    }
  }
  return 0;
}

}  // namespace

bool LabelsMatchSubset(const Labels& series, const Labels& filter) {
  for (const auto& want : filter) {
    bool found = false;
    for (const auto& have : series) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

double SnapshotDelta::WindowSeconds() const {
  return std::max(0.0, after_->uptime_seconds - before_->uptime_seconds);
}

uint64_t SnapshotDelta::CounterDelta(const std::string& name,
                                     const Labels& labels) const {
  uint64_t delta = 0;
  for (const MetricSnapshot& m : after_->metrics) {
    if (m.name != name || !LabelsMatchSubset(m.labels, labels)) continue;
    const MetricSnapshot* prev = FindExact(*before_, name, m.labels);
    const uint64_t base = prev != nullptr ? prev->counter_value : 0;
    if (m.counter_value > base) delta += m.counter_value - base;
  }
  return delta;
}

double SnapshotDelta::Rate(const std::string& name,
                           const Labels& labels) const {
  const double window = WindowSeconds();
  if (window <= 0.0) return 0.0;
  return static_cast<double>(CounterDelta(name, labels)) / window;
}

double SnapshotDelta::GaugeDelta(const std::string& name,
                                 const Labels& labels) const {
  double delta = 0.0;
  for (const MetricSnapshot& m : after_->metrics) {
    if (m.name != name || !LabelsMatchSubset(m.labels, labels)) continue;
    const MetricSnapshot* prev = FindExact(*before_, name, m.labels);
    const double base = prev != nullptr ? prev->gauge_value : 0.0;
    delta += m.gauge_value - base;
  }
  return delta;
}

double SnapshotDelta::GaugeLatest(const std::string& name,
                                  const Labels& labels) const {
  const MetricSnapshot* live = nullptr;
  uint64_t live_gen = 0;
  for (const MetricSnapshot& m : after_->metrics) {
    if (m.name != name || !LabelsMatchSubset(m.labels, labels)) continue;
    const uint64_t gen = GenOf(m.labels);
    if (live == nullptr || gen >= live_gen) {
      live = &m;
      live_gen = gen;
    }
  }
  return live != nullptr ? live->gauge_value : 0.0;
}

double SnapshotDelta::HistQuantile(const std::string& name, double q,
                                   const Labels& labels) const {
  std::vector<uint64_t> buckets;
  const MetricSnapshot* family = nullptr;
  for (const MetricSnapshot& m : after_->metrics) {
    if (m.name != name || !LabelsMatchSubset(m.labels, labels)) continue;
    family = &m;
    if (buckets.size() < m.buckets.size()) buckets.resize(m.buckets.size(), 0);
    const MetricSnapshot* prev = FindExact(*before_, name, m.labels);
    for (size_t b = 0; b < m.buckets.size(); ++b) {
      const uint64_t base =
          prev != nullptr && b < prev->buckets.size() ? prev->buckets[b] : 0;
      if (m.buckets[b] > base) buckets[b] += m.buckets[b] - base;
    }
  }
  if (family == nullptr) return 0.0;
  if (family->type == MetricType::kLatencyHistogram) {
    return LatencyHistogram::QuantileFromBuckets(family->bounds, buckets, q);
  }
  return Pow2HistQuantile(buckets, q);
}

uint64_t SnapshotDelta::HistCountDelta(const std::string& name,
                                       const Labels& labels) const {
  uint64_t delta = 0;
  for (const MetricSnapshot& m : after_->metrics) {
    if (m.name != name || !LabelsMatchSubset(m.labels, labels)) continue;
    const MetricSnapshot* prev = FindExact(*before_, name, m.labels);
    const uint64_t base = prev != nullptr ? prev->count : 0;
    if (m.count > base) delta += m.count - base;
  }
  return delta;
}

}  // namespace obs
}  // namespace fdrms
