#ifndef FDRMS_OBS_TRACE_H_
#define FDRMS_OBS_TRACE_H_

/// \file trace.h
/// Fixed-size lock-free ring of trace events. Writers take a ticket with
/// one fetch_add on the head, then claim their slot by CAS on its sequence
/// word (Vyukov-style seqlock: 2t+1 while the write is in flight, 2t+2 once
/// complete). Old events are overwritten, never blocked on — tracing must
/// not be able to stall the writer loop or a migration. A writer that finds
/// its slot mid-write or already claimed by a newer ticket (the ring lapped
/// it) drops its event instead of racing: two tickets must never interleave
/// payload stores into one slot. Collect() walks the retained window and
/// drops any slot whose sequence changed mid-read, so torn events are
/// discarded rather than surfaced.
///
/// Event names must be string literals (static storage): the ring stores
/// the pointer, not a copy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fdrms {
namespace obs {

struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;     ///< registry-clock timestamp (NowMicros)
  uint64_t duration_us = 0;  ///< 0 for instant events
  uint64_t arg0 = 0;         ///< event-specific (e.g. epoch, batch size)
  uint64_t arg1 = 0;         ///< event-specific (e.g. op count)
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two; default keeps the ring at
  /// ~256KB — thousands of batches / full migration histories.
  explicit TraceRing(size_t capacity = 4096) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.reset(new Slot[cap]);
  }
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(const char* name, uint64_t start_us, uint64_t duration_us,
              uint64_t arg0 = 0, uint64_t arg1 = 0) {
    const uint64_t t = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[t & mask_];
    // Claim the slot, or drop the event. Tickets aliasing one slot differ
    // by a multiple of the capacity, so any prior complete write has
    // seq <= 2(t - cap) + 2 < 2t + 1 and any newer claim has seq > 2t + 2;
    // an odd seq means some write is in flight. Writing anyway in either
    // case could leave the slot with a consistent-looking seq over another
    // ticket's half-stored payload.
    uint64_t prev = s.seq.load(std::memory_order_relaxed);
    if ((prev & 1) != 0 || prev > 2 * t ||
        !s.seq.compare_exchange_strong(prev, 2 * t + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // The acquire half of the CAS keeps the payload stores below from
    // hoisting above the odd-seq claim; the release store publishes them.
    s.name.store(name, std::memory_order_relaxed);
    s.start_us.store(start_us, std::memory_order_relaxed);
    s.duration_us.store(duration_us, std::memory_order_relaxed);
    s.arg0.store(arg0, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_release);
  }

  /// Events still resident in the ring, oldest first. Slots being
  /// overwritten while we read are dropped (seq mismatch), so every
  /// returned event is internally consistent.
  std::vector<TraceEvent> Collect() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t cap = mask_ + 1;
    const uint64_t start = head > cap ? head - cap : 0;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<size_t>(head - start));
    for (uint64_t t = start; t < head; ++t) {
      const Slot& s = slots_[t & mask_];
      const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 != 2 * t + 2) continue;  // in flight or already overwritten
      TraceEvent e;
      const char* name = s.name.load(std::memory_order_relaxed);
      e.start_us = s.start_us.load(std::memory_order_relaxed);
      e.duration_us = s.duration_us.load(std::memory_order_relaxed);
      e.arg0 = s.arg0.load(std::memory_order_relaxed);
      e.arg1 = s.arg1.load(std::memory_order_relaxed);
      // Classic seqlock reader fence: an acquire *load* only orders later
      // accesses, so without the fence the relaxed payload loads above
      // could be reordered past the seq2 re-check and a torn event could
      // slip through on weakly-ordered hardware.
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t seq2 = s.seq.load(std::memory_order_relaxed);
      if (seq2 != seq1 || name == nullptr) continue;  // torn read, drop
      e.name = name;
      out.push_back(std::move(e));
    }
    return out;
  }

  /// Total events ever recorded (including ones already overwritten).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events abandoned because their slot was mid-write or already lapped
  /// by a newer ticket (only possible once the ring wraps under
  /// concurrency).
  uint64_t total_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> duration_us{0};
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
  };
  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_TRACE_H_
