#ifndef FDRMS_OBS_TRACE_H_
#define FDRMS_OBS_TRACE_H_

/// \file trace.h
/// Fixed-size lock-free ring of trace events. Writers claim a slot with one
/// fetch_add on the head ticket and publish through a per-slot sequence
/// word (Vyukov-style seqlock: 2t+1 while the write is in flight, 2t+2 once
/// complete). Old events are overwritten, never blocked on — tracing must
/// not be able to stall the writer loop or a migration. Collect() walks the
/// retained window and drops any slot whose sequence changed mid-read, so
/// torn events are discarded rather than surfaced.
///
/// Event names must be string literals (static storage): the ring stores
/// the pointer, not a copy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fdrms {
namespace obs {

struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;     ///< registry-clock timestamp (NowMicros)
  uint64_t duration_us = 0;  ///< 0 for instant events
  uint64_t arg0 = 0;         ///< event-specific (e.g. epoch, batch size)
  uint64_t arg1 = 0;         ///< event-specific (e.g. op count)
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two; default keeps the ring at
  /// ~256KB — thousands of batches / full migration histories.
  explicit TraceRing(size_t capacity = 4096) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.reset(new Slot[cap]);
  }
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(const char* name, uint64_t start_us, uint64_t duration_us,
              uint64_t arg0 = 0, uint64_t arg1 = 0) {
    const uint64_t t = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[t & mask_];
    s.seq.store(2 * t + 1, std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.start_us.store(start_us, std::memory_order_relaxed);
    s.duration_us.store(duration_us, std::memory_order_relaxed);
    s.arg0.store(arg0, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_release);
  }

  /// Events still resident in the ring, oldest first. Slots being
  /// overwritten while we read are dropped (seq mismatch), so every
  /// returned event is internally consistent.
  std::vector<TraceEvent> Collect() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t cap = mask_ + 1;
    const uint64_t start = head > cap ? head - cap : 0;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<size_t>(head - start));
    for (uint64_t t = start; t < head; ++t) {
      const Slot& s = slots_[t & mask_];
      const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 != 2 * t + 2) continue;  // in flight or already overwritten
      TraceEvent e;
      const char* name = s.name.load(std::memory_order_relaxed);
      e.start_us = s.start_us.load(std::memory_order_relaxed);
      e.duration_us = s.duration_us.load(std::memory_order_relaxed);
      e.arg0 = s.arg0.load(std::memory_order_relaxed);
      e.arg1 = s.arg1.load(std::memory_order_relaxed);
      const uint64_t seq2 = s.seq.load(std::memory_order_acquire);
      if (seq2 != seq1 || name == nullptr) continue;  // torn read, drop
      e.name = name;
      out.push_back(std::move(e));
    }
    return out;
  }

  /// Total events ever recorded (including ones already overwritten).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> duration_us{0};
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
  };
  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

}  // namespace obs
}  // namespace fdrms

#endif  // FDRMS_OBS_TRACE_H_
