#ifndef FDRMS_SERVE_MPSC_RING_QUEUE_H_
#define FDRMS_SERVE_MPSC_RING_QUEUE_H_

/// \file mpsc_ring_queue.h
/// A bounded lock-free multi-producer/single-consumer ring queue for the
/// serving layer's update path — the drop-in replacement for the
/// mutex+condvar BoundedQueue (kept in bounded_queue.h as the reference
/// implementation for tests and the queue microbenchmark).
///
/// Design (Vyukov-style bounded queue):
///  - Power-of-two cell array; each cell carries its own sequence counter,
///    so producers claiming a slot and the consumer releasing one never
///    touch a shared "size" — the per-cell counter both publishes the
///    element and detects wrap-around.
///  - Producers claim cells with a CAS on `enqueue_pos_`; the consumer
///    advances `dequeue_pos_` the same way (CAS rather than a plain store
///    only so the shutdown path's Clear() may drain from a second thread).
///  - The two indices live on separate cache lines, and producers enforce
///    the *logical* capacity through `dequeue_cache_` — a producer-side
///    cached copy of the consumer index that is refreshed only when the
///    cached value says "full", so the common-case push reads no
///    consumer-written line at all.
///  - Blocking (`Push` on full, `PopBatch` on empty) spins briefly and then
///    parks on a condvar — the mutex guards only the parking protocol,
///    never the data path. Waiters use a bounded wait so a lost wakeup
///    costs at most one timeout, not a hang.
///
/// Semantics are exactly BoundedQueue's: `Push` blocks while full and
/// returns false only when the queue closes first; `TryPush` returns false
/// when full or closed (kReject load-shedding); `PopBatch` blocks for the
/// first element, drains up to a batch, returns true with an empty batch on
/// a `Kick`, and returns false only once the queue is closed *and* every
/// accepted element has been consumed; `Close` is idempotent and lets the
/// consumer drain. The push-vs-close race the reference resolves with its
/// mutex is resolved here with a seq_cst post-claim re-check: a producer
/// whose claim lands after the close publishes a *dead* cell (no element,
/// push reports failure) that consumers skip, so a close can neither lose
/// an accepted element nor let one slip in after the consumer's final
/// drain. `total_pushed()` is incremented between claiming a cell
/// and publishing it, so any observer that saw an element consumed reads a
/// count that already includes it — the serving layer's backlog arithmetic
/// stays underflow-free.
///
/// T must be movable and default-constructible (cells construct elements
/// in place; PopBatch moves them out through a stack temporary).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fdrms {

template <typename T>
class MpscRingQueue {
 public:
  explicit MpscRingQueue(size_t capacity) : capacity_(capacity) {
    FDRMS_CHECK(capacity > 0);
    size_t cells = 1;
    while (cells < capacity) cells <<= 1;
    mask_ = cells - 1;
    cells_ = std::make_unique<Cell[]>(cells);
    for (size_t i = 0; i < cells; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRingQueue() {
    // Destroy whatever was accepted but never consumed.
    T discard;
    while (TryPop(&discard)) {
    }
  }

  MpscRingQueue(const MpscRingQueue&) = delete;
  MpscRingQueue& operator=(const MpscRingQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns true if
  /// the element was enqueued, false if the queue closed first.
  bool Push(T value) {
    for (;;) {
      PushOutcome r = TryPushOnce(&value);
      if (r == PushOutcome::kOk) return true;
      if (r == PushOutcome::kClosed) return false;
      // Full. Spin briefly — the consumer frees a whole batch at a time,
      // so room tends to appear in bursts — then park on the slow path.
      // Spinning only pays when the consumer can run concurrently, so a
      // single-core host parks immediately instead of burning its only
      // core's quantum on yields.
      for (int spin = 0; spin < SpinIters(); ++spin) {
        std::this_thread::yield();
        r = TryPushOnce(&value);
        if (r == PushOutcome::kOk) return true;
        if (r == PushOutcome::kClosed) return false;
      }
      std::unique_lock<std::mutex> lock(park_mutex_);
      producers_parked_.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (size() >= capacity_ && !closed_.load(std::memory_order_relaxed)) {
        // Bounded wait: the consumer notifies after freeing room, and the
        // timeout caps the cost of any wakeup lost to the benign race
        // between our recheck and its notify.
        not_full_.wait_for(lock, std::chrono::milliseconds(1));
      }
      producers_parked_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T value) {
    return TryPushOnce(&value) == PushOutcome::kOk;
  }

  /// Consumer side: blocks until at least one element is available, then
  /// moves up to `max_batch` elements into `out` (cleared first). Returns
  /// false only when the queue is closed *and* fully drained — end of
  /// stream. A Kick() wakes the wait early: the call then returns true with
  /// an empty batch so the consumer can run out-of-band work (e.g. a state
  /// inspection) and loop back.
  bool PopBatch(size_t max_batch, std::vector<T>* out) {
    out->clear();
    for (;;) {
      while (out->size() < max_batch &&
             TryPopMany(max_batch - out->size(), out) > 0) {
      }
      if (!out->empty()) {
        WakeParkedProducers();
        return true;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        // End of stream only once nothing is queued *or in flight*: a
        // producer that claimed a cell just before the close will still
        // publish it (live or dead, see TryPushOnce's post-claim check),
        // and an accepted element must never be lost. A stale kick does
        // not outrank the close (reference semantics). seq_cst pairs with
        // the producer's post-claim re-check: a claim this load misses
        // implies the producer's re-check saw the close and refused the
        // element.
        if (enqueue_pos_.load(std::memory_order_seq_cst) ==
            dequeue_pos_.load(std::memory_order_relaxed)) {
          return false;
        }
        std::this_thread::yield();  // let the claimed cell land
        continue;
      }
      if (kicked_.exchange(false, std::memory_order_acq_rel)) return true;
      // Empty and open: park until a producer publishes (or Close/Kick).
      std::unique_lock<std::mutex> lock(park_mutex_);
      consumer_parked_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (enqueue_pos_.load(std::memory_order_acquire) ==
              dequeue_pos_.load(std::memory_order_relaxed) &&
          !closed_.load(std::memory_order_relaxed) &&
          !kicked_.load(std::memory_order_relaxed)) {
        not_empty_.wait_for(lock, std::chrono::milliseconds(1));
      }
      consumer_parked_.store(false, std::memory_order_relaxed);
    }
  }

  /// Discards everything queued; returns how many elements were dropped.
  /// Uses the same CAS dequeue protocol as the consumer, so the shutdown
  /// path may call it while the consumer is still popping.
  size_t Clear() {
    size_t dropped = 0;
    T discard;
    while (TryPop(&discard)) ++dropped;
    WakeParkedProducers();
    return dropped;
  }

  /// Wakes the consumer even when nothing is queued: the next (or a
  /// currently blocked) PopBatch returns true with an empty batch instead
  /// of waiting for elements. One kick wakes one PopBatch; used to hand the
  /// consumer out-of-band control work without enqueuing sentinel elements.
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      kicked_.store(true, std::memory_order_release);
    }
    not_empty_.notify_all();
  }

  /// Closes the queue: subsequent pushes fail, blocked pushes give up, the
  /// consumer drains what remains. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Elements currently queued (racy snapshot, exact when quiescent). Also
  /// the writer's queue-depth signal for adaptive batching.
  size_t size() const {
    uint64_t tail = dequeue_pos_.load(std::memory_order_acquire);
    uint64_t head = enqueue_pos_.load(std::memory_order_acquire);
    return head > tail ? static_cast<size_t>(head - tail) : 0;
  }

  /// Elements ever accepted (monotone). Incremented between claiming a cell
  /// and publishing it, so for any observer that saw an element consumed,
  /// total_pushed() >= the count of consumed elements — the serving layer
  /// leans on this to make backlog arithmetic underflow-free.
  uint64_t total_pushed() const {
    return total_pushed_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  enum class PushOutcome { kOk, kFull, kClosed };

  struct Cell {
    std::atomic<uint64_t> seq;
    /// True when the slot was claimed but the close won the race: no
    /// element was constructed, consumers skip it. Written before the seq
    /// publish store and read after the seq acquire load, so a plain bool
    /// is properly synchronized.
    bool dead = false;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  static int SpinIters() {
    static const int iters =
        std::thread::hardware_concurrency() > 1 ? 32 : 0;
    return iters;
  }

  PushOutcome TryPushOnce(T* value) {
    if (closed_.load(std::memory_order_acquire)) return PushOutcome::kClosed;
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      // Logical-capacity gate through the cached consumer index. The cache
      // only ever lags the true dequeue position, so the check is
      // conservative: it can spuriously refresh, never over-admit.
      if (pos - dequeue_cache_.load(std::memory_order_relaxed) >= capacity_) {
        dequeue_cache_.store(dequeue_pos_.load(std::memory_order_acquire),
                             std::memory_order_relaxed);
        if (pos - dequeue_cache_.load(std::memory_order_relaxed) >=
            capacity_) {
          return PushOutcome::kFull;
        }
      }
      Cell& cell = cells_[pos & mask_];
      uint64_t seq = cell.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_seq_cst)) {
          // Close/claim race check, after the claim. The consumer ends the
          // stream only when it reads closed_ *then* sees the positions
          // equal; both its loads, this claim's CAS, this re-check, and
          // Close()'s store are seq_cst, so exactly one of two outcomes is
          // possible: (a) this load reads closed — the claim may have
          // landed after the consumer's final look, so the element is NOT
          // accepted and the slot is published as a dead cell consumers
          // skip; (b) this load reads open — then the claim precedes the
          // consumer's position check in the seq_cst order, the consumer
          // sees the in-flight slot and waits for it. Either way no
          // accepted element is ever lost to a racing close.
          if (closed_.load(std::memory_order_seq_cst)) {
            cell.dead = true;
            cell.seq.store(pos + 1, std::memory_order_release);
            WakeParkedConsumer();
            return PushOutcome::kClosed;
          }
          // Count before publishing (see total_pushed() contract).
          total_pushed_.fetch_add(1, std::memory_order_relaxed);
          cell.dead = false;
          new (cell.storage) T(std::move(*value));
          cell.seq.store(pos + 1, std::memory_order_release);
          // The consumer only parks when it observed the queue empty, and
          // the producer filling the slot the consumer is waiting at is
          // the one responsible for waking it — every later producer sees
          // an older element still queued and skips the (fenced) wake
          // protocol entirely.
          if (pos == dequeue_pos_.load(std::memory_order_acquire)) {
            WakeParkedConsumer();
          }
          return PushOutcome::kOk;
        }
        // CAS failure reloaded `pos`; retry with the new value.
      } else if (dif < 0) {
        return PushOutcome::kFull;  // physically wrapped (gate was raced)
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryPop(T* out) {
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      uint64_t seq = cell.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          const bool dead = cell.dead;
          if (!dead) {
            T* stored = std::launder(reinterpret_cast<T*>(cell.storage));
            *out = std::move(*stored);
            stored->~T();
          }
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          if (dead) {
            pos = dequeue_pos_.load(std::memory_order_relaxed);
            continue;  // tombstone from a close-raced claim: skip it
          }
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty, or the next element is not yet published
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Claims a run of up to `max` already-published cells with a single CAS
  /// and appends their elements to `out` — the consumer's batch drain pays
  /// one contended RMW per chunk instead of one per element. Returns the
  /// number of elements taken (0 when nothing is published at the head).
  size_t TryPopMany(size_t max, std::vector<T>* out) {
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      size_t run = 0;
      while (run < max &&
             cells_[(pos + run) & mask_].seq.load(std::memory_order_acquire) ==
                 pos + run + 1) {
        ++run;
      }
      if (run == 0) return 0;
      if (!dequeue_pos_.compare_exchange_weak(pos, pos + run,
                                              std::memory_order_relaxed)) {
        continue;  // Clear() raced us; pos was reloaded
      }
      for (size_t i = 0; i < run; ++i) {
        Cell& cell = cells_[(pos + i) & mask_];
        if (!cell.dead) {
          T* stored = std::launder(reinterpret_cast<T*>(cell.storage));
          out->push_back(std::move(*stored));
          stored->~T();
        }
        cell.seq.store(pos + i + mask_ + 1, std::memory_order_release);
      }
      return run;
    }
  }

  void WakeParkedConsumer() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_parked_.load(std::memory_order_relaxed)) {
      { std::lock_guard<std::mutex> lock(park_mutex_); }
      not_empty_.notify_all();
    }
  }

  void WakeParkedProducers() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (producers_parked_.load(std::memory_order_relaxed) > 0) {
      { std::lock_guard<std::mutex> lock(park_mutex_); }
      not_full_.notify_all();
    }
  }

  const size_t capacity_;  ///< logical bound (what backpressure enforces)
  size_t mask_ = 0;        ///< physical cell count - 1 (power of two)
  std::unique_ptr<Cell[]> cells_;

  // Hot indices on their own cache lines: producers share the first, the
  // consumer owns the second, and the third keeps producer-side capacity
  // checks off the consumer's line in the common case.
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_cache_{0};

  alignas(64) std::atomic<uint64_t> total_pushed_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> kicked_{false};

  // Parking slow path only; never taken on the data fast path.
  std::mutex park_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<bool> consumer_parked_{false};
  std::atomic<int> producers_parked_{0};
};

}  // namespace fdrms

#endif  // FDRMS_SERVE_MPSC_RING_QUEUE_H_
