#include "serve/fdrms_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/durable_io.h"
#include "common/fault_point.h"
#include "common/stopwatch.h"
#include "core/snapshot.h"
#include "obs/phase_span.h"

namespace fdrms {

FdRmsService::FdRmsService(int dim, const FdRmsServiceOptions& options)
    : dim_(dim),
      options_(options),
      algo_(dim, options.algo),
      queue_(options.queue_capacity),
      batch_bound_(options.max_batch),
      registry_(options.registry ? options.registry
                                 : std::make_shared<obs::MetricRegistry>()) {
  FDRMS_CHECK(options.max_batch > 0);
  FDRMS_CHECK(options.min_batch > 0);
  FDRMS_CHECK(options.min_batch <= options.max_batch)
      << "min_batch must not exceed max_batch";
  // Adaptive runs start small (latency-first until a burst shows up);
  // fixed-batch runs behave exactly like the pre-adaptive writer.
  effective_batch_ =
      options.adaptive_batching ? options.min_batch : options.max_batch;
  RegisterMetrics();
  metrics_.batch_bound->Set(static_cast<double>(options.max_batch));
  metrics_.healthy->Set(1.0);
}

size_t FdRmsService::SetBatchBound(size_t bound) {
  const size_t clamped =
      std::min(std::max(bound, options_.min_batch), options_.max_batch);
  batch_bound_.store(clamped, std::memory_order_relaxed);
  metrics_.batch_bound->Set(static_cast<double>(clamped));
  return clamped;
}

void FdRmsService::RegisterMetrics() {
  const obs::Labels& l = options_.metrics_labels;
  obs::MetricRegistry& r = *registry_;
  metrics_.ops_submitted = r.GetCounter(
      "fdrms_ops_submitted_total",
      "Operations accepted into the update queue", l);
  metrics_.ops_applied = r.GetCounter(
      "fdrms_ops_applied_total", "Operations applied by the writer", l);
  metrics_.ops_rejected = r.GetCounter(
      "fdrms_ops_rejected_total",
      "Operations the algorithm rejected (duplicate insert, vanished delete "
      "target, ...)",
      l);
  metrics_.ops_dropped = r.GetCounter(
      "fdrms_ops_dropped_total", "Operations discarded by Stop(kAbort)", l);
  metrics_.batches = r.GetCounter(
      "fdrms_batches_total", "ApplyBatch drains that carried work", l);
  metrics_.publications = r.GetCounter(
      "fdrms_publications_total",
      "Snapshot publications, including the version-0 bootstrap", l);
  metrics_.persists = r.GetCounter(
      "fdrms_persists_total", "Background persistence runs completed", l);
  metrics_.persist_failures = r.GetCounter(
      "fdrms_persist_failures_total",
      "Background persistence runs that failed (never fatal)", l);
  metrics_.writer_faults = r.GetCounter(
      "fdrms_writer_faults_total",
      "Injected fault actions the writer observed (delays, errors, deaths)",
      l);
  metrics_.healthy = r.GetGauge(
      "fdrms_shard_healthy",
      "1 while the writer thread is alive (0 after a writer death)", l);
  metrics_.heartbeat = r.GetGauge(
      "fdrms_writer_heartbeat",
      "Writer-loop iterations; frozen with a non-empty queue = stalled "
      "writer",
      l);
  metrics_.version = r.GetGauge(
      "fdrms_snapshot_version", "Version of the latest published snapshot",
      l);
  metrics_.live_tuples = r.GetGauge(
      "fdrms_live_tuples", "Live tuple count after the latest batch", l);
  metrics_.sample_size_m = r.GetGauge(
      "fdrms_sample_size_m", "FD-RMS utility sample size m in force", l);
  metrics_.queue_depth = r.GetGauge(
      "fdrms_queue_depth", "Queue depth observed at the last writer wakeup",
      l);
  metrics_.effective_max_batch = r.GetGauge(
      "fdrms_effective_max_batch", "Adaptive batch bound in force", l);
  metrics_.batch_bound = r.GetGauge(
      "fdrms_batch_bound",
      "External batch ceiling set via SetBatchBound (== max_batch until the "
      "controller moves it)",
      l);
  metrics_.writer_busy_seconds = r.GetGauge(
      "fdrms_writer_busy_seconds",
      "Cumulative writer-thread CPU seconds spent applying batches", l);
  metrics_.queue_depth_pow2 = r.GetPow2Histogram(
      "fdrms_queue_depth_pow2",
      "Queue depth per writer wakeup (power-of-two buckets)", l);
  metrics_.batch_size_pow2 = r.GetPow2Histogram(
      "fdrms_batch_size_pow2",
      "Applied batch size (power-of-two buckets)", l);
  metrics_.publish_latency_us = r.GetLatencyHistogram(
      "fdrms_publish_latency_us",
      "Batch publication latency: queue drain to snapshot publication (us)",
      l);
  metrics_.drain_us = r.GetLatencyHistogram(
      "fdrms_writer_drain_us",
      "Writer drain phase: time in PopBatch per non-empty batch (us)", l);
  metrics_.apply_us = r.GetLatencyHistogram(
      "fdrms_writer_apply_us", "Writer apply phase: ApplyBatch loop (us)", l);
  metrics_.publish_us = r.GetLatencyHistogram(
      "fdrms_writer_publish_us",
      "Writer publish phase: snapshot construction + swap (us)", l);
}

FdRmsService::~FdRmsService() {
  if (state_.load() == State::kRunning) {
    (void)Stop(StopPolicy::kDrain);
  }
}

Status FdRmsService::Start(const std::vector<std::pair<int, Point>>& initial) {
  if (state_.load() != State::kNew) {
    return Status::FailedPrecondition("service already started");
  }
  FDRMS_RETURN_NOT_OK(InitializeAlgo(initial));
  version_ = options_.initial_version;
  PublishSnapshot();  // the post-Initialize state (version 0 on first boot)
  if (options_.metrics_dump_every_ms > 0) {
    obs::PeriodicDumperOptions dopt;
    dopt.prometheus_path = options_.metrics_dump_path;
    dopt.json_path = options_.metrics_dump_json_path;
    dopt.interval_ms = options_.metrics_dump_every_ms;
    dumper_ = std::make_unique<obs::PeriodicDumper>(registry_, dopt);
    dumper_->Start();
  }
  state_.store(State::kRunning);
  writer_ = std::thread(&FdRmsService::WriterLoop, this);
  return Status::OK();
}

Status FdRmsService::InitializeAlgo(
    const std::vector<std::pair<int, Point>>& initial) {
  if (options_.resume_path.empty()) {
    return algo_.Initialize(initial);
  }
  std::ifstream in(options_.resume_path);
  if (!in.good()) {
    // First boot: no snapshot on disk yet, start from the given tuples.
    return algo_.Initialize(initial);
  }
  auto loaded = LoadSnapshot(&in);
  if (!loaded.ok()) return loaded.status();
  const FdRms& snap = **loaded;
  if (snap.dim() != dim_) {
    return Status::Invalid("resume snapshot has dim " +
                           std::to_string(snap.dim()) + ", service has " +
                           std::to_string(dim_));
  }
  // The snapshot's options (incl. the utility-sampling seed) define the
  // restored guarantee; silently serving it under different knobs would
  // misreport eps/r, so a mismatch is an error. Compare against the
  // normalized options (the FdRms constructor may raise max_utilities).
  const FdRmsOptions& ours = algo_.options();
  const FdRmsOptions& theirs = snap.options();
  if (theirs.k != ours.k || theirs.r != ours.r || theirs.eps != ours.eps ||
      theirs.max_utilities != ours.max_utilities ||
      theirs.seed != ours.seed) {
    return Status::Invalid(
        "resume snapshot algorithm options differ from the service's");
  }
  std::vector<std::pair<int, Point>> tuples;
  tuples.reserve(static_cast<size_t>(snap.size()));
  snap.topk().tree().ForEach(
      [&](int id, const Point& p) { tuples.emplace_back(id, p); });
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  FDRMS_RETURN_NOT_OK(algo_.Initialize(tuples));
  resumed_ = true;
  return Status::OK();
}

Status FdRmsService::Stop(StopPolicy policy) {
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopped)) {
    return expected == State::kStopped
               ? Status::OK()  // idempotent
               : Status::FailedPrecondition("service never started");
  }
  queue_.Close();
  if (policy == StopPolicy::kAbort) {
    // Close first so no producer can slip an op in after the purge; the
    // writer still finishes its in-flight batch.
    metrics_.ops_dropped->Increment(queue_.Clear());
  }
  if (writer_.joinable()) writer_.join();
  if (dumper_ != nullptr) dumper_->Stop();  // final dump with final totals
  return Status::OK();
}

Status FdRmsService::Submit(FdRms::BatchOp op) {
  if (health() == Health::kDead) {
    // Fail fast instead of parking against a queue no writer will ever
    // drain. The hint is advisory: a revive typically lands within one
    // health-tracker poll plus a cold restart.
    return Status::Unavailable(
        "shard writer is dead; retry after revive (suggested backoff 50ms)");
  }
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition("service is not running");
  }
  if (options_.overflow == FdRmsServiceOptions::Overflow::kReject) {
    if (!queue_.TryPush(std::move(op))) {
      if (queue_.closed()) {
        if (health() == Health::kDead) {
          return Status::Unavailable(
              "shard writer died; retry after revive (suggested backoff "
              "50ms)");
        }
        return Status::FailedPrecondition("service is shutting down");
      }
      return Status::ResourceExhausted("update queue full");
    }
  } else {
    if (!queue_.Push(std::move(op))) {
      // The queue only refuses a blocking Push once it is closed: either a
      // Stop() (shutdown) or the writer's death epilogue (health is kDead
      // by the time the close wakes parked producers).
      if (health() == Health::kDead) {
        return Status::Unavailable(
            "shard writer died while the submit was parked; retry after "
            "revive (suggested backoff 50ms)");
      }
      return Status::FailedPrecondition("service is shutting down");
    }
  }
  // Telemetry only: the authoritative submitted count is the queue's
  // total_pushed() (see ops_submitted()'s >=-consumed invariant).
  metrics_.ops_submitted->Increment();
  return Status::OK();
}

Status FdRmsService::Flush() {
  if (state_.load() == State::kNew) {
    return Status::FailedPrecondition("service never started");
  }
  const uint64_t target = ops_submitted();
  std::unique_lock<std::mutex> lock(flush_mutex_);
  flush_cv_.wait(lock,
                 [&] { return consumed_published_ >= target || writer_done_; });
  if (consumed_published_ >= target) return Status::OK();
  if (health() == Health::kDead) {
    return Status::Unavailable(
        "shard writer died before the backlog drained; revive the shard and "
        "retry");
  }
  return Status::FailedPrecondition(
      "writer exited before the backlog drained (aborted?)");
}

Status FdRmsService::Inspect(const std::function<void(const FdRms&)>& fn) {
  if (health() == Health::kDead) {
    return Status::Unavailable("shard writer is dead; revive before Inspect");
  }
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition("service is not running");
  }
  InspectRequest req{&fn, /*done=*/false, Status::OK()};
  {
    std::lock_guard<std::mutex> lock(inspect_mutex_);
    if (inspect_closed_) {
      if (health() == Health::kDead) {
        return Status::Unavailable(
            "shard writer died; revive before Inspect");
      }
      return Status::FailedPrecondition("writer already exited");
    }
    inspect_queue_.push_back(&req);
  }
  queue_.Kick();  // wake the writer even if the op queue is empty
  std::unique_lock<std::mutex> lock(inspect_mutex_);
  inspect_cv_.wait(lock, [&] { return req.done; });
  return req.status;
}

Status FdRmsService::CollectRange(const std::function<bool(int)>& pred,
                                  std::vector<std::pair<int, Point>>* out) {
  out->clear();
  Status st = Inspect([&](const FdRms& algo) {
    algo.topk().tree().ForEach([&](int id, const Point& p) {
      if (pred(id)) out->emplace_back(id, p);
    });
  });
  if (!st.ok()) return st;
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Status::OK();
}

void FdRmsService::RunPendingInspections() {
  for (;;) {
    InspectRequest* req = nullptr;
    {
      std::lock_guard<std::mutex> lock(inspect_mutex_);
      if (inspect_queue_.empty()) return;
      req = inspect_queue_.front();
      inspect_queue_.erase(inspect_queue_.begin());
    }
    // Run outside the lock: the caller waits on req->done, not the queue.
    (*req->fn)(algo_);
    {
      std::lock_guard<std::mutex> lock(inspect_mutex_);
      req->done = true;
    }
    inspect_cv_.notify_all();
  }
}

void FdRmsService::CloseInspections() {
  std::lock_guard<std::mutex> lock(inspect_mutex_);
  inspect_closed_ = true;
  const Status refusal =
      health() == Health::kDead
          ? Status::Unavailable("shard writer died; revive before Inspect")
          : Status::FailedPrecondition("writer exited");
  for (InspectRequest* req : inspect_queue_) {
    req->status = refusal;
    req->done = true;
  }
  inspect_queue_.clear();
  inspect_cv_.notify_all();
}

Status FdRmsService::DrainDeadBacklog(std::vector<FdRms::BatchOp>* out) {
  out->clear();
  if (health() != Health::kDead) {
    return Status::FailedPrecondition(
        "DrainDeadBacklog requires a dead writer");
  }
  {
    std::unique_lock<std::mutex> lock(flush_mutex_);
    if (!writer_done_) {
      return Status::FailedPrecondition("writer has not finished dying yet");
    }
  }
  // The writer thread is gone, so this thread can take over the queue's
  // single-consumer role. The dead-letter batch was popped first, so it
  // leads; the queue remnants follow in submission order.
  out->insert(out->end(), dead_letter_.begin(), dead_letter_.end());
  dead_letter_.clear();
  std::vector<FdRms::BatchOp> chunk;
  while (queue_.PopBatch(1024, &chunk)) {
    if (chunk.empty()) break;  // closed queues never Kick; paranoia
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
  return Status::OK();
}

const std::vector<FdRms::BatchOp>& FdRmsService::journal() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "journal() is only valid after Stop()";
  return journal_;
}

const FdRms& FdRmsService::algorithm() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "algorithm() is only valid after Stop()";
  return algo_;
}

Status FdRmsService::WriterFaultSite(const char* prefix, const char* step) {
  FaultAction act = FaultPoints::Hit(prefix, step);
  if (act.none()) return Status::OK();
  metrics_.writer_faults->Increment();
  if (act.kind == FaultKind::kDelay) return Status::OK();
  if (act.die()) {
    writer_die_ = true;
    return Status::OK();
  }
  // Injected error: the writer survives and the state stays correct, but
  // the operator should know something is throwing in the fault domain.
  Health expected = Health::kRunning;
  health_.compare_exchange_strong(expected, Health::kDegraded);
  return act.ToStatus();
}

void FdRmsService::WriterLoop() {
  std::vector<FdRms::BatchOp> batch;
  for (;;) {
    metrics_.heartbeat->Set(static_cast<double>(
        heartbeat_.fetch_add(1, std::memory_order_relaxed) + 1));
    RunPendingInspections();
    // Observe the backlog before draining and steer the effective batch
    // bound: double while the burst runs at least two bounds deep, halve
    // once the queue runs near-empty, hold inside the hysteresis band.
    const size_t depth = queue_.size();
    metrics_.queue_depth->Set(static_cast<double>(depth));
    metrics_.queue_depth_pow2->Record(depth);
    // The external ceiling (SetBatchBound) caps whatever the policy below
    // decides; already clamped into [min_batch, max_batch] at the setter.
    const size_t ceiling = batch_bound_.load(std::memory_order_relaxed);
    if (options_.adaptive_batching) {
      effective_batch_ = std::min(effective_batch_, ceiling);
      if (depth >= 2 * effective_batch_) {
        effective_batch_ = std::min(2 * effective_batch_, ceiling);
      } else if (depth * 4 <= effective_batch_) {
        effective_batch_ = std::max(effective_batch_ / 2, options_.min_batch);
      }
    } else {
      effective_batch_ = ceiling;
    }
    Stopwatch drain_watch;
    if (!queue_.PopBatch(effective_batch_, &batch)) break;
    // An empty batch is a Kick() wakeup: loop back for the control work.
    if (!batch.empty()) {
      // Drain time only counts when ops arrived: an idle writer parked in
      // PopBatch is not a drain phase worth charging.
      metrics_.drain_us->Record(drain_watch.ElapsedMicros());
      metrics_.batch_size_pow2->Record(batch.size());
      // A drain-site death leaves the popped batch unapplied: stash it as
      // the dead letter so a revive can replay the acknowledged ops.
      (void)WriterFaultSite("writer.drain", "post");
      if (writer_die_) {
        dead_letter_ = std::move(batch);
        break;
      }
      ApplyAndPublish(batch);
      if (writer_die_) break;
    }
  }
  const bool faulted = writer_die_;
  // Serve inspections that raced shutdown (they observe the final drained
  // state, which is as point-in-time as any other), then refuse the rest.
  RunPendingInspections();
  // Final save on the way out (drain, abort, or death — the applied prefix
  // is a consistent state either way), so a clean shutdown persists
  // everything and a revive restarts from the dying writer's last applied
  // batch instead of the last cadence save.
  MaybePersist(/*force=*/true);
  if (faulted) {
    // Death epilogue. Order matters: health flips to kDead *before* the
    // queue closes, so a kBlock submitter woken by the close always
    // observes a dead service (kUnavailable), never "shutting down".
    health_.store(Health::kDead, std::memory_order_release);
    metrics_.healthy->Set(0.0);
    queue_.Close();
  }
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    writer_done_ = true;
  }
  flush_cv_.notify_all();
  CloseInspections();
}

void FdRmsService::ApplyAndPublish(const std::vector<FdRms::BatchOp>& batch) {
  Stopwatch batch_watch;
  const uint64_t batch_start_us = registry_->NowMicros();
  const double cpu_start = ThreadCpuSeconds();
  if (options_.batch_delay_us_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.batch_delay_us_for_test));
  }
  if (options_.record_journal) {
    journal_.insert(journal_.end(), batch.begin(), batch.end());
  }
  // An apply-site death strikes before any op of this batch lands: the
  // whole batch becomes the dead letter. (An injected *error* here just
  // degrades health — the batch still applies; correctness is the
  // algorithm's job, liveness is this loop's.)
  (void)WriterFaultSite("writer.apply", "pre");
  if (writer_die_) {
    dead_letter_ = batch;
    return;
  }
  // The whole drain goes down as one ApplyBatch. On a rejected operation
  // (duplicate insert, vanished delete target, ...) resume from the next
  // offset instead of discarding the tail — one submitter's bad op must
  // not eat its neighbors' writes.
  {
    obs::PhaseSpan apply_span(registry_.get(), metrics_.apply_us,
                              "writer.apply");
    apply_span.set_args(batch.size(), version_ + 1);
    size_t pos = 0;
    while (pos < batch.size()) {
      size_t applied = 0;
      Status st = algo_.ApplyBatch(batch, pos, &applied);
      metrics_.ops_applied->Increment(applied);
      applied_total_ += applied;
      pos += applied;
      if (!st.ok()) {
        metrics_.ops_rejected->Increment();
        ++rejected_total_;
        ++pos;  // skip the offender
      }
    }
  }
  busy_seconds_ += ThreadCpuSeconds() - cpu_start;
  metrics_.writer_busy_seconds->Set(busy_seconds_);
  ++batches_;
  ++version_;
  metrics_.batches->Increment();
  // Journal tap: the batch is applied, hand it to the follower before the
  // publication so a standby is never behind a snapshot readers can see.
  if (options_.on_apply) options_.on_apply(batch);
  // A publish-site death leaves this batch applied but unpublished: the
  // algorithm state (and the exit-path save above all else) carries it, so
  // no dead letter — only the snapshot goes stale by one batch.
  (void)WriterFaultSite("writer.publish", "pre");
  if (writer_die_) return;
  MaybePersist(/*force=*/false);
  if (writer_die_) return;  // a persist-site death also skips the publish
  {
    obs::PhaseSpan publish_span(registry_.get(), metrics_.publish_us,
                                "writer.publish");
    publish_span.set_args(batch.size(), version_);
    PublishSnapshot();
  }
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    // Writer-exact, and deliberately instance-local rather than reading the
    // registry counters back: a registry series can be shared with a prior
    // incarnation (same name + labels), and a rendezvous seeded with a dead
    // instance's totals would let Flush() report an un-drained queue as
    // flushed.
    consumed_published_ = applied_total_ + rejected_total_;
  }
  flush_cv_.notify_all();
  // This batch's drain→publish latency feeds the histogram the *next*
  // publication reports (its own snapshot was built before the duration
  // was known).
  const double latency_us = batch_watch.ElapsedMicros();
  metrics_.publish_latency_us->Record(latency_us);
  registry_->trace().Record("writer.batch", batch_start_us,
                            static_cast<uint64_t>(latency_us), batch.size(),
                            version_);
}

void FdRmsService::MaybePersist(bool force) {
  if (options_.persist_every_batches == 0) return;
  // Versioned (manifest) mode treats "never saved this run" as dirty too:
  // a bulk-loaded P_0 with zero batches must still reach disk on the
  // forced exit/PersistNow saves, or the manifest would have nothing to
  // reference for this shard. Legacy mode keeps the exact historical
  // condition.
  const bool dirty = options_.persist_versioned
                         ? (batches_ != persisted_batches_ || !ever_persisted_)
                         : (batches_ != persisted_batches_);
  if (!dirty) return;
  // Throttle on the last *attempt* so a failing disk is retried once per
  // interval, not once per batch; gate on the last *success* above so the
  // forced exit save still fires whenever any batch is not yet durable.
  if (!force &&
      batches_ - attempted_persist_batches_ < options_.persist_every_batches) {
    return;
  }
  DoPersist();
}

Status FdRmsService::DoPersist() {
  attempted_persist_batches_ = batches_;
  // An injected persist error exercises the real failure path (counted,
  // never fatal). A persist-site death aborts only *this* save — the flag
  // check must not trip for a writer already dying from another site, or
  // the epilogue's forced exit save (the one a revive restarts from) would
  // never land.
  const bool was_dying = writer_die_;
  Status injected = WriterFaultSite("writer.persist", "pre");
  if (writer_die_ && !was_dying) {
    return Status::Internal("fault injected: writer died at persist");
  }
  if (!injected.ok()) {
    metrics_.persist_failures->Increment();
    return injected;
  }
  // Serialize to memory first: the checksum handed to on_persist must be
  // over the exact bytes that land on disk, with no re-read race.
  std::ostringstream buf;
  Status st = SaveSnapshot(algo_, &buf);
  std::string bytes;
  std::string path;
  long long gen = 0;
  if (st.ok()) {
    bytes = buf.str();
    if (options_.persist_versioned && options_.persist_version_path) {
      // Immutable versioned file; gen survives restarts via
      // persist_gen_start so names never collide across boots.
      gen = std::max(persist_gen_, options_.persist_gen_start) + 1;
      path = options_.persist_version_path(
          gen, static_cast<long long>(batches_));
    } else {
      path = options_.persist_path;
    }
    st = WriteFileDurable(path, bytes, "serve.persist");
  }
  if (!st.ok()) {
    metrics_.persist_failures->Increment();
    return st;
  }
  if (gen > 0) persist_gen_ = gen;
  persisted_batches_ = batches_;
  ever_persisted_ = true;
  metrics_.persists->Increment();
  if (options_.on_persist) {
    PersistEvent ev;
    ev.file = path;
    ev.gen = gen;
    ev.batches = static_cast<long long>(batches_);
    ev.checksum = Fnv1a64(bytes.data(), bytes.size());
    options_.on_persist(ev);
  }
  return Status::OK();
}

Status FdRmsService::PersistNow() {
  if (options_.persist_every_batches == 0) {
    return Status::FailedPrecondition("persistence not configured");
  }
  Status save = Status::OK();
  Status rendezvous = Inspect([this, &save](const FdRms&) {
    // Writer thread, between batches: a forced save outside the cadence.
    const bool dirty =
        options_.persist_versioned
            ? (batches_ != persisted_batches_ || !ever_persisted_)
            : (batches_ != persisted_batches_);
    if (dirty) save = DoPersist();
  });
  FDRMS_RETURN_NOT_OK(rendezvous);
  return save;
}

void FdRmsService::PublishSnapshot() {
  // The snapshot's stat fields are views over the registry: every value
  // below reads back out of the same metrics a scrape exports, so a
  // ResultSnapshot and a concurrent PrometheusText() can never disagree
  // about what this service has done.
  metrics_.version->Set(static_cast<double>(version_));
  metrics_.sample_size_m->Set(static_cast<double>(algo_.current_m()));
  metrics_.live_tuples->Set(static_cast<double>(algo_.size()));
  metrics_.effective_max_batch->Set(static_cast<double>(effective_batch_));
  auto snap = std::make_shared<ResultSnapshot>();
  snap->version = version_;
  snap->ops_applied = metrics_.ops_applied->Value();
  snap->ops_rejected = metrics_.ops_rejected->Value();
  snap->batches = metrics_.batches->Value();
  snap->sample_size_m = algo_.current_m();
  snap->live_tuples = algo_.size();
  snap->writer_busy_seconds = busy_seconds_;
  snap->publish_p50_us = metrics_.publish_latency_us->Quantile(0.50);
  snap->publish_p99_us = metrics_.publish_latency_us->Quantile(0.99);
  snap->persisted = metrics_.persists->Value();
  snap->effective_max_batch = effective_batch_;
  snap->queue_depth_hist = metrics_.queue_depth_pow2->BucketSums();
  snap->batch_size_hist = metrics_.batch_size_pow2->BucketSums();
  std::vector<FdRms::ResultEntry> entries = algo_.ResolvedResult();
  snap->ids.reserve(entries.size());
  snap->points.reserve(entries.size());
  for (FdRms::ResultEntry& e : entries) {
    snap->ids.push_back(e.id);
    snap->points.push_back(std::move(e.point));
  }
  std::shared_ptr<const ResultSnapshot> published = std::move(snap);
  snapshot_.store(published, std::memory_order_release);
  metrics_.publications->Increment();
  if (options_.on_publish) options_.on_publish(*published);
}

std::string FdRmsService::DebugString() const {
  std::ostringstream out;
  out << "FdRmsService{dim=" << dim_ << ", ";
  switch (state_.load()) {
    case State::kNew: out << "new"; break;
    case State::kRunning: out << "running"; break;
    case State::kStopped: out << "stopped"; break;
  }
  for (const auto& [k, v] : options_.metrics_labels) {
    out << ", " << k << "=" << v;
  }
  out << "}\n";
  out << "  version=" << static_cast<uint64_t>(metrics_.version->Value())
      << " live_tuples=" << static_cast<int64_t>(metrics_.live_tuples->Value())
      << " sample_m=" << static_cast<int64_t>(metrics_.sample_size_m->Value())
      << "\n";
  out << "  submitted=" << ops_submitted()
      << " applied=" << metrics_.ops_applied->Value()
      << " rejected=" << metrics_.ops_rejected->Value()
      << " dropped=" << metrics_.ops_dropped->Value()
      << " batches=" << metrics_.batches->Value()
      << " publications=" << metrics_.publications->Value() << "\n";
  out << "  queue_depth=" << static_cast<uint64_t>(
             metrics_.queue_depth->Value())
      << " effective_max_batch=" << static_cast<uint64_t>(
             metrics_.effective_max_batch->Value())
      << " writer_busy_s=" << metrics_.writer_busy_seconds->Value() << "\n";
  char quant[160];
  std::snprintf(quant, sizeof(quant),
                "  publish_latency_us p50=%.1f p90=%.1f p99=%.1f p999=%.1f "
                "(n=%llu)\n",
                metrics_.publish_latency_us->Quantile(0.50),
                metrics_.publish_latency_us->Quantile(0.90),
                metrics_.publish_latency_us->Quantile(0.99),
                metrics_.publish_latency_us->Quantile(0.999),
                static_cast<unsigned long long>(
                    metrics_.publish_latency_us->Count()));
  out << quant;
  std::snprintf(quant, sizeof(quant),
                "  phases_us drain p50=%.1f apply p50=%.1f publish p50=%.1f\n",
                metrics_.drain_us->Quantile(0.50),
                metrics_.apply_us->Quantile(0.50),
                metrics_.publish_us->Quantile(0.50));
  out << quant;
  out << "  persists=" << metrics_.persists->Value()
      << " persist_failures=" << metrics_.persist_failures->Value()
      << " resumed=" << (resumed_ ? "yes" : "no") << "\n";
  const char* health_name = "running";
  switch (health()) {
    case Health::kRunning: health_name = "running"; break;
    case Health::kDegraded: health_name = "DEGRADED"; break;
    case Health::kDead: health_name = "DEAD"; break;
  }
  out << "  health=" << health_name << " heartbeat=" << writer_heartbeat()
      << " writer_faults=" << metrics_.writer_faults->Value() << "\n";
  return out.str();
}

}  // namespace fdrms
