#include "serve/fdrms_service.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace fdrms {

FdRmsService::FdRmsService(int dim, const FdRmsServiceOptions& options)
    : dim_(dim),
      options_(options),
      algo_(dim, options.algo),
      queue_(options.queue_capacity) {
  FDRMS_CHECK(options.max_batch > 0);
}

FdRmsService::~FdRmsService() {
  if (state_.load() == State::kRunning) {
    (void)Stop(StopPolicy::kDrain);
  }
}

Status FdRmsService::Start(const std::vector<std::pair<int, Point>>& initial) {
  if (state_.load() != State::kNew) {
    return Status::FailedPrecondition("service already started");
  }
  FDRMS_RETURN_NOT_OK(algo_.Initialize(initial));
  PublishSnapshot();  // version 0: the post-Initialize state
  state_.store(State::kRunning);
  writer_ = std::thread(&FdRmsService::WriterLoop, this);
  return Status::OK();
}

Status FdRmsService::Stop(StopPolicy policy) {
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopped)) {
    return expected == State::kStopped
               ? Status::OK()  // idempotent
               : Status::FailedPrecondition("service never started");
  }
  queue_.Close();
  if (policy == StopPolicy::kAbort) {
    // Close first so no producer can slip an op in after the purge; the
    // writer still finishes its in-flight batch.
    ops_dropped_.fetch_add(queue_.Clear(), std::memory_order_relaxed);
  }
  if (writer_.joinable()) writer_.join();
  return Status::OK();
}

Status FdRmsService::Submit(FdRms::BatchOp op) {
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition("service is not running");
  }
  if (options_.overflow == FdRmsServiceOptions::Overflow::kReject) {
    if (!queue_.TryPush(std::move(op))) {
      if (queue_.closed()) {
        return Status::FailedPrecondition("service is shutting down");
      }
      return Status::ResourceExhausted("update queue full");
    }
  } else {
    if (!queue_.Push(std::move(op))) {
      return Status::FailedPrecondition("service is shutting down");
    }
  }
  return Status::OK();
}

Status FdRmsService::Flush() {
  if (state_.load() == State::kNew) {
    return Status::FailedPrecondition("service never started");
  }
  const uint64_t target = ops_submitted();
  std::unique_lock<std::mutex> lock(flush_mutex_);
  flush_cv_.wait(lock,
                 [&] { return consumed_published_ >= target || writer_done_; });
  if (consumed_published_ >= target) return Status::OK();
  return Status::FailedPrecondition(
      "writer exited before the backlog drained (aborted?)");
}

const std::vector<FdRms::BatchOp>& FdRmsService::journal() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "journal() is only valid after Stop()";
  return journal_;
}

const FdRms& FdRmsService::algorithm() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "algorithm() is only valid after Stop()";
  return algo_;
}

void FdRmsService::WriterLoop() {
  std::vector<FdRms::BatchOp> batch;
  while (queue_.PopBatch(options_.max_batch, &batch)) {
    ApplyAndPublish(batch);
  }
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    writer_done_ = true;
  }
  flush_cv_.notify_all();
}

void FdRmsService::ApplyAndPublish(const std::vector<FdRms::BatchOp>& batch) {
  if (options_.batch_delay_us_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.batch_delay_us_for_test));
  }
  if (options_.record_journal) {
    journal_.insert(journal_.end(), batch.begin(), batch.end());
  }
  // The whole drain goes down as one ApplyBatch. On a rejected operation
  // (duplicate insert, vanished delete target, ...) resume from the next
  // offset instead of discarding the tail — one submitter's bad op must
  // not eat its neighbors' writes.
  size_t pos = 0;
  while (pos < batch.size()) {
    size_t applied = 0;
    Status st = algo_.ApplyBatch(batch, pos, &applied);
    applied_ += applied;
    pos += applied;
    if (!st.ok()) {
      ++rejected_;
      ++pos;  // skip the offender
    }
  }
  ++batches_;
  ++version_;
  PublishSnapshot();
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    consumed_published_ = applied_ + rejected_;
  }
  flush_cv_.notify_all();
}

void FdRmsService::PublishSnapshot() {
  auto snap = std::make_shared<ResultSnapshot>();
  snap->version = version_;
  snap->ops_applied = applied_;
  snap->ops_rejected = rejected_;
  snap->batches = batches_;
  snap->sample_size_m = algo_.current_m();
  snap->live_tuples = algo_.size();
  std::vector<FdRms::ResultEntry> entries = algo_.ResolvedResult();
  snap->ids.reserve(entries.size());
  snap->points.reserve(entries.size());
  for (FdRms::ResultEntry& e : entries) {
    snap->ids.push_back(e.id);
    snap->points.push_back(std::move(e.point));
  }
  snapshot_.store(std::move(snap), std::memory_order_release);
}

}  // namespace fdrms
