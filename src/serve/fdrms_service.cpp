#include "serve/fdrms_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/snapshot.h"

namespace fdrms {

namespace {

/// How many completed batch latencies the p50/p99 window holds.
constexpr size_t kLatencyWindow = 512;

/// Quantile over an unordered sample (by value: nth_element reorders).
double Quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sample.size() - 1) +
                                   0.5);
  idx = std::min(idx, sample.size() - 1);
  std::nth_element(sample.begin(), sample.begin() + idx, sample.end());
  return sample[idx];
}

}  // namespace

FdRmsService::FdRmsService(int dim, const FdRmsServiceOptions& options)
    : dim_(dim),
      options_(options),
      algo_(dim, options.algo),
      queue_(options.queue_capacity) {
  FDRMS_CHECK(options.max_batch > 0);
  FDRMS_CHECK(options.min_batch > 0);
  FDRMS_CHECK(options.min_batch <= options.max_batch)
      << "min_batch must not exceed max_batch";
  // Adaptive runs start small (latency-first until a burst shows up);
  // fixed-batch runs behave exactly like the pre-adaptive writer.
  effective_batch_ =
      options.adaptive_batching ? options.min_batch : options.max_batch;
  queue_depth_hist_.assign(kPow2HistBuckets, 0);
  batch_size_hist_.assign(kPow2HistBuckets, 0);
}

FdRmsService::~FdRmsService() {
  if (state_.load() == State::kRunning) {
    (void)Stop(StopPolicy::kDrain);
  }
}

Status FdRmsService::Start(const std::vector<std::pair<int, Point>>& initial) {
  if (state_.load() != State::kNew) {
    return Status::FailedPrecondition("service already started");
  }
  FDRMS_RETURN_NOT_OK(InitializeAlgo(initial));
  PublishSnapshot();  // version 0: the post-Initialize state
  state_.store(State::kRunning);
  writer_ = std::thread(&FdRmsService::WriterLoop, this);
  return Status::OK();
}

Status FdRmsService::InitializeAlgo(
    const std::vector<std::pair<int, Point>>& initial) {
  if (options_.resume_path.empty()) {
    return algo_.Initialize(initial);
  }
  std::ifstream in(options_.resume_path);
  if (!in.good()) {
    // First boot: no snapshot on disk yet, start from the given tuples.
    return algo_.Initialize(initial);
  }
  auto loaded = LoadSnapshot(&in);
  if (!loaded.ok()) return loaded.status();
  const FdRms& snap = **loaded;
  if (snap.dim() != dim_) {
    return Status::Invalid("resume snapshot has dim " +
                           std::to_string(snap.dim()) + ", service has " +
                           std::to_string(dim_));
  }
  // The snapshot's options (incl. the utility-sampling seed) define the
  // restored guarantee; silently serving it under different knobs would
  // misreport eps/r, so a mismatch is an error. Compare against the
  // normalized options (the FdRms constructor may raise max_utilities).
  const FdRmsOptions& ours = algo_.options();
  const FdRmsOptions& theirs = snap.options();
  if (theirs.k != ours.k || theirs.r != ours.r || theirs.eps != ours.eps ||
      theirs.max_utilities != ours.max_utilities ||
      theirs.seed != ours.seed) {
    return Status::Invalid(
        "resume snapshot algorithm options differ from the service's");
  }
  std::vector<std::pair<int, Point>> tuples;
  tuples.reserve(static_cast<size_t>(snap.size()));
  snap.topk().tree().ForEach(
      [&](int id, const Point& p) { tuples.emplace_back(id, p); });
  std::sort(tuples.begin(), tuples.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  FDRMS_RETURN_NOT_OK(algo_.Initialize(tuples));
  resumed_ = true;
  return Status::OK();
}

Status FdRmsService::Stop(StopPolicy policy) {
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopped)) {
    return expected == State::kStopped
               ? Status::OK()  // idempotent
               : Status::FailedPrecondition("service never started");
  }
  queue_.Close();
  if (policy == StopPolicy::kAbort) {
    // Close first so no producer can slip an op in after the purge; the
    // writer still finishes its in-flight batch.
    ops_dropped_.fetch_add(queue_.Clear(), std::memory_order_relaxed);
  }
  if (writer_.joinable()) writer_.join();
  return Status::OK();
}

Status FdRmsService::Submit(FdRms::BatchOp op) {
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition("service is not running");
  }
  if (options_.overflow == FdRmsServiceOptions::Overflow::kReject) {
    if (!queue_.TryPush(std::move(op))) {
      if (queue_.closed()) {
        return Status::FailedPrecondition("service is shutting down");
      }
      return Status::ResourceExhausted("update queue full");
    }
  } else {
    if (!queue_.Push(std::move(op))) {
      return Status::FailedPrecondition("service is shutting down");
    }
  }
  return Status::OK();
}

Status FdRmsService::Flush() {
  if (state_.load() == State::kNew) {
    return Status::FailedPrecondition("service never started");
  }
  const uint64_t target = ops_submitted();
  std::unique_lock<std::mutex> lock(flush_mutex_);
  flush_cv_.wait(lock,
                 [&] { return consumed_published_ >= target || writer_done_; });
  if (consumed_published_ >= target) return Status::OK();
  return Status::FailedPrecondition(
      "writer exited before the backlog drained (aborted?)");
}

Status FdRmsService::Inspect(const std::function<void(const FdRms&)>& fn) {
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition("service is not running");
  }
  InspectRequest req{&fn, /*done=*/false, Status::OK()};
  {
    std::lock_guard<std::mutex> lock(inspect_mutex_);
    if (inspect_closed_) {
      return Status::FailedPrecondition("writer already exited");
    }
    inspect_queue_.push_back(&req);
  }
  queue_.Kick();  // wake the writer even if the op queue is empty
  std::unique_lock<std::mutex> lock(inspect_mutex_);
  inspect_cv_.wait(lock, [&] { return req.done; });
  return req.status;
}

Status FdRmsService::CollectRange(const std::function<bool(int)>& pred,
                                  std::vector<std::pair<int, Point>>* out) {
  out->clear();
  Status st = Inspect([&](const FdRms& algo) {
    algo.topk().tree().ForEach([&](int id, const Point& p) {
      if (pred(id)) out->emplace_back(id, p);
    });
  });
  if (!st.ok()) return st;
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Status::OK();
}

void FdRmsService::RunPendingInspections() {
  for (;;) {
    InspectRequest* req = nullptr;
    {
      std::lock_guard<std::mutex> lock(inspect_mutex_);
      if (inspect_queue_.empty()) return;
      req = inspect_queue_.front();
      inspect_queue_.erase(inspect_queue_.begin());
    }
    // Run outside the lock: the caller waits on req->done, not the queue.
    (*req->fn)(algo_);
    {
      std::lock_guard<std::mutex> lock(inspect_mutex_);
      req->done = true;
    }
    inspect_cv_.notify_all();
  }
}

void FdRmsService::CloseInspections() {
  std::lock_guard<std::mutex> lock(inspect_mutex_);
  inspect_closed_ = true;
  for (InspectRequest* req : inspect_queue_) {
    req->status = Status::FailedPrecondition("writer exited");
    req->done = true;
  }
  inspect_queue_.clear();
  inspect_cv_.notify_all();
}

const std::vector<FdRms::BatchOp>& FdRmsService::journal() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "journal() is only valid after Stop()";
  return journal_;
}

const FdRms& FdRmsService::algorithm() const {
  FDRMS_CHECK(state_.load() != State::kRunning)
      << "algorithm() is only valid after Stop()";
  return algo_;
}

void FdRmsService::WriterLoop() {
  std::vector<FdRms::BatchOp> batch;
  for (;;) {
    RunPendingInspections();
    // Observe the backlog before draining and steer the effective batch
    // bound: double while the burst runs at least two bounds deep, halve
    // once the queue runs near-empty, hold inside the hysteresis band.
    const size_t depth = queue_.size();
    ++queue_depth_hist_[Pow2HistBucket(depth)];
    if (options_.adaptive_batching) {
      if (depth >= 2 * effective_batch_) {
        effective_batch_ = std::min(2 * effective_batch_, options_.max_batch);
      } else if (depth * 4 <= effective_batch_) {
        effective_batch_ = std::max(effective_batch_ / 2, options_.min_batch);
      }
    }
    if (!queue_.PopBatch(effective_batch_, &batch)) break;
    // An empty batch is a Kick() wakeup: loop back for the control work.
    if (!batch.empty()) {
      ++batch_size_hist_[Pow2HistBucket(batch.size())];
      ApplyAndPublish(batch);
    }
  }
  // Serve inspections that raced shutdown (they observe the final drained
  // state, which is as point-in-time as any other), then refuse the rest.
  RunPendingInspections();
  // Final save on the way out (drain or abort — the applied prefix is a
  // consistent state either way), so a clean shutdown persists everything.
  MaybePersist(/*force=*/true);
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    writer_done_ = true;
  }
  flush_cv_.notify_all();
  CloseInspections();
}

void FdRmsService::ApplyAndPublish(const std::vector<FdRms::BatchOp>& batch) {
  Stopwatch batch_watch;
  const double cpu_start = ThreadCpuSeconds();
  if (options_.batch_delay_us_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.batch_delay_us_for_test));
  }
  if (options_.record_journal) {
    journal_.insert(journal_.end(), batch.begin(), batch.end());
  }
  // The whole drain goes down as one ApplyBatch. On a rejected operation
  // (duplicate insert, vanished delete target, ...) resume from the next
  // offset instead of discarding the tail — one submitter's bad op must
  // not eat its neighbors' writes.
  size_t pos = 0;
  while (pos < batch.size()) {
    size_t applied = 0;
    Status st = algo_.ApplyBatch(batch, pos, &applied);
    applied_ += applied;
    pos += applied;
    if (!st.ok()) {
      ++rejected_;
      ++pos;  // skip the offender
    }
  }
  busy_seconds_ += ThreadCpuSeconds() - cpu_start;
  ++batches_;
  ++version_;
  MaybePersist(/*force=*/false);
  PublishSnapshot();
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    consumed_published_ = applied_ + rejected_;
  }
  flush_cv_.notify_all();
  // This batch's drain→publish latency feeds the window the *next*
  // publication reports (its own snapshot was built before the duration
  // was known).
  const double latency_us = batch_watch.ElapsedMicros();
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(latency_us);
  } else {
    latency_window_[latency_next_] = latency_us;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void FdRmsService::MaybePersist(bool force) {
  if (options_.persist_every_batches == 0) return;
  if (batches_ == persisted_batches_) return;  // everything durable already
  // Throttle on the last *attempt* so a failing disk is retried once per
  // interval, not once per batch; gate on the last *success* above so the
  // forced exit save still fires whenever any batch is not yet durable.
  if (!force &&
      batches_ - attempted_persist_batches_ < options_.persist_every_batches) {
    return;
  }
  attempted_persist_batches_ = batches_;
  const std::string tmp = options_.persist_path + ".tmp";
  Status st;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      st = Status::Internal("cannot open " + tmp);
    } else {
      st = SaveSnapshot(algo_, &out);
      out.close();
      if (st.ok() && !out) st = Status::Internal("write to " + tmp + " failed");
    }
  }
  if (st.ok() &&
      std::rename(tmp.c_str(), options_.persist_path.c_str()) != 0) {
    st = Status::Internal("rename to " + options_.persist_path + " failed");
  }
  if (st.ok()) {
    persisted_batches_ = attempted_persist_batches_;
    persists_.fetch_add(1, std::memory_order_relaxed);
  } else {
    persist_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FdRmsService::PublishSnapshot() {
  auto snap = std::make_shared<ResultSnapshot>();
  snap->version = version_;
  snap->ops_applied = applied_;
  snap->ops_rejected = rejected_;
  snap->batches = batches_;
  snap->sample_size_m = algo_.current_m();
  snap->live_tuples = algo_.size();
  snap->writer_busy_seconds = busy_seconds_;
  snap->publish_p50_us = Quantile(latency_window_, 0.50);
  snap->publish_p99_us = Quantile(latency_window_, 0.99);
  snap->persisted = persists_.load(std::memory_order_relaxed);
  snap->effective_max_batch = effective_batch_;
  snap->queue_depth_hist = queue_depth_hist_;
  snap->batch_size_hist = batch_size_hist_;
  std::vector<FdRms::ResultEntry> entries = algo_.ResolvedResult();
  snap->ids.reserve(entries.size());
  snap->points.reserve(entries.size());
  for (FdRms::ResultEntry& e : entries) {
    snap->ids.push_back(e.id);
    snap->points.push_back(std::move(e.point));
  }
  std::shared_ptr<const ResultSnapshot> published = std::move(snap);
  snapshot_.store(published, std::memory_order_release);
  if (options_.on_publish) options_.on_publish(*published);
}

}  // namespace fdrms
