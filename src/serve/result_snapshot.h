#ifndef FDRMS_SERVE_RESULT_SNAPSHOT_H_
#define FDRMS_SERVE_RESULT_SNAPSHOT_H_

/// \file result_snapshot.h
/// The immutable unit of publication of the serving layer. After each
/// applied batch the writer thread builds a fresh ResultSnapshot and swaps
/// it into an atomic shared_ptr; readers hold a snapshot for as long as
/// they like without blocking the writer or each other. A snapshot is
/// never mutated after publication.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace fdrms {

/// One published view of the maintained result Q_t plus enough bookkeeping
/// for a reader to reason about staleness.
struct ResultSnapshot {
  /// Publication counter, strictly increasing across snapshots of one
  /// service instance. version 0 is the initial (post-Initialize) state.
  uint64_t version = 0;

  /// Operations consumed from the queue up to this snapshot, split by
  /// outcome. consumed = applied + rejected; a reader comparing `consumed`
  /// against the service's submitted counter sees the queue backlog.
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;

  /// ApplyBatch calls that produced this state (i.e. how many publications
  /// carried real work; equals version unless batches were empty).
  uint64_t batches = 0;

  /// FD-RMS sample size m after the batch (UPDATEM's current choice).
  int sample_size_m = 0;

  /// Live tuple count after the batch.
  int live_tuples = 0;

  /// Cumulative CPU seconds the writer thread has spent applying batches
  /// (per-thread CPU time: excludes queue waits, snapshot construction,
  /// and — on an oversubscribed host — periods spent descheduled while
  /// other threads ran). The operator's utilization signal: busy/wall near
  /// 1.0 means the writer is saturated and the tuple space should be
  /// sharded wider.
  double writer_busy_seconds = 0.0;

  /// p50/p99 batch publication latency in microseconds — the time from a
  /// batch leaving the queue to its snapshot being published — interpolated
  /// from the service's cumulative fdrms_publish_latency_us histogram over
  /// the batches published before this snapshot (a batch's own latency is
  /// only known once its publication completes, so each publication reports
  /// the distribution up to its predecessor). 0 until the second batch.
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;

  /// Background persistence runs completed so far (0 unless
  /// FdRmsServiceOptions::persist_every_batches is set).
  uint64_t persisted = 0;

  /// The adaptive batching policy's state and evidence. effective_max_batch
  /// is the batch bound in force when this snapshot's batch was drained
  /// (== options.max_batch when adaptive batching is off); the histograms
  /// count, per writer wakeup, the queue depth observed before draining
  /// and the sizes of the batches actually applied (power-of-two buckets,
  /// see obs::Pow2HistBucket). Both are cumulative over the service's
  /// lifetime.
  uint64_t effective_max_batch = 0;
  std::vector<uint64_t> queue_depth_hist;
  std::vector<uint64_t> batch_size_hist;

  /// Q_t tuple ids, ascending; |ids| <= r.
  std::vector<int> ids;

  /// Attribute vectors resolved at publication time, parallel to `ids` —
  /// readers never touch the mutating index.
  std::vector<Point> points;
};

}  // namespace fdrms

#endif  // FDRMS_SERVE_RESULT_SNAPSHOT_H_
