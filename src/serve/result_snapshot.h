#ifndef FDRMS_SERVE_RESULT_SNAPSHOT_H_
#define FDRMS_SERVE_RESULT_SNAPSHOT_H_

/// \file result_snapshot.h
/// The immutable unit of publication of the serving layer. After each
/// applied batch the writer thread builds a fresh ResultSnapshot and swaps
/// it into an atomic shared_ptr; readers hold a snapshot for as long as
/// they like without blocking the writer or each other. A snapshot is
/// never mutated after publication.

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace fdrms {

/// One published view of the maintained result Q_t plus enough bookkeeping
/// for a reader to reason about staleness.
struct ResultSnapshot {
  /// Publication counter, strictly increasing across snapshots of one
  /// service instance. version 0 is the initial (post-Initialize) state.
  uint64_t version = 0;

  /// Operations consumed from the queue up to this snapshot, split by
  /// outcome. consumed = applied + rejected; a reader comparing `consumed`
  /// against the service's submitted counter sees the queue backlog.
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;

  /// ApplyBatch calls that produced this state (i.e. how many publications
  /// carried real work; equals version unless batches were empty).
  uint64_t batches = 0;

  /// FD-RMS sample size m after the batch (UPDATEM's current choice).
  int sample_size_m = 0;

  /// Live tuple count after the batch.
  int live_tuples = 0;

  /// Q_t tuple ids, ascending; |ids| <= r.
  std::vector<int> ids;

  /// Attribute vectors resolved at publication time, parallel to `ids` —
  /// readers never touch the mutating index.
  std::vector<Point> points;
};

}  // namespace fdrms

#endif  // FDRMS_SERVE_RESULT_SNAPSHOT_H_
