#ifndef FDRMS_SERVE_BOUNDED_QUEUE_H_
#define FDRMS_SERVE_BOUNDED_QUEUE_H_

/// \file bounded_queue.h
/// A bounded multi-producer/single-consumer queue (mutex + condvar).
/// Formerly the serving layer's update queue; superseded there by the
/// lock-free MpscRingQueue (serve/mpsc_ring_queue.h) and kept as the
/// easy-to-audit *reference implementation* of the shared queue contract —
/// the typed serve_test suite runs both against the same semantics, and
/// bench_micro_substrates races the two head to head. Producers are
/// request threads submitting mutations; the single consumer drains up to
/// a batch of elements per wakeup so a sequential consumer amortizes
/// wakeup and publication cost across many operations.
///
/// Backpressure: `Push` blocks while the queue is full; `TryPush` returns
/// false instead, letting the caller surface kResourceExhausted. `Close`
/// wakes everyone: blocked producers give up (their element is not
/// enqueued), and the consumer keeps draining until empty, then sees
/// "closed and empty" as end-of-stream.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fdrms {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FDRMS_CHECK(capacity > 0);
  }

  /// Blocks until there is room (or the queue is closed). Returns true if
  /// the element was enqueued, false if the queue closed first.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    total_pushed_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      total_pushed_.fetch_add(1, std::memory_order_relaxed);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Consumer side: blocks until at least one element is available, then
  /// moves up to `max_batch` elements into `out` (cleared first). Returns
  /// false only when the queue is closed *and* empty — end of stream. A
  /// Kick() wakes the wait early: the call then returns true with an empty
  /// batch so the consumer can run out-of-band work (e.g. a state
  /// inspection) and loop back.
  bool PopBatch(size_t max_batch, std::vector<T>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_ || kicked_; });
    kicked_ = false;
    if (items_.empty()) return !closed_;  // closed: end of stream; kicked: spin
    size_t take = items_.size() < max_batch ? items_.size() : max_batch;
    out->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Discards everything queued; returns how many elements were dropped.
  size_t Clear() {
    size_t dropped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dropped = items_.size();
      items_.clear();
    }
    not_full_.notify_all();
    return dropped;
  }

  /// Wakes the consumer even when nothing is queued: the next (or a
  /// currently blocked) PopBatch returns true with an empty batch instead
  /// of waiting for elements. One kick wakes one PopBatch; used to hand the
  /// consumer out-of-band control work without enqueuing sentinel elements.
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      kicked_ = true;
    }
    not_empty_.notify_all();
  }

  /// Closes the queue: subsequent pushes fail, blocked pushes give up, the
  /// consumer drains what remains. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Elements ever accepted (monotone). Counted under the queue mutex at
  /// push time, so for any observer that saw an element consumed,
  /// total_pushed() >= the count of consumed elements — the serving layer
  /// leans on this to make backlog arithmetic underflow-free.
  uint64_t total_pushed() const {
    return total_pushed_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::atomic<uint64_t> total_pushed_{0};
  bool closed_ = false;
  bool kicked_ = false;
};

}  // namespace fdrms

#endif  // FDRMS_SERVE_BOUNDED_QUEUE_H_
