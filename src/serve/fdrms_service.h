#ifndef FDRMS_SERVE_FDRMS_SERVICE_H_
#define FDRMS_SERVE_FDRMS_SERVICE_H_

/// \file fdrms_service.h
/// Concurrent serving layer over FD-RMS: single writer, many readers.
///
/// The update algorithm (Algorithms 3-4) is inherently sequential — every
/// mutation rewrites the dual-tree and the stable set-cover state — so the
/// service gives it a dedicated writer thread and keeps everyone else off
/// it. Producers submit mutations into a bounded lock-free MPSC ring
/// queue (serve/mpsc_ring_queue.h); the writer drains the queue in
/// batches whose bound adapts to the observed queue depth, coalesces each
/// drain into one FdRms::ApplyBatch call, and after every batch publishes
/// an immutable ResultSnapshot through
/// std::atomic<std::shared_ptr<const ResultSnapshot>>. Query() is a single
/// atomic shared_ptr load: readers never touch the queue, never wait for
/// the writer, and keep their snapshot alive for as long as they hold the
/// pointer.
///
///   FdRmsServiceOptions sopt;
///   sopt.algo.r = 20;
///   FdRmsService service(dim, sopt);
///   service.Start(initial_tuples);             // Initialize + spawn writer
///   service.SubmitInsert(id, p);               // any thread
///   auto snap = service.Query();               // any thread, wait-free
///   service.Stop(FdRmsService::StopPolicy::kDrain);
///
/// Consistency model: snapshots are point-in-time consistent (each is the
/// exact FD-RMS state after some batch prefix of the applied operation
/// sequence) and versions are strictly monotone, but reads are *stale* by
/// up to the queue backlog plus one in-flight batch. ResultSnapshot carries
/// the counters a reader needs to bound that staleness.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/fdrms.h"
#include "obs/metrics.h"
#include "obs/periodic_dumper.h"
#include "obs/registry.h"
#include "serve/mpsc_ring_queue.h"
#include "serve/result_snapshot.h"

namespace fdrms {

/// What a completed snapshot save looked like — handed to
/// FdRmsServiceOptions::on_persist so the sharded layer's manifest can
/// reference the exact bytes on disk.
struct PersistEvent {
  std::string file;        ///< full path the snapshot landed at
  long long gen = 0;       ///< persist generation (versioned mode; else 0)
  long long batches = 0;   ///< writer batches applied at save time
  std::uint64_t checksum = 0;  ///< FNV-1a over the bytes written
};

/// Knobs of the serving layer (the algorithm's own knobs ride in `algo`).
struct FdRmsServiceOptions {
  FdRmsOptions algo;

  /// Bound of the MPSC update queue (operations, not batches).
  size_t queue_capacity = 4096;

  /// Max operations the writer drains into one ApplyBatch/publication —
  /// the ceiling of the adaptive policy below, or the fixed bound when
  /// adaptive batching is off.
  size_t max_batch = 256;

  /// Writer-side adaptive batching (on by default). Each wakeup the writer
  /// observes the queue depth and steers its effective batch bound within
  /// [min_batch, max_batch]: the bound doubles while the backlog runs at
  /// least two bounds deep (burst: amortize publication cost) and halves
  /// when the backlog falls to a quarter of it (idle: publish small
  /// batches promptly for low publish_p50_us). The bound in force, plus
  /// the depth and batch-size histograms backing the decision, ride every
  /// ResultSnapshot. Off = fixed max_batch (the pre-adaptive behavior).
  bool adaptive_batching = true;
  size_t min_batch = 1;

  /// What a submitter experiences when the queue is full: kBlock parks the
  /// caller until the writer frees room; kReject returns kResourceExhausted
  /// immediately (shed load at the edge).
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;

  /// Background persistence: every N batches the writer saves the full
  /// FD-RMS state (core/snapshot.h SaveSnapshot) to `persist_path` with a
  /// crash-durable write-to-temp → fsync → rename → dir-fsync (a failed
  /// fsync counts as a persist failure), and once more when the writer
  /// exits, so
  /// a crash loses at most N batches and a clean shutdown loses nothing.
  /// 0 = off. Failures are counted (persist_failures()), never fatal: a
  /// full disk must not take the serving path down.
  size_t persist_every_batches = 0;
  std::string persist_path = "fdrms_service.snapshot";

  /// Versioned persistence (the sharded layer's manifest mode): instead of
  /// overwriting the fixed `persist_path`, every save goes to a fresh
  /// immutable file named by `version_path(gen, batches)` (the shard layer
  /// supplies `<base>.shard<i>.g<gen>.b<batches>`), written crash-durably
  /// (tmp → fsync → rename → dir fsync), and `on_persist` reports the file
  /// + its checksum so the constellation manifest can reference it. A
  /// referenced file is never rewritten, so a crash mid-save can only
  /// orphan a new file. In this mode the writer also force-saves on exit
  /// even when zero batches landed (a bulk-loaded P_0 must be restorable).
  /// Off (the default): the legacy fixed-path overwrite semantics, now with
  /// fsync-before-rename.
  bool persist_versioned = false;
  std::function<std::string(long long gen, long long batches)>
      persist_version_path;

  /// First `gen` handed to persist_version_path is persist_gen_start + 1 —
  /// the sharded layer seeds it from the manifest so filenames stay unique
  /// across restarts.
  long long persist_gen_start = 0;

  /// Writer-thread hook fired after every *successful* snapshot save (both
  /// modes). The sharded layer feeds its persist ledger from it. Must be
  /// cheap and must not call back into the service.
  std::function<void(const PersistEvent&)> on_persist;

  /// Restart-from-snapshot: when non-empty and the file exists at Start(),
  /// the service initializes from the persisted snapshot (core/snapshot.h)
  /// instead of the `initial` tuples, so a restarted process resumes
  /// without replaying its history. A missing file falls back to `initial`
  /// (first boot); a corrupt file, a dimension mismatch, or algorithm
  /// options that differ from the snapshot's fail Start. Typically set to
  /// the same path as `persist_path`. Whether the resume actually happened
  /// is reported by resumed().
  std::string resume_path;

  /// Version stamped on the Start() publication; every batch publication
  /// increments from it. The sharded layer seeds a revived shard's
  /// successor with (dead incarnation's last published version + 1) so the
  /// per-shard version sequence stays strictly monotone across the restart
  /// — readers' component-wise monotonicity check survives a revive.
  uint64_t initial_version = 0;

  /// Writer-thread hook invoked after every snapshot publication (the
  /// version-0 publication runs on the Start() caller's thread). The shard
  /// layer uses it to observe publication cadence. Must be cheap and must
  /// not call back into the service.
  std::function<void(const ResultSnapshot&)> on_publish;

  /// Writer-thread hook fired after each batch is applied (before its
  /// publication), with the exact operation sequence the writer consumed —
  /// the live journal tap. A follower replica applying the same batches
  /// through the same deterministic algorithm tracks this instance state-
  /// for-state (rejects and all), which is what the sharded layer's
  /// warm-standby failover rides on. Runs on the writer thread: it adds
  /// directly to apply latency, so keep it cheap. Must not call back into
  /// the service.
  std::function<void(const std::vector<FdRms::BatchOp>&)> on_apply;

  /// Test/debug hook: record every consumed operation in application order
  /// (retrievable via journal() after Stop). Off in production — it grows
  /// without bound.
  bool record_journal = false;

  /// Test hook: the writer sleeps this long before applying each batch,
  /// making backlog-dependent behavior (backpressure, abort drops)
  /// deterministic to exercise. 0 in production.
  int batch_delay_us_for_test = 0;

  /// Metric registry this service reports through (obs/registry.h). Null =
  /// the service creates a private one (reachable via registry()). The
  /// sharded layer passes one shared registry to every shard and tells the
  /// series apart with `metrics_labels`.
  std::shared_ptr<obs::MetricRegistry> registry;

  /// Labels stamped on every metric series this instance registers
  /// (e.g. {{"shard", "3"}}).
  obs::Labels metrics_labels;

  /// Periodic background metrics dump: every `metrics_dump_every_ms` the
  /// registry's Prometheus exposition is written to `metrics_dump_path`
  /// (and, when non-empty, a JSON document to `metrics_dump_json_path`)
  /// with atomic tmp+rename; a final dump lands on Stop(). 0 = off. The
  /// sharded layer keeps this off on its shards and runs one dumper over
  /// the shared registry instead.
  int metrics_dump_every_ms = 0;
  std::string metrics_dump_path = "fdrms_metrics.prom";
  std::string metrics_dump_json_path;
};

/// A live FD-RMS instance behind a single-writer/multi-reader façade.
/// Start/Stop must be called from one controlling thread; Submit*/Query/
/// Flush are safe from any thread.
class FdRmsService {
 public:
  /// Shutdown behavior: kDrain applies everything still queued before the
  /// writer exits; kAbort discards the backlog (counted in ops_dropped())
  /// and exits after the in-flight batch.
  enum class StopPolicy { kDrain, kAbort };

  /// Liveness of the writer thread, the service's single fault domain.
  ///  * kRunning — writer alive, no injected faults survived.
  ///  * kDegraded — writer alive but it survived an injected error (or kept
  ///    serving through a persist failure); snapshots stay correct, the
  ///    operator should look.
  ///  * kDead — the writer thread exited while the service was nominally
  ///    running (injected kDie fault). The last published snapshot keeps
  ///    serving reads; Submit/Flush/Inspect fail fast with kUnavailable
  ///    instead of hanging, and the queue is closed so parked kBlock
  ///    submitters wake. Recovery is the sharded layer's ReviveShard /
  ///    PromoteStandby.
  enum class Health { kRunning, kDegraded, kDead };

  FdRmsService(int dim, const FdRmsServiceOptions& options);

  /// Stops with kDrain if still running.
  ~FdRmsService();

  FdRmsService(const FdRmsService&) = delete;
  FdRmsService& operator=(const FdRmsService&) = delete;

  /// Bulk-loads P_0 (Algorithm 2), publishes snapshot version 0, and spawns
  /// the writer thread. Fails (without starting) if initialization fails or
  /// the service was already started.
  Status Start(const std::vector<std::pair<int, Point>>& initial);

  /// Stops the writer thread per `policy` and joins it. Idempotent once
  /// stopped; fails if never started.
  Status Stop(StopPolicy policy = StopPolicy::kDrain);

  /// Enqueues one mutation. Returns kFailedPrecondition when the service is
  /// not running (or shut down while the caller was blocked), and
  /// kResourceExhausted under Overflow::kReject when the queue is full.
  Status Submit(FdRms::BatchOp op);
  Status SubmitInsert(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kInsert, id, p});
  }
  Status SubmitDelete(int id) {
    return Submit({FdRms::BatchOp::Kind::kDelete, id, Point{}});
  }
  Status SubmitUpdate(int id, const Point& p) {
    return Submit({FdRms::BatchOp::Kind::kUpdate, id, p});
  }

  /// Blocks until every operation submitted before this call has been
  /// consumed and its snapshot published. Fails if the writer exited first
  /// (kAbort dropped the backlog, or the service never started).
  Status Flush();

  /// Runs `fn` on the writer thread, between batches, against the live
  /// algorithm state — a point-in-time view after some applied batch
  /// prefix. Blocks the caller until `fn` returns; fails without running
  /// it when the service is not running (or the writer exits first). `fn`
  /// must not call back into the service. This is the hook the shard
  /// layer's live migration uses to read a frozen id range out of a
  /// running shard without stopping its writer.
  Status Inspect(const std::function<void(const FdRms&)>& fn);

  /// Drain-range hook: collects every live tuple whose id satisfies `pred`
  /// into `out` (sorted by id), via Inspect — a consistent cut of the
  /// range as of some applied batch prefix. Callers that have stopped
  /// routing new mutations for the range to this shard (and Flush()ed it)
  /// get the range's final state.
  Status CollectRange(const std::function<bool(int)>& pred,
                      std::vector<std::pair<int, Point>>* out);

  /// Persists the current algorithm state right now, on the writer thread
  /// (via the Inspect rendezvous), regardless of the batch cadence — the
  /// sharded layer calls this before committing a manifest so every shard
  /// has a snapshot at least as new as the routing epoch being committed.
  /// Requires persistence configured; fails if the writer is not running or
  /// the save itself fails (a failed save also counts in
  /// persist_failures()).
  Status PersistNow();

  /// Wait-free read of the latest published snapshot. Never null after a
  /// successful Start(); null before it.
  std::shared_ptr<const ResultSnapshot> Query() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Control surface for an external policy (the SLO controller): caps the
  /// batch ceiling the writer steers under. `bound` is clamped into
  /// [options.min_batch, options.max_batch]; the clamped value in force is
  /// returned and takes effect at the writer's next wakeup. With adaptive
  /// batching the AIMD policy keeps running inside [min_batch, bound];
  /// without it the writer drains fixed batches of exactly `bound`.
  /// Safe from any thread; exported as the fdrms_batch_bound gauge.
  size_t SetBatchBound(size_t bound);

  /// The batch ceiling currently in force (== options.max_batch until the
  /// first SetBatchBound call).
  size_t batch_bound() const {
    return batch_bound_.load(std::memory_order_relaxed);
  }

  /// Operations accepted into the queue so far (monotone). Counted inside
  /// the queue at push time, so ops_submitted() >= Query()->ops_applied +
  /// ops_rejected always holds (for a snapshot loaded before the read) and
  /// the difference is the current backlog, underflow-free.
  uint64_t ops_submitted() const { return queue_.total_pushed(); }

  /// Operations discarded by Stop(kAbort).
  uint64_t ops_dropped() const { return metrics_.ops_dropped->Value(); }

  /// Background persistence runs completed / failed so far (0/0 when
  /// options.persist_every_batches is 0).
  uint64_t persists() const { return metrics_.persists->Value(); }
  uint64_t persist_failures() const {
    return metrics_.persist_failures->Value();
  }

  bool running() const { return state_.load() == State::kRunning; }

  /// Writer liveness (see Health). Safe from any thread; kDead is visible
  /// before the queue closes, so a submitter failed out of a blocked Push
  /// always observes it.
  Health health() const { return health_.load(std::memory_order_acquire); }

  /// Writer-loop iteration counter (also the fdrms_writer_heartbeat gauge).
  /// A frozen heartbeat with a non-empty queue means a stalled writer; the
  /// sharded layer's health tracker polls it.
  uint64_t writer_heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  /// Injected fault actions the writer observed (delays, errors, deaths).
  uint64_t writer_faults() const { return metrics_.writer_faults->Value(); }

  /// After a writer death (health() == kDead, writer_done_): moves every
  /// operation that was accepted into the queue but never applied — the
  /// in-flight dead-letter batch first, then the remaining queue backlog,
  /// in submission order — into *out. These ops were acknowledged to
  /// submitters, so a revive must replay them into the successor shard.
  /// Fails with kFailedPrecondition while the writer is still alive.
  Status DrainDeadBacklog(std::vector<FdRms::BatchOp>* out);

  /// The registry every stat of this service lives in — the one passed via
  /// options, or the private one created when none was. Scrape it with
  /// registry()->PrometheusText() / JsonText(). Never null.
  const std::shared_ptr<obs::MetricRegistry>& registry() const {
    return registry_;
  }

  /// Human-readable status page: options summary, lifecycle state, and
  /// this instance's own metric series (counters, gauges, latency
  /// quantiles) — scoped to this shard even when the registry is shared.
  std::string DebugString() const;

  /// True when Start() initialized from options.resume_path instead of the
  /// `initial` tuples.
  bool resumed() const { return resumed_; }

  int dim() const { return dim_; }
  const FdRmsServiceOptions& options() const { return options_; }

  /// The consumed-operation journal (requires options.record_journal).
  /// Only valid after Stop() — the writer owns it while running.
  const std::vector<FdRms::BatchOp>& journal() const;

  /// Direct read access to the owned algorithm for tests and persistence.
  /// Only valid after Stop() — the writer owns it while running.
  const FdRms& algorithm() const;

 private:
  enum class State { kNew, kRunning, kStopped };

  /// One caller parked in Inspect(); completed (or failed) by the writer.
  struct InspectRequest {
    const std::function<void(const FdRms&)>* fn;
    bool done = false;
    Status status;
  };

  void WriterLoop();
  void ApplyAndPublish(const std::vector<FdRms::BatchOp>& batch);
  void PublishSnapshot();

  /// Writer-thread only: consults the fault site `<prefix>.<step>`
  /// (common/fault_point.h). A kDelay already slept inside the hit; an
  /// injected error degrades health and is returned; kDie latches
  /// writer_die_ so the loop falls through to the death epilogue at the
  /// next check. Returns OK when nothing (or only a delay/die) fired.
  Status WriterFaultSite(const char* prefix, const char* step);

  /// Initializes algo_ from `initial` or, when configured and present, the
  /// resume snapshot. Start()-caller thread, pre-writer.
  Status InitializeAlgo(const std::vector<std::pair<int, Point>>& initial);

  /// Writer-thread only: serves queued InspectRequests in FIFO order.
  void RunPendingInspections();

  /// Writer-thread only, on exit: fails every pending and future Inspect.
  void CloseInspections();

  /// Saves the algorithm state to options_.persist_path if a persistence
  /// interval is configured and due (`force` persists whenever any batch
  /// landed since the last save). Writer-thread only.
  void MaybePersist(bool force);

  /// The save itself: serializes the algorithm state, writes it
  /// crash-durably (tmp → fsync → rename → dir fsync), bumps the persist
  /// counters, and fires options.on_persist. Writer-thread only.
  Status DoPersist();

  /// Registers this instance's metric series (labelled with
  /// options.metrics_labels) in registry_. Constructor only.
  void RegisterMetrics();

  const int dim_;
  const FdRmsServiceOptions options_;
  FdRms algo_;

  MpscRingQueue<FdRms::BatchOp> queue_;
  /// External batch ceiling (SetBatchBound); always within
  /// [options.min_batch, options.max_batch]. Read by the writer each
  /// wakeup, written by any controlling thread.
  std::atomic<size_t> batch_bound_;
  std::thread writer_;
  std::atomic<State> state_{State::kNew};
  std::atomic<Health> health_{Health::kRunning};
  std::atomic<uint64_t> heartbeat_{0};
  bool resumed_ = false;  ///< written before the writer spawns, const after

  /// Writer-thread only: a fault site requested writer death; the loop
  /// exits through the death epilogue at its next check.
  bool writer_die_ = false;

  /// The in-flight batch the dying writer popped but never applied — set in
  /// the death path, handed to DrainDeadBacklog. Writer-thread written;
  /// read only after writer_done_.
  std::vector<FdRms::BatchOp> dead_letter_;

  std::atomic<std::shared_ptr<const ResultSnapshot>> snapshot_;

  /// Every stat below lives here; ResultSnapshot fields are views over it.
  std::shared_ptr<obs::MetricRegistry> registry_;
  std::unique_ptr<obs::PeriodicDumper> dumper_;

  /// Handles into registry_, stable for the service's lifetime. Counters
  /// and pow2/latency histograms are multi-writer-safe (striped relaxed
  /// atomics); the gauges are only Set from the writer thread (queue_depth,
  /// live_tuples, ...) or Stop/Start (none currently).
  struct Metrics {
    obs::Counter* ops_submitted;     ///< accepted pushes (telemetry; the
                                     ///< authoritative count stays in the
                                     ///< queue, see ops_submitted())
    obs::Counter* ops_applied;
    obs::Counter* ops_rejected;
    obs::Counter* ops_dropped;
    obs::Counter* batches;
    obs::Counter* publications;
    obs::Counter* persists;
    obs::Counter* persist_failures;
    obs::Counter* writer_faults;     ///< injected fault actions observed
    obs::Gauge* healthy;             ///< 1 while health() != kDead
    obs::Gauge* heartbeat;           ///< writer-loop iterations
    obs::Gauge* version;
    obs::Gauge* live_tuples;
    obs::Gauge* sample_size_m;
    obs::Gauge* queue_depth;
    obs::Gauge* effective_max_batch;
    obs::Gauge* batch_bound;
    obs::Gauge* writer_busy_seconds;
    obs::Pow2Histogram* queue_depth_pow2;
    obs::Pow2Histogram* batch_size_pow2;
    obs::LatencyHistogram* publish_latency_us;  ///< drain→publish per batch
    obs::LatencyHistogram* drain_us;            ///< time in PopBatch per batch
    obs::LatencyHistogram* apply_us;            ///< ApplyBatch phase
    obs::LatencyHistogram* publish_us;          ///< snapshot-build phase
  };
  Metrics metrics_;

  // Writer-thread-local policy state. Pure telemetry lives in metrics_;
  // these stay local because control flow depends on them.
  uint64_t version_ = 0;
  uint64_t batches_ = 0;
  uint64_t persisted_batches_ = 0;  ///< batches_ as of the last *successful* save
  uint64_t attempted_persist_batches_ = 0;  ///< batches_ as of the last attempt
  bool ever_persisted_ = false;     ///< any successful save this run
  long long persist_gen_ = 0;       ///< versioned mode: last gen handed out
  double busy_seconds_ = 0.0;
  size_t effective_batch_ = 0;  ///< adaptive batching bound in force
  uint64_t applied_total_ = 0;   ///< ops this instance applied
  uint64_t rejected_total_ = 0;  ///< ops this instance rejected

  // Flush rendezvous: consumed_published_ tracks applied_total_ +
  // rejected_total_ as of the last publication; writer_done_ flips when the
  // writer exits. The tallies are instance-local on purpose: registry
  // counters may be shared with a prior incarnation of the same series, and
  // Flush's contract is about THIS instance's queue.
  mutable std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  uint64_t consumed_published_ = 0;
  bool writer_done_ = false;

  // Inspect rendezvous: callers append requests, the writer serves them
  // between batches; inspect_closed_ flips on writer exit so late callers
  // fail instead of hanging.
  std::mutex inspect_mutex_;
  std::condition_variable inspect_cv_;
  std::vector<InspectRequest*> inspect_queue_;
  bool inspect_closed_ = false;

  std::vector<FdRms::BatchOp> journal_;
};

}  // namespace fdrms

#endif  // FDRMS_SERVE_FDRMS_SERVICE_H_
