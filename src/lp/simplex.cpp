#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace fdrms {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Columns: n structural + m slack (+ artificials in
/// phase 1), last column is the RHS. One extra bottom row holds the reduced
/// costs of the active objective.
class Tableau {
 public:
  Tableau(const LpProblem& p)
      : m_(static_cast<int>(p.A.size())), n_(static_cast<int>(p.c.size())) {
    // Normalize rows to b >= 0 so slack columns of negated rows get -1 and
    // need an artificial partner.
    std::vector<std::vector<double>> a = p.A;
    std::vector<double> b = p.b;
    std::vector<int> needs_artificial;
    for (int i = 0; i < m_; ++i) {
      FDRMS_CHECK(static_cast<int>(a[i].size()) == n_) << "ragged LP row";
      if (b[i] < 0) {
        for (double& v : a[i]) v = -v;
        b[i] = -b[i];
        needs_artificial.push_back(i);
      }
    }
    num_artificial_ = static_cast<int>(needs_artificial.size());
    cols_ = n_ + m_ + num_artificial_;
    rows_.assign(m_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(m_, -1);
    std::vector<bool> negated(m_, false);
    for (int i : needs_artificial) negated[i] = true;
    int art = 0;
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < n_; ++j) rows_[i][j] = a[i][j];
      rows_[i][n_ + i] = negated[i] ? -1.0 : 1.0;  // slack
      rows_[i][cols_] = b[i];
      if (negated[i]) {
        rows_[i][n_ + m_ + art] = 1.0;
        basis_[i] = n_ + m_ + art;
        ++art;
      } else {
        basis_[i] = n_ + i;
      }
    }
  }

  /// Phase 1: minimize the sum of artificials. Returns false if the LP is
  /// infeasible (artificials cannot be driven to zero).
  bool Phase1() {
    if (num_artificial_ == 0) return true;
    // Objective row: maximize -(sum of artificials).
    obj_.assign(cols_ + 1, 0.0);
    for (int j = n_ + m_; j < cols_; ++j) obj_[j] = -1.0;
    // Price out the basic artificials.
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_ + m_) AddRowToObjective(i, 1.0);
    }
    RunSimplex(/*restrict_cols=*/cols_);
    // The objective row's RHS holds -z (uniform pivot subtraction), so a
    // positive residue there means max(-Σ artificials) < 0: infeasible.
    if (obj_[cols_] > kEps) return false;
    // Drive any artificial still basic (at zero) out of the basis.
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_ + m_) continue;
      int pivot_col = -1;
      for (int j = 0; j < n_ + m_; ++j) {
        if (std::fabs(rows_[i][j]) > kEps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) Pivot(i, pivot_col);
      // Otherwise the row is all-zero (redundant constraint); leaving the
      // zero-valued artificial basic is harmless as long as its column is
      // never re-entered, which phase 2 guarantees below.
    }
    return true;
  }

  /// Phase 2: maximize the real objective over structural + slack columns.
  /// Returns false when unbounded.
  bool Phase2(const std::vector<double>& c) {
    obj_.assign(cols_ + 1, 0.0);
    for (int j = 0; j < n_; ++j) obj_[j] = c[j];
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < cols_ && std::fabs(obj_[basis_[i]]) > kEps) {
        AddRowToObjective(i, -obj_[basis_[i]]);
      }
    }
    return RunSimplex(/*restrict_cols=*/n_ + m_);
  }

  // The RHS cell of the objective row stores -z under the uniform pivot
  // update (see RunSimplex), so negate on the way out.
  double objective() const { return -obj_[cols_]; }

  std::vector<double> Primal() const {
    std::vector<double> x(n_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = rows_[i][cols_];
    }
    return x;
  }

 private:
  void AddRowToObjective(int row, double factor) {
    for (int j = 0; j <= cols_; ++j) obj_[j] += factor * rows_[row][j];
  }

  void Pivot(int pr, int pc) {
    double pv = rows_[pr][pc];
    FDRMS_DCHECK(std::fabs(pv) > kEps);
    for (int j = 0; j <= cols_; ++j) rows_[pr][j] /= pv;
    for (int i = 0; i < m_; ++i) {
      if (i == pr) continue;
      double f = rows_[i][pc];
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j <= cols_; ++j) rows_[i][j] -= f * rows_[pr][j];
    }
    double f = obj_[pc];
    if (std::fabs(f) > kEps) {
      for (int j = 0; j <= cols_; ++j) obj_[j] -= f * rows_[pr][j];
    }
    basis_[pr] = pc;
  }

  /// Bland's-rule simplex over columns [0, restrict_cols). Returns false on
  /// unboundedness.
  bool RunSimplex(int restrict_cols) {
    while (true) {
      int pc = -1;
      for (int j = 0; j < restrict_cols; ++j) {
        if (obj_[j] > kEps) {  // entering column (Bland: first eligible)
          pc = j;
          break;
        }
      }
      if (pc < 0) return true;  // optimal
      int pr = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (rows_[i][pc] > kEps) {
          double ratio = rows_[i][cols_] / rows_[i][pc];
          // Bland: break ratio ties on smallest basis index.
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (pr < 0 || basis_[i] < basis_[pr]))) {
            best_ratio = ratio;
            pr = i;
          }
        }
      }
      if (pr < 0) return false;  // unbounded
      Pivot(pr, pc);
    }
  }

  int m_;
  int n_;
  int num_artificial_ = 0;
  int cols_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem) {
  FDRMS_CHECK(problem.A.size() == problem.b.size())
      << "A and b row counts differ";
  LpSolution sol;
  Tableau t(problem);
  if (!t.Phase1()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  if (!t.Phase2(problem.c)) {
    sol.status = LpStatus::kUnbounded;
    return sol;
  }
  sol.status = LpStatus::kOptimal;
  sol.objective = t.objective();
  sol.x = t.Primal();
  return sol;
}

double MaxRegretForWitness(const std::vector<double>& p,
                           const std::vector<std::vector<double>>& q_rows) {
  const int d = static_cast<int>(p.size());
  // Variables: u[0..d-1], x. Constraints:
  //   <u,q> + x <= 1          for each q in Q
  //   <u,p> <= 1,  -<u,p> <= -1   (i.e. <u,p> = 1)
  LpProblem lp;
  lp.c.assign(d + 1, 0.0);
  lp.c[d] = 1.0;
  for (const auto& q : q_rows) {
    FDRMS_CHECK(static_cast<int>(q.size()) == d);
    std::vector<double> row(d + 1, 0.0);
    for (int j = 0; j < d; ++j) row[j] = q[j];
    row[d] = 1.0;
    lp.A.push_back(std::move(row));
    lp.b.push_back(1.0);
  }
  std::vector<double> peq(d + 1, 0.0), pneq(d + 1, 0.0);
  for (int j = 0; j < d; ++j) {
    peq[j] = p[j];
    pneq[j] = -p[j];
  }
  lp.A.push_back(peq);
  lp.b.push_back(1.0);
  lp.A.push_back(pneq);
  lp.b.push_back(-1.0);
  LpSolution sol = SolveLp(lp);
  if (sol.status != LpStatus::kOptimal) return 0.0;
  return sol.objective > 0.0 ? sol.objective : 0.0;
}

}  // namespace fdrms
