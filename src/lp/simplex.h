#ifndef FDRMS_LP_SIMPLEX_H_
#define FDRMS_LP_SIMPLEX_H_

/// \file simplex.h
/// A dense two-phase primal simplex solver for small linear programs.
///
/// The RMS baselines solve thousands of tiny LPs of the form
///   maximize x  s.t.  <u, q> + x <= 1  (for each q in Q),
///                     <u, p>  = 1,   u >= 0, x >= 0
/// whose optimum is the maximum regret any utility can suffer when `p` is
/// the best database tuple and only Q is offered (Nanongkai et al., 2010).
/// The solver handles general problems: maximize c'x s.t. Ax <= b (b of any
/// sign, equalities expressible as two inequalities), x >= 0.

#include <vector>

#include "common/status.h"

namespace fdrms {

/// Result category of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

/// maximize c'x subject to A x <= b, x >= 0.
struct LpProblem {
  std::vector<double> c;               ///< objective, size n
  std::vector<std::vector<double>> A;  ///< m rows of size n
  std::vector<double> b;               ///< size m, any sign
};

/// Solution of an LpProblem.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution when status == kOptimal
};

/// Solves `problem` with two-phase tableau simplex (Bland's rule, so it
/// terminates on degenerate instances).
LpSolution SolveLp(const LpProblem& problem);

/// Convenience: the maximum 1-regret an adversarial utility can achieve for
/// witness tuple `p` against answer set Q (rows of `q_rows`), i.e. the
/// optimum of   max x  s.t. <u,q> <= 1 - x for all q, <u,p> = 1, u,x >= 0.
/// Returns 0 when `p` cannot beat Q anywhere (LP optimum <= 0 or
/// infeasible: p is never uniquely preferred).
double MaxRegretForWitness(const std::vector<double>& p,
                           const std::vector<std::vector<double>>& q_rows);

}  // namespace fdrms

#endif  // FDRMS_LP_SIMPLEX_H_
