#ifndef FDRMS_CONTROL_SLO_CONTROLLER_H_
#define FDRMS_CONTROL_SLO_CONTROLLER_H_

/// \file slo_controller.h
/// The loop-closer over the observability substrate: a controller thread
/// that periodically snapshots the constellation's MetricRegistry, derives
/// windowed signals with obs::SnapshotDelta, and steers the service toward
/// an explicit publish-latency SLO through two actuators:
///
///   topology — sustained per-shard writer utilization (windowed
///     fdrms_writer_busy_seconds / wall) or queue-depth saturation above
///     the high watermark triggers AddShard; sustained slack below the low
///     watermark (with the SLO met) triggers RemoveShard. Hysteresis bands,
///     a post-migration cooldown, and min/max shard clamps keep migration
///     cost from oscillating the fleet.
///
///   batching — the windowed publish p99 steers the constellation-wide
///     batch ceiling (FdRmsService::SetBatchBound): over the SLO the bound
///     halves (smaller batches publish sooner), under batch_raise_fraction
///     of the SLO it doubles back toward max_batch (amortize publication
///     cost while latency is cheap).
///
/// The controller is itself fully observable: every decision lands in the
/// registry as a `control_*` metric and a "control.*" TraceRing event, and
/// DebugString() renders an SLO status page. The decision core is the
/// side-effect-free-clocked Tick(snapshot, now_us) — tests drive it with
/// fabricated snapshots and a fake clock, no sleeps; Start()/Stop() wrap it
/// in the production polling thread.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/registry.h"
#include "obs/snapshot_delta.h"
#include "shard/sharded_service.h"

namespace fdrms {
namespace control {

/// What the controller can do to the system under control. Split from
/// ShardedFdRmsService so decision-logic tests can substitute a fake that
/// records calls and fabricates cooldown stamps.
class SloActuator {
 public:
  virtual ~SloActuator() = default;
  virtual int num_shards() const = 0;
  virtual Status AddShard() = 0;
  virtual Status RemoveShard() = 0;
  /// Returns the clamped bound in force (FdRmsService::SetBatchBound).
  virtual size_t SetBatchBound(size_t bound) = 0;
  virtual size_t batch_bound() const = 0;
  /// Per-shard update-queue capacity (saturation is judged against it).
  virtual size_t queue_capacity() const = 0;
  /// Registry-clock stamp of the last completed topology change, 0 if
  /// none — covers operator-initiated migrations, not just the
  /// controller's own.
  virtual uint64_t last_topology_change_us() const = 0;

  /// Shards whose writer thread is dead. While nonzero the controller
  /// treats the constellation as a fault domain in flux: topology scaling
  /// pauses (a dead writer's utilization reads zero — every scale-down
  /// signal is a lie — and a migration touching it would fail anyway) and
  /// each tick records a "control.shard_unhealthy" trace event. Default 0
  /// for actuators without a health surface.
  virtual int num_unhealthy() const { return 0; }

  /// Revives every dead shard (ShardedFdRmsService::ReviveDeadShards);
  /// returns how many came back. Only called when
  /// SloControllerOptions::revive_unhealthy is set. Default no-op.
  virtual int ReviveDeadShards() { return 0; }
};

/// The production actuator: forwards to a live ShardedFdRmsService.
class ShardedServiceActuator : public SloActuator {
 public:
  explicit ShardedServiceActuator(ShardedFdRmsService* service)
      : service_(service) {}
  int num_shards() const override { return service_->num_shards(); }
  Status AddShard() override { return service_->AddShard(); }
  Status RemoveShard() override { return service_->RemoveShard(); }
  size_t SetBatchBound(size_t bound) override {
    return service_->SetBatchBound(bound);
  }
  size_t batch_bound() const override { return service_->batch_bound(); }
  size_t queue_capacity() const override {
    return service_->options().shard.queue_capacity;
  }
  uint64_t last_topology_change_us() const override {
    return service_->last_topology_change_us();
  }
  int num_unhealthy() const override { return service_->num_unhealthy(); }
  int ReviveDeadShards() override { return service_->ReviveDeadShards(); }

 private:
  ShardedFdRmsService* service_;
};

struct SloControllerOptions {
  /// The latency objective: windowed publish p99 (µs) the batching
  /// actuator steers against and the scale-down guard respects.
  double publish_p99_slo_us = 20000.0;

  /// Controller wakeup period (production thread; Tick itself is
  /// clock-free and tests call it directly).
  int tick_ms = 200;

  /// Topology watermarks on the busiest shard's windowed writer
  /// utilization (busy seconds per wall second, 0..1). The gap between
  /// them is the hysteresis band where topology holds.
  double high_utilization = 0.85;
  double low_utilization = 0.25;

  /// Queue-depth saturation: a shard whose depth reaches this fraction of
  /// queue_capacity() counts as saturated (scale-up signal even when CPU
  /// utilization alone looks fine, e.g. writers blocked on publication).
  double queue_saturation_fraction = 0.5;

  /// Consecutive ticks a watermark breach must sustain before the
  /// controller acts — one noisy window must not migrate the fleet.
  int sustain_ticks = 3;

  /// Quiet period after any completed topology change (the controller's
  /// own or an operator's) during which topology actions are suppressed:
  /// a migration's replay load must not trigger the next migration.
  uint64_t cooldown_us = 2000000;

  /// Clamp on the controller's topology authority.
  int min_shards = 1;
  int max_shards = 8;

  /// Batch bound raises (doubles) when the windowed p99 sits below this
  /// fraction of the SLO; between the fraction and the SLO it holds.
  double batch_raise_fraction = 0.5;

  /// Kill switches for each actuator (both on by default).
  bool enable_topology = true;
  bool enable_batching = true;

  /// Self-healing: when unhealthy shards are observed, call the actuator's
  /// ReviveDeadShards() (off by default — revive replays a backlog and
  /// commits a manifest, which an operator may want to own).
  bool revive_unhealthy = false;
};

/// One Tick's evaluation, returned for tests and rendered on the status
/// page. Signals are always populated; action fields say what was done.
struct SloDecision {
  double window_seconds = 0.0;
  double max_utilization = 0.0;    ///< busiest shard, windowed
  double max_queue_depth = 0.0;    ///< deepest live shard queue
  double publish_p99_us = 0.0;     ///< windowed, 0 when no publishes landed
  uint64_t window_publishes = 0;   ///< publish-latency observations in window
  bool slo_violated = false;       ///< p99 over SLO (non-empty window)
  bool in_cooldown = false;
  int num_shards = 0;              ///< after any action this tick
  size_t batch_bound = 0;          ///< after any action this tick

  bool scaled_up = false;
  bool scaled_down = false;
  bool scale_failed = false;       ///< an attempted topology action errored
  int batch_step = 0;              ///< +1 raised, -1 lowered, 0 held

  int unhealthy_shards = 0;        ///< dead shards observed this tick
  int revived = 0;                 ///< shards revived this tick
};

/// Decision core + production polling thread. Construction registers the
/// control_* metric family in `registry`; Tick() is then callable directly
/// (deterministic, clocked by its arguments) or via Start()'s thread.
class SloController {
 public:
  SloController(std::shared_ptr<obs::MetricRegistry> registry,
                SloActuator* actuator, const SloControllerOptions& options);
  ~SloController();
  SloController(const SloController&) = delete;
  SloController& operator=(const SloController&) = delete;

  /// Evaluates one control window ending at `snap`/`now_us` and acts. The
  /// first call only primes the baseline (no window to judge yet). Not
  /// thread-safe against itself; the production thread is its only caller
  /// once Start()ed.
  SloDecision Tick(const obs::RegistrySnapshot& snap, uint64_t now_us);

  /// Spawns the polling thread (idempotent). Stop() joins it; the
  /// destructor stops if still running.
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// SLO status page: objective, last window's signals, decision counters,
  /// cooldown state.
  std::string DebugString() const;

  const SloControllerOptions& options() const { return options_; }

 private:
  void RegisterMetrics();
  void Loop();

  /// Windowed signals shared by both actuators, derived from one delta.
  struct Signals;
  Signals Read(const obs::SnapshotDelta& delta) const;

  const SloControllerOptions options_;
  std::shared_ptr<obs::MetricRegistry> registry_;
  SloActuator* actuator_;

  struct Metrics {
    obs::Counter* ticks;
    obs::Counter* decisions;          ///< ticks that took any action
    obs::Counter* scale_ups;
    obs::Counter* scale_downs;
    obs::Counter* scale_failures;
    obs::Counter* batch_adjustments;
    obs::Counter* revives;              ///< shards revived by the controller
    obs::Gauge* unhealthy_shards;       ///< dead shards at the last tick
    obs::Gauge* slo_violation_seconds;  ///< cumulative window time over SLO
    obs::Gauge* cooldown_seconds;       ///< cumulative window time in cooldown
    obs::Gauge* publish_p99_window_us;  ///< last non-empty window's p99
    obs::Gauge* writer_utilization_max;
    obs::Gauge* batch_bound;
    obs::Gauge* shards;
  };
  Metrics metrics_;

  // Tick-thread state (only the Tick caller touches these).
  bool has_baseline_ = false;
  obs::RegistrySnapshot baseline_;
  int high_streak_ = 0;
  int low_streak_ = 0;
  uint64_t own_last_action_us_ = 0;  ///< fake-actuator-safe cooldown anchor

  // Last decision, for DebugString (any thread).
  mutable std::mutex last_mutex_;
  SloDecision last_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace control
}  // namespace fdrms

#endif  // FDRMS_CONTROL_SLO_CONTROLLER_H_
