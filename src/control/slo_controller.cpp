#include "control/slo_controller.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

namespace fdrms {
namespace control {

SloController::SloController(std::shared_ptr<obs::MetricRegistry> registry,
                             SloActuator* actuator,
                             const SloControllerOptions& options)
    : options_(options), registry_(std::move(registry)), actuator_(actuator) {
  RegisterMetrics();
}

SloController::~SloController() { Stop(); }

void SloController::RegisterMetrics() {
  obs::MetricRegistry& r = *registry_;
  metrics_.ticks = r.GetCounter(
      "control_ticks_total", "SLO controller evaluation windows");
  metrics_.decisions = r.GetCounter(
      "control_decisions_total",
      "Controller ticks that took any action (topology or batching)");
  metrics_.scale_ups = r.GetCounter(
      "control_scale_ups_total", "AddShard actions the controller completed");
  metrics_.scale_downs = r.GetCounter(
      "control_scale_downs_total",
      "RemoveShard actions the controller completed");
  metrics_.scale_failures = r.GetCounter(
      "control_scale_failures_total",
      "Topology actions the controller attempted that errored");
  metrics_.batch_adjustments = r.GetCounter(
      "control_batch_adjustments_total",
      "Batch-bound raises and lowers the controller applied");
  metrics_.revives = r.GetCounter(
      "control_revives_total",
      "Dead shards the controller revived (revive_unhealthy on)");
  metrics_.unhealthy_shards = r.GetGauge(
      "control_unhealthy_shards",
      "Dead shards the controller observed at its last tick");
  metrics_.slo_violation_seconds = r.GetGauge(
      "control_slo_violation_seconds",
      "Cumulative window time with the windowed publish p99 over the SLO");
  metrics_.cooldown_seconds = r.GetGauge(
      "control_cooldown_seconds",
      "Cumulative window time spent inside the post-migration cooldown");
  metrics_.publish_p99_window_us = r.GetGauge(
      "control_publish_p99_window_us",
      "Publish p99 over the last non-empty control window (us)");
  metrics_.writer_utilization_max = r.GetGauge(
      "control_writer_utilization_max",
      "Busiest shard's windowed writer utilization (busy/wall, 0..1)");
  metrics_.batch_bound = r.GetGauge(
      "control_batch_bound", "Batch ceiling the controller last observed");
  metrics_.shards = r.GetGauge(
      "control_shards", "Shard count the controller last observed");
}

struct SloController::Signals {
  double max_utilization = 0.0;
  double max_queue_depth = 0.0;
  double publish_p99_us = 0.0;
  uint64_t window_publishes = 0;
};

SloController::Signals SloController::Read(
    const obs::SnapshotDelta& delta) const {
  Signals sig;
  const double window = delta.WindowSeconds();
  const int shards = actuator_->num_shards();
  for (int s = 0; s < shards; ++s) {
    const obs::Labels sel{{"shard", std::to_string(s)}};
    if (window > 0.0) {
      // GaugeDelta sums per-incarnation movement, so a retired gen of this
      // index (frozen busy counter) contributes nothing to the window.
      const double util =
          delta.GaugeDelta("fdrms_writer_busy_seconds", sel) / window;
      sig.max_utilization = std::max(sig.max_utilization, util);
    }
    sig.max_queue_depth = std::max(
        sig.max_queue_depth, delta.GaugeLatest("fdrms_queue_depth", sel));
  }
  // Aggregate across every shard (empty filter): the SLO is on what any
  // publication costs, not on one shard's.
  sig.window_publishes = delta.HistCountDelta("fdrms_publish_latency_us");
  if (sig.window_publishes > 0) {
    sig.publish_p99_us = delta.HistQuantile("fdrms_publish_latency_us", 0.99);
  }
  return sig;
}

SloDecision SloController::Tick(const obs::RegistrySnapshot& snap,
                                uint64_t now_us) {
  metrics_.ticks->Increment();
  SloDecision d;
  d.num_shards = actuator_->num_shards();
  d.batch_bound = actuator_->batch_bound();
  if (!has_baseline_) {
    // Nothing to judge yet: this snapshot becomes the first window's floor.
    has_baseline_ = true;
    baseline_ = snap;
    metrics_.shards->Set(static_cast<double>(d.num_shards));
    metrics_.batch_bound->Set(static_cast<double>(d.batch_bound));
    std::lock_guard<std::mutex> lock(last_mutex_);
    last_ = d;
    return d;
  }

  const obs::SnapshotDelta delta(baseline_, snap);
  d.window_seconds = delta.WindowSeconds();
  const Signals sig = Read(delta);
  d.max_utilization = sig.max_utilization;
  d.max_queue_depth = sig.max_queue_depth;
  d.publish_p99_us = sig.publish_p99_us;
  d.window_publishes = sig.window_publishes;
  metrics_.writer_utilization_max->Set(d.max_utilization);
  if (d.window_publishes > 0) {
    metrics_.publish_p99_window_us->Set(d.publish_p99_us);
    d.slo_violated = d.publish_p99_us > options_.publish_p99_slo_us;
    if (d.slo_violated) {
      metrics_.slo_violation_seconds->Add(d.window_seconds);
    }
  }

  // Cooldown: the actuator's stamp covers completed migrations (the
  // controller's own and operator-initiated ones); own_last_action_us_
  // additionally covers failed attempts and fake actuators that don't
  // stamp, so a flapping failure can't retry every tick.
  const uint64_t last_change =
      std::max(actuator_->last_topology_change_us(), own_last_action_us_);
  d.in_cooldown =
      last_change > 0 && now_us < last_change + options_.cooldown_us;
  if (d.in_cooldown) metrics_.cooldown_seconds->Add(d.window_seconds);

  // Hysteresis: pressure and slack streaks advance on opposite sides of
  // the band and reset the moment the signal leaves their side, so a
  // signal wandering inside the band never acts.
  const double saturation_depth =
      options_.queue_saturation_fraction *
      static_cast<double>(actuator_->queue_capacity());
  const bool saturated =
      saturation_depth > 0.0 && d.max_queue_depth >= saturation_depth;
  const bool pressured =
      d.max_utilization >= options_.high_utilization || saturated;
  const bool slack = d.max_utilization <= options_.low_utilization &&
                     !saturated && !d.slo_violated;
  high_streak_ = pressured ? high_streak_ + 1 : 0;
  low_streak_ = slack ? low_streak_ + 1 : 0;

  bool acted = false;

  // Fault-domain gate: a dead shard makes the topology signals lies (its
  // writer burns no CPU, so utilization under-reads and the slack streak
  // would happily RemoveShard a constellation that is actually degraded),
  // and any migration touching it would fail. Pause scaling, surface the
  // state each tick, and optionally trigger the revive path.
  d.unhealthy_shards = actuator_->num_unhealthy();
  metrics_.unhealthy_shards->Set(static_cast<double>(d.unhealthy_shards));
  if (d.unhealthy_shards > 0) {
    registry_->trace().Record("control.shard_unhealthy", now_us, 0,
                              static_cast<uint64_t>(d.unhealthy_shards),
                              static_cast<uint64_t>(d.num_shards));
    high_streak_ = 0;
    low_streak_ = 0;
    if (options_.revive_unhealthy) {
      const int revived = actuator_->ReviveDeadShards();
      d.revived = revived;
      if (revived > 0) {
        metrics_.revives->Increment(static_cast<uint64_t>(revived));
        own_last_action_us_ = now_us;
        acted = true;
        registry_->trace().Record("control.revive", now_us, 0,
                                  static_cast<uint64_t>(revived),
                                  static_cast<uint64_t>(d.unhealthy_shards));
      }
    }
  }

  if (d.unhealthy_shards == 0 && options_.enable_topology && !d.in_cooldown) {
    if (high_streak_ >= options_.sustain_ticks &&
        d.num_shards < options_.max_shards) {
      const Status st = actuator_->AddShard();
      high_streak_ = 0;
      own_last_action_us_ = now_us;
      acted = true;
      if (st.ok()) {
        d.scaled_up = true;
        metrics_.scale_ups->Increment();
        registry_->trace().Record(
            "control.scale_up", now_us, 0,
            static_cast<uint64_t>(actuator_->num_shards()),
            static_cast<uint64_t>(d.max_utilization * 1000.0));
      } else {
        d.scale_failed = true;
        metrics_.scale_failures->Increment();
        registry_->trace().Record(
            "control.scale_fail", now_us, 0,
            static_cast<uint64_t>(d.num_shards),
            static_cast<uint64_t>(d.max_utilization * 1000.0));
      }
    } else if (low_streak_ >= options_.sustain_ticks &&
               d.num_shards > options_.min_shards) {
      const Status st = actuator_->RemoveShard();
      low_streak_ = 0;
      own_last_action_us_ = now_us;
      acted = true;
      if (st.ok()) {
        d.scaled_down = true;
        metrics_.scale_downs->Increment();
        registry_->trace().Record(
            "control.scale_down", now_us, 0,
            static_cast<uint64_t>(actuator_->num_shards()),
            static_cast<uint64_t>(d.max_utilization * 1000.0));
      } else {
        d.scale_failed = true;
        metrics_.scale_failures->Increment();
        registry_->trace().Record(
            "control.scale_fail", now_us, 0,
            static_cast<uint64_t>(d.num_shards),
            static_cast<uint64_t>(d.max_utilization * 1000.0));
      }
    }
  }

  // Latency-aware batching: only judged on windows that actually published
  // (an idle window says nothing about what a batch costs).
  if (options_.enable_batching && d.window_publishes > 0) {
    const size_t bound = actuator_->batch_bound();
    if (d.publish_p99_us > options_.publish_p99_slo_us) {
      const size_t in_force = actuator_->SetBatchBound(bound / 2);
      if (in_force != bound) {
        d.batch_step = -1;
        acted = true;
        metrics_.batch_adjustments->Increment();
        registry_->trace().Record(
            "control.batch_lower", now_us, 0, in_force,
            static_cast<uint64_t>(d.publish_p99_us));
      }
    } else if (d.publish_p99_us <
               options_.batch_raise_fraction * options_.publish_p99_slo_us) {
      const size_t in_force = actuator_->SetBatchBound(bound * 2);
      if (in_force != bound) {
        d.batch_step = 1;
        acted = true;
        metrics_.batch_adjustments->Increment();
        registry_->trace().Record(
            "control.batch_raise", now_us, 0, in_force,
            static_cast<uint64_t>(d.publish_p99_us));
      }
    }
  }

  if (acted) metrics_.decisions->Increment();
  d.num_shards = actuator_->num_shards();
  d.batch_bound = actuator_->batch_bound();
  metrics_.shards->Set(static_cast<double>(d.num_shards));
  metrics_.batch_bound->Set(static_cast<double>(d.batch_bound));
  baseline_ = snap;
  std::lock_guard<std::mutex> lock(last_mutex_);
  last_ = d;
  return d;
}

void SloController::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&SloController::Loop, this);
}

void SloController::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void SloController::Loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  for (;;) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.tick_ms),
                      [&] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    Tick(registry_->Snapshot(), registry_->NowMicros());
    lock.lock();
  }
}

std::string SloController::DebugString() const {
  SloDecision d;
  {
    std::lock_guard<std::mutex> lock(last_mutex_);
    d = last_;
  }
  std::ostringstream out;
  out << "=== SloController ===\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "objective: publish_p99 <= %.0f us | watermarks util "
                "[%.2f, %.2f] sustain=%d cooldown=%.1fs shards=[%d, %d]\n",
                options_.publish_p99_slo_us, options_.low_utilization,
                options_.high_utilization, options_.sustain_ticks,
                static_cast<double>(options_.cooldown_us) / 1e6,
                options_.min_shards, options_.max_shards);
  out << line;
  std::snprintf(line, sizeof(line),
                "last window: %.3fs util_max=%.2f depth_max=%.0f "
                "publish_p99=%.1fus (n=%llu) %s%s\n",
                d.window_seconds, d.max_utilization, d.max_queue_depth,
                d.publish_p99_us,
                static_cast<unsigned long long>(d.window_publishes),
                d.slo_violated ? "SLO-VIOLATED " : "slo-ok ",
                d.in_cooldown ? "(cooldown)" : "");
  out << line;
  out << "state: shards=" << d.num_shards << " batch_bound=" << d.batch_bound
      << " unhealthy=" << d.unhealthy_shards
      << " revives=" << metrics_.revives->Value()
      << " running=" << (running() ? "yes" : "no") << "\n";
  out << "decisions: total=" << metrics_.decisions->Value()
      << " scale_ups=" << metrics_.scale_ups->Value()
      << " scale_downs=" << metrics_.scale_downs->Value()
      << " scale_failures=" << metrics_.scale_failures->Value()
      << " batch_adjustments=" << metrics_.batch_adjustments->Value() << "\n";
  std::snprintf(line, sizeof(line),
                "exposure: ticks=%llu slo_violation_s=%.2f cooldown_s=%.2f\n",
                static_cast<unsigned long long>(metrics_.ticks->Value()),
                metrics_.slo_violation_seconds->Value(),
                metrics_.cooldown_seconds->Value());
  out << line;
  return out.str();
}

}  // namespace control
}  // namespace fdrms
