#ifndef FDRMS_SETCOVER_SET_SYSTEM_H_
#define FDRMS_SETCOVER_SET_SYSTEM_H_

/// \file set_system.h
/// The set system Σ = (U, S) of Section III: elements are indices of
/// sampled utility vectors, sets are keyed by tuple id, and S(p) contains
/// the utilities for which tuple p is an ε-approximate top-k result.
/// Incidence is stored bidirectionally so both S(p) and "sets containing
/// u" are O(1) to enumerate.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace fdrms {

/// Bidirectional element<->set incidence. Elements are dense ints in
/// [0, capacity); set keys are arbitrary ints (tuple ids).
class SetSystem {
 public:
  explicit SetSystem(int element_capacity)
      : sets_of_(element_capacity) {}

  int element_capacity() const { return static_cast<int>(sets_of_.size()); }

  /// True if the membership was new.
  bool AddMembership(int element, int set_id) {
    FDRMS_DCHECK(element >= 0 && element < element_capacity());
    bool inserted = elements_of_[set_id].insert(element).second;
    if (inserted) sets_of_[element].insert(set_id);
    return inserted;
  }

  /// True if the membership existed.
  bool RemoveMembership(int element, int set_id) {
    auto it = elements_of_.find(set_id);
    if (it == elements_of_.end()) return false;
    if (it->second.erase(element) == 0) return false;
    if (it->second.empty()) elements_of_.erase(it);
    sets_of_[element].erase(set_id);
    return true;
  }

  bool Contains(int element, int set_id) const {
    auto it = elements_of_.find(set_id);
    return it != elements_of_.end() && it->second.count(element) > 0;
  }

  /// Elements of S(set_id); empty set if unknown.
  const std::unordered_set<int>& ElementsOf(int set_id) const {
    auto it = elements_of_.find(set_id);
    return it == elements_of_.end() ? empty_ : it->second;
  }

  /// Sets containing `element`.
  const std::unordered_set<int>& SetsContaining(int element) const {
    FDRMS_DCHECK(element >= 0 && element < element_capacity());
    return sets_of_[element];
  }

  /// Ids of all nonempty sets.
  std::vector<int> NonEmptySetIds() const {
    std::vector<int> ids;
    ids.reserve(elements_of_.size());
    for (const auto& [id, _] : elements_of_) ids.push_back(id);
    return ids;
  }

  size_t num_sets() const { return elements_of_.size(); }

 private:
  std::unordered_map<int, std::unordered_set<int>> elements_of_;
  std::vector<std::unordered_set<int>> sets_of_;
  const std::unordered_set<int> empty_;
};

}  // namespace fdrms

#endif  // FDRMS_SETCOVER_SET_SYSTEM_H_
