#ifndef FDRMS_SETCOVER_DYNAMIC_SET_COVER_H_
#define FDRMS_SETCOVER_DYNAMIC_SET_COVER_H_

/// \file dynamic_set_cover.h
/// The paper's dynamic set cover with *stable solutions* (Section III-A,
/// Algorithm 1).
///
/// A solution C assigns every universe element u to one covering set
/// φ(u) ∈ C; cov(S) = φ^{-1}(S). Sets in C live in levels L_j with
/// 2^j <= |cov(S)| < 2^{j+1}. C is stable (Definition 2) when additionally
/// no set S of the system could grab >= 2^{j+1} elements currently assigned
/// at level j. Theorem 1: any stable solution is O(log m)-approximate.
///
/// This implementation keeps, for every set S and level j, the count
/// |S ∩ A_j| incrementally; STABILIZE drains a violation queue instead of
/// rescanning all sets, giving the same fixpoint as the paper's Lines
/// 28-32 in time proportional to actual churn.
///
/// All set-system mutations flow through this class so the counts stay
/// consistent: AddMembership / RemoveMembership (σ = (u, S, ±)),
/// AddToUniverse / RemoveFromUniverse (σ = (u, U, ±)), RemoveSet.

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "setcover/set_system.h"

namespace fdrms {

/// Dynamic, stability-maintaining set cover over a SetSystem it owns.
class DynamicSetCover {
 public:
  /// No element is initially in the universe.
  explicit DynamicSetCover(int element_capacity);

  /// Rebuilds the solution from scratch with the level-annotated greedy
  /// (Algorithm 1, GREEDY) over the current incidence, with the universe
  /// set to exactly `universe_elements`. Elements outside any set remain
  /// uncovered (allowed; FD-RMS only presents coverable elements).
  void InitializeGreedy(const std::vector<int>& universe_elements);

  // ---- σ operations (each restores stability before returning) ----

  /// σ = (u, S, +).
  void AddMembership(int element, int set_id);
  /// σ = (u, S, -).
  void RemoveMembership(int element, int set_id);
  /// σ = (u, U, +): element joins the universe and gets assigned.
  void AddToUniverse(int element);
  /// σ = (u, U, -).
  void RemoveFromUniverse(int element);
  /// Removes a set entirely (a deleted tuple): drops all its memberships
  /// and reassigns its cover set.
  void RemoveSet(int set_id);

  // ---- solution inspection ----

  /// Number of sets in the solution C.
  int CoverSize() const { return static_cast<int>(in_cover_.size()); }
  /// Set ids (tuple ids) forming C.
  std::vector<int> CoverSetIds() const;
  bool InUniverse(int element) const { return in_universe_[element]; }
  int UniverseSize() const { return universe_size_; }
  /// Assigned set of `element` (kUnassigned if uncovered / not in universe).
  int AssignmentOf(int element) const { return phi_[element]; }
  /// Level of a solution set, -1 if not in C.
  int LevelOf(int set_id) const;
  /// cov(S); empty if not in C.
  const std::unordered_set<int>& CoverSetOf(int set_id) const;

  const SetSystem& system() const { return system_; }

  /// Verifies every invariant (assignment/cov consistency, level ranges,
  /// stability Condition 2, count-cache correctness). Test/debug hook.
  Status CheckInvariants() const;

  static constexpr int kUnassigned = -1;
  static constexpr int kMaxLevels = 34;

 private:
  struct CoverState {
    std::unordered_set<int> cov;
    int level = -1;
  };

  static int LevelForSize(int size);

  /// Makes `element` assigned to `set_id` (which must contain it), updating
  /// cov, counts, and levels. `element` must be currently unassigned.
  void Assign(int element, int set_id);
  /// Clears the assignment of `element` (updating its donor set), without
  /// reassigning.
  void Unassign(int element);
  /// Re-derives the level of `set_id` from |cov|; drops empty sets from C
  /// (RELEVEL in Algorithm 1).
  void Relevel(int set_id);
  /// Moves all cov members of `set_id` to level `new_level` in the count
  /// caches of every set containing them.
  void ShiftCovLevel(int set_id, int old_level, int new_level);
  /// Picks a covering set for an unassigned universe element: a set already
  /// in C containing it if any (highest level wins), else any containing
  /// set, else leaves it uncovered.
  void Reassign(int element);
  /// Count-cache maintenance for one element changing level (old_level or
  /// new_level may be -1 meaning "not counted").
  void UpdateCounts(int element, int old_level, int new_level);
  void BumpCount(int set_id, int level, int delta);
  /// Drains the violation queue (STABILIZE, Lines 28-32).
  void Stabilize();

  SetSystem system_;
  std::vector<int> phi_;
  std::vector<int> elem_level_;  // level of φ(e), -1 if unassigned
  std::vector<bool> in_universe_;
  int universe_size_ = 0;
  std::unordered_map<int, CoverState> in_cover_;
  // counts_[set][j] = |S ∩ A_j| over assigned universe elements.
  std::unordered_map<int, std::vector<int>> counts_;
  std::deque<std::pair<int, int>> violations_;  // (set, level) to re-check
};

}  // namespace fdrms

#endif  // FDRMS_SETCOVER_DYNAMIC_SET_COVER_H_
