#include "setcover/dynamic_set_cover.h"

#include <algorithm>

#include "common/check.h"

namespace fdrms {

DynamicSetCover::DynamicSetCover(int element_capacity)
    : system_(element_capacity),
      phi_(element_capacity, kUnassigned),
      elem_level_(element_capacity, -1),
      in_universe_(element_capacity, false) {}

int DynamicSetCover::LevelForSize(int size) {
  FDRMS_DCHECK(size >= 1);
  int level = 0;
  while ((2LL << level) <= size) ++level;  // largest j with 2^j <= size
  FDRMS_DCHECK(level < kMaxLevels);
  return level;
}

std::vector<int> DynamicSetCover::CoverSetIds() const {
  std::vector<int> ids;
  ids.reserve(in_cover_.size());
  for (const auto& [id, _] : in_cover_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

int DynamicSetCover::LevelOf(int set_id) const {
  auto it = in_cover_.find(set_id);
  return it == in_cover_.end() ? -1 : it->second.level;
}

const std::unordered_set<int>& DynamicSetCover::CoverSetOf(int set_id) const {
  static const std::unordered_set<int> empty;
  auto it = in_cover_.find(set_id);
  return it == in_cover_.end() ? empty : it->second.cov;
}

void DynamicSetCover::BumpCount(int set_id, int level, int delta) {
  auto& row = counts_[set_id];
  if (row.empty()) row.assign(kMaxLevels, 0);
  row[level] += delta;
  FDRMS_DCHECK(row[level] >= 0);
  // Condition (2) violation candidate: |S ∩ A_j| >= 2^{j+1}.
  if (delta > 0 && row[level] >= (2LL << level)) {
    violations_.emplace_back(set_id, level);
  }
}

void DynamicSetCover::UpdateCounts(int element, int old_level, int new_level) {
  if (old_level == new_level) return;
  for (int set_id : system_.SetsContaining(element)) {
    if (old_level >= 0) BumpCount(set_id, old_level, -1);
    if (new_level >= 0) BumpCount(set_id, new_level, +1);
  }
  elem_level_[element] = new_level;
}

void DynamicSetCover::Assign(int element, int set_id) {
  FDRMS_DCHECK(phi_[element] == kUnassigned);
  FDRMS_DCHECK(in_universe_[element]);
  FDRMS_DCHECK(system_.Contains(element, set_id));
  CoverState& state = in_cover_[set_id];
  state.cov.insert(element);
  phi_[element] = set_id;
  // New solution sets enter at the level of their (so far) singleton cov;
  // Relevel fixes growth.
  int level = state.level;
  if (level < 0) {
    level = LevelForSize(static_cast<int>(state.cov.size()));
    state.level = level;
  }
  UpdateCounts(element, -1, state.level);
  Relevel(set_id);
}

void DynamicSetCover::Unassign(int element) {
  int set_id = phi_[element];
  if (set_id == kUnassigned) return;
  auto it = in_cover_.find(set_id);
  FDRMS_DCHECK(it != in_cover_.end());
  it->second.cov.erase(element);
  phi_[element] = kUnassigned;
  UpdateCounts(element, elem_level_[element], -1);
  Relevel(set_id);
}

void DynamicSetCover::ShiftCovLevel(int set_id, int old_level, int new_level) {
  const auto& cov = in_cover_.at(set_id).cov;
  for (int element : cov) {
    UpdateCounts(element, old_level, new_level);
  }
}

void DynamicSetCover::Relevel(int set_id) {
  auto it = in_cover_.find(set_id);
  if (it == in_cover_.end()) return;
  CoverState& state = it->second;
  if (state.cov.empty()) {
    in_cover_.erase(it);
    return;
  }
  int correct = LevelForSize(static_cast<int>(state.cov.size()));
  if (correct != state.level) {
    int old_level = state.level;
    state.level = correct;
    ShiftCovLevel(set_id, old_level, correct);
  }
}

void DynamicSetCover::Reassign(int element) {
  FDRMS_DCHECK(in_universe_[element]);
  FDRMS_DCHECK(phi_[element] == kUnassigned);
  const auto& candidates = system_.SetsContaining(element);
  if (candidates.empty()) return;  // uncovered until a membership arrives
  // Prefer an existing solution set at the highest level (keeps C small);
  // fall back to opening any containing set.
  int best = kUnassigned;
  int best_level = -1;
  for (int set_id : candidates) {
    auto it = in_cover_.find(set_id);
    if (it != in_cover_.end() && it->second.level > best_level) {
      best = set_id;
      best_level = it->second.level;
    }
  }
  if (best == kUnassigned) best = *candidates.begin();
  Assign(element, best);
}

void DynamicSetCover::InitializeGreedy(
    const std::vector<int>& universe_elements) {
  // Reset all solution state (incidence is kept).
  phi_.assign(phi_.size(), kUnassigned);
  elem_level_.assign(elem_level_.size(), -1);
  in_universe_.assign(in_universe_.size(), false);
  in_cover_.clear();
  counts_.clear();
  violations_.clear();
  universe_size_ = 0;
  for (int e : universe_elements) {
    FDRMS_CHECK(e >= 0 && e < system_.element_capacity());
    if (!in_universe_[e]) {
      in_universe_[e] = true;
      ++universe_size_;
    }
  }
  // Classic greedy with lazily re-evaluated gains (gains only shrink).
  std::unordered_map<int, int> gain;  // set -> |S ∩ uncovered| upper bound
  std::vector<std::pair<int, int>> heap;  // (gain, set_id) max-heap
  for (int set_id : system_.NonEmptySetIds()) {
    int g = 0;
    for (int e : system_.ElementsOf(set_id)) {
      if (in_universe_[e]) ++g;
    }
    if (g > 0) {
      gain[set_id] = g;
      heap.emplace_back(g, set_id);
    }
  }
  std::make_heap(heap.begin(), heap.end());
  int uncovered = universe_size_;
  while (uncovered > 0 && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    auto [g, set_id] = heap.back();
    heap.pop_back();
    // Re-count the true gain; push back if stale.
    int true_gain = 0;
    for (int e : system_.ElementsOf(set_id)) {
      if (in_universe_[e] && phi_[e] == kUnassigned) ++true_gain;
    }
    if (true_gain == 0) continue;
    if (true_gain < g && !heap.empty() && heap.front().first > true_gain) {
      heap.emplace_back(true_gain, set_id);
      std::push_heap(heap.begin(), heap.end());
      continue;
    }
    // Take the set: cov(S*) = uncovered ∩ S*.
    CoverState& state = in_cover_[set_id];
    for (int e : system_.ElementsOf(set_id)) {
      if (in_universe_[e] && phi_[e] == kUnassigned) {
        state.cov.insert(e);
        phi_[e] = set_id;
      }
    }
    state.level = LevelForSize(static_cast<int>(state.cov.size()));
    for (int e : state.cov) UpdateCounts(e, -1, state.level);
    uncovered -= static_cast<int>(state.cov.size());
  }
  // Greedy output is provably stable (Lemma 1), but the count caches may
  // already reveal violations if ties were broken adversarially; draining
  // the queue here is a no-op in the common case and keeps the invariant
  // unconditional.
  Stabilize();
}

void DynamicSetCover::AddMembership(int element, int set_id) {
  if (!system_.AddMembership(element, set_id)) return;  // already present
  if (in_universe_[element]) {
    if (phi_[element] == kUnassigned) {
      // A previously uncoverable universe element becomes coverable.
      Assign(element, set_id);
    } else if (elem_level_[element] >= 0) {
      BumpCount(set_id, elem_level_[element], +1);
    }
  }
  Stabilize();
}

void DynamicSetCover::RemoveMembership(int element, int set_id) {
  if (!system_.RemoveMembership(element, set_id)) return;
  if (in_universe_[element]) {
    // The departing element no longer counts toward |S ∩ A_j| for this set;
    // the system no longer lists the membership, so Unassign below will not
    // touch this set's counts.
    if (elem_level_[element] >= 0) {
      BumpCount(set_id, elem_level_[element], -1);
    }
    if (phi_[element] == set_id) {
      // Case σ = (u, S, -) with u ∈ cov(S): move u to another set
      // containing it (Lines 2-5).
      Unassign(element);
      Reassign(element);
    }
  }
  if (system_.ElementsOf(set_id).empty()) counts_.erase(set_id);
  Stabilize();
}

void DynamicSetCover::AddToUniverse(int element) {
  if (in_universe_[element]) return;
  in_universe_[element] = true;
  ++universe_size_;
  Reassign(element);  // Lines 6-8
  Stabilize();
}

void DynamicSetCover::RemoveFromUniverse(int element) {
  if (!in_universe_[element]) return;
  Unassign(element);  // Lines 9-11
  in_universe_[element] = false;
  --universe_size_;
  Stabilize();
}

void DynamicSetCover::RemoveSet(int set_id) {
  // Detach cover duties first (Algorithm 3, Lines 10-12), then drop all
  // memberships.
  auto it = in_cover_.find(set_id);
  std::vector<int> orphans;
  if (it != in_cover_.end()) {
    orphans.assign(it->second.cov.begin(), it->second.cov.end());
    for (int e : orphans) {
      phi_[e] = kUnassigned;
      UpdateCounts(e, elem_level_[e], -1);
    }
    in_cover_.erase(it);
  }
  std::vector<int> members(system_.ElementsOf(set_id).begin(),
                           system_.ElementsOf(set_id).end());
  for (int e : members) system_.RemoveMembership(e, set_id);
  counts_.erase(set_id);
  for (int e : orphans) Reassign(e);
  Stabilize();
}

void DynamicSetCover::Stabilize() {
  while (!violations_.empty()) {
    auto [set_id, level] = violations_.front();
    violations_.pop_front();
    auto cit = counts_.find(set_id);
    if (cit == counts_.end() || cit->second[level] < (2LL << level)) {
      continue;  // stale entry
    }
    // cov(S) ← cov(S) ∪ (S ∩ A_j): steal every element of S assigned at
    // this level (Lines 29-32).
    std::vector<int> steal;
    for (int e : system_.ElementsOf(set_id)) {
      if (in_universe_[e] && elem_level_[e] == level && phi_[e] != set_id) {
        steal.push_back(e);
      }
    }
    if (steal.empty()) {
      // All counted elements already belong to this set; Relevel keeps the
      // level consistent and the violation is vacuous.
      Relevel(set_id);
      continue;
    }
    CoverState& state = in_cover_[set_id];
    bool was_in_cover = state.level >= 0;
    std::unordered_set<int> donors;
    for (int e : steal) {
      donors.insert(phi_[e]);
      in_cover_.at(phi_[e]).cov.erase(e);
      phi_[e] = set_id;
      state.cov.insert(e);
    }
    if (!was_in_cover) {
      state.level = LevelForSize(static_cast<int>(state.cov.size()));
      for (int e : state.cov) UpdateCounts(e, elem_level_[e], state.level);
    } else {
      int old_level = state.level;
      int correct = LevelForSize(static_cast<int>(state.cov.size()));
      state.level = correct;
      // Stolen elements move from `level` to `correct`; incumbent cov
      // members move only if the set releveled.
      for (int e : steal) UpdateCounts(e, level, correct);
      if (correct != old_level) {
        for (int e : state.cov) {
          if (elem_level_[e] != correct) UpdateCounts(e, elem_level_[e], correct);
        }
      }
    }
    for (int donor : donors) Relevel(donor);
  }
}

Status DynamicSetCover::CheckInvariants() const {
  // 1. Assignment <-> cov consistency; levels within range (Condition 1).
  int assigned = 0;
  for (int e = 0; e < system_.element_capacity(); ++e) {
    int s = phi_[e];
    if (s == kUnassigned) continue;
    if (!in_universe_[e]) return Status::Internal("assigned non-universe element");
    auto it = in_cover_.find(s);
    if (it == in_cover_.end()) return Status::Internal("phi points outside C");
    if (it->second.cov.count(e) == 0) {
      return Status::Internal("phi(e) does not list e in cov");
    }
    if (!system_.Contains(e, s)) {
      return Status::Internal("element assigned to set not containing it");
    }
    if (elem_level_[e] != it->second.level) {
      return Status::Internal("elem_level cache stale");
    }
    ++assigned;
  }
  size_t cov_total = 0;
  for (const auto& [set_id, state] : in_cover_) {
    if (state.cov.empty()) return Status::Internal("empty set kept in C");
    int size = static_cast<int>(state.cov.size());
    cov_total += state.cov.size();
    int expect = LevelForSize(size);
    if (state.level != expect) {
      return Status::Internal("level range violated for set " +
                              std::to_string(set_id));
    }
    for (int e : state.cov) {
      if (phi_[e] != set_id) return Status::Internal("cov lists foreign element");
    }
  }
  if (static_cast<int>(cov_total) != assigned) {
    return Status::Internal("cover sets are not disjoint");
  }
  // 2. Stability Condition 2 and count-cache correctness, by brute force.
  for (int set_id : system_.NonEmptySetIds()) {
    std::vector<int> true_counts(kMaxLevels, 0);
    for (int e : system_.ElementsOf(set_id)) {
      if (in_universe_[e] && elem_level_[e] >= 0) ++true_counts[elem_level_[e]];
    }
    auto cit = counts_.find(set_id);
    for (int j = 0; j < kMaxLevels; ++j) {
      int cached = (cit == counts_.end() || cit->second.empty())
                       ? 0
                       : cit->second[j];
      if (cached != true_counts[j]) {
        return Status::Internal("count cache mismatch for set " +
                                std::to_string(set_id));
      }
      if (true_counts[j] >= (2LL << j)) {
        return Status::Internal("stability Condition 2 violated: set " +
                                std::to_string(set_id) + " level " +
                                std::to_string(j));
      }
    }
  }
  // 3. Coverage: every universe element contained in some set is assigned.
  for (int e = 0; e < system_.element_capacity(); ++e) {
    if (in_universe_[e] && phi_[e] == kUnassigned &&
        !system_.SetsContaining(e).empty()) {
      return Status::Internal("coverable universe element left unassigned");
    }
  }
  return Status::OK();
}

}  // namespace fdrms
