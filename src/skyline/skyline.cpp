#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fdrms {

std::vector<int> ComputeSkyline(const PointSet& points) {
  const int n = points.size();
  const int d = points.dim();
  // Sum-descending order: a point can only be dominated by one with a
  // strictly larger (or equal) coordinate sum, so a single forward pass
  // against the accumulating skyline is exact.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = points.Row(i);
    for (int j = 0; j < d; ++j) sums[i] += row[j];
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return sums[a] > sums[b]; });
  std::vector<int> skyline;
  for (int idx : order) {
    Point p = points.Get(idx);
    bool dominated = false;
    for (int s : skyline) {
      if (Dominates(points.Get(s), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

Status DynamicSkyline::Insert(int id, const Point& p, bool* changed) {
  if (static_cast<int>(p.size()) != dim_) {
    return Status::Invalid("point dimension mismatch");
  }
  if (points_.count(id) > 0) {
    return Status::AlreadyExists("tuple id " + std::to_string(id) +
                                 " already present");
  }
  points_.emplace(id, p);
  // Dominance is transitive through the skyline: if anything dominates p,
  // some skyline member does.
  for (int s : skyline_) {
    if (Dominates(points_.at(s), p)) {
      if (changed != nullptr) *changed = false;
      return Status::OK();
    }
  }
  // p joins the skyline and may knock out existing members.
  std::vector<int> displaced;
  for (int s : skyline_) {
    if (Dominates(p, points_.at(s))) displaced.push_back(s);
  }
  for (int s : displaced) skyline_.erase(s);
  skyline_.insert(id);
  if (changed != nullptr) *changed = true;
  return Status::OK();
}

Status DynamicSkyline::Delete(int id, bool* changed) {
  auto it = points_.find(id);
  if (it == points_.end()) {
    return Status::NotFound("tuple id " + std::to_string(id) + " not present");
  }
  Point p = it->second;
  points_.erase(it);
  if (skyline_.count(id) == 0) {
    if (changed != nullptr) *changed = false;
    return Status::OK();
  }
  skyline_.erase(id);
  // Only points the deleted member dominated can surface; promote those not
  // dominated by any remaining live point.
  std::vector<int> candidates;
  for (const auto& [cid, cp] : points_) {
    if (skyline_.count(cid) == 0 && Dominates(p, cp)) candidates.push_back(cid);
  }
  for (int cid : candidates) {
    const Point& cp = points_.at(cid);
    bool dominated = false;
    for (int s : skyline_) {
      if (Dominates(points_.at(s), cp)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    for (int other : candidates) {
      if (other != cid && Dominates(points_.at(other), cp)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline_.insert(cid);
  }
  if (changed != nullptr) *changed = true;
  return Status::OK();
}

const Point& DynamicSkyline::GetPoint(int id) const {
  auto it = points_.find(id);
  FDRMS_CHECK(it != points_.end()) << "GetPoint on missing id " << id;
  return it->second;
}

std::vector<int> DynamicSkyline::LiveIds() const {
  std::vector<int> ids;
  ids.reserve(points_.size());
  for (const auto& [id, _] : points_) ids.push_back(id);
  return ids;
}

}  // namespace fdrms
