#ifndef FDRMS_SKYLINE_SKYLINE_H_
#define FDRMS_SKYLINE_SKYLINE_H_

/// \file skyline.h
/// Static skyline computation and fully dynamic skyline maintenance.
///
/// The k-RMS result is always a subset of the skyline, so the paper's
/// static baselines recompute only when an insertion or deletion changes
/// the skyline (Section IV-A). This module provides that trigger, plus the
/// skyline statistics of Table I and Figure 4.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/pointset.h"

namespace fdrms {

/// Row ids of the skyline of `points` (block-nested-loop over a sum-sorted
/// order; larger is better on every attribute).
std::vector<int> ComputeSkyline(const PointSet& points);

/// Maintains the skyline of a changing tuple set.
class DynamicSkyline {
 public:
  explicit DynamicSkyline(int dim) : dim_(dim) {}

  /// Adds tuple `id`. Returns (via `changed`) whether the skyline changed.
  Status Insert(int id, const Point& p, bool* changed);

  /// Removes tuple `id`; `changed` reports whether the skyline changed.
  Status Delete(int id, bool* changed);

  bool IsOnSkyline(int id) const { return skyline_.count(id) > 0; }
  const std::unordered_set<int>& skyline() const { return skyline_; }
  int size() const { return static_cast<int>(points_.size()); }
  int skyline_size() const { return static_cast<int>(skyline_.size()); }

  /// Copy of a live tuple (CHECK-fails on missing ids).
  const Point& GetPoint(int id) const;

  /// All live tuple ids (unordered).
  std::vector<int> LiveIds() const;

 private:
  int dim_;
  std::unordered_map<int, Point> points_;
  std::unordered_set<int> skyline_;
};

}  // namespace fdrms

#endif  // FDRMS_SKYLINE_SKYLINE_H_
