#ifndef FDRMS_EVAL_RUNNER_H_
#define FDRMS_EVAL_RUNNER_H_

/// \file runner.h
/// Replays a Workload through FD-RMS or a static baseline and reports the
/// paper's two measures: mean wall-clock update time per operation and the
/// mean sampled maximum k-regret ratio over the checkpoints (Section IV-A).
///
/// Static algorithms recompute only when an operation changes the skyline
/// (the paper's protocol). A full recomputation at *every* skyline change
/// is infeasible at laptop scale for the slowest baselines, so the runner
/// measures the recomputation cost on an evenly spaced sample of the
/// triggering operations and charges  mean_measured_cost x trigger_count /
/// op_count  as the average update time; checkpoint results (and thus
/// regret ratios) are always computed for real. Set max_timed_runs high
/// enough (or FDRMS_TIME_ALL_RUNS=1) to time every trigger.

#include <memory>
#include <string>
#include <vector>

#include "baselines/rms_algorithm.h"
#include "core/fdrms.h"
#include "eval/workload.h"

namespace fdrms {

/// Outcome of one algorithm on one workload.
struct RunResult {
  std::string algorithm;
  double mean_update_ms = 0.0;       ///< avg wall-clock per operation
  double mean_regret = 0.0;          ///< mrr_k averaged over checkpoints
  std::vector<double> checkpoint_regret;
  std::vector<int> final_result;     ///< Q at the last checkpoint
  long skyline_triggers = 0;         ///< ops that changed the skyline
  double init_ms = 0.0;              ///< one-off initialization cost
  int final_m = 0;                   ///< FD-RMS sample size after the run
};

/// Shared context for comparing algorithms on the same workload: caches the
/// per-checkpoint ω_k arrays so the (expensive) regret reference is
/// computed once, not once per algorithm.
class WorkloadRunner {
 public:
  /// \param eval_directions size of the utility test set used to estimate
  ///        mrr_k (the paper uses 500K; benches default lower — see
  ///        FDRMS_EVAL_VECTORS).
  WorkloadRunner(const Workload* workload, int k, int eval_directions,
                 uint64_t seed);

  /// Runs FD-RMS through the workload, timing every operation.
  RunResult RunFdRms(const FdRmsOptions& options);

  /// Runs a static algorithm with skyline-triggered recomputation.
  /// \param max_timed_runs number of triggering operations whose
  ///        recomputation is actually executed and timed.
  RunResult RunStatic(const RmsAlgorithm& algo, int r, int max_timed_runs = 10);

  /// mrr_k of an explicit result (ids into the workload's PointSet) against
  /// the live tuples at checkpoint `checkpoint_index`.
  double RegretAtCheckpoint(int checkpoint_index,
                            const std::vector<int>& result_ids);

  int k() const { return k_; }
  const Workload& workload() const { return *workload_; }

 private:
  struct CheckpointCache {
    std::vector<int> live_ids;
    std::vector<Point> live_points;
    std::vector<double> omega_k;  // per eval direction
    bool ready = false;
  };
  void EnsureCheckpoint(int checkpoint_index);

  const Workload* workload_;
  int k_;
  std::vector<Point> eval_dirs_;
  std::vector<CheckpointCache> cache_;
};

}  // namespace fdrms

#endif  // FDRMS_EVAL_RUNNER_H_
