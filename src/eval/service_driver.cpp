#include "eval/service_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/fault_point.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "obs/exporters.h"
#include "obs/pow2_hist.h"
#include "obs/registry.h"

namespace fdrms {

std::vector<ArrivalPhase> FlashCrowdArrival(double base_ops_per_sec,
                                            double burst_multiplier,
                                            double burst_fraction) {
  // Fractions: 30% baseline warmup, the crowd, then a baseline tail with
  // whatever remains — the tail is what makes "p99 recovered" measurable.
  burst_fraction = std::min(std::max(burst_fraction, 0.05), 0.9);
  const double lead = std::min(0.3, (1.0 - burst_fraction) / 2.0);
  return {
      {lead, base_ops_per_sec},
      {burst_fraction, base_ops_per_sec * burst_multiplier},
      {1.0 - lead - burst_fraction, base_ops_per_sec},
  };
}

std::vector<ArrivalPhase> DiurnalArrival(double base_ops_per_sec, int cycles,
                                         int phases_per_cycle,
                                         double amplitude) {
  cycles = std::max(cycles, 1);
  phases_per_cycle = std::max(phases_per_cycle, 2);
  amplitude = std::min(std::max(amplitude, 0.0), 0.95);
  std::vector<ArrivalPhase> phases;
  const int total = cycles * phases_per_cycle;
  const double fraction = 1.0 / static_cast<double>(total);
  constexpr double kTau = 6.28318530717958647692;
  for (int i = 0; i < total; ++i) {
    const double angle =
        kTau * static_cast<double>(i % phases_per_cycle) /
        static_cast<double>(phases_per_cycle);
    phases.push_back(
        {fraction, base_ops_per_sec * (1.0 + amplitude * std::sin(angle))});
  }
  return phases;
}

namespace {

/// Per-operation scheduled submission instants (seconds from load start)
/// for a paced run: within each phase, operations are spaced 1/rate apart,
/// phases running back to back. Empty when `arrival` is empty (= full
/// speed).
std::vector<double> BuildArrivalSchedule(
    const std::vector<ArrivalPhase>& arrival, size_t num_ops) {
  std::vector<double> at;
  if (arrival.empty() || num_ops == 0) return at;
  at.reserve(num_ops);
  double clock = 0.0;
  size_t scheduled = 0;
  for (size_t p = 0; p < arrival.size() && scheduled < num_ops; ++p) {
    const ArrivalPhase& phase = arrival[p];
    size_t count = p + 1 == arrival.size()
                       ? num_ops - scheduled  // last phase absorbs rounding
                       : std::min(num_ops - scheduled,
                                  static_cast<size_t>(
                                      phase.ops_fraction *
                                      static_cast<double>(num_ops)));
    const double gap =
        phase.ops_per_sec > 0.0 ? 1.0 / phase.ops_per_sec : 0.0;
    for (size_t i = 0; i < count; ++i) {
      at.push_back(clock);
      clock += gap;
    }
    scheduled += count;
  }
  while (at.size() < num_ops) at.push_back(clock);  // defensive top-up
  return at;
}

/// Parks the caller until `wall` reaches `target_seconds` — sleeping for
/// the bulk, yielding the last stretch so the submit lands close to its
/// slot without burning a core for the whole wait.
void WaitUntil(const Stopwatch& wall, double target_seconds) {
  for (;;) {
    const double now = wall.ElapsedSeconds();
    if (now >= target_seconds) return;
    const double remaining = target_seconds - now;
    if (remaining > 0.0005) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(remaining * 5e5)));
    } else {
      std::this_thread::yield();
    }
  }
}

/// Staleness/consistency tallies of one reader thread (no sharing: each
/// reader owns its accumulator; the driver merges after join).
struct ReaderTally {
  uint64_t queries = 0;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  bool consistent = true;
};

}  // namespace

ServiceLoadResult RunServiceLoad(const Workload& workload,
                                 const ServiceLoadOptions& opts) {
  FDRMS_CHECK(opts.num_readers >= 0);
  FDRMS_CHECK(opts.num_submitters >= 1);

  FdRmsService service(workload.data().dim(), opts.service);
  std::vector<std::pair<int, Point>> initial;
  initial.reserve(workload.initial_ids().size());
  for (int id : workload.initial_ids()) {
    initial.emplace_back(id, workload.data().Get(id));
  }
  Status started = service.Start(initial);
  FDRMS_CHECK(started.ok()) << started.ToString();

  const int r = opts.service.algo.r;
  const std::vector<Operation>& ops = workload.operations();
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> submit_failures{0};
  std::atomic<uint64_t> submit_retries{0};

  std::vector<ReaderTally> tallies(
      static_cast<size_t>(std::max(opts.num_readers, 0)));
  std::vector<std::thread> threads;
  Stopwatch wall;

  for (int t = 0; t < opts.num_readers; ++t) {
    threads.emplace_back([&, t] {
      ReaderTally& tally = tallies[t];
      uint64_t last_version = 0;
      while (!readers_stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ResultSnapshot> snap = service.Query();
        ++tally.queries;
        if (snap == nullptr) {
          tally.consistent = false;
          break;
        }
        if (snap->version < last_version) tally.consistent = false;
        last_version = snap->version;
        if (static_cast<int>(snap->ids.size()) > r) tally.consistent = false;
        if (snap->ids.size() != snap->points.size()) tally.consistent = false;
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          tally.consistent = false;
        }
        uint64_t submitted = service.ops_submitted();
        uint64_t consumed = snap->ops_applied + snap->ops_rejected;
        if (submitted < consumed) tally.consistent = false;  // invariant
        double backlog = static_cast<double>(submitted - consumed);
        tally.staleness_sum += backlog;
        tally.staleness_max = std::max(tally.staleness_max, backlog);
        std::this_thread::yield();  // keep the writer schedulable on small hosts
      }
    });
  }

  for (int t = 0; t < opts.num_submitters; ++t) {
    threads.emplace_back([&, t] {
      // Round-robin partition: submitter t owns ops t, t+M, t+2M, ...
      uint64_t retries = 0;
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(opts.num_submitters)) {
        auto submit = [&] {
          return ops[i].is_insert
                     ? service.SubmitInsert(ops[i].id,
                                            workload.data().Get(ops[i].id))
                     : service.SubmitDelete(ops[i].id);
        };
        Status st = opts.retry_submits
                        ? RetryTransient(opts.submit_retry, &retries, submit)
                        : submit();
        if (!st.ok()) {
          submit_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (retries > 0) {
        submit_retries.fetch_add(retries, std::memory_order_relaxed);
      }
    });
  }

  // Join submitters (they were appended after the readers).
  for (size_t i = static_cast<size_t>(opts.num_readers); i < threads.size();
       ++i) {
    threads[i].join();
  }
  Status flushed = service.Flush();
  FDRMS_CHECK(flushed.ok()) << flushed.ToString();
  const double wall_seconds = wall.ElapsedSeconds();
  readers_stop.store(true, std::memory_order_release);
  for (int t = 0; t < opts.num_readers; ++t) threads[t].join();
  Status stopped = service.Stop(FdRmsService::StopPolicy::kDrain);
  FDRMS_CHECK(stopped.ok()) << stopped.ToString();

  ServiceLoadResult result;
  std::shared_ptr<const ResultSnapshot> last = service.Query();
  result.ops_submitted = service.ops_submitted();
  result.ops_applied = last->ops_applied;
  result.ops_rejected = last->ops_rejected;
  result.submit_failures = submit_failures.load();
  result.submit_retries = submit_retries.load();
  result.batches = last->batches;
  result.wall_seconds = wall_seconds;
  result.writer_busy_seconds = last->writer_busy_seconds;
  result.publish_p50_us = last->publish_p50_us;
  result.publish_p99_us = last->publish_p99_us;
  result.queue_depth_p50 = obs::Pow2HistQuantile(last->queue_depth_hist, 0.50);
  result.queue_depth_p99 = obs::Pow2HistQuantile(last->queue_depth_hist, 0.99);
  result.effective_max_batch = last->effective_max_batch;
  result.queue_depth_hist = last->queue_depth_hist;
  result.batch_size_hist = last->batch_size_hist;
  result.final_version = last->version;
  result.final_result_size = static_cast<int>(last->ids.size());
  result.final_m = last->sample_size_m;
  if (wall_seconds > 0.0) {
    result.update_throughput =
        static_cast<double>(result.ops_applied) / wall_seconds;
  }
  uint64_t total_queries = 0;
  double staleness_sum = 0.0;
  for (const ReaderTally& tally : tallies) {
    total_queries += tally.queries;
    staleness_sum += tally.staleness_sum;
    result.max_staleness_ops =
        std::max(result.max_staleness_ops, tally.staleness_max);
    result.consistent = result.consistent && tally.consistent;
  }
  result.queries = total_queries;
  if (wall_seconds > 0.0) {
    result.query_throughput =
        static_cast<double>(total_queries) / wall_seconds;
  }
  if (total_queries > 0) {
    result.mean_staleness_ops =
        staleness_sum / static_cast<double>(total_queries);
  }
  const obs::RegistrySnapshot scrape = service.registry()->Snapshot();
  if (const obs::MetricSnapshot* lat =
          scrape.Find("fdrms_publish_latency_us")) {
    result.publish_p90_us = lat->Quantile(0.90);
    result.publish_p999_us = lat->Quantile(0.999);
  }
  result.prometheus_text = obs::PrometheusText(scrape);
  result.json_text = obs::JsonText(scrape);
  result.debug_text = service.DebugString();
  return result;
}

namespace {

/// Staleness/consistency tallies of one merged-snapshot reader thread.
struct ShardedReaderTally {
  uint64_t queries = 0;
  uint64_t null_queries = 0;
  uint64_t degraded_queries = 0;  ///< merged reads flagged degraded
  int max_degraded_shards = 0;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  std::vector<double> per_shard_staleness_sum;
  bool consistent = true;
};

}  // namespace

ShardedLoadResult RunShardedLoad(const Workload& workload,
                                 const ShardedLoadOptions& opts) {
  FDRMS_CHECK(opts.num_readers >= 0);
  FDRMS_CHECK(opts.num_submitters >= 1);
  const int num_shards = opts.service.num_shards;
  // The SLO controller is a second source of topology changes: when its
  // topology actuator is live, the shard set can grow or shrink at any
  // moment the signals say so, exactly like configured migration events.
  const bool controller_topology =
      opts.enable_slo_controller && opts.slo.enable_topology;
  // A resume run's restored counters (applied ops carried over from the
  // previous process) sit ahead of this process's submitted count, so the
  // backlog arithmetic below is meaningless there — skip it like a
  // changing topology.
  // A fault drill swaps a dead shard instance for a fresh one: the retired
  // incarnation's lifetime counters stay in the aggregate while the
  // successor's restart at zero, so the fixed-topology backlog identities
  // stop holding even though the shard *count* never changes.
  const bool fixed_topology = opts.migrations.empty() &&
                              !controller_topology && !opts.resume &&
                              !opts.fault.enabled;
  // Staleness is derived from service.ops_submitted() (which keeps counting
  // retired shards, monotone) minus the merged view's consumed ops (live
  // shards only). Once a shard retires, its lifetime op count inflates that
  // difference forever, so runs with kRemoveShard events (or a controller
  // that may scale down) skip the staleness tally instead of reporting a
  // phantom backlog.
  bool track_staleness =
      !controller_topology && !opts.resume && !opts.fault.enabled;
  for (const ShardedLoadOptions::MigrationEvent& event : opts.migrations) {
    if (event.kind == ShardedLoadOptions::MigrationEvent::Kind::kRemoveShard) {
      track_staleness = false;
    }
  }

  ShardedFdRmsService service(workload.data().dim(), opts.service);
  std::vector<std::pair<int, Point>> initial;
  if (!opts.resume) {
    // A resume run restores P_0's successor state from the manifest; bulk
    // loading it again would double-apply the initial tuples.
    initial.reserve(workload.initial_ids().size());
    for (int id : workload.initial_ids()) {
      initial.emplace_back(id, workload.data().Get(id));
    }
  }
  Status started = service.Start(initial);
  FDRMS_CHECK(started.ok()) << started.ToString();
  const bool resumed = service.resumed();
  const uint64_t resume_epoch = resumed ? service.epoch() : 0;
  const int resume_num_shards = resumed ? service.num_shards() : 0;

  // On resume the manifest, not the options, decides the starting count.
  const int base_shards = resumed ? resume_num_shards : num_shards;

  // Upper bound of the live shard count over the run (AddShard events can
  // only grow it one at a time) — the merged result bound scales with it.
  int max_shards = base_shards;
  for (const ShardedLoadOptions::MigrationEvent& event : opts.migrations) {
    if (event.kind == ShardedLoadOptions::MigrationEvent::Kind::kAddShard) {
      ++max_shards;
    }
  }
  if (controller_topology) {
    max_shards = std::max(max_shards, opts.slo.max_shards);
  }
  const std::vector<Operation>& ops = workload.operations();
  // Paced arrivals: per-op scheduled instants against the shared wall
  // clock; empty = submit full speed.
  const std::vector<double> arrival_at =
      BuildArrivalSchedule(opts.arrival, ops.size());
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> submit_failures{0};
  std::atomic<uint64_t> submit_retries{0};
  std::atomic<uint64_t> unavailable_submits{0};
  // Workload operations pushed so far (excludes migration-internal ops, so
  // the controller's event fractions track the stream, not the churn).
  std::atomic<uint64_t> workload_submitted{0};
  std::atomic<bool> submitters_done{false};

  std::vector<ShardedReaderTally> tallies(
      static_cast<size_t>(std::max(opts.num_readers, 0)));
  for (ShardedReaderTally& tally : tallies) {
    tally.per_shard_staleness_sum.assign(static_cast<size_t>(base_shards),
                                         0.0);
  }
  std::vector<std::thread> threads;
  Stopwatch wall;

  for (int t = 0; t < opts.num_readers; ++t) {
    threads.emplace_back([&, t] {
      ShardedReaderTally& tally = tallies[t];
      uint64_t last_epoch = 0;
      std::vector<uint64_t> last_versions;
      bool first = true;
      while (!readers_stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const MergedSnapshot> snap = service.Query();
        ++tally.queries;
        if (snap == nullptr) {
          // Null is only legal before every shard published version 0;
          // once a reader has seen a merged view, a later null is a
          // serving error (migrations must never block or fail reads).
          if (!first) {
            ++tally.null_queries;
            tally.consistent = false;
          }
          std::this_thread::yield();
          continue;
        }
        if (snap->versions.size() != snap->shards.size()) {
          tally.consistent = false;
        }
        if (snap->degraded_shards > 0) {
          ++tally.degraded_queries;
          tally.max_degraded_shards =
              std::max(tally.max_degraded_shards, snap->degraded_shards);
        }
        if (!first) {
          if (snap->epoch < last_epoch) tally.consistent = false;
          if (snap->epoch == last_epoch) {
            // Within an epoch the shard set is fixed: the vector keeps its
            // arity and advances component-wise.
            if (snap->versions.size() != last_versions.size()) {
              tally.consistent = false;
            } else {
              for (size_t s = 0; s < snap->versions.size(); ++s) {
                if (snap->versions[s] < last_versions[s]) {
                  tally.consistent = false;
                }
              }
            }
          }
        }
        last_epoch = snap->epoch;
        last_versions = snap->versions;
        const int result_bound =
            opts.service.merged_budget_r > 0
                ? opts.service.merged_budget_r
                : max_shards * opts.service.shard.algo.r;
        if (static_cast<int>(snap->ids.size()) > result_bound) {
          tally.consistent = false;
        }
        if (snap->ids.size() != snap->points.size()) tally.consistent = false;
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          tally.consistent = false;
        }
        // Aggregate backlog: ops accepted anywhere (monotone, includes
        // retired shards) minus ops this view has consumed.
        if (track_staleness) {
          uint64_t submitted = service.ops_submitted();
          uint64_t consumed = snap->ops_applied + snap->ops_rejected;
          if (submitted >= consumed) {
            double backlog = static_cast<double>(submitted - consumed);
            tally.staleness_sum += backlog;
            tally.staleness_max = std::max(tally.staleness_max, backlog);
          } else if (fixed_topology) {
            tally.consistent = false;  // invariant under a fixed shard set
          }
        }
        if (fixed_topology) {
          for (int s = 0; s < base_shards; ++s) {
            uint64_t shard_submitted = service.shard(s).ops_submitted();
            uint64_t shard_consumed = snap->shards[s]->ops_applied +
                                      snap->shards[s]->ops_rejected;
            if (shard_submitted < shard_consumed) tally.consistent = false;
            tally.per_shard_staleness_sum[s] +=
                static_cast<double>(shard_submitted - shard_consumed);
          }
        }
        first = false;
        std::this_thread::yield();  // keep the writers schedulable
      }
    });
  }

  for (int t = 0; t < opts.num_submitters; ++t) {
    threads.emplace_back([&, t] {
      uint64_t retries = 0;
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(opts.num_submitters)) {
        if (!arrival_at.empty()) WaitUntil(wall, arrival_at[i]);
        auto submit = [&] {
          return ops[i].is_insert
                     ? service.SubmitInsert(ops[i].id,
                                            workload.data().Get(ops[i].id))
                     : service.SubmitDelete(ops[i].id);
        };
        Status st = opts.retry_submits
                        ? RetryTransient(opts.submit_retry, &retries, submit)
                        : submit();
        if (!st.ok()) {
          submit_failures.fetch_add(1, std::memory_order_relaxed);
          if (st.code() == StatusCode::kUnavailable) {
            unavailable_submits.fetch_add(1, std::memory_order_relaxed);
          }
        }
        workload_submitted.fetch_add(1, std::memory_order_relaxed);
      }
      if (retries > 0) {
        submit_retries.fetch_add(retries, std::memory_order_relaxed);
      }
    });
  }

  // The SLO control loop runs for the submission phase only: it is stopped
  // before the final drain, so end-of-run slack (the queue emptying once
  // the stream ends) can't read as sustained idleness and scale the
  // constellation back down under the assertions' feet.
  std::unique_ptr<control::ShardedServiceActuator> actuator;
  std::unique_ptr<control::SloController> slo_controller;
  if (opts.enable_slo_controller) {
    actuator = std::make_unique<control::ShardedServiceActuator>(&service);
    slo_controller = std::make_unique<control::SloController>(
        service.registry(), actuator.get(), opts.slo);
    slo_controller->Start();
  }

  // Controller: fires the topology events at their stream fractions while
  // the submitters churn.
  ShardedLoadResult result;
  std::thread controller;
  if (!fixed_topology) {
    controller = std::thread([&] {
      using Kind = ShardedLoadOptions::MigrationEvent::Kind;
      for (const ShardedLoadOptions::MigrationEvent& event : opts.migrations) {
        const uint64_t threshold = static_cast<uint64_t>(
            event.at_fraction * static_cast<double>(ops.size()));
        while (workload_submitted.load(std::memory_order_relaxed) < threshold &&
               !submitters_done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::shared_ptr<const MergedSnapshot> before = service.Query();
        Stopwatch timer;
        Status st;
        switch (event.kind) {
          case Kind::kAddShard:
            st = service.AddShard();
            break;
          case Kind::kRemoveShard:
            st = service.RemoveShard();
            break;
          case Kind::kPlan:
            st = service.Migrate(event.plan);
            break;
        }
        const double seconds = timer.ElapsedSeconds();
        std::shared_ptr<const MergedSnapshot> after = service.Query();
        ++result.migrations_attempted;
        if (!st.ok()) ++result.migrations_failed;
        result.migration_seconds.push_back(seconds);
        result.migration_seconds_total += seconds;
        if (before != nullptr && after != nullptr && seconds > 0.0 &&
            after->ops_applied >= before->ops_applied) {
          // Aggregated below into migration_update_throughput.
          result.migration_update_throughput +=
              static_cast<double>(after->ops_applied - before->ops_applied);
        }
      }
    });
  }

  // Fault drill: arm a one-shot writer death once the stream crosses the
  // kill fraction (the next shard writer to apply a batch dies), wait for
  // the death to land so the outage window is real, then revive at the
  // revive fraction. Readers keep tallying degraded merges in between.
  std::thread drill;
  std::atomic<int> drill_revived{0};
  if (opts.fault.enabled) {
    drill = std::thread([&] {
      const uint64_t kill_at = static_cast<uint64_t>(
          opts.fault.kill_at_fraction * static_cast<double>(ops.size()));
      while (workload_submitted.load(std::memory_order_relaxed) < kill_at &&
             !submitters_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      FaultSpec die;
      die.kind = FaultKind::kDie;
      FaultPoints::Arm("writer.apply.pre", die);
      while (service.num_unhealthy() == 0 &&
             !submitters_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (opts.fault.revive_at_fraction >= 0.0) {
        const uint64_t revive_at = static_cast<uint64_t>(
            opts.fault.revive_at_fraction * static_cast<double>(ops.size()));
        while (workload_submitted.load(std::memory_order_relaxed) <
                   revive_at &&
               !submitters_done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        drill_revived.fetch_add(service.ReviveDeadShards(),
                                std::memory_order_relaxed);
      }
    });
  }

  // Join submitters (they were appended after the readers).
  for (size_t i = static_cast<size_t>(opts.num_readers); i < threads.size();
       ++i) {
    threads[i].join();
  }
  submitters_done.store(true, std::memory_order_release);
  if (controller.joinable()) controller.join();
  if (drill.joinable()) drill.join();
  if (opts.fault.enabled) {
    // Always hand back a healthy constellation: clear any unconsumed arm
    // (the Flush below must not kill a writer), then revive whatever is
    // still dead so the final drain doesn't fail kUnavailable.
    FaultPoints::Reset();
    drill_revived.fetch_add(service.ReviveDeadShards(),
                            std::memory_order_relaxed);
    result.shards_revived = drill_revived.load();
    result.revive_ok = service.num_unhealthy() == 0;
  }
  if (slo_controller != nullptr) {
    slo_controller->Stop();
    result.controller_debug_text = slo_controller->DebugString();
  }
  Status flushed = service.Flush();
  FDRMS_CHECK(flushed.ok()) << flushed.ToString();
  const double wall_seconds = wall.ElapsedSeconds();
  readers_stop.store(true, std::memory_order_release);
  for (int t = 0; t < opts.num_readers; ++t) threads[t].join();
  Status stopped = service.Stop(FdRmsService::StopPolicy::kDrain);
  FDRMS_CHECK(stopped.ok()) << stopped.ToString();

  std::shared_ptr<const MergedSnapshot> last = service.Query();
  FDRMS_CHECK(last != nullptr);
  const int final_shards = static_cast<int>(last->shards.size());
  result.ops_submitted = service.ops_submitted();
  result.ops_applied = last->ops_applied;
  result.ops_rejected = last->ops_rejected;
  result.submit_failures = submit_failures.load();
  result.submit_retries = submit_retries.load();
  result.unavailable_submits = unavailable_submits.load();
  result.batches = last->batches;
  result.wall_seconds = wall_seconds;
  result.final_versions = last->versions;
  result.final_result_size = static_cast<int>(last->ids.size());
  result.final_union_size = last->union_size;
  result.final_min_m = last->min_sample_size_m;
  result.final_epoch = last->epoch;
  result.final_num_shards = final_shards;
  result.resumed = resumed;
  result.resume_epoch = resume_epoch;
  result.resume_num_shards = resume_num_shards;
  result.publish_p50_us = last->publish_p50_us_max;
  result.publish_p99_us = last->publish_p99_us_max;
  for (int s = 0; s < final_shards; ++s) {
    result.per_shard_applied.push_back(last->shards[s]->ops_applied);
    result.per_shard_busy_seconds.push_back(
        last->shards[s]->writer_busy_seconds);
  }
  if (wall_seconds > 0.0) {
    result.update_throughput =
        static_cast<double>(result.ops_applied) / wall_seconds;
  }
  if (result.migration_seconds_total > 0.0) {
    result.migration_update_throughput /= result.migration_seconds_total;
  }
  if (last->writer_busy_seconds_max > 0.0) {
    result.update_capacity = static_cast<double>(result.ops_applied) /
                             last->writer_busy_seconds_max;
  }
  uint64_t total_queries = 0;
  double staleness_sum = 0.0;
  result.per_shard_mean_staleness.assign(static_cast<size_t>(base_shards),
                                         0.0);
  for (const ShardedReaderTally& tally : tallies) {
    total_queries += tally.queries;
    result.null_queries += tally.null_queries;
    result.degraded_queries += tally.degraded_queries;
    result.max_degraded_shards =
        std::max(result.max_degraded_shards, tally.max_degraded_shards);
    staleness_sum += tally.staleness_sum;
    result.max_staleness_ops =
        std::max(result.max_staleness_ops, tally.staleness_max);
    for (int s = 0; s < base_shards; ++s) {
      result.per_shard_mean_staleness[s] += tally.per_shard_staleness_sum[s];
    }
    result.consistent = result.consistent && tally.consistent;
  }
  result.queries = total_queries;
  if (wall_seconds > 0.0) {
    result.query_throughput =
        static_cast<double>(total_queries) / wall_seconds;
  }
  if (total_queries > 0) {
    result.mean_staleness_ops =
        staleness_sum / static_cast<double>(total_queries);
    for (double& s : result.per_shard_mean_staleness) {
      s /= static_cast<double>(total_queries);
    }
  }
  const obs::RegistrySnapshot scrape = service.registry()->Snapshot();
  auto counter = [&scrape](const char* name) -> uint64_t {
    const obs::MetricSnapshot* m = scrape.Find(name);
    return m != nullptr ? m->counter_value : 0;
  };
  result.merge_cache_hits = counter("fdrms_merge_cache_hits_total");
  result.merge_cache_misses = counter("fdrms_merge_cache_misses_total");
  result.merge_recovers = counter("fdrms_merge_recovers_total");
  if (opts.enable_slo_controller) {
    auto gauge = [&scrape](const char* name) -> double {
      const obs::MetricSnapshot* m = scrape.Find(name);
      return m != nullptr ? m->gauge_value : 0.0;
    };
    result.control_ticks = counter("control_ticks_total");
    result.control_decisions = counter("control_decisions_total");
    result.control_scale_ups = counter("control_scale_ups_total");
    result.control_scale_downs = counter("control_scale_downs_total");
    result.control_scale_failures = counter("control_scale_failures_total");
    result.control_batch_adjustments =
        counter("control_batch_adjustments_total");
    result.control_publish_p99_window_us =
        gauge("control_publish_p99_window_us");
    result.control_slo_violation_seconds =
        gauge("control_slo_violation_seconds");
  }
  result.writer_restarts = counter("fdrms_shard_writer_restarts_total");
  // Counter, not a trace scan: the ring is fixed-size, and a death early in
  // a long run gets overwritten by writer/merge events before the scrape.
  result.shards_killed =
      static_cast<int>(counter("fdrms_shard_deaths_total"));
  for (const obs::TraceEvent& event : scrape.trace) {
    if (event.name.rfind("migration.", 0) == 0) {
      result.migration_trace.push_back(event);
    }
    if (event.name.rfind("control.", 0) == 0) {
      result.control_trace.push_back(event);
    }
    if (event.name == "shard.unhealthy" || event.name == "shard.revive") {
      result.fault_trace.push_back(event);
    }
  }
  result.prometheus_text = obs::PrometheusText(scrape);
  result.json_text = obs::JsonText(scrape);
  result.debug_text = service.DebugString();
  return result;
}

}  // namespace fdrms
