#include "eval/service_driver.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace fdrms {

namespace {

/// Staleness/consistency tallies of one reader thread (no sharing: each
/// reader owns its accumulator; the driver merges after join).
struct ReaderTally {
  uint64_t queries = 0;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  bool consistent = true;
};

}  // namespace

ServiceLoadResult RunServiceLoad(const Workload& workload,
                                 const ServiceLoadOptions& opts) {
  FDRMS_CHECK(opts.num_readers >= 0);
  FDRMS_CHECK(opts.num_submitters >= 1);

  FdRmsService service(workload.data().dim(), opts.service);
  std::vector<std::pair<int, Point>> initial;
  initial.reserve(workload.initial_ids().size());
  for (int id : workload.initial_ids()) {
    initial.emplace_back(id, workload.data().Get(id));
  }
  Status started = service.Start(initial);
  FDRMS_CHECK(started.ok()) << started.ToString();

  const int r = opts.service.algo.r;
  const std::vector<Operation>& ops = workload.operations();
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> submit_failures{0};

  std::vector<ReaderTally> tallies(
      static_cast<size_t>(std::max(opts.num_readers, 0)));
  std::vector<std::thread> threads;
  Stopwatch wall;

  for (int t = 0; t < opts.num_readers; ++t) {
    threads.emplace_back([&, t] {
      ReaderTally& tally = tallies[t];
      uint64_t last_version = 0;
      while (!readers_stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ResultSnapshot> snap = service.Query();
        ++tally.queries;
        if (snap == nullptr) {
          tally.consistent = false;
          break;
        }
        if (snap->version < last_version) tally.consistent = false;
        last_version = snap->version;
        if (static_cast<int>(snap->ids.size()) > r) tally.consistent = false;
        if (snap->ids.size() != snap->points.size()) tally.consistent = false;
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          tally.consistent = false;
        }
        uint64_t submitted = service.ops_submitted();
        uint64_t consumed = snap->ops_applied + snap->ops_rejected;
        if (submitted < consumed) tally.consistent = false;  // invariant
        double backlog = static_cast<double>(submitted - consumed);
        tally.staleness_sum += backlog;
        tally.staleness_max = std::max(tally.staleness_max, backlog);
        std::this_thread::yield();  // keep the writer schedulable on small hosts
      }
    });
  }

  for (int t = 0; t < opts.num_submitters; ++t) {
    threads.emplace_back([&, t] {
      // Round-robin partition: submitter t owns ops t, t+M, t+2M, ...
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(opts.num_submitters)) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id,
                                               workload.data().Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        if (!st.ok()) {
          submit_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Join submitters (they were appended after the readers).
  for (size_t i = static_cast<size_t>(opts.num_readers); i < threads.size();
       ++i) {
    threads[i].join();
  }
  Status flushed = service.Flush();
  FDRMS_CHECK(flushed.ok()) << flushed.ToString();
  const double wall_seconds = wall.ElapsedSeconds();
  readers_stop.store(true, std::memory_order_release);
  for (int t = 0; t < opts.num_readers; ++t) threads[t].join();
  Status stopped = service.Stop(FdRmsService::StopPolicy::kDrain);
  FDRMS_CHECK(stopped.ok()) << stopped.ToString();

  ServiceLoadResult result;
  std::shared_ptr<const ResultSnapshot> last = service.Query();
  result.ops_submitted = service.ops_submitted();
  result.ops_applied = last->ops_applied;
  result.ops_rejected = last->ops_rejected;
  result.submit_failures = submit_failures.load();
  result.batches = last->batches;
  result.wall_seconds = wall_seconds;
  result.writer_busy_seconds = last->writer_busy_seconds;
  result.publish_p50_us = last->publish_p50_us;
  result.publish_p99_us = last->publish_p99_us;
  result.final_version = last->version;
  result.final_result_size = static_cast<int>(last->ids.size());
  result.final_m = last->sample_size_m;
  if (wall_seconds > 0.0) {
    result.update_throughput =
        static_cast<double>(result.ops_applied) / wall_seconds;
  }
  uint64_t total_queries = 0;
  double staleness_sum = 0.0;
  for (const ReaderTally& tally : tallies) {
    total_queries += tally.queries;
    staleness_sum += tally.staleness_sum;
    result.max_staleness_ops =
        std::max(result.max_staleness_ops, tally.staleness_max);
    result.consistent = result.consistent && tally.consistent;
  }
  result.queries = total_queries;
  if (wall_seconds > 0.0) {
    result.query_throughput =
        static_cast<double>(total_queries) / wall_seconds;
  }
  if (total_queries > 0) {
    result.mean_staleness_ops =
        staleness_sum / static_cast<double>(total_queries);
  }
  return result;
}

namespace {

/// Staleness/consistency tallies of one merged-snapshot reader thread.
struct ShardedReaderTally {
  uint64_t queries = 0;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  std::vector<double> per_shard_staleness_sum;
  bool consistent = true;
};

}  // namespace

ShardedLoadResult RunShardedLoad(const Workload& workload,
                                 const ShardedLoadOptions& opts) {
  FDRMS_CHECK(opts.num_readers >= 0);
  FDRMS_CHECK(opts.num_submitters >= 1);
  const int num_shards = opts.service.num_shards;

  ShardedFdRmsService service(workload.data().dim(), opts.service);
  std::vector<std::pair<int, Point>> initial;
  initial.reserve(workload.initial_ids().size());
  for (int id : workload.initial_ids()) {
    initial.emplace_back(id, workload.data().Get(id));
  }
  Status started = service.Start(initial);
  FDRMS_CHECK(started.ok()) << started.ToString();

  // The merged result bound: the explicit merge budget when set, else the
  // pure union of S per-shard budgets.
  const int result_bound =
      opts.service.merged_budget_r > 0
          ? opts.service.merged_budget_r
          : num_shards * opts.service.shard.algo.r;
  const std::vector<Operation>& ops = workload.operations();
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> submit_failures{0};

  std::vector<ShardedReaderTally> tallies(
      static_cast<size_t>(std::max(opts.num_readers, 0)));
  for (ShardedReaderTally& tally : tallies) {
    tally.per_shard_staleness_sum.assign(static_cast<size_t>(num_shards), 0.0);
  }
  std::vector<std::thread> threads;
  Stopwatch wall;

  for (int t = 0; t < opts.num_readers; ++t) {
    threads.emplace_back([&, t] {
      ShardedReaderTally& tally = tallies[t];
      std::vector<uint64_t> last_versions(static_cast<size_t>(num_shards), 0);
      while (!readers_stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const MergedSnapshot> snap = service.Query();
        ++tally.queries;
        if (snap == nullptr) {
          tally.consistent = false;
          break;
        }
        if (snap->versions.size() != static_cast<size_t>(num_shards) ||
            snap->shards.size() != static_cast<size_t>(num_shards)) {
          tally.consistent = false;
          break;
        }
        if (static_cast<int>(snap->ids.size()) > result_bound) {
          tally.consistent = false;
        }
        if (snap->ids.size() != snap->points.size()) tally.consistent = false;
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          tally.consistent = false;
        }
        double backlog_total = 0.0;
        for (int s = 0; s < num_shards; ++s) {
          // Component-wise monotone version vector per reader.
          if (snap->versions[s] < last_versions[s]) tally.consistent = false;
          last_versions[s] = snap->versions[s];
          uint64_t submitted = service.shard(s).ops_submitted();
          uint64_t consumed = snap->shards[s]->ops_applied +
                              snap->shards[s]->ops_rejected;
          if (submitted < consumed) tally.consistent = false;  // invariant
          double backlog = static_cast<double>(submitted - consumed);
          tally.per_shard_staleness_sum[s] += backlog;
          backlog_total += backlog;
        }
        tally.staleness_sum += backlog_total;
        tally.staleness_max = std::max(tally.staleness_max, backlog_total);
        std::this_thread::yield();  // keep the writers schedulable
      }
    });
  }

  for (int t = 0; t < opts.num_submitters; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(opts.num_submitters)) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id,
                                               workload.data().Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        if (!st.ok()) {
          submit_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (size_t i = static_cast<size_t>(opts.num_readers); i < threads.size();
       ++i) {
    threads[i].join();
  }
  Status flushed = service.Flush();
  FDRMS_CHECK(flushed.ok()) << flushed.ToString();
  const double wall_seconds = wall.ElapsedSeconds();
  readers_stop.store(true, std::memory_order_release);
  for (int t = 0; t < opts.num_readers; ++t) threads[t].join();
  Status stopped = service.Stop(FdRmsService::StopPolicy::kDrain);
  FDRMS_CHECK(stopped.ok()) << stopped.ToString();

  ShardedLoadResult result;
  std::shared_ptr<const MergedSnapshot> last = service.Query();
  FDRMS_CHECK(last != nullptr);
  result.ops_submitted = service.ops_submitted();
  result.ops_applied = last->ops_applied;
  result.ops_rejected = last->ops_rejected;
  result.submit_failures = submit_failures.load();
  result.batches = last->batches;
  result.wall_seconds = wall_seconds;
  result.final_versions = last->versions;
  result.final_result_size = static_cast<int>(last->ids.size());
  result.final_union_size = last->union_size;
  result.final_min_m = last->min_sample_size_m;
  result.publish_p50_us = last->publish_p50_us_max;
  result.publish_p99_us = last->publish_p99_us_max;
  for (int s = 0; s < num_shards; ++s) {
    result.per_shard_applied.push_back(last->shards[s]->ops_applied);
    result.per_shard_busy_seconds.push_back(
        last->shards[s]->writer_busy_seconds);
  }
  if (wall_seconds > 0.0) {
    result.update_throughput =
        static_cast<double>(result.ops_applied) / wall_seconds;
  }
  if (last->writer_busy_seconds_max > 0.0) {
    result.update_capacity = static_cast<double>(result.ops_applied) /
                             last->writer_busy_seconds_max;
  }
  uint64_t total_queries = 0;
  double staleness_sum = 0.0;
  result.per_shard_mean_staleness.assign(static_cast<size_t>(num_shards), 0.0);
  for (const ShardedReaderTally& tally : tallies) {
    total_queries += tally.queries;
    staleness_sum += tally.staleness_sum;
    result.max_staleness_ops =
        std::max(result.max_staleness_ops, tally.staleness_max);
    for (int s = 0; s < num_shards; ++s) {
      result.per_shard_mean_staleness[s] += tally.per_shard_staleness_sum[s];
    }
    result.consistent = result.consistent && tally.consistent;
  }
  result.queries = total_queries;
  if (wall_seconds > 0.0) {
    result.query_throughput =
        static_cast<double>(total_queries) / wall_seconds;
  }
  if (total_queries > 0) {
    result.mean_staleness_ops =
        staleness_sum / static_cast<double>(total_queries);
    for (double& s : result.per_shard_mean_staleness) {
      s /= static_cast<double>(total_queries);
    }
  }
  return result;
}

}  // namespace fdrms
