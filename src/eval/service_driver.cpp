#include "eval/service_driver.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace fdrms {

namespace {

/// Staleness/consistency tallies of one reader thread (no sharing: each
/// reader owns its accumulator; the driver merges after join).
struct ReaderTally {
  uint64_t queries = 0;
  double staleness_sum = 0.0;
  double staleness_max = 0.0;
  bool consistent = true;
};

}  // namespace

ServiceLoadResult RunServiceLoad(const Workload& workload,
                                 const ServiceLoadOptions& opts) {
  FDRMS_CHECK(opts.num_readers >= 0);
  FDRMS_CHECK(opts.num_submitters >= 1);

  FdRmsService service(workload.data().dim(), opts.service);
  std::vector<std::pair<int, Point>> initial;
  initial.reserve(workload.initial_ids().size());
  for (int id : workload.initial_ids()) {
    initial.emplace_back(id, workload.data().Get(id));
  }
  Status started = service.Start(initial);
  FDRMS_CHECK(started.ok()) << started.ToString();

  const int r = opts.service.algo.r;
  const std::vector<Operation>& ops = workload.operations();
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> submit_failures{0};

  std::vector<ReaderTally> tallies(
      static_cast<size_t>(std::max(opts.num_readers, 0)));
  std::vector<std::thread> threads;
  Stopwatch wall;

  for (int t = 0; t < opts.num_readers; ++t) {
    threads.emplace_back([&, t] {
      ReaderTally& tally = tallies[t];
      uint64_t last_version = 0;
      while (!readers_stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ResultSnapshot> snap = service.Query();
        ++tally.queries;
        if (snap == nullptr) {
          tally.consistent = false;
          break;
        }
        if (snap->version < last_version) tally.consistent = false;
        last_version = snap->version;
        if (static_cast<int>(snap->ids.size()) > r) tally.consistent = false;
        if (snap->ids.size() != snap->points.size()) tally.consistent = false;
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          tally.consistent = false;
        }
        uint64_t submitted = service.ops_submitted();
        uint64_t consumed = snap->ops_applied + snap->ops_rejected;
        if (submitted < consumed) tally.consistent = false;  // invariant
        double backlog = static_cast<double>(submitted - consumed);
        tally.staleness_sum += backlog;
        tally.staleness_max = std::max(tally.staleness_max, backlog);
        std::this_thread::yield();  // keep the writer schedulable on small hosts
      }
    });
  }

  for (int t = 0; t < opts.num_submitters; ++t) {
    threads.emplace_back([&, t] {
      // Round-robin partition: submitter t owns ops t, t+M, t+2M, ...
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(opts.num_submitters)) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id,
                                               workload.data().Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        if (!st.ok()) {
          submit_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Join submitters (they were appended after the readers).
  for (size_t i = static_cast<size_t>(opts.num_readers); i < threads.size();
       ++i) {
    threads[i].join();
  }
  Status flushed = service.Flush();
  FDRMS_CHECK(flushed.ok()) << flushed.ToString();
  const double wall_seconds = wall.ElapsedSeconds();
  readers_stop.store(true, std::memory_order_release);
  for (int t = 0; t < opts.num_readers; ++t) threads[t].join();
  Status stopped = service.Stop(FdRmsService::StopPolicy::kDrain);
  FDRMS_CHECK(stopped.ok()) << stopped.ToString();

  ServiceLoadResult result;
  std::shared_ptr<const ResultSnapshot> last = service.Query();
  result.ops_submitted = service.ops_submitted();
  result.ops_applied = last->ops_applied;
  result.ops_rejected = last->ops_rejected;
  result.submit_failures = submit_failures.load();
  result.batches = last->batches;
  result.wall_seconds = wall_seconds;
  result.final_version = last->version;
  result.final_result_size = static_cast<int>(last->ids.size());
  result.final_m = last->sample_size_m;
  if (wall_seconds > 0.0) {
    result.update_throughput =
        static_cast<double>(result.ops_applied) / wall_seconds;
  }
  uint64_t total_queries = 0;
  double staleness_sum = 0.0;
  for (const ReaderTally& tally : tallies) {
    total_queries += tally.queries;
    staleness_sum += tally.staleness_sum;
    result.max_staleness_ops =
        std::max(result.max_staleness_ops, tally.staleness_max);
    result.consistent = result.consistent && tally.consistent;
  }
  result.queries = total_queries;
  if (wall_seconds > 0.0) {
    result.query_throughput =
        static_cast<double>(total_queries) / wall_seconds;
  }
  if (total_queries > 0) {
    result.mean_staleness_ops =
        staleness_sum / static_cast<double>(total_queries);
  }
  return result;
}

}  // namespace fdrms
