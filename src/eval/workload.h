#ifndef FDRMS_EVAL_WORKLOAD_H_
#define FDRMS_EVAL_WORKLOAD_H_

/// \file workload.h
/// The paper's dynamic workload protocol (Section IV-A): a random half of
/// the dataset forms P_0; the other half is inserted tuple-by-tuple; then a
/// random half of the full dataset is deleted tuple-by-tuple. Results are
/// recorded at 10 evenly spaced checkpoints.

#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "geometry/pointset.h"

namespace fdrms {

/// One database mutation; `id` is a row of the generating PointSet.
struct Operation {
  bool is_insert;
  int id;
};

/// A replayable mixed insert/delete workload over a fixed PointSet.
class Workload {
 public:
  /// Builds the paper's 50% init / 50% insert / 50% delete protocol.
  Workload(const PointSet* data, uint64_t seed, int num_checkpoints = 10);

  const PointSet& data() const { return *data_; }
  const std::vector<int>& initial_ids() const { return initial_ids_; }
  const std::vector<Operation>& operations() const { return operations_; }

  /// Operation indices *after* which a checkpoint is recorded (ascending).
  const std::vector<int>& checkpoints() const { return checkpoints_; }

  /// The set of live row ids right after operation `op_index` (replayed
  /// from the definition; deterministic). Thread-safe. A memoized replay
  /// cursor advances incrementally between calls, so sweeping all
  /// checkpoints in ascending order costs O(ops) total rather than
  /// O(checkpoints * ops); a call that rewinds resets the cursor and
  /// replays from operation 0.
  std::vector<int> LiveIdsAfter(int op_index) const;

 private:
  const PointSet* data_;
  std::vector<int> initial_ids_;
  std::vector<Operation> operations_;
  std::vector<int> checkpoints_;

  // Replay-cursor memo: `memo_live_` is the live set after the first
  // `memo_applied_` operations. Guarded by `memo_mutex_` (LiveIdsAfter is
  // const and may be called from concurrent readers).
  mutable std::mutex memo_mutex_;
  mutable std::unordered_set<int> memo_live_;
  mutable int memo_applied_ = 0;
  mutable bool memo_ready_ = false;
};

}  // namespace fdrms

#endif  // FDRMS_EVAL_WORKLOAD_H_
