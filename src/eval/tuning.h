#ifndef FDRMS_EVAL_TUNING_H_
#define FDRMS_EVAL_TUNING_H_

/// \file tuning.h
/// The trial-and-error parameter selection of Section III-C: "For each
/// query RMS(k, r) on a dataset, we test different values of ε ... The
/// values of ε and M that strike the best balance between efficiency and
/// quality of results will be used."
///
/// AutoTuneEpsilon replays that procedure on a snapshot: it initializes
/// FD-RMS for each candidate ε and scores the resulting (size, sampled
/// regret, m) trade-off. Benchmarks call it once per (dataset, k, r)
/// configuration before the timed run, exactly as the paper tunes offline.

#include <utility>
#include <vector>

#include "core/fdrms.h"
#include "geometry/point.h"

namespace fdrms {

/// Outcome of probing one ε.
struct EpsilonProbe {
  double eps = 0.0;
  int result_size = 0;
  int m = 0;
  double sampled_regret = 1.0;
};

/// Tuning result: the chosen options plus the full probe trace (the rows of
/// a Fig. 5-style sweep).
struct TuneResult {
  FdRmsOptions options;
  std::vector<EpsilonProbe> probes;
};

/// Picks ε for RMS(k, r) on `tuples` by the paper's procedure. Candidates
/// default to the paper's power grid; the winner is the probe with the
/// lowest sampled regret, ties broken toward smaller ε (cheaper updates).
///
/// \param tuples snapshot to tune on (a sample of the initial database)
/// \param base options whose k, r, max_utilities, seed are kept
/// \param eval_directions utility sample size for the regret estimate
TuneResult AutoTuneEpsilon(const std::vector<std::pair<int, Point>>& tuples,
                           int dim, const FdRmsOptions& base,
                           int eval_directions = 2000,
                           const std::vector<double>& candidates = {
                               0.0001, 0.0008, 0.0032, 0.0128, 0.0512,
                               0.1024, 0.2048});

}  // namespace fdrms

#endif  // FDRMS_EVAL_TUNING_H_
