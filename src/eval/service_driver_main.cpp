/// \file service_driver_main.cpp
/// `service_driver`: a self-contained load run against a live
/// ShardedFdRmsService with the observability substrate switched on — the
/// binary CI's metrics-smoke step drives and scrapes. Replays the paper's
/// dynamic workload over a synthetic dataset through S shards with the
/// constellation-level periodic dumper enabled, optionally fires an
/// AddShard migration mid-stream (so the migration-phase series and trace
/// events are populated), and finishes by writing the final registry
/// scrape (Prometheus text + JSON) and printing the per-shard status page.
///
/// Flags (all optional):
///   --n INT            dataset size (default 2000)
///   --dim INT          dimensionality (default 4)
///   --r INT            FD-RMS result-size bound (default 20; larger makes
///                      each update heavier — the smoke's knob for pushing
///                      a writer to saturation at modest arrival rates)
///   --shards INT       initial shard count (default 2)
///   --readers INT      merged-Query() threads (default 2)
///   --submitters INT   submitter threads (default 2)
///   --migrate          fire AddShard at 50% of the op stream (default on;
///                      --no-migrate disables)
///   --scenario NAME    arrival pacing: none (default, full speed), flash
///                      (baseline -> burst -> baseline), diurnal
///                      (sinusoid day cycles)
///   --base-rate R      paced scenarios' baseline ops/s (default 4000)
///   --burst X          flash-crowd burst multiplier (default 10)
///   --burst-frac F     fraction of the op stream inside the burst
///                      (default 0.4; larger = longer crowd)
///   --slo              run the SLO controller (src/control/) against the
///                      live constellation for the submission phase
///   --slo-p99-us N     publish-p99 objective in microseconds (default
///                      20000)
///   --fault-kill-at F  kill-a-shard-writer drill: at fraction F of the op
///                      stream, arm a one-shot writer death
///                      ("writer.apply.pre" = die) — the next shard writer
///                      to apply a batch dies. Implies --retry-submits so
///                      the stream survives the outage window.
///   --fault-revive-at F  call ReviveDeadShards() at fraction F (default
///                      0.75; -1 = revive only after the stream ends — the
///                      driver always revives before the final drain)
///   --retry-submits    retry kResourceExhausted/kUnavailable submits with
///                      bounded exponential backoff (common/retry.h)
///   --dump-every-ms N  periodic dumper interval (default 200; 0 disables)
///   --persist PATH     durable store base path: versioned per-shard
///                      snapshots + routing + constellation manifest are
///                      committed crash-durably under this prefix
///   --persist-every N  per-shard persist cadence in batches (default 1
///                      when --persist is set)
///   --resume           restore the topology from the manifest at the
///                      --persist path instead of bulk-loading P_0 (the
///                      kill-and-resume smoke's second run)
///   --prom PATH        Prometheus text output (default fdrms_metrics.prom)
///   --json PATH        JSON dump output (default fdrms_metrics.json)
///   --debug            print the constellation DebugString() status page
///
/// Exit status: 0 iff the run was consistent (every reader saw only
/// coherent merged snapshots) and both output files were written.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "obs/exporters.h"

using namespace fdrms;

namespace {

long ArgLong(int argc, char** argv, int* i, long fallback) {
  if (*i + 1 >= argc) return fallback;
  return std::strtol(argv[++*i], nullptr, 10);
}

double ArgDouble(int argc, char** argv, int* i, double fallback) {
  if (*i + 1 >= argc) return fallback;
  return std::strtod(argv[++*i], nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int n = 2000;
  int dim = 4;
  int r = 20;
  int shards = 2;
  int readers = 2;
  int submitters = 2;
  bool migrate = true;
  int dump_every_ms = 200;
  bool debug = false;
  std::string scenario = "none";
  double base_rate = 4000.0;
  double burst = 10.0;
  double burst_frac = 0.4;
  bool slo = false;
  double slo_p99_us = 20000.0;
  double fault_kill_at = -1.0;
  double fault_revive_at = 0.75;
  bool retry_submits = false;
  std::string persist_path;
  int persist_every = 1;
  bool resume = false;
  std::string prom_path = "fdrms_metrics.prom";
  std::string json_path = "fdrms_metrics.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) {
      n = static_cast<int>(ArgLong(argc, argv, &i, n));
    } else if (std::strcmp(argv[i], "--dim") == 0) {
      dim = static_cast<int>(ArgLong(argc, argv, &i, dim));
    } else if (std::strcmp(argv[i], "--r") == 0) {
      r = static_cast<int>(ArgLong(argc, argv, &i, r));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(ArgLong(argc, argv, &i, shards));
    } else if (std::strcmp(argv[i], "--readers") == 0) {
      readers = static_cast<int>(ArgLong(argc, argv, &i, readers));
    } else if (std::strcmp(argv[i], "--submitters") == 0) {
      submitters = static_cast<int>(ArgLong(argc, argv, &i, submitters));
    } else if (std::strcmp(argv[i], "--migrate") == 0) {
      migrate = true;
    } else if (std::strcmp(argv[i], "--no-migrate") == 0) {
      migrate = false;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--base-rate") == 0) {
      base_rate = ArgDouble(argc, argv, &i, base_rate);
    } else if (std::strcmp(argv[i], "--burst") == 0) {
      burst = ArgDouble(argc, argv, &i, burst);
    } else if (std::strcmp(argv[i], "--burst-frac") == 0) {
      burst_frac = ArgDouble(argc, argv, &i, burst_frac);
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      slo = true;
    } else if (std::strcmp(argv[i], "--slo-p99-us") == 0) {
      slo_p99_us = ArgDouble(argc, argv, &i, slo_p99_us);
    } else if (std::strcmp(argv[i], "--fault-kill-at") == 0) {
      fault_kill_at = ArgDouble(argc, argv, &i, fault_kill_at);
    } else if (std::strcmp(argv[i], "--fault-revive-at") == 0) {
      fault_revive_at = ArgDouble(argc, argv, &i, fault_revive_at);
    } else if (std::strcmp(argv[i], "--retry-submits") == 0) {
      retry_submits = true;
    } else if (std::strcmp(argv[i], "--persist") == 0 && i + 1 < argc) {
      persist_path = argv[++i];
    } else if (std::strcmp(argv[i], "--persist-every") == 0) {
      persist_every = static_cast<int>(ArgLong(argc, argv, &i, persist_every));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--dump-every-ms") == 0) {
      dump_every_ms = static_cast<int>(ArgLong(argc, argv, &i, dump_every_ms));
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--debug") == 0) {
      debug = true;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 2;
    }
  }

  PointSet ps = GenerateIndep(n, dim, 909);
  Workload wl(&ps, 2024);

  ShardedLoadOptions opts;
  opts.num_readers = readers;
  opts.num_submitters = submitters;
  opts.service.num_shards = shards;
  opts.service.shard.algo.r = r;
  opts.service.shard.queue_capacity = 4096;
  opts.service.shard.max_batch = 64;
  opts.service.metrics_dump_every_ms = dump_every_ms;
  opts.service.metrics_dump_path = prom_path;
  opts.service.metrics_dump_json_path = json_path;
  if (!persist_path.empty()) {
    opts.service.shard.persist_path = persist_path;
    opts.service.shard.persist_every_batches = persist_every;
  }
  if (resume) {
    if (persist_path.empty()) {
      std::cerr << "--resume requires --persist PATH\n";
      return 2;
    }
    opts.service.shard.resume_path = persist_path;
    opts.resume = true;
  }
  if (migrate) {
    opts.migrations.push_back(
        {ShardedLoadOptions::MigrationEvent::Kind::kAddShard, 0.5, {}});
  }
  if (scenario == "flash") {
    opts.arrival = FlashCrowdArrival(base_rate, burst, burst_frac);
  } else if (scenario == "diurnal") {
    opts.arrival = DiurnalArrival(base_rate);
  } else if (scenario != "none") {
    std::cerr << "unknown --scenario: " << scenario
              << " (expected none|flash|diurnal)\n";
    return 2;
  }
  if (fault_kill_at >= 0.0) {
    opts.fault.enabled = true;
    opts.fault.kill_at_fraction = fault_kill_at;
    opts.fault.revive_at_fraction = fault_revive_at;
    // A dead shard rejects submits kUnavailable until the revive; without
    // the retry path a paced stream would tally thousands of raw failures.
    // Keep the backoff budget tight: a submit to the dead shard is *meant*
    // to fail fast during the outage — the retries are there to absorb
    // transient kResourceExhausted bursts, not to park the stream on a
    // shard that cannot drain until ReviveShard runs.
    retry_submits = true;
    opts.submit_retry.initial_backoff_us = 50;
    opts.submit_retry.max_backoff_us = 1000;
    opts.submit_retry.max_total_backoff_us = 2000;
  }
  if (retry_submits) {
    opts.retry_submits = true;
  }
  if (slo) {
    opts.enable_slo_controller = true;
    opts.slo.publish_p99_slo_us = slo_p99_us;
    // Smoke-friendly control constants: quick windows and a short sustain
    // so a few-second flash crowd is enough to trip the scale-up, a long
    // cooldown so the post-burst slack can't scale back down before the
    // final scrape, and a floor at the initial topology.
    opts.slo.tick_ms = 100;
    opts.slo.sustain_ticks = 2;
    opts.slo.cooldown_us = 3000000;
    opts.slo.min_shards = shards;
    opts.slo.max_shards = shards + 4;
  }

  std::cout << "service_driver: n=" << n << " dim=" << dim << " r=" << r
            << " shards=" << shards << " readers=" << readers
            << " submitters=" << submitters << " ops=" << wl.operations().size()
            << " migrate=" << (migrate ? "AddShard@0.5" : "off")
            << " scenario=" << scenario;
  if (scenario != "none") {
    std::cout << " base_rate=" << base_rate;
    if (scenario == "flash") std::cout << " burst=" << burst;
  }
  std::cout << " slo=" << (slo ? "on" : "off");
  if (slo) std::cout << " slo_p99_us=" << slo_p99_us;
  if (opts.fault.enabled) {
    std::cout << " fault_kill_at=" << fault_kill_at
              << " fault_revive_at=" << fault_revive_at;
  }
  if (opts.retry_submits) std::cout << " retry_submits=on";
  if (!persist_path.empty()) {
    std::cout << " persist=" << persist_path << " persist_every="
              << persist_every << (resume ? " resume=yes" : "");
  }
  std::cout << " dump_every_ms=" << dump_every_ms << "\n";

  ShardedLoadResult res = RunShardedLoad(wl, opts);

  std::cout << "applied=" << res.ops_applied
            << " update_ops_per_s=" << res.update_throughput
            << " reads_per_s=" << res.query_throughput
            << " submit_retries=" << res.submit_retries
            << " submit_failures=" << res.submit_failures
            << " merge_cache_hits=" << res.merge_cache_hits
            << " merge_cache_misses=" << res.merge_cache_misses << "\n"
            << "migrations=" << res.migrations_attempted << " (failed "
            << res.migrations_failed << "), trace_events="
            << res.migration_trace.size() << ", final_epoch="
            << res.final_epoch << ", final_shards=" << res.final_num_shards
            << "\n";
  if (resume) {
    std::cout << "resume: resumed=" << (res.resumed ? "yes" : "no")
              << " resume_epoch=" << res.resume_epoch
              << " resume_shards=" << res.resume_num_shards << "\n";
  }
  for (const obs::TraceEvent& ev : res.migration_trace) {
    std::cout << "  " << ev.name << " start_us=" << ev.start_us
              << " duration_us=" << ev.duration_us << " arg0=" << ev.arg0
              << " arg1=" << ev.arg1 << "\n";
  }
  if (slo) {
    std::cout << "control: ticks=" << res.control_ticks
              << " decisions=" << res.control_decisions
              << " scale_ups=" << res.control_scale_ups
              << " scale_downs=" << res.control_scale_downs
              << " scale_failures=" << res.control_scale_failures
              << " batch_adjustments=" << res.control_batch_adjustments
              << " window_p99_us=" << res.control_publish_p99_window_us
              << " slo_violation_s=" << res.control_slo_violation_seconds
              << "\n";
    for (const obs::TraceEvent& ev : res.control_trace) {
      std::cout << "  " << ev.name << " start_us=" << ev.start_us
                << " arg0=" << ev.arg0 << " arg1=" << ev.arg1 << "\n";
    }
  }

  if (opts.fault.enabled) {
    std::cout << "fault: shards_killed=" << res.shards_killed
              << " shards_revived=" << res.shards_revived
              << " writer_restarts=" << res.writer_restarts
              << " degraded_queries=" << res.degraded_queries
              << " max_degraded_shards=" << res.max_degraded_shards
              << " unavailable_submits=" << res.unavailable_submits
              << " revive_ok=" << (res.revive_ok ? "yes" : "no") << "\n";
    for (const obs::TraceEvent& ev : res.fault_trace) {
      std::cout << "  " << ev.name << " start_us=" << ev.start_us
                << " arg0=" << ev.arg0 << " arg1=" << ev.arg1 << "\n";
    }
  }

  // The periodic dumper already wrote its final dump at Stop(); overwrite
  // with the post-run scrape so the files carry the terminal counters even
  // when the dumper was disabled (--dump-every-ms 0).
  bool wrote = obs::WriteFileAtomic(prom_path, res.prometheus_text);
  if (!json_path.empty()) {
    wrote = obs::WriteFileAtomic(json_path, res.json_text) && wrote;
  }
  std::cout << (wrote ? "wrote " : "FAILED to write ") << prom_path << " and "
            << json_path << "\n";

  if (debug) {
    // Post-run status page and scrape of the stopped constellation:
    // counters are terminal.
    std::cout << "\n" << res.debug_text << "\n";
    if (slo) std::cout << res.controller_debug_text << "\n";
    std::cout << res.prometheus_text << "\n";
  }

  const bool resume_ok = !resume || res.resumed;
  // Drill runs must end on a revived, healthy constellation with at least
  // one real writer restart behind them (the annotation/metric gates live
  // in scripts/check_fault_smoke.py, which reads the JSON scrape).
  const bool fault_ok =
      !opts.fault.enabled || (res.revive_ok && res.writer_restarts >= 1);
  const bool ok = res.consistent && res.null_queries == 0 &&
                  res.migrations_failed == 0 && wrote && resume_ok &&
                  fault_ok;
  if (!ok) {
    std::cout << "FAILED: consistent=" << res.consistent
              << " null_queries=" << res.null_queries
              << " migrations_failed=" << res.migrations_failed
              << " wrote=" << wrote << " resume_ok=" << resume_ok
              << " fault_ok=" << fault_ok << "\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
