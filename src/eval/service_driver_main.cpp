/// \file service_driver_main.cpp
/// `service_driver`: a self-contained load run against a live
/// ShardedFdRmsService with the observability substrate switched on — the
/// binary CI's metrics-smoke step drives and scrapes. Replays the paper's
/// dynamic workload over a synthetic dataset through S shards with the
/// constellation-level periodic dumper enabled, optionally fires an
/// AddShard migration mid-stream (so the migration-phase series and trace
/// events are populated), and finishes by writing the final registry
/// scrape (Prometheus text + JSON) and printing the per-shard status page.
///
/// Flags (all optional):
///   --n INT            dataset size (default 2000)
///   --dim INT          dimensionality (default 4)
///   --shards INT       initial shard count (default 2)
///   --readers INT      merged-Query() threads (default 2)
///   --submitters INT   submitter threads (default 2)
///   --migrate          fire AddShard at 50% of the op stream (default on;
///                      --no-migrate disables)
///   --dump-every-ms N  periodic dumper interval (default 200; 0 disables)
///   --prom PATH        Prometheus text output (default fdrms_metrics.prom)
///   --json PATH        JSON dump output (default fdrms_metrics.json)
///   --debug            print the constellation DebugString() status page
///
/// Exit status: 0 iff the run was consistent (every reader saw only
/// coherent merged snapshots) and both output files were written.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "obs/exporters.h"

using namespace fdrms;

namespace {

long ArgLong(int argc, char** argv, int* i, long fallback) {
  if (*i + 1 >= argc) return fallback;
  return std::strtol(argv[++*i], nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  int n = 2000;
  int dim = 4;
  int shards = 2;
  int readers = 2;
  int submitters = 2;
  bool migrate = true;
  int dump_every_ms = 200;
  bool debug = false;
  std::string prom_path = "fdrms_metrics.prom";
  std::string json_path = "fdrms_metrics.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) {
      n = static_cast<int>(ArgLong(argc, argv, &i, n));
    } else if (std::strcmp(argv[i], "--dim") == 0) {
      dim = static_cast<int>(ArgLong(argc, argv, &i, dim));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(ArgLong(argc, argv, &i, shards));
    } else if (std::strcmp(argv[i], "--readers") == 0) {
      readers = static_cast<int>(ArgLong(argc, argv, &i, readers));
    } else if (std::strcmp(argv[i], "--submitters") == 0) {
      submitters = static_cast<int>(ArgLong(argc, argv, &i, submitters));
    } else if (std::strcmp(argv[i], "--migrate") == 0) {
      migrate = true;
    } else if (std::strcmp(argv[i], "--no-migrate") == 0) {
      migrate = false;
    } else if (std::strcmp(argv[i], "--dump-every-ms") == 0) {
      dump_every_ms = static_cast<int>(ArgLong(argc, argv, &i, dump_every_ms));
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--debug") == 0) {
      debug = true;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return 2;
    }
  }

  PointSet ps = GenerateIndep(n, dim, 909);
  Workload wl(&ps, 2024);

  ShardedLoadOptions opts;
  opts.num_readers = readers;
  opts.num_submitters = submitters;
  opts.service.num_shards = shards;
  opts.service.shard.algo.r = 20;
  opts.service.shard.queue_capacity = 4096;
  opts.service.shard.max_batch = 64;
  opts.service.metrics_dump_every_ms = dump_every_ms;
  opts.service.metrics_dump_path = prom_path;
  opts.service.metrics_dump_json_path = json_path;
  if (migrate) {
    opts.migrations.push_back(
        {ShardedLoadOptions::MigrationEvent::Kind::kAddShard, 0.5, {}});
  }

  std::cout << "service_driver: n=" << n << " dim=" << dim
            << " shards=" << shards << " readers=" << readers
            << " submitters=" << submitters << " ops=" << wl.operations().size()
            << " migrate=" << (migrate ? "AddShard@0.5" : "off")
            << " dump_every_ms=" << dump_every_ms << "\n";

  ShardedLoadResult res = RunShardedLoad(wl, opts);

  std::cout << "applied=" << res.ops_applied
            << " update_ops_per_s=" << res.update_throughput
            << " reads_per_s=" << res.query_throughput
            << " merge_cache_hits=" << res.merge_cache_hits
            << " merge_cache_misses=" << res.merge_cache_misses << "\n"
            << "migrations=" << res.migrations_attempted << " (failed "
            << res.migrations_failed << "), trace_events="
            << res.migration_trace.size() << ", final_epoch="
            << res.final_epoch << ", final_shards=" << res.final_num_shards
            << "\n";
  for (const obs::TraceEvent& ev : res.migration_trace) {
    std::cout << "  " << ev.name << " start_us=" << ev.start_us
              << " duration_us=" << ev.duration_us << " arg0=" << ev.arg0
              << " arg1=" << ev.arg1 << "\n";
  }

  // The periodic dumper already wrote its final dump at Stop(); overwrite
  // with the post-run scrape so the files carry the terminal counters even
  // when the dumper was disabled (--dump-every-ms 0).
  bool wrote = obs::WriteFileAtomic(prom_path, res.prometheus_text);
  if (!json_path.empty()) {
    wrote = obs::WriteFileAtomic(json_path, res.json_text) && wrote;
  }
  std::cout << (wrote ? "wrote " : "FAILED to write ") << prom_path << " and "
            << json_path << "\n";

  if (debug) {
    // Post-run status page and scrape of the stopped constellation:
    // counters are terminal.
    std::cout << "\n" << res.debug_text << "\n" << res.prometheus_text << "\n";
  }

  const bool ok = res.consistent && res.null_queries == 0 &&
                  res.migrations_failed == 0 && wrote;
  std::cout << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
