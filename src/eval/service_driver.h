#ifndef FDRMS_EVAL_SERVICE_DRIVER_H_
#define FDRMS_EVAL_SERVICE_DRIVER_H_

/// \file service_driver.h
/// Closed-loop load harness for the concurrent serving layer: M submitter
/// threads replay a Workload's operation stream through FdRmsService while
/// N reader threads hammer Query(), and the driver reports update/query
/// throughput plus the snapshot staleness readers actually observed.
/// Used by bench_concurrent and the serve tests; deterministic in the
/// *set* of operations applied (the interleaving is scheduler-chosen).

#include <cstdint>

#include "common/status.h"
#include "eval/workload.h"
#include "serve/fdrms_service.h"

namespace fdrms {

/// Shape of one load run.
struct ServiceLoadOptions {
  int num_readers = 4;     ///< Query() threads
  int num_submitters = 2;  ///< threads splitting the workload's op stream
  FdRmsServiceOptions service;
};

/// What happened during the run.
struct ServiceLoadResult {
  // Volume.
  uint64_t ops_submitted = 0;
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;   ///< consumed but refused by the algorithm
  uint64_t submit_failures = 0;  ///< kResourceExhausted under Overflow::kReject
  uint64_t queries = 0;
  uint64_t batches = 0;

  // Rates (walls include initialization of neither side: the clock starts
  // when the threads launch and stops when the queue is drained).
  double wall_seconds = 0.0;
  double update_throughput = 0.0;  ///< applied ops / second
  double query_throughput = 0.0;   ///< snapshot reads / second

  // Staleness: queue backlog (submitted - consumed) observed at each read.
  double mean_staleness_ops = 0.0;
  double max_staleness_ops = 0.0;

  // Final state.
  uint64_t final_version = 0;
  int final_result_size = 0;
  int final_m = 0;

  /// Every reader saw monotone versions, sorted unique ids, |Q| <= r, and
  /// ids/points parallel; false flags a serving-layer consistency bug.
  bool consistent = true;
};

/// Replays `workload` through a service built from `opts.service` (initial
/// tuples = the workload's P_0, operations round-robin across submitters)
/// and measures. The service is drained and stopped before returning.
ServiceLoadResult RunServiceLoad(const Workload& workload,
                                 const ServiceLoadOptions& opts);

}  // namespace fdrms

#endif  // FDRMS_EVAL_SERVICE_DRIVER_H_
