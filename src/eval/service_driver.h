#ifndef FDRMS_EVAL_SERVICE_DRIVER_H_
#define FDRMS_EVAL_SERVICE_DRIVER_H_

/// \file service_driver.h
/// Closed-loop load harnesses for the concurrent serving layer: M submitter
/// threads replay a Workload's operation stream through FdRmsService (or a
/// ShardedFdRmsService) while N reader threads hammer Query(), and the
/// driver reports update/query throughput plus the snapshot staleness
/// readers actually observed. Used by bench_concurrent/bench_sharded and
/// the serve/shard tests; deterministic in the *set* of operations applied
/// (the interleaving is scheduler-chosen).

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "control/slo_controller.h"
#include "eval/workload.h"
#include "obs/trace.h"
#include "serve/fdrms_service.h"
#include "shard/sharded_service.h"

namespace fdrms {

/// One segment of a paced arrival schedule: `ops_fraction` of the op
/// stream submitted at an aggregate `ops_per_sec` target rate. Fractions
/// should sum to ~1 (the last phase absorbs rounding). An empty schedule
/// means full speed (the pre-pacing behavior).
struct ArrivalPhase {
  double ops_fraction = 1.0;
  double ops_per_sec = 0.0;  ///< <= 0 means unpaced within the phase
};

/// Flash-crowd arrival: baseline -> `burst_multiplier`x burst over
/// `burst_fraction` of the stream -> baseline tail. The tail keeps traffic
/// flowing after the crowd so post-recovery windows (the "did p99 come
/// back under the SLO" check) measure a served system, not silence.
std::vector<ArrivalPhase> FlashCrowdArrival(double base_ops_per_sec,
                                            double burst_multiplier = 8.0,
                                            double burst_fraction = 0.4);

/// Diurnal arrival: `cycles` piecewise-sinusoid day cycles, each sampled
/// at `phases_per_cycle` plateaus swinging rate between
/// base*(1-amplitude) and base*(1+amplitude).
std::vector<ArrivalPhase> DiurnalArrival(double base_ops_per_sec,
                                         int cycles = 2,
                                         int phases_per_cycle = 8,
                                         double amplitude = 0.75);

/// Shape of one load run.
struct ServiceLoadOptions {
  int num_readers = 4;     ///< Query() threads
  int num_submitters = 2;  ///< threads splitting the workload's op stream
  FdRmsServiceOptions service;

  /// Transient-submit retry (common/retry.h): when enabled, a submitter
  /// retries kResourceExhausted/kUnavailable with bounded exponential
  /// backoff before counting a submit failure. Off by default so
  /// saturation tests still observe raw rejection counts.
  bool retry_submits = false;
  RetryPolicy submit_retry;
};

/// What happened during the run.
struct ServiceLoadResult {
  // Volume.
  uint64_t ops_submitted = 0;
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;   ///< consumed but refused by the algorithm
  uint64_t submit_failures = 0;  ///< kResourceExhausted under Overflow::kReject
  uint64_t submit_retries = 0;   ///< re-submissions (retry_submits only)
  uint64_t queries = 0;
  uint64_t batches = 0;

  // Rates (walls include initialization of neither side: the clock starts
  // when the threads launch and stops when the queue is drained).
  double wall_seconds = 0.0;
  double update_throughput = 0.0;  ///< applied ops / second
  double query_throughput = 0.0;   ///< snapshot reads / second

  // Staleness: queue backlog (submitted - consumed) observed at each read.
  double mean_staleness_ops = 0.0;
  double max_staleness_ops = 0.0;

  // Writer-side cost of the run: cumulative apply CPU seconds and the
  // p50/p99 batch publication latency window at the end (µs).
  double writer_busy_seconds = 0.0;
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;

  // Registry-derived tails of the same distribution (interpolated from the
  // cumulative fdrms_publish_latency_us histogram at the final scrape).
  double publish_p90_us = 0.0;
  double publish_p999_us = 0.0;

  // Batching telemetry from the final snapshot: queue-depth quantiles
  // (operations, derived from the writer's power-of-two depth histogram),
  // the adaptive batch bound in force at the end, and the raw cumulative
  // histograms (see obs::Pow2HistBucket for the bucket scheme).
  double queue_depth_p50 = 0.0;
  double queue_depth_p99 = 0.0;
  uint64_t effective_max_batch = 0;
  std::vector<uint64_t> queue_depth_hist;
  std::vector<uint64_t> batch_size_hist;

  // Final state.
  uint64_t final_version = 0;
  int final_result_size = 0;
  int final_m = 0;

  /// Every reader saw monotone versions, sorted unique ids, |Q| <= r, and
  /// ids/points parallel; false flags a serving-layer consistency bug.
  bool consistent = true;

  // One consistent scrape of the service's registry, taken after Stop():
  // Prometheus text exposition, the JSON dump, and the human status page.
  // What a monitoring agent would have collected at the end of the run.
  std::string prometheus_text;
  std::string json_text;
  std::string debug_text;
};

/// Replays `workload` through a service built from `opts.service` (initial
/// tuples = the workload's P_0, operations round-robin across submitters)
/// and measures. The service is drained and stopped before returning.
ServiceLoadResult RunServiceLoad(const Workload& workload,
                                 const ServiceLoadOptions& opts);

/// Shape of one sharded load run.
struct ShardedLoadOptions {
  int num_readers = 4;     ///< merged-Query() threads
  int num_submitters = 2;  ///< threads splitting the workload's op stream
  ShardedServiceOptions service;

  /// One topology event fired while the load runs: when the submitters
  /// have pushed `at_fraction` of the workload's operations, the driver's
  /// controller thread calls AddShard, RemoveShard, or Migrate(plan) on
  /// the live service. Events fire in the given order (sort fractions
  /// ascending for sane timings).
  struct MigrationEvent {
    enum class Kind { kAddShard, kRemoveShard, kPlan };
    Kind kind = Kind::kAddShard;
    double at_fraction = 0.5;
    MigrationPlan plan;  ///< kPlan only
  };
  std::vector<MigrationEvent> migrations;

  /// Paced submission schedule (see ArrivalPhase); empty = full speed.
  /// Submitters share one wall clock and sleep until each operation's
  /// scheduled instant, so the aggregate rate tracks the phase targets.
  std::vector<ArrivalPhase> arrival;

  /// Closed-loop control: when enabled, an SloController (driving the
  /// live service through a ShardedServiceActuator) runs for the duration
  /// of the submission phase. Its control_* series and control.* trace
  /// events land in the same registry the result scrapes.
  bool enable_slo_controller = false;
  control::SloControllerOptions slo;

  /// Resume instead of bulk-loading: Start() restores the topology from
  /// the constellation manifest at service.shard.resume_path (which the
  /// caller must set, equal to persist_path) and the workload's P_0 is NOT
  /// loaded — the persisted state stands in for it. The op stream still
  /// replays on top.
  bool resume = false;

  /// Transient-submit retry (common/retry.h): when enabled, a submitter
  /// retries kResourceExhausted/kUnavailable with bounded exponential
  /// backoff before counting a submit failure. Off by default so
  /// saturation tests still observe raw rejection counts.
  bool retry_submits = false;
  RetryPolicy submit_retry;

  /// Kill-a-shard-writer drill: when the submitters have pushed
  /// `kill_at_fraction` of the op stream, the driver arms a one-shot
  /// writer-death fault ("writer.apply.pre", FaultKind::kDie) — the next
  /// shard writer to drain a batch dies. Readers then tally degraded
  /// merged reads (the dead shard's last snapshot keeps serving) until the
  /// driver calls ReviveDeadShards() at `revive_at_fraction`. Any shard
  /// still dead after the submitters finish is revived before the final
  /// drain, and the leftover fault arms are cleared, so the run always
  /// ends on a healthy constellation.
  struct FaultDrill {
    bool enabled = false;
    double kill_at_fraction = 0.4;
    double revive_at_fraction = 0.75;  ///< < 0: revive only at end of stream
  };
  FaultDrill fault;
};

/// What happened during a sharded run.
struct ShardedLoadResult {
  // Volume (summed across shards).
  uint64_t ops_submitted = 0;
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;
  uint64_t submit_failures = 0;
  uint64_t submit_retries = 0;       ///< re-submissions (retry_submits only)
  uint64_t unavailable_submits = 0;  ///< submits that failed kUnavailable
  uint64_t queries = 0;
  uint64_t batches = 0;

  // Rates. `update_throughput` is measured wall-clock (applied ops /
  // second, all shards sharing this host's cores); `update_capacity` is
  // applied ops / the slowest shard's measured writer CPU seconds — the
  // rate a deployment with one core per writer sustains, since each writer
  // then owns a core and the critical path is the busiest shard. On a
  // single-core host wall throughput cannot scale with S but capacity
  // does; on an >= S core host the two converge.
  double wall_seconds = 0.0;
  double update_throughput = 0.0;
  double update_capacity = 0.0;
  double query_throughput = 0.0;

  // Staleness in queue-backlog operations observed at each merged read:
  // aggregate (submitted-but-unconsumed ops at read time) and per shard.
  // The per-shard breakdown is only populated when the run has no
  // migration events (a changing topology has no stable shard indexing),
  // and the aggregate is zeroed when a kRemoveShard event is configured (a
  // retired shard's lifetime op count would inflate the backlog forever).
  double mean_staleness_ops = 0.0;
  double max_staleness_ops = 0.0;
  std::vector<double> per_shard_mean_staleness;

  // Topology events (zero when no migrations were configured).
  uint64_t migrations_attempted = 0;
  uint64_t migrations_failed = 0;
  double migration_seconds_total = 0.0;  ///< wall time inside the calls
  std::vector<double> migration_seconds;  ///< per event, in firing order
  /// Applied-ops throughput measured across the migration windows only —
  /// compare against update_throughput for the dip a migration costs.
  /// (Counts include the migration's own replayed operations.)
  double migration_update_throughput = 0.0;
  uint64_t final_epoch = 0;
  int final_num_shards = 0;
  /// Resume outcome (resume runs only): Start() restored from a manifest,
  /// and the epoch/shard count it came back with before any new traffic.
  bool resumed = false;
  uint64_t resume_epoch = 0;
  int resume_num_shards = 0;
  /// Merged reads that returned nullptr after the service was up — must
  /// stay 0: a live migration never blocks or errors a read, and a dead
  /// shard's last snapshot keeps the merge serving through an outage.
  uint64_t null_queries = 0;

  // Fault-drill outcome (zeroed unless opts.fault.enabled). The degraded
  // tallies come from the readers (merged snapshots whose degraded
  // annotation was set); the kill/revive counts from the drill thread.
  uint64_t degraded_queries = 0;  ///< merged reads flagged degraded
  int max_degraded_shards = 0;    ///< worst simultaneous degraded count seen
  int shards_killed = 0;          ///< writers observed dead during the run
  int shards_revived = 0;         ///< ReviveDeadShards successes
  bool revive_ok = true;          ///< constellation healthy at final drain
  uint64_t writer_restarts = 0;   ///< fdrms_shard_writer_restarts_total
  /// Fault-domain lifecycle trace ("shard.unhealthy"/"shard.revive"
  /// events), oldest first.
  std::vector<obs::TraceEvent> fault_trace;

  // Per-shard load balance and cost.
  std::vector<uint64_t> per_shard_applied;
  std::vector<double> per_shard_busy_seconds;
  double publish_p50_us = 0.0;  ///< worst shard at the end
  double publish_p99_us = 0.0;

  // Final merged state.
  std::vector<uint64_t> final_versions;
  int final_result_size = 0;
  size_t final_union_size = 0;
  int final_min_m = 0;

  /// Every reader saw component-wise monotone version vectors, sorted
  /// unique ids, parallel ids/points, and |Q| within the merge budget.
  bool consistent = true;

  // Read-path cache behaviour over the run (constellation registry
  // counters: hits answer from the cached merge, misses rebuild it,
  // recovers additionally ran the greedy re-cover).
  uint64_t merge_cache_hits = 0;
  uint64_t merge_cache_misses = 0;
  uint64_t merge_recovers = 0;

  // Migration lifecycle trace ("migration.freeze/drain/replay/cutover"
  // events with start/duration and epoch/count args), oldest first —
  // one freeze/drain/replay/cutover quadruple per successful epoch.
  std::vector<obs::TraceEvent> migration_trace;

  // SLO controller outcome (zeroed unless enable_slo_controller): decision
  // counters scraped from the control_* family, the last non-empty
  // window's publish p99, the controller's own decision trace
  // ("control.scale_up/scale_down/scale_fail/batch_raise/batch_lower"),
  // and its status page at shutdown.
  uint64_t control_ticks = 0;
  uint64_t control_decisions = 0;
  uint64_t control_scale_ups = 0;
  uint64_t control_scale_downs = 0;
  uint64_t control_scale_failures = 0;
  uint64_t control_batch_adjustments = 0;
  double control_publish_p99_window_us = 0.0;
  double control_slo_violation_seconds = 0.0;
  std::vector<obs::TraceEvent> control_trace;
  std::string controller_debug_text;

  // One consistent scrape of the constellation's registry after Stop():
  // per-shard series (labelled shard="i") plus the sharded layer's own,
  // and the constellation's DebugString() status page.
  std::string prometheus_text;
  std::string json_text;
  std::string debug_text;
};

/// Replays `workload` through a ShardedFdRmsService built from
/// `opts.service`. Same protocol as RunServiceLoad: initial tuples are the
/// workload's P_0 (routed across shards), operations go round-robin across
/// submitters, readers hammer the merged Query(). Drained and stopped
/// before returning.
ShardedLoadResult RunShardedLoad(const Workload& workload,
                                 const ShardedLoadOptions& opts);

}  // namespace fdrms

#endif  // FDRMS_EVAL_SERVICE_DRIVER_H_
