#include "eval/tuning.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "geometry/sampling.h"

namespace fdrms {

TuneResult AutoTuneEpsilon(const std::vector<std::pair<int, Point>>& tuples,
                           int dim, const FdRmsOptions& base,
                           int eval_directions,
                           const std::vector<double>& candidates) {
  FDRMS_CHECK(!candidates.empty());
  Rng rng(base.seed ^ 0x7e57);
  std::vector<Point> dirs = SampleDirections(eval_directions, dim, &rng);
  // ω_k reference on the snapshot (shared across probes).
  std::vector<Point> points;
  points.reserve(tuples.size());
  for (const auto& [id, p] : tuples) points.push_back(p);
  std::vector<double> omega_k(dirs.size(), 0.0);
  if (static_cast<int>(points.size()) >= base.k) {
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      std::vector<double> scores;
      scores.reserve(points.size());
      for (const Point& p : points) scores.push_back(Dot(dirs[ui], p));
      std::nth_element(scores.begin(), scores.begin() + (base.k - 1),
                       scores.end(), std::greater<>());
      omega_k[ui] = scores[base.k - 1];
    }
  }
  TuneResult out;
  out.options = base;
  double best_regret = 2.0;
  for (double eps : candidates) {
    FdRmsOptions opt = base;
    opt.eps = eps;
    FdRms algo(dim, opt);
    Status st = algo.Initialize(tuples);
    FDRMS_CHECK(st.ok()) << st.ToString();
    EpsilonProbe probe;
    probe.eps = eps;
    probe.m = algo.current_m();
    std::vector<int> q = algo.Result();
    probe.result_size = static_cast<int>(q.size());
    double worst = 0.0;
    for (size_t ui = 0; ui < dirs.size(); ++ui) {
      if (omega_k[ui] <= 0.0) continue;
      double best = 0.0;
      for (int id : q) {
        best = std::max(best, Dot(dirs[ui], algo.topk().tree().GetPoint(id)));
      }
      worst = std::max(worst, 1.0 - best / omega_k[ui]);
    }
    probe.sampled_regret = worst;
    out.probes.push_back(probe);
    // Smaller ε wins ties: fewer utility vectors, cheaper maintenance.
    if (worst < best_regret - 1e-4) {
      best_regret = worst;
      out.options.eps = eps;
    }
  }
  return out;
}

}  // namespace fdrms
