#include "eval/runner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "geometry/sampling.h"
#include "skyline/skyline.h"

namespace fdrms {

WorkloadRunner::WorkloadRunner(const Workload* workload, int k,
                               int eval_directions, uint64_t seed)
    : workload_(workload), k_(k) {
  FDRMS_CHECK(workload != nullptr);
  Rng rng(seed);
  eval_dirs_ =
      SampleDirections(eval_directions, workload->data().dim(), &rng);
  cache_.resize(workload->checkpoints().size());
}

void WorkloadRunner::EnsureCheckpoint(int checkpoint_index) {
  CheckpointCache& entry = cache_[checkpoint_index];
  if (entry.ready) return;
  int op_index = workload_->checkpoints()[checkpoint_index];
  entry.live_ids = workload_->LiveIdsAfter(op_index);
  entry.live_points.reserve(entry.live_ids.size());
  for (int id : entry.live_ids) {
    entry.live_points.push_back(workload_->data().Get(id));
  }
  entry.omega_k = OmegaKForDirections(eval_dirs_, entry.live_points, k_);
  entry.ready = true;
}

double WorkloadRunner::RegretAtCheckpoint(int checkpoint_index,
                                          const std::vector<int>& result_ids) {
  EnsureCheckpoint(checkpoint_index);
  const CheckpointCache& entry = cache_[checkpoint_index];
  double worst = 0.0;
  for (size_t ui = 0; ui < eval_dirs_.size(); ++ui) {
    if (entry.omega_k[ui] <= 0.0) continue;
    double best = 0.0;
    for (int id : result_ids) {
      best = std::max(best, workload_->data().Score(eval_dirs_[ui], id));
    }
    double rr = 1.0 - best / entry.omega_k[ui];
    if (rr > worst) worst = rr;
  }
  return worst;
}

RunResult WorkloadRunner::RunFdRms(const FdRmsOptions& options) {
  RunResult result;
  result.algorithm = "FD-RMS";
  const PointSet& data = workload_->data();
  FdRms algo(data.dim(), options);
  std::vector<std::pair<int, Point>> initial;
  initial.reserve(workload_->initial_ids().size());
  for (int id : workload_->initial_ids()) {
    initial.emplace_back(id, data.Get(id));
  }
  Stopwatch init_watch;
  Status st = algo.Initialize(initial);
  FDRMS_CHECK(st.ok()) << st.ToString();
  result.init_ms = init_watch.ElapsedMillis();
  TimeAccumulator update_time;
  const auto& ops = workload_->operations();
  const auto& checkpoints = workload_->checkpoints();
  size_t next_checkpoint = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    Stopwatch watch;
    if (ops[i].is_insert) {
      st = algo.Insert(ops[i].id, data.Get(ops[i].id));
    } else {
      st = algo.Delete(ops[i].id);
    }
    update_time.Add(watch.ElapsedSeconds());
    FDRMS_CHECK(st.ok()) << st.ToString();
    if (next_checkpoint < checkpoints.size() &&
        static_cast<int>(i) == checkpoints[next_checkpoint]) {
      std::vector<int> q = algo.Result();
      result.checkpoint_regret.push_back(
          RegretAtCheckpoint(static_cast<int>(next_checkpoint), q));
      result.final_result = std::move(q);
      ++next_checkpoint;
    }
  }
  result.mean_update_ms = update_time.MeanMillis();
  result.final_m = algo.current_m();
  for (double rr : result.checkpoint_regret) result.mean_regret += rr;
  if (!result.checkpoint_regret.empty()) {
    result.mean_regret /= static_cast<double>(result.checkpoint_regret.size());
  }
  return result;
}

RunResult WorkloadRunner::RunStatic(const RmsAlgorithm& algo, int r,
                                    int max_timed_runs) {
  RunResult result;
  result.algorithm = algo.name();
  const PointSet& data = workload_->data();
  const auto& ops = workload_->operations();
  const auto& checkpoints = workload_->checkpoints();
  if (GetEnvLong("FDRMS_TIME_ALL_RUNS", 0) != 0) {
    max_timed_runs = static_cast<int>(ops.size());
  }
  // Pass 1: replay the workload through the dynamic skyline to find the
  // triggering operations (the paper only charges static algorithms when
  // the skyline changes; other operations cost them nothing).
  DynamicSkyline skyline(data.dim());
  for (int id : workload_->initial_ids()) {
    Status st = skyline.Insert(id, data.Get(id), nullptr);
    FDRMS_CHECK(st.ok()) << st.ToString();
  }
  std::vector<int> trigger_ops;
  {
    for (size_t i = 0; i < ops.size(); ++i) {
      bool changed = false;
      Status st = ops[i].is_insert
                      ? skyline.Insert(ops[i].id, data.Get(ops[i].id), &changed)
                      : skyline.Delete(ops[i].id, &changed);
      FDRMS_CHECK(st.ok()) << st.ToString();
      if (changed) trigger_ops.push_back(static_cast<int>(i));
    }
  }
  result.skyline_triggers = static_cast<long>(trigger_ops.size());
  // Regret checkpoints to actually execute. The paper records 10; for slow
  // baselines at laptop scale a stride of FDRMS_STATIC_CHECKPOINT_STRIDE
  // (default 3 -> 4 recordings) keeps the mean comparable at a fraction of
  // the cost. Set it to 1 to run all 10.
  const int stride =
      std::max<int>(1, static_cast<int>(GetEnvLong(
                           "FDRMS_STATIC_CHECKPOINT_STRIDE", 3)));
  std::unordered_set<int> regret_checkpoints;
  for (size_t c = 0; c < checkpoints.size(); c += stride) {
    regret_checkpoints.insert(checkpoints[c]);
  }
  regret_checkpoints.insert(checkpoints.back());
  // Triggers to execute: the regret checkpoints plus an even timing sample.
  std::unordered_set<int> timed(regret_checkpoints.begin(),
                                regret_checkpoints.end());
  if (!trigger_ops.empty() && max_timed_runs > 0) {
    int stride =
        std::max<int>(1, static_cast<int>(trigger_ops.size()) / max_timed_runs);
    for (size_t i = 0; i < trigger_ops.size(); i += stride) {
      timed.insert(trigger_ops[i]);
    }
  }
  // Pass 2: replay with a live mirror; run the algorithm at the selected
  // operations.
  std::unordered_map<int, Point> live;
  for (int id : workload_->initial_ids()) live.emplace(id, data.Get(id));
  std::unordered_set<int> trigger_set(trigger_ops.begin(), trigger_ops.end());
  Rng algo_rng(7777);
  TimeAccumulator recompute_time;
  size_t next_checkpoint = 0;
  auto snapshot = [&]() {
    Database db;
    db.dim = data.dim();
    for (const auto& [id, p] : live) {
      db.ids.push_back(id);
      db.points.push_back(p);
    }
    return db;
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_insert) {
      live.emplace(ops[i].id, data.Get(ops[i].id));
    } else {
      live.erase(ops[i].id);
    }
    bool is_checkpoint =
        next_checkpoint < checkpoints.size() &&
        static_cast<int>(i) == checkpoints[next_checkpoint];
    bool want_regret =
        is_checkpoint && regret_checkpoints.count(static_cast<int>(i)) > 0;
    bool do_run = want_regret || (timed.count(static_cast<int>(i)) > 0 &&
                                  trigger_set.count(static_cast<int>(i)) > 0);
    if (do_run) {
      Database db = snapshot();
      Stopwatch watch;
      std::vector<int> q = algo.Compute(db, k_, r, &algo_rng);
      recompute_time.Add(watch.ElapsedSeconds());
      if (want_regret) {
        result.checkpoint_regret.push_back(
            RegretAtCheckpoint(static_cast<int>(next_checkpoint), q));
        result.final_result = std::move(q);
      }
    }
    if (is_checkpoint) ++next_checkpoint;
  }
  // Average update time: every trigger costs one (measured-mean)
  // recomputation, spread over all operations.
  double mean_recompute_ms = recompute_time.MeanMillis();
  result.mean_update_ms = ops.empty()
                              ? 0.0
                              : mean_recompute_ms *
                                    static_cast<double>(trigger_ops.size()) /
                                    static_cast<double>(ops.size());
  for (double rr : result.checkpoint_regret) result.mean_regret += rr;
  if (!result.checkpoint_regret.empty()) {
    result.mean_regret /= static_cast<double>(result.checkpoint_regret.size());
  }
  return result;
}

}  // namespace fdrms
