#include "eval/workload.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace fdrms {

Workload::Workload(const PointSet* data, uint64_t seed, int num_checkpoints)
    : data_(data) {
  FDRMS_CHECK(data != nullptr);
  const int n = data->size();
  FDRMS_CHECK(n >= 2);
  Rng rng(seed);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  const int half = n / 2;
  initial_ids_.assign(order.begin(), order.begin() + half);
  // Phase 1: insert the other half one by one.
  for (int i = half; i < n; ++i) {
    operations_.push_back({/*is_insert=*/true, order[i]});
  }
  // Phase 2: delete a random half of the full dataset.
  std::vector<int> delete_order(n);
  std::iota(delete_order.begin(), delete_order.end(), 0);
  rng.Shuffle(&delete_order);
  for (int i = 0; i < half; ++i) {
    operations_.push_back({/*is_insert=*/false, delete_order[i]});
  }
  // Checkpoints after every 10% of the operations.
  const int ops = static_cast<int>(operations_.size());
  for (int c = 1; c <= num_checkpoints; ++c) {
    int idx = ops * c / num_checkpoints - 1;
    checkpoints_.push_back(std::max(idx, 0));
  }
  checkpoints_.erase(std::unique(checkpoints_.begin(), checkpoints_.end()),
                     checkpoints_.end());
}

std::vector<int> Workload::LiveIdsAfter(int op_index) const {
  const int target = std::clamp(op_index + 1, 0,
                                static_cast<int>(operations_.size()));
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (!memo_ready_ || memo_applied_ > target) {
    memo_live_.clear();
    memo_live_.insert(initial_ids_.begin(), initial_ids_.end());
    memo_applied_ = 0;
    memo_ready_ = true;
  }
  for (; memo_applied_ < target; ++memo_applied_) {
    const Operation& op = operations_[memo_applied_];
    if (op.is_insert) {
      memo_live_.insert(op.id);
    } else {
      memo_live_.erase(op.id);
    }
  }
  std::vector<int> out(memo_live_.begin(), memo_live_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fdrms
