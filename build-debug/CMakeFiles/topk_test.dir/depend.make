# Empty dependencies file for topk_test.
# This may be replaced when dependencies are built.
