file(REMOVE_RECURSE
  "CMakeFiles/topk_test.dir/tests/topk_test.cpp.o"
  "CMakeFiles/topk_test.dir/tests/topk_test.cpp.o.d"
  "topk_test"
  "topk_test.pdb"
  "topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
