# Empty dependencies file for bench_fig6_vary_r.
# This may be replaced when dependencies are built.
