file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vary_r.dir/bench/bench_fig6_vary_r.cpp.o"
  "CMakeFiles/bench_fig6_vary_r.dir/bench/bench_fig6_vary_r.cpp.o.d"
  "bench_fig6_vary_r"
  "bench_fig6_vary_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vary_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
