file(REMOVE_RECURSE
  "CMakeFiles/rms_workbench.dir/examples/rms_workbench.cpp.o"
  "CMakeFiles/rms_workbench.dir/examples/rms_workbench.cpp.o.d"
  "rms_workbench"
  "rms_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
