# Empty dependencies file for rms_workbench.
# This may be replaced when dependencies are built.
