file(REMOVE_RECURSE
  "CMakeFiles/kdtree_test.dir/tests/kdtree_test.cpp.o"
  "CMakeFiles/kdtree_test.dir/tests/kdtree_test.cpp.o.d"
  "kdtree_test"
  "kdtree_test.pdb"
  "kdtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
