# Empty dependencies file for kdtree_test.
# This may be replaced when dependencies are built.
