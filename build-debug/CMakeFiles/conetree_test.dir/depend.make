# Empty dependencies file for conetree_test.
# This may be replaced when dependencies are built.
