file(REMOVE_RECURSE
  "CMakeFiles/conetree_test.dir/tests/conetree_test.cpp.o"
  "CMakeFiles/conetree_test.dir/tests/conetree_test.cpp.o.d"
  "conetree_test"
  "conetree_test.pdb"
  "conetree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conetree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
