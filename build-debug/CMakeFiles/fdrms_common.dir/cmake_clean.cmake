file(REMOVE_RECURSE
  "CMakeFiles/fdrms_common.dir/src/common/status.cpp.o"
  "CMakeFiles/fdrms_common.dir/src/common/status.cpp.o.d"
  "CMakeFiles/fdrms_common.dir/src/common/table_printer.cpp.o"
  "CMakeFiles/fdrms_common.dir/src/common/table_printer.cpp.o.d"
  "libfdrms_common.a"
  "libfdrms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
