file(REMOVE_RECURSE
  "libfdrms_common.a"
)
