# Empty dependencies file for fdrms_common.
# This may be replaced when dependencies are built.
