file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/tests/common_test.cpp.o"
  "CMakeFiles/common_test.dir/tests/common_test.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
