# Empty dependencies file for common_test.
# This may be replaced when dependencies are built.
