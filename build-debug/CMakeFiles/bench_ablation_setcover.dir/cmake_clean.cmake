file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_setcover.dir/bench/bench_ablation_setcover.cpp.o"
  "CMakeFiles/bench_ablation_setcover.dir/bench/bench_ablation_setcover.cpp.o.d"
  "bench_ablation_setcover"
  "bench_ablation_setcover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
