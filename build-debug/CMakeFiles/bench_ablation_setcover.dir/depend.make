# Empty dependencies file for bench_ablation_setcover.
# This may be replaced when dependencies are built.
