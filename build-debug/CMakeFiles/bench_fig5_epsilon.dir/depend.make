# Empty dependencies file for bench_fig5_epsilon.
# This may be replaced when dependencies are built.
