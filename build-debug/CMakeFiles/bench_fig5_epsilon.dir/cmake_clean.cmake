file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_epsilon.dir/bench/bench_fig5_epsilon.cpp.o"
  "CMakeFiles/bench_fig5_epsilon.dir/bench/bench_fig5_epsilon.cpp.o.d"
  "bench_fig5_epsilon"
  "bench_fig5_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
