# Empty dependencies file for shard_test.
# This may be replaced when dependencies are built.
