file(REMOVE_RECURSE
  "CMakeFiles/shard_test.dir/tests/shard_test.cpp.o"
  "CMakeFiles/shard_test.dir/tests/shard_test.cpp.o.d"
  "shard_test"
  "shard_test.pdb"
  "shard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
