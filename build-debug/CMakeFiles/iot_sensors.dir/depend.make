# Empty dependencies file for iot_sensors.
# This may be replaced when dependencies are built.
