file(REMOVE_RECURSE
  "CMakeFiles/iot_sensors.dir/examples/iot_sensors.cpp.o"
  "CMakeFiles/iot_sensors.dir/examples/iot_sensors.cpp.o.d"
  "iot_sensors"
  "iot_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
