# Empty dependencies file for migration_test.
# This may be replaced when dependencies are built.
