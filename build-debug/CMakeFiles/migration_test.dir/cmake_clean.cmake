file(REMOVE_RECURSE
  "CMakeFiles/migration_test.dir/tests/migration_test.cpp.o"
  "CMakeFiles/migration_test.dir/tests/migration_test.cpp.o.d"
  "migration_test"
  "migration_test.pdb"
  "migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
