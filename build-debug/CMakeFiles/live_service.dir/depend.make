# Empty dependencies file for live_service.
# This may be replaced when dependencies are built.
