file(REMOVE_RECURSE
  "CMakeFiles/live_service.dir/examples/live_service.cpp.o"
  "CMakeFiles/live_service.dir/examples/live_service.cpp.o.d"
  "live_service"
  "live_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
