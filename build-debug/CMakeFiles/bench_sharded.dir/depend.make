# Empty dependencies file for bench_sharded.
# This may be replaced when dependencies are built.
