file(REMOVE_RECURSE
  "CMakeFiles/bench_sharded.dir/bench/bench_sharded.cpp.o"
  "CMakeFiles/bench_sharded.dir/bench/bench_sharded.cpp.o.d"
  "bench_sharded"
  "bench_sharded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
