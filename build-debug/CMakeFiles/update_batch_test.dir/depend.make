# Empty dependencies file for update_batch_test.
# This may be replaced when dependencies are built.
