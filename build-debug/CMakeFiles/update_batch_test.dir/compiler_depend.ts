# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for update_batch_test.
