file(REMOVE_RECURSE
  "CMakeFiles/update_batch_test.dir/tests/update_batch_test.cpp.o"
  "CMakeFiles/update_batch_test.dir/tests/update_batch_test.cpp.o.d"
  "update_batch_test"
  "update_batch_test.pdb"
  "update_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
