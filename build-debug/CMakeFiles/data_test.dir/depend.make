# Empty dependencies file for data_test.
# This may be replaced when dependencies are built.
