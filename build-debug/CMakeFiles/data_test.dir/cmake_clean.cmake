file(REMOVE_RECURSE
  "CMakeFiles/data_test.dir/tests/data_test.cpp.o"
  "CMakeFiles/data_test.dir/tests/data_test.cpp.o.d"
  "data_test"
  "data_test.pdb"
  "data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
