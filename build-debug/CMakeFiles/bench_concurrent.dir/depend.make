# Empty dependencies file for bench_concurrent.
# This may be replaced when dependencies are built.
