file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent.dir/bench/bench_concurrent.cpp.o"
  "CMakeFiles/bench_concurrent.dir/bench/bench_concurrent.cpp.o.d"
  "bench_concurrent"
  "bench_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
