# Empty dependencies file for snapshot_test.
# This may be replaced when dependencies are built.
