file(REMOVE_RECURSE
  "CMakeFiles/snapshot_test.dir/tests/snapshot_test.cpp.o"
  "CMakeFiles/snapshot_test.dir/tests/snapshot_test.cpp.o.d"
  "snapshot_test"
  "snapshot_test.pdb"
  "snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
