file(REMOVE_RECURSE
  "libfdrms_eval.a"
)
