
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/runner.cpp" "CMakeFiles/fdrms_eval.dir/src/eval/runner.cpp.o" "gcc" "CMakeFiles/fdrms_eval.dir/src/eval/runner.cpp.o.d"
  "/root/repo/src/eval/service_driver.cpp" "CMakeFiles/fdrms_eval.dir/src/eval/service_driver.cpp.o" "gcc" "CMakeFiles/fdrms_eval.dir/src/eval/service_driver.cpp.o.d"
  "/root/repo/src/eval/tuning.cpp" "CMakeFiles/fdrms_eval.dir/src/eval/tuning.cpp.o" "gcc" "CMakeFiles/fdrms_eval.dir/src/eval/tuning.cpp.o.d"
  "/root/repo/src/eval/workload.cpp" "CMakeFiles/fdrms_eval.dir/src/eval/workload.cpp.o" "gcc" "CMakeFiles/fdrms_eval.dir/src/eval/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-debug/CMakeFiles/fdrms_core.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_baselines.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_data.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_serve.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_shard.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_skyline.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_lp.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_topk.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_index.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_setcover.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_geometry.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
