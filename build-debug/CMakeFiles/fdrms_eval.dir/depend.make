# Empty dependencies file for fdrms_eval.
# This may be replaced when dependencies are built.
