file(REMOVE_RECURSE
  "CMakeFiles/fdrms_eval.dir/src/eval/runner.cpp.o"
  "CMakeFiles/fdrms_eval.dir/src/eval/runner.cpp.o.d"
  "CMakeFiles/fdrms_eval.dir/src/eval/service_driver.cpp.o"
  "CMakeFiles/fdrms_eval.dir/src/eval/service_driver.cpp.o.d"
  "CMakeFiles/fdrms_eval.dir/src/eval/tuning.cpp.o"
  "CMakeFiles/fdrms_eval.dir/src/eval/tuning.cpp.o.d"
  "CMakeFiles/fdrms_eval.dir/src/eval/workload.cpp.o"
  "CMakeFiles/fdrms_eval.dir/src/eval/workload.cpp.o.d"
  "libfdrms_eval.a"
  "libfdrms_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
