# Empty dependencies file for edge_cases_test.
# This may be replaced when dependencies are built.
