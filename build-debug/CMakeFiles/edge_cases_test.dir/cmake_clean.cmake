file(REMOVE_RECURSE
  "CMakeFiles/edge_cases_test.dir/tests/edge_cases_test.cpp.o"
  "CMakeFiles/edge_cases_test.dir/tests/edge_cases_test.cpp.o.d"
  "edge_cases_test"
  "edge_cases_test.pdb"
  "edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
