# Empty dependencies file for fdrms_core.
# This may be replaced when dependencies are built.
