file(REMOVE_RECURSE
  "libfdrms_core.a"
)
