file(REMOVE_RECURSE
  "CMakeFiles/fdrms_core.dir/src/core/fdrms.cpp.o"
  "CMakeFiles/fdrms_core.dir/src/core/fdrms.cpp.o.d"
  "CMakeFiles/fdrms_core.dir/src/core/snapshot.cpp.o"
  "CMakeFiles/fdrms_core.dir/src/core/snapshot.cpp.o.d"
  "libfdrms_core.a"
  "libfdrms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
