file(REMOVE_RECURSE
  "CMakeFiles/property_test.dir/tests/property_test.cpp.o"
  "CMakeFiles/property_test.dir/tests/property_test.cpp.o.d"
  "property_test"
  "property_test.pdb"
  "property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
