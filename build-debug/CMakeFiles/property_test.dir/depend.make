# Empty dependencies file for property_test.
# This may be replaced when dependencies are built.
