file(REMOVE_RECURSE
  "CMakeFiles/paper_examples_test.dir/tests/paper_examples_test.cpp.o"
  "CMakeFiles/paper_examples_test.dir/tests/paper_examples_test.cpp.o.d"
  "paper_examples_test"
  "paper_examples_test.pdb"
  "paper_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
