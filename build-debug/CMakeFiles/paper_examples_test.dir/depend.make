# Empty dependencies file for paper_examples_test.
# This may be replaced when dependencies are built.
