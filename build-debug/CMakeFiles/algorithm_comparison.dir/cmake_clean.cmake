file(REMOVE_RECURSE
  "CMakeFiles/algorithm_comparison.dir/examples/algorithm_comparison.cpp.o"
  "CMakeFiles/algorithm_comparison.dir/examples/algorithm_comparison.cpp.o.d"
  "algorithm_comparison"
  "algorithm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
