# Empty dependencies file for algorithm_comparison.
# This may be replaced when dependencies are built.
