# Empty dependencies file for bench_fig7_vary_k.
# This may be replaced when dependencies are built.
