file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vary_k.dir/bench/bench_fig7_vary_k.cpp.o"
  "CMakeFiles/bench_fig7_vary_k.dir/bench/bench_fig7_vary_k.cpp.o.d"
  "bench_fig7_vary_k"
  "bench_fig7_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
