file(REMOVE_RECURSE
  "CMakeFiles/lp_test.dir/tests/lp_test.cpp.o"
  "CMakeFiles/lp_test.dir/tests/lp_test.cpp.o.d"
  "lp_test"
  "lp_test.pdb"
  "lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
