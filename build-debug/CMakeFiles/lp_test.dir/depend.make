# Empty dependencies file for lp_test.
# This may be replaced when dependencies are built.
