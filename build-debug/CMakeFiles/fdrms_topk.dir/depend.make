# Empty dependencies file for fdrms_topk.
# This may be replaced when dependencies are built.
