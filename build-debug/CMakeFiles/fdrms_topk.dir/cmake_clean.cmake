file(REMOVE_RECURSE
  "CMakeFiles/fdrms_topk.dir/src/topk/topk_maintainer.cpp.o"
  "CMakeFiles/fdrms_topk.dir/src/topk/topk_maintainer.cpp.o.d"
  "libfdrms_topk.a"
  "libfdrms_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
