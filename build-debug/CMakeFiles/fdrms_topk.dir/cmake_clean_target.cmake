file(REMOVE_RECURSE
  "libfdrms_topk.a"
)
