# Empty dependencies file for geometry_test.
# This may be replaced when dependencies are built.
