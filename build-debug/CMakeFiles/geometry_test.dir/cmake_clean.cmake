file(REMOVE_RECURSE
  "CMakeFiles/geometry_test.dir/tests/geometry_test.cpp.o"
  "CMakeFiles/geometry_test.dir/tests/geometry_test.cpp.o.d"
  "geometry_test"
  "geometry_test.pdb"
  "geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
