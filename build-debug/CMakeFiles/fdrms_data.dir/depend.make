# Empty dependencies file for fdrms_data.
# This may be replaced when dependencies are built.
