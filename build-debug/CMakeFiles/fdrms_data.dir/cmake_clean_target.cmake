file(REMOVE_RECURSE
  "libfdrms_data.a"
)
