file(REMOVE_RECURSE
  "CMakeFiles/fdrms_data.dir/src/data/generators.cpp.o"
  "CMakeFiles/fdrms_data.dir/src/data/generators.cpp.o.d"
  "libfdrms_data.a"
  "libfdrms_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
