file(REMOVE_RECURSE
  "CMakeFiles/fdrms_index.dir/src/index/conetree.cpp.o"
  "CMakeFiles/fdrms_index.dir/src/index/conetree.cpp.o.d"
  "CMakeFiles/fdrms_index.dir/src/index/kdtree.cpp.o"
  "CMakeFiles/fdrms_index.dir/src/index/kdtree.cpp.o.d"
  "libfdrms_index.a"
  "libfdrms_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
