file(REMOVE_RECURSE
  "libfdrms_index.a"
)
