# Empty dependencies file for fdrms_index.
# This may be replaced when dependencies are built.
