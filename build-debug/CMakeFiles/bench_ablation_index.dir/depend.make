# Empty dependencies file for bench_ablation_index.
# This may be replaced when dependencies are built.
