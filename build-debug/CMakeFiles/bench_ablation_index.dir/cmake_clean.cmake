file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_index.dir/bench/bench_ablation_index.cpp.o"
  "CMakeFiles/bench_ablation_index.dir/bench/bench_ablation_index.cpp.o.d"
  "bench_ablation_index"
  "bench_ablation_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
