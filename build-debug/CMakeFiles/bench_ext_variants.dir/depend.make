# Empty dependencies file for bench_ext_variants.
# This may be replaced when dependencies are built.
