file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_variants.dir/bench/bench_ext_variants.cpp.o"
  "CMakeFiles/bench_ext_variants.dir/bench/bench_ext_variants.cpp.o.d"
  "bench_ext_variants"
  "bench_ext_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
