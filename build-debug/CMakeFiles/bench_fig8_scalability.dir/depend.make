# Empty dependencies file for bench_fig8_scalability.
# This may be replaced when dependencies are built.
