file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scalability.dir/bench/bench_fig8_scalability.cpp.o"
  "CMakeFiles/bench_fig8_scalability.dir/bench/bench_fig8_scalability.cpp.o.d"
  "bench_fig8_scalability"
  "bench_fig8_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
