# Empty dependencies file for fdrms_baselines.
# This may be replaced when dependencies are built.
