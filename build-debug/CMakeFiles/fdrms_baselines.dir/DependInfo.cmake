
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/average_regret.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/average_regret.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/average_regret.cpp.o.d"
  "/root/repo/src/baselines/dmm.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/dmm.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/dmm.cpp.o.d"
  "/root/repo/src/baselines/exact2d.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/exact2d.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/exact2d.cpp.o.d"
  "/root/repo/src/baselines/greedy.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/greedy.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/greedy.cpp.o.d"
  "/root/repo/src/baselines/kernel_hs.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/kernel_hs.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/kernel_hs.cpp.o.d"
  "/root/repo/src/baselines/minsize.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/minsize.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/minsize.cpp.o.d"
  "/root/repo/src/baselines/rms_algorithm.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/rms_algorithm.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/rms_algorithm.cpp.o.d"
  "/root/repo/src/baselines/sphere.cpp" "CMakeFiles/fdrms_baselines.dir/src/baselines/sphere.cpp.o" "gcc" "CMakeFiles/fdrms_baselines.dir/src/baselines/sphere.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-debug/CMakeFiles/fdrms_geometry.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_skyline.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_lp.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_index.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_core.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_topk.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_setcover.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
