file(REMOVE_RECURSE
  "libfdrms_baselines.a"
)
