file(REMOVE_RECURSE
  "CMakeFiles/fdrms_baselines.dir/src/baselines/average_regret.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/average_regret.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/dmm.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/dmm.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/exact2d.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/exact2d.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/greedy.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/greedy.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/kernel_hs.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/kernel_hs.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/minsize.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/minsize.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/rms_algorithm.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/rms_algorithm.cpp.o.d"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/sphere.cpp.o"
  "CMakeFiles/fdrms_baselines.dir/src/baselines/sphere.cpp.o.d"
  "libfdrms_baselines.a"
  "libfdrms_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
