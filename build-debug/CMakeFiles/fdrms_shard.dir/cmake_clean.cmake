file(REMOVE_RECURSE
  "CMakeFiles/fdrms_shard.dir/src/shard/migration.cpp.o"
  "CMakeFiles/fdrms_shard.dir/src/shard/migration.cpp.o.d"
  "CMakeFiles/fdrms_shard.dir/src/shard/sharded_service.cpp.o"
  "CMakeFiles/fdrms_shard.dir/src/shard/sharded_service.cpp.o.d"
  "libfdrms_shard.a"
  "libfdrms_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
