# Empty dependencies file for fdrms_shard.
# This may be replaced when dependencies are built.
