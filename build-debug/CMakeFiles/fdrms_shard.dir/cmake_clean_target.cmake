file(REMOVE_RECURSE
  "libfdrms_shard.a"
)
