file(REMOVE_RECURSE
  "libfdrms_lp.a"
)
