file(REMOVE_RECURSE
  "CMakeFiles/fdrms_lp.dir/src/lp/simplex.cpp.o"
  "CMakeFiles/fdrms_lp.dir/src/lp/simplex.cpp.o.d"
  "libfdrms_lp.a"
  "libfdrms_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
