# Empty dependencies file for fdrms_lp.
# This may be replaced when dependencies are built.
