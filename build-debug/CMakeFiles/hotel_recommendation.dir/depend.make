# Empty dependencies file for hotel_recommendation.
# This may be replaced when dependencies are built.
