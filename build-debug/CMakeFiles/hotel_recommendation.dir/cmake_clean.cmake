file(REMOVE_RECURSE
  "CMakeFiles/hotel_recommendation.dir/examples/hotel_recommendation.cpp.o"
  "CMakeFiles/hotel_recommendation.dir/examples/hotel_recommendation.cpp.o.d"
  "hotel_recommendation"
  "hotel_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
