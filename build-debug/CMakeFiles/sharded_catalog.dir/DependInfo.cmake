
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sharded_catalog.cpp" "CMakeFiles/sharded_catalog.dir/examples/sharded_catalog.cpp.o" "gcc" "CMakeFiles/sharded_catalog.dir/examples/sharded_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-debug/CMakeFiles/fdrms_eval.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_shard.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_serve.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_data.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_baselines.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_skyline.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_lp.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_core.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_topk.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_index.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_geometry.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_setcover.dir/DependInfo.cmake"
  "/root/repo/build-debug/CMakeFiles/fdrms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
