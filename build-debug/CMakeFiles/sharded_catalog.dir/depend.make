# Empty dependencies file for sharded_catalog.
# This may be replaced when dependencies are built.
