file(REMOVE_RECURSE
  "CMakeFiles/sharded_catalog.dir/examples/sharded_catalog.cpp.o"
  "CMakeFiles/sharded_catalog.dir/examples/sharded_catalog.cpp.o.d"
  "sharded_catalog"
  "sharded_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
