file(REMOVE_RECURSE
  "libfdrms_setcover.a"
)
