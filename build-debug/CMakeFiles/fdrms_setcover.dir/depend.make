# Empty dependencies file for fdrms_setcover.
# This may be replaced when dependencies are built.
