file(REMOVE_RECURSE
  "CMakeFiles/fdrms_setcover.dir/src/setcover/dynamic_set_cover.cpp.o"
  "CMakeFiles/fdrms_setcover.dir/src/setcover/dynamic_set_cover.cpp.o.d"
  "libfdrms_setcover.a"
  "libfdrms_setcover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
