# Empty dependencies file for serve_test.
# This may be replaced when dependencies are built.
