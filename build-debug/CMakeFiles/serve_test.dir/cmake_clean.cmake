file(REMOVE_RECURSE
  "CMakeFiles/serve_test.dir/tests/serve_test.cpp.o"
  "CMakeFiles/serve_test.dir/tests/serve_test.cpp.o.d"
  "serve_test"
  "serve_test.pdb"
  "serve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
