file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_substrates.dir/bench/bench_micro_substrates.cpp.o"
  "CMakeFiles/bench_micro_substrates.dir/bench/bench_micro_substrates.cpp.o.d"
  "bench_micro_substrates"
  "bench_micro_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
