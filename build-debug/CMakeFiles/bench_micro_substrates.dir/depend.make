# Empty dependencies file for bench_micro_substrates.
# This may be replaced when dependencies are built.
