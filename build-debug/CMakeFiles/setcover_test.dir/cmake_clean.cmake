file(REMOVE_RECURSE
  "CMakeFiles/setcover_test.dir/tests/setcover_test.cpp.o"
  "CMakeFiles/setcover_test.dir/tests/setcover_test.cpp.o.d"
  "setcover_test"
  "setcover_test.pdb"
  "setcover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setcover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
