# Empty dependencies file for setcover_test.
# This may be replaced when dependencies are built.
