file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/tests/eval_test.cpp.o"
  "CMakeFiles/eval_test.dir/tests/eval_test.cpp.o.d"
  "eval_test"
  "eval_test.pdb"
  "eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
