file(REMOVE_RECURSE
  "libfdrms_skyline.a"
)
