# Empty dependencies file for fdrms_skyline.
# This may be replaced when dependencies are built.
