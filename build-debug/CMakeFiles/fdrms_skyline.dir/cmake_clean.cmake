file(REMOVE_RECURSE
  "CMakeFiles/fdrms_skyline.dir/src/skyline/skyline.cpp.o"
  "CMakeFiles/fdrms_skyline.dir/src/skyline/skyline.cpp.o.d"
  "libfdrms_skyline.a"
  "libfdrms_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
