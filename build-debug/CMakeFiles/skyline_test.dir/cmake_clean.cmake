file(REMOVE_RECURSE
  "CMakeFiles/skyline_test.dir/tests/skyline_test.cpp.o"
  "CMakeFiles/skyline_test.dir/tests/skyline_test.cpp.o.d"
  "skyline_test"
  "skyline_test.pdb"
  "skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
