# Empty dependencies file for skyline_test.
# This may be replaced when dependencies are built.
