file(REMOVE_RECURSE
  "CMakeFiles/simd_dispatch_test.dir/tests/simd_dispatch_test.cpp.o"
  "CMakeFiles/simd_dispatch_test.dir/tests/simd_dispatch_test.cpp.o.d"
  "simd_dispatch_test"
  "simd_dispatch_test.pdb"
  "simd_dispatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
