# Empty dependencies file for simd_dispatch_test.
# This may be replaced when dependencies are built.
