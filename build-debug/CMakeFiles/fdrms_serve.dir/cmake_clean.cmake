file(REMOVE_RECURSE
  "CMakeFiles/fdrms_serve.dir/src/serve/fdrms_service.cpp.o"
  "CMakeFiles/fdrms_serve.dir/src/serve/fdrms_service.cpp.o.d"
  "libfdrms_serve.a"
  "libfdrms_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
