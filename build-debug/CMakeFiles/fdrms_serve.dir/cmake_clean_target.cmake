file(REMOVE_RECURSE
  "libfdrms_serve.a"
)
