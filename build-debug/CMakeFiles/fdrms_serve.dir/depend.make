# Empty dependencies file for fdrms_serve.
# This may be replaced when dependencies are built.
