file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_datasets.dir/bench/bench_table1_datasets.cpp.o"
  "CMakeFiles/bench_table1_datasets.dir/bench/bench_table1_datasets.cpp.o.d"
  "bench_table1_datasets"
  "bench_table1_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
