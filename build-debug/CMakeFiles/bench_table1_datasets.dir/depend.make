# Empty dependencies file for bench_table1_datasets.
# This may be replaced when dependencies are built.
