file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_skylines.dir/bench/bench_fig4_skylines.cpp.o"
  "CMakeFiles/bench_fig4_skylines.dir/bench/bench_fig4_skylines.cpp.o.d"
  "bench_fig4_skylines"
  "bench_fig4_skylines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_skylines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
