# Empty dependencies file for bench_fig4_skylines.
# This may be replaced when dependencies are built.
