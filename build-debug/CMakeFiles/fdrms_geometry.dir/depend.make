# Empty dependencies file for fdrms_geometry.
# This may be replaced when dependencies are built.
