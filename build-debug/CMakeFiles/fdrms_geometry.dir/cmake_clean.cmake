file(REMOVE_RECURSE
  "CMakeFiles/fdrms_geometry.dir/src/geometry/sampling.cpp.o"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/sampling.cpp.o.d"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx2.cpp.o"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx2.cpp.o.d"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx512.cpp.o"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx512.cpp.o.d"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_neon.cpp.o"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_neon.cpp.o.d"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd_dispatch.cpp.o"
  "CMakeFiles/fdrms_geometry.dir/src/geometry/simd_dispatch.cpp.o.d"
  "libfdrms_geometry.a"
  "libfdrms_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
