CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_neon.cpp.o: \
 /root/repo/src/geometry/simd/score_kernel_neon.cpp \
 /usr/include/stdc-predef.h
