
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/sampling.cpp" "CMakeFiles/fdrms_geometry.dir/src/geometry/sampling.cpp.o" "gcc" "CMakeFiles/fdrms_geometry.dir/src/geometry/sampling.cpp.o.d"
  "/root/repo/src/geometry/simd/score_kernel_avx2.cpp" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx2.cpp.o" "gcc" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx2.cpp.o.d"
  "/root/repo/src/geometry/simd/score_kernel_avx512.cpp" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx512.cpp.o" "gcc" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_avx512.cpp.o.d"
  "/root/repo/src/geometry/simd/score_kernel_neon.cpp" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_neon.cpp.o" "gcc" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd/score_kernel_neon.cpp.o.d"
  "/root/repo/src/geometry/simd_dispatch.cpp" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd_dispatch.cpp.o" "gcc" "CMakeFiles/fdrms_geometry.dir/src/geometry/simd_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-debug/CMakeFiles/fdrms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
