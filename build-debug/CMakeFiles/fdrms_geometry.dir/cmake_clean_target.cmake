file(REMOVE_RECURSE
  "libfdrms_geometry.a"
)
