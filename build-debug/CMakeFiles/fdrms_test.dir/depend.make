# Empty dependencies file for fdrms_test.
# This may be replaced when dependencies are built.
