file(REMOVE_RECURSE
  "CMakeFiles/fdrms_test.dir/tests/fdrms_test.cpp.o"
  "CMakeFiles/fdrms_test.dir/tests/fdrms_test.cpp.o.d"
  "fdrms_test"
  "fdrms_test.pdb"
  "fdrms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdrms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
