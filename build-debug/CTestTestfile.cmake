# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-debug
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-debug/baselines_test[1]_include.cmake")
include("/root/repo/build-debug/common_test[1]_include.cmake")
include("/root/repo/build-debug/conetree_test[1]_include.cmake")
include("/root/repo/build-debug/data_test[1]_include.cmake")
include("/root/repo/build-debug/edge_cases_test[1]_include.cmake")
include("/root/repo/build-debug/eval_test[1]_include.cmake")
include("/root/repo/build-debug/extensions_test[1]_include.cmake")
include("/root/repo/build-debug/fdrms_test[1]_include.cmake")
include("/root/repo/build-debug/geometry_test[1]_include.cmake")
include("/root/repo/build-debug/integration_test[1]_include.cmake")
include("/root/repo/build-debug/kdtree_test[1]_include.cmake")
include("/root/repo/build-debug/lp_test[1]_include.cmake")
include("/root/repo/build-debug/migration_test[1]_include.cmake")
include("/root/repo/build-debug/paper_examples_test[1]_include.cmake")
include("/root/repo/build-debug/property_test[1]_include.cmake")
include("/root/repo/build-debug/serve_test[1]_include.cmake")
include("/root/repo/build-debug/setcover_test[1]_include.cmake")
include("/root/repo/build-debug/shard_test[1]_include.cmake")
include("/root/repo/build-debug/simd_dispatch_test[1]_include.cmake")
include("/root/repo/build-debug/skyline_test[1]_include.cmake")
include("/root/repo/build-debug/snapshot_test[1]_include.cmake")
include("/root/repo/build-debug/topk_test[1]_include.cmake")
include("/root/repo/build-debug/update_batch_test[1]_include.cmake")
