/// Sharded serving scalability: replays the paper's dynamic workload
/// through ShardedFdRmsService, sweeping the shard count. Two throughput
/// numbers per configuration:
///
///   wall_ops/s  — applied ops / wall seconds on THIS host. All shard
///                 writers share the host's cores, so on a small machine
///                 this cannot scale with S.
///   cap_ops/s   — applied ops / the slowest shard's measured writer busy
///                 seconds: the rate a deployment with one core per writer
///                 sustains, since the critical path is the busiest shard.
///                 This is the scalability claim of the shard layer —
///                 routing balance and per-shard work both show up in it.
///
/// Shapes to expect: cap_ops/s grows near-linearly with S (hash routing
/// balances the standard workload; S=4 should exceed 2x the S=1 capacity),
/// while wall_ops/s tracks the host's actual core budget. The merged
/// result set must still meet the k=1 regret-ratio oracle bound of
/// fdrms_test.cpp on the shared sampled-utility prefix, checked here
/// against brute-force omega over the live tuples.
///
/// Flags: --json (write BENCH_bench_sharded.json), --quick (S in {1,4} on
/// a smaller workload, skipping the scaling gate — smoke only).
///
/// Extra env knobs: FDRMS_BENCH_N (dataset size, default 60000),
/// FDRMS_BENCH_DIM (default 4).

#include <algorithm>
#include <cstring>

#include "bench_common.h"
#include "eval/service_driver.h"
#include "shard/sharded_service.h"

using namespace fdrms;

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_sharded", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int n =
      static_cast<int>(GetEnvLong("FDRMS_BENCH_N", quick ? 8000 : 60000));
  const int d = static_cast<int>(GetEnvLong("FDRMS_BENCH_DIM", 4));
  const int r = 20;
  PointSet ps = GenerateIndep(n, d, 909);
  Workload wl(&ps, 2024);
  std::cout << "Sharded serving layer: n=" << n << " d=" << d << " r=" << r
            << "/shard (" << wl.operations().size() << " ops per run)\n\n";

  std::vector<int> shard_counts = quick ? std::vector<int>{1, 4}
                                        : std::vector<int>{1, 2, 4, 8};

  TablePrinter table({"shards", "wall_ops/s", "cap_ops/s", "speedup",
                      "busy_max_s", "balance", "p99_us", "stale_mean", "ok"});
  bool all_consistent = true;
  double base_capacity = 0.0;
  double capacity_at_4 = 0.0;
  for (int num_shards : shard_counts) {
    ShardedLoadOptions lopt;
    lopt.num_readers = 2;
    lopt.num_submitters = 2;
    lopt.service.num_shards = num_shards;
    lopt.service.shard.algo = bench::TunedFdRms(1, r);
    lopt.service.shard.queue_capacity = 4096;
    lopt.service.shard.max_batch = 64;
    ShardedLoadResult res = RunShardedLoad(wl, lopt);
    all_consistent = all_consistent && res.consistent &&
                     res.ops_applied + res.ops_rejected == res.ops_submitted;
    if (num_shards == 1) base_capacity = res.update_capacity;
    if (num_shards == 4) capacity_at_4 = res.update_capacity;
    const double speedup =
        base_capacity > 0.0 ? res.update_capacity / base_capacity : 0.0;
    // Balance: the busiest shard's share of applied ops, relative to the
    // perfectly even share (1.0 = exactly balanced).
    uint64_t max_applied = 0;
    for (uint64_t a : res.per_shard_applied) {
      max_applied = std::max(max_applied, a);
    }
    const double balance =
        res.ops_applied > 0
            ? static_cast<double>(max_applied) * num_shards /
                  static_cast<double>(res.ops_applied)
            : 0.0;
    double busy_max = 0.0;
    for (double b : res.per_shard_busy_seconds) {
      busy_max = std::max(busy_max, b);
    }
    table.BeginRow();
    table.AddInt(num_shards);
    table.AddNumber(res.update_throughput, 1);
    table.AddNumber(res.update_capacity, 1);
    table.AddNumber(speedup, 2);
    table.AddNumber(busy_max, 3);
    table.AddNumber(balance, 2);
    table.AddNumber(res.publish_p99_us, 0);
    table.AddNumber(res.mean_staleness_ops, 2);
    table.AddCell(res.consistent ? "yes" : "NO");
    json.AddCase(
        "shards=" + std::to_string(num_shards),
        {{"wall_ops_per_s", res.update_throughput},
         {"capacity_ops_per_s", res.update_capacity},
         {"capacity_speedup_vs_1", speedup},
         {"writer_busy_seconds_max", busy_max},
         {"balance_max_over_even", balance},
         {"publish_p50_us", res.publish_p50_us},
         {"publish_p99_us", res.publish_p99_us},
         {"mean_staleness_ops", res.mean_staleness_ops},
         {"wall_seconds", res.wall_seconds},
         {"query_reads_per_s", res.query_throughput},
         {"ops_applied", static_cast<double>(res.ops_applied)},
         {"merged_result_size", static_cast<double>(res.final_result_size)},
         {"merged_union_size", static_cast<double>(res.final_union_size)},
         // Read-path cache behaviour (constellation registry counters).
         {"merge_cache_hits", static_cast<double>(res.merge_cache_hits)},
         {"merge_cache_misses", static_cast<double>(res.merge_cache_misses)},
         {"merge_recovers", static_cast<double>(res.merge_recovers)}});
  }
  table.Print(std::cout);
  std::cout << "\n";

  // Regret-ratio oracle on the merged result (fdrms_test.cpp's bound):
  // replay the stream in order through S=4 shards, then check that every
  // utility in the shared sampled prefix is covered by the merged set at
  // (1-eps) of the brute-force optimum over the live tuples.
  const int kOracleShards = 4;
  ShardedServiceOptions oracle_opt;
  oracle_opt.num_shards = kOracleShards;
  oracle_opt.shard.algo = bench::TunedFdRms(1, r);
  oracle_opt.shard.queue_capacity = 4096;
  oracle_opt.shard.max_batch = 64;
  const double eps = oracle_opt.shard.algo.eps;
  ShardedFdRmsService oracle(d, oracle_opt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  bool oracle_ok = oracle.Start(initial).ok();
  if (oracle_ok) {
    for (const Operation& op : wl.operations()) {
      Status st = op.is_insert ? oracle.SubmitInsert(op.id, ps.Get(op.id))
                               : oracle.SubmitDelete(op.id);
      oracle_ok = oracle_ok && st.ok();
    }
    oracle_ok = oracle_ok && oracle.Flush().ok();
  }
  double worst_ratio = 0.0;
  int checked = 0;
  if (oracle_ok) {
    auto merged = oracle.Query();
    oracle_ok = oracle.Stop().ok() && merged != nullptr &&
                merged->ops_rejected == 0;
    if (oracle_ok) {
      const std::vector<int> live =
          wl.LiveIdsAfter(static_cast<int>(wl.operations().size()) - 1);
      const std::vector<Point>& utilities =
          oracle.shard(0).algorithm().topk().utilities();
      // Cap the sweep: the bound holds per utility, a prefix sample keeps
      // the brute-force omega pass proportionate at bench scale.
      checked = std::min(merged->min_sample_size_m, 256);
      for (int i = 0; i < checked && oracle_ok; ++i) {
        const Point& u = utilities[i];
        double omega = 0.0;
        for (int id : live) omega = std::max(omega, Dot(u, ps.Get(id)));
        double best = 0.0;
        for (int id : merged->ids) best = std::max(best, Dot(u, ps.Get(id)));
        if (omega > 0.0) {
          worst_ratio = std::max(worst_ratio, 1.0 - best / omega);
        }
        oracle_ok = best >= (1.0 - eps) * omega - 1e-9;
      }
      json.AddCase("oracle_s4",
                   {{"eps", eps},
                    {"worst_regret_ratio", worst_ratio},
                    {"utilities_checked", static_cast<double>(checked)},
                    {"merged_result_size",
                     static_cast<double>(merged->ids.size())}});
    }
  }

  // Live rebalancing: start at S=2 and AddShard twice while the workload
  // churns — the constellation reaches S=4 online. Reads must never block
  // or error (null_queries == 0, every view consistent), staleness stays
  // bounded, and the dip is reported as the applied-ops throughput inside
  // the migration windows relative to the whole run.
  std::cout << "Online rebalancing: S=2 -> 4 via AddShard under churn\n\n";
  ShardedLoadOptions mopt;
  mopt.num_readers = 2;
  mopt.num_submitters = 2;
  mopt.service.num_shards = 2;
  mopt.service.shard.algo = bench::TunedFdRms(1, r);
  mopt.service.shard.queue_capacity = 4096;
  mopt.service.shard.max_batch = 64;
  using Event = ShardedLoadOptions::MigrationEvent;
  mopt.migrations.push_back({Event::Kind::kAddShard, 0.33, {}});
  mopt.migrations.push_back({Event::Kind::kAddShard, 0.66, {}});
  ShardedLoadResult mres = RunShardedLoad(wl, mopt);
  const double dip_ratio =
      mres.update_throughput > 0.0
          ? mres.migration_update_throughput / mres.update_throughput
          : 0.0;
  // Per-event cost (only the duration is attributable to one event; the
  // dip/staleness/consistency numbers below are whole-run aggregates).
  for (size_t i = 0; i < mres.migration_seconds.size(); ++i) {
    std::cout << "  AddShard#" << i + 1 << ": "
              << mres.migration_seconds[i] << " s\n";
  }
  TablePrinter mtable({"events", "sec_total", "epoch", "shards", "dip",
                       "stale_max", "null_reads", "ok"});
  mtable.BeginRow();
  mtable.AddInt(static_cast<long>(mres.migrations_attempted));
  mtable.AddNumber(mres.migration_seconds_total, 3);
  mtable.AddInt(static_cast<long>(mres.final_epoch));
  mtable.AddInt(mres.final_num_shards);
  mtable.AddNumber(dip_ratio, 2);
  mtable.AddNumber(mres.max_staleness_ops, 0);
  mtable.AddInt(static_cast<long>(mres.null_queries));
  mtable.AddCell(mres.consistent ? "yes" : "NO");
  mtable.Print(std::cout);
  std::cout << "\n";
  const bool rebalance_ok =
      mres.consistent && mres.null_queries == 0 &&
      mres.migrations_attempted == 2 && mres.migrations_failed == 0 &&
      mres.final_num_shards == 4 && mres.submit_failures == 0 &&
      mres.ops_applied + mres.ops_rejected == mres.ops_submitted;
  json.AddCase(
      "addshard_2_to_4",
      {{"migrations", static_cast<double>(mres.migrations_attempted)},
       {"migration_failures", static_cast<double>(mres.migrations_failed)},
       {"migration_seconds_total", mres.migration_seconds_total},
       {"migration_ops_per_s", mres.migration_update_throughput},
       {"throughput_dip_ratio", dip_ratio},
       {"wall_ops_per_s", mres.update_throughput},
       {"final_epoch", static_cast<double>(mres.final_epoch)},
       {"final_shards", static_cast<double>(mres.final_num_shards)},
       {"max_staleness_ops", mres.max_staleness_ops},
       {"mean_staleness_ops", mres.mean_staleness_ops},
       {"null_queries", static_cast<double>(mres.null_queries)},
       {"query_reads_per_s", mres.query_throughput},
       {"merge_cache_hits", static_cast<double>(mres.merge_cache_hits)},
       {"merge_cache_misses", static_cast<double>(mres.merge_cache_misses)},
       // Trace events recorded over the migration lifecycle (4 per epoch:
       // freeze/drain/replay/cutover).
       {"migration_trace_events",
        static_cast<double>(mres.migration_trace.size())},
       {"consistent", mres.consistent ? 1.0 : 0.0}});

  const bool scaling_ok =
      quick || (base_capacity > 0.0 && capacity_at_4 >= 2.0 * base_capacity);
  bench::ShapeCheck(all_consistent,
                    "every reader observed only consistent merged snapshots "
                    "and all submitted operations were consumed");
  bench::ShapeCheck(scaling_ok,
                    quick ? "scaling gate skipped under --quick"
                          : "S=4 writer-parallel capacity >= 2x S=1");
  bench::ShapeCheck(oracle_ok,
                    "merged result meets the (1-eps) regret-ratio oracle "
                    "bound on the shared utility prefix (worst ratio " +
                        std::to_string(worst_ratio) + ", eps " +
                        std::to_string(eps) + ")");
  bench::ShapeCheck(rebalance_ok,
                    "S=2 -> 4 AddShard completed online: reads never "
                    "blocked or errored, all operations consumed exactly "
                    "once, staleness bounded (max " +
                        std::to_string(mres.max_staleness_ops) + " ops)");
  return json.Write() && all_consistent && scaling_ok && oracle_ok &&
                 rebalance_ok
             ? 0
             : 1;
}
