/// Figure 6 — update time and maximum regret ratios with varying the result
/// size r for 1-RMS (a.k.a. the r-regret query), all algorithms, all six
/// datasets.
///
/// Shapes to reproduce (Section IV-B):
///  * FD-RMS updates orders of magnitude faster than every static baseline
///    (which must recompute whenever the skyline changes);
///  * FD-RMS regret stays within ~0.01-0.02 of the best static algorithm;
///  * slow baselines blow their run budget on large-skyline datasets, like
///    the paper's "GREEDY cannot provide results within one day".

#include <iostream>

#include "bench_common.h"

using namespace fdrms;

int main() {
  bool fdrms_fastest_everywhere = true;
  bool fdrms_quality_close = true;
  for (const auto& spec : PaperDatasets()) {
    int n = bench::ScaledN(spec.paper_n);
    PointSet ps = std::move(GenerateByName(spec.name, n, 303)).ValueOr(PointSet(1));
    Workload wl(&ps, 999);
    WorkloadRunner runner(&wl, /*k=*/1, bench::EvalVectors(), 5);
    std::vector<int> r_values =
        spec.name == "BB" ? std::vector<int>{5, 15, 25}
                          : std::vector<int>{10, 50, 100};
    std::cout << "Fig. 6 (" << spec.name << "): k=1, n=" << n
              << ", d=" << spec.dim << "\n\n";
    TablePrinter table({"algorithm", "r", "time(ms)", "mrr"});
    auto algos = bench::Fig6Algorithms();
    std::vector<bench::ProbeGate> gate(algos.size());
    for (int r : r_values) {
      std::cerr << "# fig6: " << spec.name << " r=" << r << "\n";
      RunResult fd = runner.RunFdRms(bench::AutoTunedFdRms(wl, 1, r));
      table.BeginRow();
      table.AddCell("FD-RMS");
      table.AddInt(r);
      table.AddNumber(fd.mean_update_ms, 4);
      table.AddNumber(fd.mean_regret, 4);
      double best_static_regret = 1.0;
      for (size_t a = 0; a < algos.size(); ++a) {
        table.BeginRow();
        table.AddCell(algos[a]->name());
        table.AddInt(r);
        if (gate[a].PredictSkip(r)) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        double probe = bench::ProbeStaticMs(*algos[a], wl, 1, r);
        gate[a].Record(r, probe);
        if (gate[a].tripped()) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        RunResult res = runner.RunStatic(*algos[a], r, /*max_timed_runs=*/3);
        table.AddNumber(res.mean_update_ms, 4);
        table.AddNumber(res.mean_regret, 4);
        best_static_regret = std::min(best_static_regret, res.mean_regret);
        // The paper itself reports static algorithms can edge out FD-RMS on
        // BB (tiny skyline, rare changes) — exclude BB from the claim.
        if (res.mean_update_ms < fd.mean_update_ms && spec.name != "BB") {
          fdrms_fastest_everywhere = false;
          std::cerr << "# note: " << algos[a]->name() << " beat FD-RMS on "
                    << spec.name << " r=" << r << "\n";
        }
      }
      // 0.05 band: the paper's "differences less than 0.01" holds at its
      // full scale and r >= 50; at laptop scale the small-r, high-d corner
      // (Movie r=10) spreads all algorithms by a few hundredths.
      if (fd.mean_regret > best_static_regret + 0.05) {
        fdrms_quality_close = false;
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  bench::ShapeCheck(fdrms_fastest_everywhere,
                    "FD-RMS mean update time below every static baseline on "
                    "every dataset and r (Fig. 6 top rows)");
  bench::ShapeCheck(fdrms_quality_close,
                    "FD-RMS regret within 0.05 of the best static algorithm "
                    "(Fig. 6 bottom rows)");
  return 0;
}
