/// Google-benchmark microbenchmarks of the substrates: kd-tree queries,
/// cone-tree pruning, LP solves, skyline maintenance, dynamic set-cover
/// operations, the serving layer's update queues (mutex reference vs
/// lock-free ring), and the SoA scoring kernel vs the scalar Dot loop.
/// These are the per-operation costs the complexity analysis of Section
/// III-B — and the serving layer's throughput model — reason about.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/generators.h"
#include "geometry/sampling.h"
#include "geometry/score_kernel.h"
#include "geometry/simd_dispatch.h"
#include "index/conetree.h"
#include "index/kdtree.h"
#include "lp/simplex.h"
#include "serve/bounded_queue.h"
#include "serve/mpsc_ring_queue.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "setcover/dynamic_set_cover.h"
#include "skyline/skyline.h"
#include "topk/topk_maintainer.h"

namespace fdrms {
namespace {

void BM_KdTreeTopK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  PointSet data = GenerateIndep(n, d, 1);
  KdTree tree(d);
  for (int i = 0; i < n; ++i) (void)tree.Insert(i, data.Get(i));
  Rng rng(2);
  std::vector<Point> queries = SampleDirections(64, d, &rng);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.TopK(queries[qi++ % queries.size()], 5));
  }
}
BENCHMARK(BM_KdTreeTopK)->Args({1000, 4})->Args({10000, 4})->Args({10000, 8});

void BM_KdTreeInsertDelete(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PointSet data = GenerateIndep(n + 100000, 6, 3);
  KdTree tree(6);
  for (int i = 0; i < n; ++i) (void)tree.Insert(i, data.Get(i));
  int next = n;
  for (auto _ : state) {
    (void)tree.Insert(next, data.Get(next));
    (void)tree.Delete(next - n);
    ++next;
  }
}
BENCHMARK(BM_KdTreeInsertDelete)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ConeTreeFindReached(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(4);
  auto utils = SampleUtilityVectors(m, 6, &rng);
  ConeTree cone(utils);
  // Realistic thresholds: most utilities unreachable by a random point.
  for (int i = 0; i < m; ++i) cone.SetThreshold(i, 0.9 + 0.1 * rng.Uniform());
  PointSet data = GenerateIndep(256, 6, 5);
  int pi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cone.FindReached(data.Get(pi++ % 256)));
  }
}
BENCHMARK(BM_ConeTreeFindReached)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ConeTreeBruteForce(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(4);
  auto utils = SampleUtilityVectors(m, 6, &rng);
  ConeTree cone(utils);
  for (int i = 0; i < m; ++i) cone.SetThreshold(i, 0.9 + 0.1 * rng.Uniform());
  PointSet data = GenerateIndep(256, 6, 5);
  int pi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cone.FindReachedBruteForce(data.Get(pi++ % 256)));
  }
}
BENCHMARK(BM_ConeTreeBruteForce)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RegretWitnessLp(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int q_size = static_cast<int>(state.range(1));
  Rng rng(6);
  std::vector<double> p(d);
  for (double& v : p) v = rng.Uniform();
  std::vector<std::vector<double>> q(q_size, std::vector<double>(d));
  for (auto& row : q) {
    for (double& v : row) v = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxRegretForWitness(p, q));
  }
}
BENCHMARK(BM_RegretWitnessLp)->Args({4, 10})->Args({6, 50})->Args({9, 100});

void BM_DynamicSkylineInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PointSet data = GenerateAntiCor(n + 1000000, 6, 7);
  DynamicSkyline sky(6);
  for (int i = 0; i < n; ++i) (void)sky.Insert(i, data.Get(i), nullptr);
  int next = n;
  for (auto _ : state) {
    (void)sky.Insert(next, data.Get(next), nullptr);
    ++next;
  }
}
BENCHMARK(BM_DynamicSkylineInsert)->Arg(1000)->Arg(10000);

void BM_TopKMaintainerUpdate(benchmark::State& state) {
  const int M = static_cast<int>(state.range(0));
  Rng rng(8);
  auto utils = SampleUtilityVectors(M, 6, &rng);
  TopKMaintainer maintainer(6, 3, 0.02, utils);
  PointSet data = GenerateIndep(1000000, 6, 9);
  const int n0 = 5000;
  for (int i = 0; i < n0; ++i) (void)maintainer.Insert(i, data.Get(i), nullptr);
  int next = n0;
  for (auto _ : state) {
    (void)maintainer.Insert(next, data.Get(next), nullptr);
    (void)maintainer.Delete(next - n0, nullptr);
    ++next;
  }
}
BENCHMARK(BM_TopKMaintainerUpdate)->Arg(256)->Arg(1024);

/// One producers→consumer churn through a queue: `producers` threads each
/// blocking-Push their share of `total_ops` ints while the consumer drains
/// PopBatch(64) until close. Returns the wall seconds of the whole churn
/// (thread spawn included — identical overhead for both queue types, and
/// amortized by the op count). This is the serving layer's exact access
/// pattern, so the mutex-vs-ring delta here is the ingestion headroom the
/// ring buys.
template <typename Queue>
double QueueChurnSeconds(int producers, int total_ops) {
  Queue queue(4096);
  std::atomic<uint64_t> consumed{0};
  Stopwatch wall;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(64, &batch)) {
      consumed.fetch_add(batch.size(), std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> workers;
  const int per_producer = total_ops / producers;
  for (int t = 0; t < producers; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_producer; ++i) {
        (void)queue.Push(t * per_producer + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  queue.Close();
  consumer.join();
  const double seconds = wall.ElapsedSeconds();
  benchmark::DoNotOptimize(consumed.load());
  return seconds;
}

constexpr int kQueueChurnOps = 1 << 17;

void BM_QueueMutexReference(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.SetIterationTime(
        QueueChurnSeconds<BoundedQueue<int>>(producers, kQueueChurnOps));
  }
  state.SetItemsProcessed(state.iterations() * kQueueChurnOps);
}
BENCHMARK(BM_QueueMutexReference)->Arg(1)->Arg(2)->Arg(4)->UseManualTime();

void BM_QueueLockFreeRing(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.SetIterationTime(
        QueueChurnSeconds<MpscRingQueue<int>>(producers, kQueueChurnOps));
  }
  state.SetItemsProcessed(state.iterations() * kQueueChurnOps);
}
BENCHMARK(BM_QueueLockFreeRing)->Arg(1)->Arg(2)->Arg(4)->UseManualTime();

/// Scalar reference of the scoring hot path: one point dotted against all
/// M utilities held as separately allocated Points.
void BM_ScoreScalarDotLoop(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(12);
  auto utils = SampleUtilityVectors(m, d, &rng);
  PointSet data = GenerateIndep(256, d, 13);
  std::vector<double> scores(static_cast<size_t>(m));
  int pi = 0;
  for (auto _ : state) {
    const Point& p = data.Get(pi++ % 256);
    for (int i = 0; i < m; ++i) scores[static_cast<size_t>(i)] = Dot(utils[static_cast<size_t>(i)], p);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ScoreScalarDotLoop)
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Args({2048, 16});

/// The same scoring through the contiguous ScoreMatrix and the blocked
/// kernel (geometry/score_kernel.h) at a forced SIMD tier. The scalar tier
/// is the PR 5 blocked-scalar kernel; the dispatched variant below runs
/// whatever cpuid resolves, so dispatched/forced-scalar items_per_second is
/// the SIMD speedup — and the ratio the perf-smoke gate watches (a
/// dispatch regression to scalar drags it to ~1.0 and fails the build).
void ScoreMatrixKernelAtTier(benchmark::State& state, SimdTier tier) {
  if (!SetSimdTier(tier)) {
    state.SkipWithError("tier unsupported on this build/CPU");
    return;
  }
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(12);
  ScoreMatrix mat(SampleUtilityVectors(m, d, &rng));
  PointSet data = GenerateIndep(256, d, 13);
  std::vector<double> scores;
  int pi = 0;
  for (auto _ : state) {
    mat.ScoreAll(data.Get(pi++ % 256), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
  SetSimdTier(BestSupportedSimdTier());
}

void BM_ScoreMatrixKernelForcedScalar(benchmark::State& state) {
  ScoreMatrixKernelAtTier(state, SimdTier::kScalar);
}
BENCHMARK(BM_ScoreMatrixKernelForcedScalar)
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({256, 16})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Args({2048, 16});

void BM_ScoreMatrixKernel(benchmark::State& state) {
  ScoreMatrixKernelAtTier(state, BestSupportedSimdTier());
}
BENCHMARK(BM_ScoreMatrixKernel)
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({256, 16})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Args({2048, 16});

/// The gather kernel (ScoreSubset over a shuffled half of the rows) at the
/// forced-scalar tier vs the dispatched tier — the kd-tree ScoreIds /
/// TopKMaintainer eviction access pattern.
void ScoreSubsetGatherAtTier(benchmark::State& state, SimdTier tier) {
  if (!SetSimdTier(tier)) {
    state.SkipWithError("tier unsupported on this build/CPU");
    return;
  }
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(12);
  ScoreMatrix mat(SampleUtilityVectors(m, d, &rng));
  std::vector<int> idx(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) idx[static_cast<size_t>(i)] = i;
  rng.Shuffle(&idx);
  idx.resize(static_cast<size_t>(m / 2));
  PointSet data = GenerateIndep(256, d, 13);
  std::vector<double> scores(idx.size());
  int pi = 0;
  for (auto _ : state) {
    mat.ScoreSubset(data.Get(pi++ % 256), idx, scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(idx.size()));
  SetSimdTier(BestSupportedSimdTier());
}

void BM_ScoreSubsetGatherForcedScalar(benchmark::State& state) {
  ScoreSubsetGatherAtTier(state, SimdTier::kScalar);
}
BENCHMARK(BM_ScoreSubsetGatherForcedScalar)->Args({2048, 8});

void BM_ScoreSubsetGather(benchmark::State& state) {
  ScoreSubsetGatherAtTier(state, BestSupportedSimdTier());
}
BENCHMARK(BM_ScoreSubsetGather)->Args({2048, 8});

void BM_SetCoverMembershipChurn(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(10);
  DynamicSetCover cover(m);
  const int num_sets = m * 2;
  for (int e = 0; e < m; ++e) {
    for (int j = 0; j < 8; ++j) cover.AddMembership(e, rng.UniformInt(num_sets));
  }
  std::vector<int> universe(m);
  for (int i = 0; i < m; ++i) universe[i] = i;
  cover.InitializeGreedy(universe);
  for (auto _ : state) {
    int e = rng.UniformInt(m);
    int s = rng.UniformInt(num_sets);
    if (rng.Uniform() < 0.5) {
      cover.AddMembership(e, s);
    } else {
      cover.RemoveMembership(e, s);
    }
  }
}
BENCHMARK(BM_SetCoverMembershipChurn)->Arg(256)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// Observability substrate: hot-path instrumentation cost. The serving layer
// sprinkles counter increments and histogram records through the writer
// loop, so these must stay within a few nanoseconds of the bare relaxed
// fetch_add they wrap (the stripe lookup is one thread_local read). CI
// gates the ratio against BM_ObsAtomicFetchAddReference (see
// bench/baselines/obs_overhead_smoke.json).
// ---------------------------------------------------------------------------

void BM_ObsAtomicFetchAddReference(benchmark::State& state) {
  // The floor: one uncontended relaxed fetch_add, no striping.
  static std::atomic<uint64_t> plain{0};
  for (auto _ : state) {
    plain.fetch_add(1, std::memory_order_relaxed);
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(plain.load());
}
BENCHMARK(BM_ObsAtomicFetchAddReference);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total", "bench");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsPow2HistRecord(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Pow2Histogram* hist = registry.GetPow2Histogram("bench_pow2", "bench");
  uint64_t v = 0;
  for (auto _ : state) {
    hist->Record(v++ & 1023);
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_ObsPow2HistRecord);

void BM_ObsLatencyHistRecord(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::LatencyHistogram* hist =
      registry.GetLatencyHistogram("bench_lat_us", "bench");
  double us = 0.0;
  for (auto _ : state) {
    hist->Record(us);
    us += 0.5;
    if (us > 1e6) us = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_ObsLatencyHistRecord);

}  // namespace
}  // namespace fdrms

BENCHMARK_MAIN();
