/// Ablation — the dual-tree (kd-tree + cone tree) top-k maintenance of
/// Section III-C versus a brute-force maintainer that rescans every utility
/// on every operation.
///
/// Shape: the dual-tree prunes most utilities per insertion, so its
/// per-operation cost is far below M scans; the gap widens with M.

#include <iostream>
#include <unordered_map>

#include "bench_common.h"
#include "geometry/sampling.h"
#include "topk/topk_maintainer.h"

using namespace fdrms;

namespace {

/// Brute-force Φ maintenance: recompute the affected utility sets by a full
/// scan per operation (what FD-RMS would pay without TI/UI).
class BruteTopK {
 public:
  BruteTopK(int k, double eps, std::vector<Point> utils)
      : k_(k), eps_(eps), utils_(std::move(utils)) {}

  /// Adds a tuple without recomputing (initial load).
  void BulkLoad(int id, const Point& p) { live_.emplace(id, p); }

  void Insert(int id, const Point& p) {
    live_.emplace(id, p);
    Recompute();
  }
  void Delete(int id) {
    live_.erase(id);
    Recompute();
  }
  size_t TotalMembers() const {
    size_t total = 0;
    for (const auto& s : approx_) total += s.size();
    return total;
  }

 private:
  void Recompute() {
    approx_.assign(utils_.size(), {});
    for (size_t u = 0; u < utils_.size(); ++u) {
      std::vector<double> scores;
      scores.reserve(live_.size());
      for (const auto& [id, p] : live_) scores.push_back(Dot(utils_[u], p));
      double omega_k = 0.0;
      if (static_cast<int>(scores.size()) >= k_) {
        std::nth_element(scores.begin(), scores.begin() + (k_ - 1),
                         scores.end(), std::greater<>());
        omega_k = scores[k_ - 1];
      }
      double tau = (1.0 - eps_) * omega_k;
      for (const auto& [id, p] : live_) {
        if (Dot(utils_[u], p) >= tau) approx_[u].insert(id);
      }
    }
  }

  int k_;
  double eps_;
  std::vector<Point> utils_;
  std::unordered_map<int, Point> live_;
  std::vector<std::unordered_set<int>> approx_;
};

}  // namespace

int main() {
  const int d = 6;
  const int k = 3;
  const double eps = 0.02;
  const int n0 = 4000;
  const int ops = 400;
  std::cout << "Ablation: dual-tree top-k maintenance vs brute force "
            << "(n0=" << n0 << ", d=" << d << ", k=" << k << ")\n\n";
  TablePrinter table({"M", "dual-tree(us/op)", "brute(us/op)", "speedup"});
  bool widening = true;
  double prev_speedup = 0.0;
  for (int M : {128, 512, 2048}) {
    Rng rng(2024);
    auto utils = SampleUtilityVectors(M, d, &rng);
    TopKMaintainer dual(d, k, eps, utils);
    BruteTopK brute(k, eps, utils);
    PointSet data = GenerateIndep(n0 + ops, d, 5);
    for (int i = 0; i < n0; ++i) {
      (void)dual.Insert(i, data.Get(i), nullptr);
    }
    // Dual tree timing (brute is bulk-loaded lazily on its first op).
    Stopwatch dual_watch;
    for (int i = 0; i < ops; ++i) {
      if (i % 2 == 0) {
        (void)dual.Insert(n0 + i, data.Get(n0 + i), nullptr);
      } else {
        (void)dual.Delete(n0 + i - 1, nullptr);
      }
    }
    double dual_us = dual_watch.ElapsedMicros() / ops;
    // Brute force: measure a small sample; a full replay is minutes.
    for (int i = 0; i < n0; ++i) brute.BulkLoad(i, data.Get(i));
    const int brute_sample = 10;
    Stopwatch brute_watch;
    for (int i = 0; i < brute_sample; ++i) {
      brute.Insert(n0 + i, data.Get(n0 + i));
    }
    double brute_us = brute_watch.ElapsedMicros() / brute_sample;
    double speedup = brute_us / std::max(1e-9, dual_us);
    widening &= speedup > prev_speedup;
    prev_speedup = speedup;
    table.BeginRow();
    table.AddInt(M);
    table.AddNumber(dual_us, 1);
    table.AddNumber(brute_us, 1);
    table.AddNumber(speedup, 1);
  }
  table.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(prev_speedup > 10.0,
                    "dual-tree maintenance at least 10x cheaper than "
                    "brute-force rescans at M=2048");
  bench::ShapeCheck(widening, "the dual-tree advantage grows with M");
  return 0;
}
