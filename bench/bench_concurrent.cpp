/// Concurrent serving throughput: replays the paper's dynamic workload
/// through FdRmsService while reader threads hammer the lock-free snapshot,
/// sweeping the submitter count (1/2/4/8 — the MPSC ring's contention axis)
/// plus a reader-heavy configuration. Reported per configuration: applied
/// update ops/s, snapshot reads/s, the queue-backlog staleness readers
/// actually observed (mean and max, in operations), publication latency
/// quantiles, and the writer's batching telemetry (queue-depth p50/p99 and
/// the final adaptive batch bound; --json additionally carries the full
/// power-of-two batch-size histogram).
///
/// Shapes to expect: update throughput stays within one writer's budget
/// regardless of reader count (readers are off the write path), query
/// throughput scales with reader threads until the host runs out of cores,
/// staleness stays bounded by the queue capacity, and the adaptive batch
/// bound climbs toward max_batch whenever the submitters outrun the writer.
///
/// Flags: --json (write BENCH_bench_concurrent.json), --quick (single
/// configuration, for smoke runs).
///
/// Extra env knobs: FDRMS_BENCH_N (dataset size), FDRMS_BENCH_DIM.

#include <cstring>

#include "bench_common.h"
#include "eval/service_driver.h"
#include "obs/pow2_hist.h"

using namespace fdrms;

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_concurrent", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int n = static_cast<int>(GetEnvLong("FDRMS_BENCH_N", 4000));
  const int d = static_cast<int>(GetEnvLong("FDRMS_BENCH_DIM", 4));
  const int r = 20;
  PointSet ps = GenerateIndep(n, d, 909);
  Workload wl(&ps, 2024);
  std::cout << "Concurrent serving layer: n=" << n << " d=" << d << " r=" << r
            << " (" << wl.operations().size() << " ops per run)\n\n";

  std::vector<std::pair<int, int>> configs;  // (readers, submitters)
  if (quick) {
    configs = {{4, 2}};
  } else {
    // Submitter sweep at a fixed reader pool, then a reader-heavy case.
    configs = {{4, 1}, {4, 2}, {4, 4}, {4, 8}, {16, 4}};
  }

  TablePrinter table({"readers", "submitters", "update_ops/s", "reads/s",
                      "stale_mean", "stale_max", "pub_p50_us", "pub_p99_us",
                      "depth_p50", "depth_p99", "eff_batch", "batches", "ok"});
  bool all_consistent = true;
  for (const auto& [readers, submitters] : configs) {
    ServiceLoadOptions lopt;
    lopt.num_readers = readers;
    lopt.num_submitters = submitters;
    lopt.service.algo = bench::TunedFdRms(1, r);
    lopt.service.queue_capacity = 4096;
    lopt.service.max_batch = 64;
    ServiceLoadResult res = RunServiceLoad(wl, lopt);
    all_consistent = all_consistent && res.consistent &&
                     res.ops_applied + res.ops_rejected == res.ops_submitted;
    table.BeginRow();
    table.AddInt(readers);
    table.AddInt(submitters);
    table.AddNumber(res.update_throughput, 1);
    table.AddNumber(res.query_throughput, 1);
    table.AddNumber(res.mean_staleness_ops, 2);
    table.AddNumber(res.max_staleness_ops, 0);
    table.AddNumber(res.publish_p50_us, 0);
    table.AddNumber(res.publish_p99_us, 0);
    table.AddNumber(res.queue_depth_p50, 0);
    table.AddNumber(res.queue_depth_p99, 0);
    table.AddInt(static_cast<int>(res.effective_max_batch));
    table.AddInt(static_cast<int>(res.batches));
    table.AddCell(res.consistent ? "yes" : "NO");
    std::vector<std::pair<std::string, double>> metrics = {
        {"update_ops_per_s", res.update_throughput},
        {"query_reads_per_s", res.query_throughput},
        {"mean_staleness_ops", res.mean_staleness_ops},
        {"max_staleness_ops", res.max_staleness_ops},
        {"publish_p50_us", res.publish_p50_us},
        {"publish_p99_us", res.publish_p99_us},
        // Registry-derived tails (cumulative latency histogram scrape).
        {"publish_p90_us", res.publish_p90_us},
        {"publish_p999_us", res.publish_p999_us},
        {"queue_depth_p50", res.queue_depth_p50},
        {"queue_depth_p99", res.queue_depth_p99},
        {"effective_max_batch", static_cast<double>(res.effective_max_batch)},
        {"writer_busy_seconds", res.writer_busy_seconds},
        {"wall_seconds", res.wall_seconds},
        {"batches", static_cast<double>(res.batches)},
        {"ops_applied", static_cast<double>(res.ops_applied)},
        {"queries", static_cast<double>(res.queries)}};
    // Batch-size histogram: one metric per power-of-two bucket, keyed by
    // the bucket's lower bound (only non-empty buckets are emitted).
    for (size_t b = 0; b < res.batch_size_hist.size(); ++b) {
      if (res.batch_size_hist[b] == 0) continue;
      metrics.emplace_back(
          "batch_size_hist_ge_" + std::to_string(obs::Pow2HistBucketFloor(b)),
          static_cast<double>(res.batch_size_hist[b]));
    }
    json.AddCase("readers=" + std::to_string(readers) +
                     ",submitters=" + std::to_string(submitters),
                 std::move(metrics));
  }
  table.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(all_consistent,
                    "every reader observed only consistent snapshots and all "
                    "submitted operations were consumed");
  return json.Write() && all_consistent ? 0 : 1;
}
