/// Concurrent serving throughput: replays the paper's dynamic workload
/// through FdRmsService while reader threads hammer the lock-free snapshot,
/// sweeping the reader and submitter counts. Reported per configuration:
/// applied update ops/s, snapshot reads/s, and the queue-backlog staleness
/// readers actually observed (mean and max, in operations).
///
/// Shapes to expect: update throughput stays within one writer's budget
/// regardless of reader count (readers are off the write path), query
/// throughput scales with reader threads until the host runs out of cores,
/// and staleness stays bounded by the queue capacity.
///
/// Flags: --json (write BENCH_bench_concurrent.json), --quick (single
/// configuration, for smoke runs).
///
/// Extra env knobs: FDRMS_BENCH_N (dataset size), FDRMS_BENCH_DIM.

#include <cstring>

#include "bench_common.h"
#include "eval/service_driver.h"

using namespace fdrms;

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_concurrent", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int n = static_cast<int>(GetEnvLong("FDRMS_BENCH_N", 4000));
  const int d = static_cast<int>(GetEnvLong("FDRMS_BENCH_DIM", 4));
  const int r = 20;
  PointSet ps = GenerateIndep(n, d, 909);
  Workload wl(&ps, 2024);
  std::cout << "Concurrent serving layer: n=" << n << " d=" << d << " r=" << r
            << " (" << wl.operations().size() << " ops per run)\n\n";

  std::vector<std::pair<int, int>> configs;  // (readers, submitters)
  if (quick) {
    configs = {{4, 2}};
  } else {
    configs = {{0, 1}, {1, 1}, {4, 2}, {8, 2}, {16, 4}};
  }

  TablePrinter table({"readers", "submitters", "update_ops/s", "reads/s",
                      "stale_mean", "stale_max", "pub_p50_us", "pub_p99_us",
                      "batches", "ok"});
  bool all_consistent = true;
  for (const auto& [readers, submitters] : configs) {
    ServiceLoadOptions lopt;
    lopt.num_readers = readers;
    lopt.num_submitters = submitters;
    lopt.service.algo = bench::TunedFdRms(1, r);
    lopt.service.queue_capacity = 4096;
    lopt.service.max_batch = 64;
    ServiceLoadResult res = RunServiceLoad(wl, lopt);
    all_consistent = all_consistent && res.consistent &&
                     res.ops_applied + res.ops_rejected == res.ops_submitted;
    table.BeginRow();
    table.AddInt(readers);
    table.AddInt(submitters);
    table.AddNumber(res.update_throughput, 1);
    table.AddNumber(res.query_throughput, 1);
    table.AddNumber(res.mean_staleness_ops, 2);
    table.AddNumber(res.max_staleness_ops, 0);
    table.AddNumber(res.publish_p50_us, 0);
    table.AddNumber(res.publish_p99_us, 0);
    table.AddInt(static_cast<int>(res.batches));
    table.AddCell(res.consistent ? "yes" : "NO");
    json.AddCase(
        "readers=" + std::to_string(readers) +
            ",submitters=" + std::to_string(submitters),
        {{"update_ops_per_s", res.update_throughput},
         {"query_reads_per_s", res.query_throughput},
         {"mean_staleness_ops", res.mean_staleness_ops},
         {"max_staleness_ops", res.max_staleness_ops},
         {"publish_p50_us", res.publish_p50_us},
         {"publish_p99_us", res.publish_p99_us},
         {"writer_busy_seconds", res.writer_busy_seconds},
         {"wall_seconds", res.wall_seconds},
         {"batches", static_cast<double>(res.batches)},
         {"ops_applied", static_cast<double>(res.ops_applied)},
         {"queries", static_cast<double>(res.queries)}});
  }
  table.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(all_consistent,
                    "every reader observed only consistent snapshots and all "
                    "submitted operations were consumed");
  return json.Write() && all_consistent ? 0 : 1;
}
