/// Figure 8 — scalability on the synthetic datasets: vary the
/// dimensionality d in [4, 10] at fixed n (panels a-b) and vary n at fixed
/// d = 6 (panels c-d); k = 1, r = 50, Indep and AntiCor.
///
/// Shapes to reproduce: update times rise steeply with d for every
/// algorithm; FD-RMS stays fastest throughout and its regret tracks the
/// best static algorithm; with growing n FD-RMS stays in the same order of
/// magnitude.
///
/// Pass --sweep=d or --sweep=n to run one panel; default runs both.

#include <cstring>
#include <iostream>

#include "bench_common.h"

using namespace fdrms;

namespace {

/// Representative static competitors for the sweep (the paper's plots show
/// all baselines; the full set is exercised in bench_fig6. Sphere and
/// GeoGreedy are the two strongest static algorithms, which is the
/// comparison Fig. 8's text highlights).
std::vector<std::unique_ptr<RmsAlgorithm>> SweepAlgorithms() {
  std::vector<std::unique_ptr<RmsAlgorithm>> algos;
  algos.push_back(std::make_unique<SphereRms>());
  algos.push_back(std::make_unique<GeoGreedyRms>());
  algos.push_back(std::make_unique<HittingSetRms>());
  return algos;
}

bool RunSweep(bool sweep_d, bench::JsonReporter* json) {
  const int r = 50;
  bool fdrms_fastest = true;
  for (const char* family : {"Indep", "AntiCor"}) {
    std::cout << "Fig. 8 (" << family << ", varying " << (sweep_d ? "d" : "n")
              << "): k=1, r=50\n\n";
    TablePrinter table({"algorithm", sweep_d ? "d" : "n", "time(ms)", "mrr"});
    auto algos = SweepAlgorithms();
    std::vector<bench::ProbeGate> gate(algos.size());
    std::vector<std::pair<int, int>> configs;  // (n, d)
    if (sweep_d) {
      int n = bench::ScaledN(100000);
      for (int d = 4; d <= 10; d += 2) configs.emplace_back(n, d);
    } else {
      for (int i = 2; i <= 10; i += 2) {
        configs.emplace_back(bench::ScaledN(100000) * i / 2, 6);
      }
    }
    for (const auto& [n, d] : configs) {
      int x = sweep_d ? d : n;
      std::cerr << "# fig8: " << family << " n=" << n << " d=" << d << "\n";
      PointSet ps = std::strcmp(family, "Indep") == 0
                        ? GenerateIndep(n, d, 777)
                        : GenerateAntiCor(n, d, 777);
      Workload wl(&ps, 2222);
      // mrr estimation cost scales with n; keep the test set smaller here.
      WorkloadRunner runner(&wl, 1, bench::EvalVectors(4000), 5);
      RunResult fd = runner.RunFdRms(bench::AutoTunedFdRms(wl, 1, r));
      table.BeginRow();
      table.AddCell("FD-RMS");
      table.AddInt(x);
      table.AddNumber(fd.mean_update_ms, 4);
      table.AddNumber(fd.mean_regret, 4);
      const std::string sweep_tag =
          std::string(family) + (sweep_d ? ",d=" : ",n=") + std::to_string(x);
      json->AddCase("FD-RMS," + sweep_tag,
                    {{"mean_update_ms", fd.mean_update_ms},
                     {"mean_regret", fd.mean_regret},
                     {"throughput_ops_per_s",
                      fd.mean_update_ms > 0.0 ? 1e3 / fd.mean_update_ms : 0.0}});
      for (size_t a = 0; a < algos.size(); ++a) {
        table.BeginRow();
        table.AddCell(algos[a]->name());
        table.AddInt(x);
        if (gate[a].PredictSkip(x)) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        double probe = bench::ProbeStaticMs(*algos[a], wl, 1, r);
        gate[a].Record(x, probe);
        if (gate[a].tripped()) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        RunResult res = runner.RunStatic(*algos[a], r, /*max_timed_runs=*/2);
        table.AddNumber(res.mean_update_ms, 4);
        table.AddNumber(res.mean_regret, 4);
        json->AddCase(algos[a]->name() + ("," + sweep_tag),
                      {{"mean_update_ms", res.mean_update_ms},
                       {"mean_regret", res.mean_regret},
                       {"throughput_ops_per_s",
                        res.mean_update_ms > 0.0 ? 1e3 / res.mean_update_ms
                                                 : 0.0}});
        if (res.mean_update_ms < fd.mean_update_ms) fdrms_fastest = false;
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return fdrms_fastest;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_fig8_scalability", argc, argv);
  bool run_d = true, run_n = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep=d") == 0) run_n = false;
    if (std::strcmp(argv[i], "--sweep=n") == 0) run_d = false;
  }
  bool ok = true;
  if (run_d) ok &= RunSweep(/*sweep_d=*/true, &json);
  if (run_n) ok &= RunSweep(/*sweep_d=*/false, &json);
  bench::ShapeCheck(ok,
                    "FD-RMS outperforms the static baselines across the d and "
                    "n sweeps (Fig. 8)");
  json.Write();
  return 0;
}
