/// Figure 5 — effect of the parameter ε on FD-RMS: per-operation update
/// time and maximum regret ratio for k = 1 (r = 20 on BB, 50 elsewhere),
/// sweeping ε over powers of two like the paper's [2^0 … 2^10] × 1e-4 grid.
///
/// Shape to reproduce: update time grows markedly with ε (denser Φ sets,
/// larger m); regret first improves with ε then flattens/degrades once
/// ε approaches the optimal regret ε*_{k,r}.

#include <iostream>

#include "bench_common.h"

using namespace fdrms;

int main() {
  const std::vector<double> eps_grid = {0.0001, 0.0016, 0.0032, 0.0064,
                                        0.0128, 0.0256, 0.0512};
  bool time_grows_everywhere = true;
  for (const auto& spec : PaperDatasets()) {
    int n = bench::ScaledN(spec.paper_n);
    int r = spec.name == "BB" ? 20 : 50;
    PointSet ps = std::move(GenerateByName(spec.name, n, 101)).ValueOr(PointSet(1));
    Workload wl(&ps, 2020);
    WorkloadRunner runner(&wl, /*k=*/1, bench::EvalVectors(), 3);
    std::cout << "Fig. 5 (" << spec.name << "): FD-RMS vs eps  (n=" << n
              << ", d=" << spec.dim << ", k=1, r=" << r << ")\n\n";
    TablePrinter table({"eps", "m", "time(ms)", "mrr"});
    double first_time = -1.0, last_time = 0.0;
    for (double eps : eps_grid) {
      FdRmsOptions opt;
      opt.k = 1;
      opt.r = r;
      opt.eps = eps;
      opt.max_utilities =
          static_cast<int>(GetEnvLong("FDRMS_MAX_UTILITIES", 2048));
      opt.seed = 97;
      RunResult res = runner.RunFdRms(opt);
      if (first_time < 0) first_time = res.mean_update_ms;
      last_time = res.mean_update_ms;
      table.BeginRow();
      table.AddNumber(eps, 4);
      table.AddInt(res.final_m);
      table.AddNumber(res.mean_update_ms, 4);
      table.AddNumber(res.mean_regret, 4);
    }
    table.Print(std::cout);
    std::cout << "\n";
    time_grows_everywhere &= last_time > first_time;
  }
  bench::ShapeCheck(time_grows_everywhere,
                    "FD-RMS update time increases with eps on every dataset "
                    "(Fig. 5 red lines)");
  return 0;
}
