#ifndef FDRMS_BENCH_BENCH_COMMON_H_
#define FDRMS_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared plumbing for the per-figure bench binaries (DESIGN.md §5).
///
/// Scaling: the paper's experiments ran hours on a 256 GB server; every
/// bench here defaults to a laptop-scale fraction of the paper's dataset
/// sizes and can be scaled back up via environment variables:
///   FDRMS_BENCH_SCALE        fraction of each dataset's paper size
///                            (default 0.02)
///   FDRMS_EVAL_VECTORS       utility test-set size for mrr estimation
///                            (paper: 500000; default here: 10000)
///   FDRMS_STATIC_RUN_BUDGET_MS  per-run budget for a static baseline; a
///                            config whose single run exceeds it is
///                            reported as "timeout", mirroring the paper's
///                            "cannot provide results within one day"
///                            (default 20000)
///   FDRMS_TIME_ALL_RUNS      time every skyline-trigger recomputation
///                            instead of a sample (slow; default off)

#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/dmm.h"
#include "baselines/greedy.h"
#include "baselines/kernel_hs.h"
#include "baselines/rms_algorithm.h"
#include "baselines/sphere.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/fdrms.h"
#include "data/generators.h"
#include "eval/runner.h"
#include "eval/tuning.h"
#include "eval/workload.h"

namespace fdrms {
namespace bench {

inline double BenchScale() { return GetEnvDouble("FDRMS_BENCH_SCALE", 0.02); }

inline int EvalVectors(int fallback = 10000) {
  return static_cast<int>(GetEnvLong("FDRMS_EVAL_VECTORS", fallback));
}

inline double StaticRunBudgetMs() {
  return GetEnvDouble("FDRMS_STATIC_RUN_BUDGET_MS", 8000.0);
}

/// Paper size scaled to bench scale, floored to something meaningful.
inline int ScaledN(int paper_n) {
  int n = static_cast<int>(paper_n * BenchScale());
  return std::max(n, 500);
}

/// The ε/M choice of Section III-C, condensed: larger budgets want smaller
/// ε (more utility vectors, tighter top-k sets).
inline FdRmsOptions TunedFdRms(int k, int r, uint64_t seed = 97) {
  FdRmsOptions opt;
  opt.k = k;
  opt.r = r;
  opt.eps = std::min(0.08, std::max(0.005, 0.5 / r));
  opt.max_utilities =
      static_cast<int>(GetEnvLong("FDRMS_MAX_UTILITIES", 2048));
  opt.seed = seed;
  return opt;
}

/// The paper's full tuning procedure: trial-and-error ε selection on the
/// workload's initial snapshot (Section III-C), run once per configuration
/// before the timed replay.
inline FdRmsOptions AutoTunedFdRms(const Workload& wl, int k, int r,
                                   uint64_t seed = 97) {
  // Tune on a bounded subsample of the initial snapshot: the procedure is
  // offline in the paper, and ε's sweet spot is a property of the data
  // distribution, not of n.
  const size_t kTuneSample = 2000;
  std::vector<std::pair<int, Point>> tuples;
  const auto& ids = wl.initial_ids();
  size_t stride = std::max<size_t>(1, ids.size() / kTuneSample);
  for (size_t i = 0; i < ids.size(); i += stride) {
    tuples.emplace_back(ids[i], wl.data().Get(ids[i]));
  }
  FdRmsOptions base = TunedFdRms(k, r, seed);
  return AutoTuneEpsilon(tuples, wl.data().dim(), base, /*eval_directions=*/1500)
      .options;
}

/// The 1-RMS algorithm suite of Fig. 6 (everything except FD-RMS).
inline std::vector<std::unique_ptr<RmsAlgorithm>> Fig6Algorithms() {
  std::vector<std::unique_ptr<RmsAlgorithm>> algos;
  algos.push_back(std::make_unique<DmmGreedy>());
  algos.push_back(std::make_unique<DmmRrms>());
  algos.push_back(std::make_unique<EpsKernelRms>());
  algos.push_back(std::make_unique<GeoGreedyRms>());
  algos.push_back(std::make_unique<GreedyRms>());
  algos.push_back(std::make_unique<HittingSetRms>());
  algos.push_back(std::make_unique<SphereRms>());
  return algos;
}

/// The k > 1 suite of Fig. 7 (everything except FD-RMS).
inline std::vector<std::unique_ptr<RmsAlgorithm>> Fig7Algorithms() {
  std::vector<std::unique_ptr<RmsAlgorithm>> algos;
  algos.push_back(std::make_unique<GreedyStarRms>());
  algos.push_back(std::make_unique<EpsKernelRms>());
  algos.push_back(std::make_unique<HittingSetRms>());
  return algos;
}

/// Times one from-scratch run of `algo` on the workload's initial snapshot;
/// used to honor FDRMS_STATIC_RUN_BUDGET_MS before paying for a full
/// replay. Returns milliseconds.
inline double ProbeStaticMs(const RmsAlgorithm& algo, const Workload& wl,
                            int k, int r) {
  Database db;
  db.dim = wl.data().dim();
  for (int id : wl.initial_ids()) {
    db.ids.push_back(id);
    db.points.push_back(wl.data().Get(id));
  }
  Rng rng(555);
  Stopwatch watch;
  (void)algo.Compute(db, k, r, &rng);
  return watch.ElapsedMillis();
}

/// Budget gate for a static algorithm across a parameter sweep: before
/// probing at a new sweep value, extrapolates the last measured probe cost
/// (at least linearly in the value) so a config headed far past the budget
/// is skipped without paying for the run that would discover it.
class ProbeGate {
 public:
  /// True if the config is predicted or known to blow the budget.
  bool PredictSkip(int x) const {
    if (tripped_) return true;
    if (last_ms_ < 0.0) return false;  // never measured: must probe
    double predicted = last_ms_ * static_cast<double>(x) /
                       static_cast<double>(std::max(1, last_x_));
    return predicted > StaticRunBudgetMs();
  }
  /// Records a measured probe; trips the gate when over budget.
  void Record(int x, double ms) {
    last_x_ = x;
    last_ms_ = ms;
    if (ms > StaticRunBudgetMs()) tripped_ = true;
  }
  bool tripped() const { return tripped_; }

 private:
  double last_ms_ = -1.0;
  int last_x_ = 0;
  bool tripped_ = false;
};

/// Prints the standard shape-check footer line.
inline void ShapeCheck(bool ok, const std::string& claim) {
  std::cout << "# shape-check: " << (ok ? "PASS" : "FAIL") << " — " << claim
            << "\n";
}

/// Machine-readable bench output: pass `--json` to a wired bench binary and
/// it writes BENCH_<name>.json next to the working directory, one record
/// per measured case with the per-case mean/throughput numbers. Tables on
/// stdout are unchanged — the JSON is a sidecar for dashboards and
/// regression tooling.
class JsonReporter {
 public:
  /// `name` is the bench binary's short name (e.g. "bench_concurrent");
  /// argv is scanned for `--json`.
  JsonReporter(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) enabled_ = true;
    }
  }

  bool enabled() const { return enabled_; }

  /// Records one case (no-op unless --json was given). Metrics are flat
  /// name/value pairs; non-finite values serialize as null.
  void AddCase(std::string case_name,
               std::vector<std::pair<std::string, double>> metrics) {
    if (!enabled_) return;
    cases_.push_back({std::move(case_name), std::move(metrics)});
  }

  /// Writes BENCH_<name>.json; call once at the end of main. Returns true
  /// on success (and always when --json was not given).
  bool Write() const {
    if (!enabled_) return true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "# json: cannot open " << path << "\n";
      return false;
    }
    out.precision(12);
    out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"cases\": [";
    for (size_t c = 0; c < cases_.size(); ++c) {
      out << (c == 0 ? "" : ",") << "\n    {\"name\": \""
          << Escape(cases_[c].name) << "\", \"metrics\": {";
      for (size_t m = 0; m < cases_[c].metrics.size(); ++m) {
        const auto& [key, value] = cases_[c].metrics[m];
        out << (m == 0 ? "" : ", ") << "\"" << Escape(key) << "\": ";
        if (std::isfinite(value)) {
          out << value;
        } else {
          out << "null";
        }
      }
      out << "}}";
    }
    out << "\n  ]\n}\n";
    out.close();
    if (!out) {
      std::cerr << "# json: write to " << path << " failed\n";
      return false;
    }
    std::cout << "# json: wrote " << path << " (" << cases_.size()
              << " cases)\n";
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(ch) < 0x20) continue;  // drop control chars
      out.push_back(ch);
    }
    return out;
  }

  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  bool enabled_ = false;
  std::vector<Case> cases_;
};

}  // namespace bench
}  // namespace fdrms

#endif  // FDRMS_BENCH_BENCH_COMMON_H_
