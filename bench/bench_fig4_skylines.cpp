/// Figure 4 — skyline sizes of the synthetic datasets, varying the
/// dimensionality d in [4, 10] (left) and the dataset size n (right).
///
/// Shape to reproduce: #skylines grows steeply with d and (sub-linearly)
/// with n, and AntiCor dominates Indep everywhere.

#include <iostream>

#include "bench_common.h"
#include "skyline/skyline.h"

using namespace fdrms;

int main() {
  const int base_n = bench::ScaledN(100000);
  std::cout << "Fig. 4 (left): #skylines vs d (n=" << base_n << ")\n\n";
  TablePrinter by_d({"d", "Indep", "AntiCor"});
  long indep_d4 = 0, indep_d10 = 0, anti_d10 = 0;
  for (int d = 4; d <= 10; ++d) {
    long indep = static_cast<long>(ComputeSkyline(GenerateIndep(base_n, d, 7)).size());
    long anti =
        static_cast<long>(ComputeSkyline(GenerateAntiCor(base_n, d, 7)).size());
    if (d == 4) indep_d4 = indep;
    if (d == 10) {
      indep_d10 = indep;
      anti_d10 = anti;
    }
    by_d.BeginRow();
    by_d.AddInt(d);
    by_d.AddInt(indep);
    by_d.AddInt(anti);
  }
  by_d.Print(std::cout);

  std::cout << "\nFig. 4 (right): #skylines vs n (d=6)\n\n";
  TablePrinter by_n({"n", "Indep", "AntiCor"});
  bool anti_dominates = true;
  long indep_small = 0, indep_large = 0;
  for (int i = 1; i <= 10; ++i) {
    int n = base_n * i / 10 + 100;
    long indep = static_cast<long>(ComputeSkyline(GenerateIndep(n, 6, 9)).size());
    long anti =
        static_cast<long>(ComputeSkyline(GenerateAntiCor(n, 6, 9)).size());
    if (i == 1) indep_small = indep;
    if (i == 10) indep_large = indep;
    anti_dominates &= anti > indep;
    by_n.BeginRow();
    by_n.AddInt(n);
    by_n.AddInt(indep);
    by_n.AddInt(anti);
  }
  by_n.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(indep_d10 > 10 * indep_d4,
                    "skyline size grows steeply with d (Fig. 4 left)");
  bench::ShapeCheck(anti_d10 > indep_d10,
                    "AntiCor skyline exceeds Indep at high d");
  bench::ShapeCheck(anti_dominates && indep_large > indep_small,
                    "skyline grows with n and AntiCor > Indep (Fig. 4 right)");
  return 0;
}
