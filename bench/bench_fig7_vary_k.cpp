/// Figure 7 — update time and maximum regret ratios with varying k in
/// [1, 5] (r = 10 on BB and Indep, 50 elsewhere). Only the k-capable
/// algorithms compete: FD-RMS, GREEDY*, ε-KERNEL, HS.
///
/// Shapes to reproduce: every algorithm slows down as k grows; regret drops
/// with k (by definition); FD-RMS keeps a multi-order-of-magnitude speed
/// lead; its quality is comparable to (usually better than) the baselines.

#include <iostream>

#include "bench_common.h"

using namespace fdrms;

int main() {
  bool fdrms_fastest = true;
  bool regret_drops_with_k = true;
  for (const auto& spec : PaperDatasets()) {
    int n = bench::ScaledN(spec.paper_n);
    int r = (spec.name == "BB" || spec.name == "Indep") ? 10 : 50;
    PointSet ps = std::move(GenerateByName(spec.name, n, 404)).ValueOr(PointSet(1));
    Workload wl(&ps, 555);
    std::cout << "Fig. 7 (" << spec.name << "): n=" << n << ", d=" << spec.dim
              << ", r=" << r << "\n\n";
    TablePrinter table({"algorithm", "k", "time(ms)", "mrr"});
    auto algos = bench::Fig7Algorithms();
    std::vector<bench::ProbeGate> gate(algos.size());
    double fd_prev_regret = 1.0;
    for (int k = 1; k <= 5; ++k) {
      std::cerr << "# fig7: " << spec.name << " k=" << k << "\n";
      WorkloadRunner runner(&wl, k, bench::EvalVectors(), 5);
      RunResult fd = runner.RunFdRms(bench::AutoTunedFdRms(wl, k, r));
      table.BeginRow();
      table.AddCell("FD-RMS");
      table.AddInt(k);
      table.AddNumber(fd.mean_update_ms, 4);
      table.AddNumber(fd.mean_regret, 4);
      if (k > 1 && fd.mean_regret > fd_prev_regret + 0.02) {
        regret_drops_with_k = false;
      }
      fd_prev_regret = fd.mean_regret;
      for (size_t a = 0; a < algos.size(); ++a) {
        table.BeginRow();
        table.AddCell(algos[a]->name());
        table.AddInt(k);
        // The paper reports GREEDY* "fails to return any result within one
        // day when k > 1" on the larger datasets; the gate reproduces that
        // as a budgeted timeout.
        if (gate[a].PredictSkip(k)) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        double probe = bench::ProbeStaticMs(*algos[a], wl, k, r);
        gate[a].Record(k, probe);
        if (gate[a].tripped()) {
          table.AddCell("timeout");
          table.AddCell("-");
          continue;
        }
        RunResult res = runner.RunStatic(*algos[a], r, /*max_timed_runs=*/3);
        table.AddNumber(res.mean_update_ms, 4);
        table.AddNumber(res.mean_regret, 4);
        if (res.mean_update_ms < fd.mean_update_ms) fdrms_fastest = false;
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  bench::ShapeCheck(fdrms_fastest,
                    "FD-RMS faster than GREEDY*, eps-Kernel and HS for every "
                    "k (Fig. 7 top rows)");
  bench::ShapeCheck(regret_drops_with_k,
                    "FD-RMS regret non-increasing in k (Fig. 7 bottom rows)");
  return 0;
}
