/// Ablation — the paper's key design choice: maintain a *stable* set-cover
/// solution incrementally (Algorithm 1) instead of re-running greedy set
/// cover from scratch after every change in Σ.
///
/// We replay identical membership-churn streams into (a) the dynamic
/// stable-cover structure and (b) a from-scratch greedy per batch, and
/// report per-operation cost and solution sizes. Shape: the dynamic
/// structure is orders of magnitude cheaper per operation at equal
/// solution quality (within the O(log m) band).

#include <iostream>

#include "bench_common.h"
#include "setcover/dynamic_set_cover.h"

using namespace fdrms;

int main() {
  Rng rng(13);
  std::cout << "Ablation: stable dynamic set cover vs greedy-from-scratch\n\n";
  TablePrinter table({"m", "sets", "ops", "dynamic(us/op)", "greedy(us/op)",
                      "|C| dyn", "|C| greedy", "speedup"});
  bool always_faster = true;
  bool quality_band = true;
  for (int m : {128, 512, 2048}) {
    const int num_sets = m * 2;
    const int ops = 4000;
    DynamicSetCover dynamic(m);
    // Initial incidence: each element in ~8 random sets.
    std::vector<std::pair<int, int>> memberships;
    for (int e = 0; e < m; ++e) {
      for (int j = 0; j < 8; ++j) {
        memberships.emplace_back(e, rng.UniformInt(num_sets));
      }
    }
    for (auto [e, s] : memberships) dynamic.AddMembership(e, s);
    std::vector<int> universe(m);
    for (int i = 0; i < m; ++i) universe[i] = i;
    dynamic.InitializeGreedy(universe);
    // Pre-generate the churn stream.
    std::vector<std::tuple<bool, int, int>> stream;
    for (int i = 0; i < ops; ++i) {
      stream.emplace_back(rng.Uniform() < 0.5, rng.UniformInt(m),
                          rng.UniformInt(num_sets));
    }
    // (a) dynamic maintenance.
    Stopwatch dyn_watch;
    for (auto [add, e, s] : stream) {
      if (add) {
        dynamic.AddMembership(e, s);
      } else {
        dynamic.RemoveMembership(e, s);
      }
    }
    double dyn_us = dyn_watch.ElapsedMicros() / ops;
    int dyn_size = dynamic.CoverSize();
    // (b) greedy from scratch after every op (measured on a sample of the
    // stream, then charged per op — running all 4000 would take minutes).
    DynamicSetCover greedy_state(m);
    for (auto [e, s] : memberships) greedy_state.AddMembership(e, s);
    const int sample = 40;
    Stopwatch greedy_watch;
    int done = 0;
    for (int i = 0; i < ops && done < sample; i += ops / sample, ++done) {
      auto [add, e, s] = stream[i];
      if (add) {
        greedy_state.AddMembership(e, s);
      } else {
        greedy_state.RemoveMembership(e, s);
      }
      greedy_state.InitializeGreedy(universe);
    }
    double greedy_us = greedy_watch.ElapsedMicros() / done;
    int greedy_size = greedy_state.CoverSize();
    always_faster &= dyn_us < greedy_us;
    quality_band &= dyn_size <= (2 + 2 * std::log2(m)) *
                                    std::max(1, greedy_size);
    table.BeginRow();
    table.AddInt(m);
    table.AddInt(num_sets);
    table.AddInt(ops);
    table.AddNumber(dyn_us, 2);
    table.AddNumber(greedy_us, 2);
    table.AddInt(dyn_size);
    table.AddInt(greedy_size);
    table.AddNumber(greedy_us / std::max(1e-9, dyn_us), 1);
  }
  table.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(always_faster,
                    "incremental stable cover beats greedy-from-scratch per "
                    "operation at every scale");
  bench::ShapeCheck(quality_band,
                    "dynamic solution stays within the Theorem-1 O(log m) "
                    "band of the greedy solution");
  return 0;
}
