/// Table I — statistics of datasets: n, d, #skylines.
///
/// Real datasets are simulated (DESIGN.md §4) and sizes are scaled by
/// FDRMS_BENCH_SCALE; the shape to reproduce is the *relative* skyline
/// density across datasets (BB sparse … Movie very dense).

#include <iostream>

#include "bench_common.h"
#include "skyline/skyline.h"

using namespace fdrms;

int main() {
  std::cout << "Table I: statistics of datasets (scaled by FDRMS_BENCH_SCALE="
            << bench::BenchScale() << ")\n\n";
  TablePrinter table({"Dataset", "n", "d", "#skylines", "density"});
  double bb_density = 0.0, movie_density = 0.0, aq_density = 0.0;
  for (const auto& spec : PaperDatasets()) {
    int n = bench::ScaledN(spec.paper_n);
    PointSet ps = std::move(GenerateByName(spec.name, n, 42)).ValueOr(PointSet(1));
    int skylines = static_cast<int>(ComputeSkyline(ps).size());
    double density = static_cast<double>(skylines) / n;
    if (spec.name == "BB") bb_density = density;
    if (spec.name == "AQ") aq_density = density;
    if (spec.name == "Movie") movie_density = density;
    table.BeginRow();
    table.AddCell(spec.name);
    table.AddInt(n);
    table.AddInt(spec.dim);
    table.AddInt(skylines);
    table.AddNumber(density, 4);
  }
  table.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(bb_density < aq_density && aq_density < movie_density,
                    "skyline density ordering BB < AQ < Movie (Table I)");
  return 0;
}
