/// Extension bench — the problem variants the paper's Related Work section
/// situates k-RMS among:
///  * min-size RMS / α-happiness [3, 19, 33]: |Q| as a function of the
///    regret budget ε (native min-size form, no binary search);
///  * average regret minimization [26, 28, 35]: the max-regret/avg-regret
///    trade-off between ARM-greedy and the RMS algorithms.
///
/// Shapes: min-size |Q| decreases steeply as ε loosens; ARM wins on the
/// average objective while an RMS algorithm wins on the max objective.

#include <iostream>
#include <unordered_set>

#include "baselines/average_regret.h"
#include "baselines/greedy.h"
#include "baselines/minsize.h"
#include "bench_common.h"
#include "geometry/sampling.h"

using namespace fdrms;

int main() {
  const int n = bench::ScaledN(100000);
  PointSet ps = GenerateAntiCor(n, 6, 21);
  Database db;
  db.dim = ps.dim();
  for (int i = 0; i < ps.size(); ++i) {
    db.ids.push_back(i);
    db.points.push_back(ps.Get(i));
  }
  Rng rng(3);

  std::cout << "Extension: min-size RMS / alpha-happiness on AntiCor (n=" << n
            << ", d=6)\n\n";
  TablePrinter minsize({"eps", "alpha", "|Q| HS", "|Q| eps-kernel"});
  size_t prev_hs = 0;
  bool shrinks = true;
  for (double eps : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    auto hs = MinSizeHittingSet(db, 1, eps, 512, &rng);
    auto kernel = MinSizeEpsKernel(db, eps, &rng);
    if (prev_hs > 0 && hs.size() > prev_hs) shrinks = false;
    prev_hs = hs.size();
    minsize.BeginRow();
    minsize.AddNumber(eps, 2);
    minsize.AddNumber(1.0 - eps, 2);
    minsize.AddInt(static_cast<long>(hs.size()));
    minsize.AddInt(static_cast<long>(kernel.size()));
  }
  minsize.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(shrinks, "min-size |Q| is non-increasing in eps");

  std::cout << "\nExtension: ARM vs max-regret greedy (r=20)\n\n";
  // Shared evaluation sample.
  Rng eval_rng(9);
  auto dirs = SampleDirections(8000, db.dim, &eval_rng);
  auto omega = OmegaKForDirections(dirs, db.points, 1);
  auto max_regret_of = [&](const std::vector<int>& ids) {
    std::unordered_set<int> chosen(ids.begin(), ids.end());
    std::vector<int> indices;
    for (int i = 0; i < db.size(); ++i) {
      if (chosen.count(db.ids[i]) > 0) indices.push_back(i);
    }
    return SampledMaxRegret(dirs, omega, db.points, indices);
  };
  auto avg_regret_of = [&](const std::vector<int>& ids) {
    Rng r2(9);
    return AverageRegretGreedy::AverageRegret(db, ids, 1, 8000, &r2);
  };
  AverageRegretGreedy arm;
  GreedyStarRms rms(1024);
  auto arm_q = arm.Compute(db, 1, 20, &rng);
  auto rms_q = rms.Compute(db, 1, 20, &rng);
  TablePrinter trade({"algorithm", "avg regret", "max regret"});
  trade.BeginRow();
  trade.AddCell("ARM-Greedy");
  trade.AddNumber(avg_regret_of(arm_q), 5);
  trade.AddNumber(max_regret_of(arm_q), 4);
  trade.BeginRow();
  trade.AddCell("Greedy* (max-regret)");
  trade.AddNumber(avg_regret_of(rms_q), 5);
  trade.AddNumber(max_regret_of(rms_q), 4);
  trade.Print(std::cout);
  std::cout << "\n";
  bench::ShapeCheck(avg_regret_of(arm_q) <= avg_regret_of(rms_q) + 1e-4,
                    "ARM at least matches the max-regret algorithm on the "
                    "average objective");
  // Both optimize different objectives with sampled heuristics; the
  // defensible claim is only that neither collapses on the other's metric.
  bench::ShapeCheck(max_regret_of(rms_q) <= max_regret_of(arm_q) + 0.05,
                    "the max-regret algorithm stays competitive with ARM on "
                    "the max objective");
  return 0;
}
