/// End-to-end integration tests: the full FD-RMS pipeline against the
/// static baselines on the paper's workload protocol, at miniature scale.

#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "baselines/kernel_hs.h"
#include "baselines/sphere.h"
#include "data/generators.h"
#include "eval/runner.h"
#include "eval/workload.h"

namespace fdrms {
namespace {

struct EndToEndParam {
  const char* dataset;
  int n;
  int k;
  int r;
};

class EndToEndTest : public ::testing::TestWithParam<EndToEndParam> {};

TEST_P(EndToEndTest, FdRmsTracksStaticQualityAtFractionOfCost) {
  const EndToEndParam param = GetParam();
  PointSet ps = std::move(GenerateByName(param.dataset, param.n, 31))
                    .ValueOr(PointSet(1));
  Workload wl(&ps, 77);
  WorkloadRunner runner(&wl, param.k, /*eval_directions=*/3000, 5);
  FdRmsOptions opt;
  opt.k = param.k;
  opt.r = param.r;
  opt.eps = 0.03;
  opt.max_utilities = 512;
  RunResult fd = runner.RunFdRms(opt);
  ASSERT_EQ(fd.checkpoint_regret.size(), 10u);
  EXPECT_LE(static_cast<int>(fd.final_result.size()), param.r);

  // Quality yardstick: a strong static algorithm re-run at checkpoints.
  RunResult reference =
      param.k == 1
          ? runner.RunStatic(SphereRms(512), param.r, /*max_timed_runs=*/2)
          : runner.RunStatic(HittingSetRms(192), param.r, 2);
  EXPECT_LE(fd.mean_regret, reference.mean_regret + 0.06)
      << "FD-RMS " << fd.mean_regret << " vs " << reference.algorithm << " "
      << reference.mean_regret;
  // Regret must also be nontrivially bounded in absolute terms.
  EXPECT_LT(fd.mean_regret, 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndTest,
    ::testing::Values(EndToEndParam{"Indep", 800, 1, 10},
                      EndToEndParam{"AntiCor", 800, 1, 12},
                      EndToEndParam{"BB", 800, 1, 8},
                      EndToEndParam{"Movie", 400, 1, 14},
                      EndToEndParam{"Indep", 600, 3, 10},
                      EndToEndParam{"AQ", 600, 2, 10}),
    [](const auto& info) {
      return std::string(info.param.dataset) + "k" +
             std::to_string(info.param.k) + "r" + std::to_string(info.param.r);
    });

TEST(IntegrationTest, UpdateCostIsFarBelowRecomputeCost) {
  PointSet ps = GenerateAntiCor(1500, 4, 9);
  Workload wl(&ps, 3);
  WorkloadRunner runner(&wl, 1, 1000, 5);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 10;
  opt.eps = 0.03;
  opt.max_utilities = 512;
  RunResult fd = runner.RunFdRms(opt);
  RunResult greedy = runner.RunStatic(GeoGreedyRms(256, 4), 10, 3);
  // The paper's headline: orders of magnitude. At miniature scale we ask
  // for at least 3x on the mean per-operation cost.
  EXPECT_LT(fd.mean_update_ms * 3.0, greedy.mean_update_ms)
      << "FD-RMS " << fd.mean_update_ms << " ms vs GeoGreedy "
      << greedy.mean_update_ms << " ms";
}

TEST(IntegrationTest, ResultSizeTracksBudgetThroughChurn) {
  PointSet ps = GenerateIndep(800, 3, 10);
  Workload wl(&ps, 5);
  for (int r : {5, 20}) {
    WorkloadRunner runner(&wl, 1, 500, 6);
    FdRmsOptions opt;
    opt.k = 1;
    opt.r = r;
    opt.eps = 0.05;
    opt.max_utilities = 512;
    RunResult fd = runner.RunFdRms(opt);
    EXPECT_LE(static_cast<int>(fd.final_result.size()), r);
    EXPECT_GE(static_cast<int>(fd.final_result.size()), 1);
  }
}

TEST(IntegrationTest, LargerBudgetNeverMuchWorse) {
  PointSet ps = GenerateAntiCor(1000, 4, 11);
  Workload wl(&ps, 6);
  WorkloadRunner runner(&wl, 1, 2000, 7);
  double prev = 1.0;
  for (int r : {5, 15, 40}) {
    FdRmsOptions opt;
    opt.k = 1;
    opt.r = r;
    opt.eps = 0.03;
    opt.max_utilities = 512;
    RunResult fd = runner.RunFdRms(opt);
    EXPECT_LE(fd.mean_regret, prev + 0.03) << "r=" << r;
    prev = fd.mean_regret;
  }
}

}  // namespace
}  // namespace fdrms
