#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/simplex.h"

namespace fdrms {
namespace {

TEST(SimplexTest, SolvesBasicMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12.
  LpProblem lp;
  lp.c = {3.0, 2.0};
  lp.A = {{1.0, 1.0}, {1.0, 3.0}};
  lp.b = {4.0, 6.0};
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, SolvesInteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
  LpProblem lp;
  lp.c = {1.0, 1.0};
  lp.A = {{2.0, 1.0}, {1.0, 2.0}};
  lp.b = {4.0, 4.0};
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem lp;
  lp.c = {1.0, 0.0};
  lp.A = {{-1.0, 1.0}};
  lp.b = {1.0};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= -1 with x >= 0.
  LpProblem lp;
  lp.c = {1.0};
  lp.A = {{1.0}};
  lp.b = {-1.0};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, HandlesEqualityViaTwoInequalities) {
  // max y s.t. x = 2 (two ineqs), y <= x -> y = 2.
  LpProblem lp;
  lp.c = {0.0, 1.0};
  lp.A = {{1.0, 0.0}, {-1.0, 0.0}, {-1.0, 1.0}};
  lp.b = {2.0, -2.0, 0.0};
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateInstanceTerminates) {
  // Classic degenerate vertex: multiple constraints meet at the optimum.
  LpProblem lp;
  lp.c = {1.0, 1.0};
  lp.A = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  lp.b = {1.0, 1.0, 1.0};
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(MaxRegretTest, ZeroWhenWitnessInAnswerSet) {
  std::vector<double> p{0.5, 0.5};
  EXPECT_NEAR(MaxRegretForWitness(p, {{0.5, 0.5}}), 0.0, 1e-9);
}

TEST(MaxRegretTest, FullRegretAgainstZeroSet) {
  // Q contains only the origin: the witness keeps all its score.
  std::vector<double> p{1.0, 0.0};
  double regret = MaxRegretForWitness(p, {{0.0, 0.0}});
  EXPECT_NEAR(regret, 1.0, 1e-9);
}

TEST(MaxRegretTest, MatchesHandComputedExample) {
  // Paper Fig. 1: Q1 = {p3, p4}; the regret of direction u = (0, 1) against
  // witness p1 = (0.2, 1.0) is 1 - 0.5/1.0 = 0.5 (p3 scores 0.5 on u).
  // The LP maximizes over all u; the maximum for witness p1 is >= 0.5.
  double regret =
      MaxRegretForWitness({0.2, 1.0}, {{0.7, 0.5}, {1.0, 0.1}});
  EXPECT_GE(regret, 0.5 - 1e-9);
  EXPECT_LE(regret, 1.0);
}

TEST(MaxRegretTest, AgreesWithSampledRegretOnRandomInstances) {
  // Property: the LP optimum upper-bounds (and is nearly attained by) a
  // dense directional sample of the same regret objective.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int d = 2 + trial % 3;
    std::vector<double> p(d);
    for (double& v : p) v = rng.Uniform();
    std::vector<std::vector<double>> q(3, std::vector<double>(d));
    for (auto& row : q) {
      for (double& v : row) v = rng.Uniform();
    }
    double lp_regret = MaxRegretForWitness(p, q);
    // Sampled lower bound of the same quantity.
    double sampled = 0.0;
    for (int s = 0; s < 4000; ++s) {
      std::vector<double> u(d);
      double pscore = 0.0;
      for (int j = 0; j < d; ++j) {
        u[j] = std::fabs(rng.Gaussian());
        pscore += u[j] * p[j];
      }
      if (pscore <= 1e-12) continue;
      double qbest = 0.0;
      for (const auto& row : q) {
        double sc = 0.0;
        for (int j = 0; j < d; ++j) sc += u[j] * row[j];
        qbest = std::max(qbest, sc);
      }
      sampled = std::max(sampled, 1.0 - qbest / pscore);
    }
    EXPECT_GE(lp_regret, sampled - 1e-6)
        << "LP must upper-bound sampled regret (trial " << trial << ")";
    // The sampled lower bound has Monte-Carlo slack that grows with d.
    EXPECT_LE(lp_regret, sampled + 0.08)
        << "LP should be nearly attained by dense sampling (trial " << trial
        << ")";
  }
}

}  // namespace
}  // namespace fdrms
