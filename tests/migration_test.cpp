#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "geometry/sampling.h"
#include "shard/migration.h"
#include "shard/sharded_service.h"

// All suites here are named Migration* on purpose: the `tsan` CMake test
// preset (and the CI ThreadSanitizer job) selects them with the regex
// ^(Serve|Shard|Migration), and the tsan-stress preset repeats them with
// --repeat until-fail:3 so interleaving flakes surface in CI.

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps, int count) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < count; ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

/// Replays `ops` sequentially on a fresh FdRms with the service's per-op
/// semantics (rejected operations are skipped, the rest keep going).
std::unique_ptr<FdRms> SequentialReplay(
    int dim, const FdRmsOptions& opt,
    const std::vector<std::pair<int, Point>>& initial,
    const std::vector<FdRms::BatchOp>& ops) {
  auto algo = std::make_unique<FdRms>(dim, opt);
  EXPECT_TRUE(algo->Initialize(initial).ok());
  for (const FdRms::BatchOp& op : ops) {
    switch (op.kind) {
      case FdRms::BatchOp::Kind::kInsert:
        (void)algo->Insert(op.id, op.point);
        break;
      case FdRms::BatchOp::Kind::kDelete:
        (void)algo->Delete(op.id);
        break;
      case FdRms::BatchOp::Kind::kUpdate:
        (void)algo->Update(op.id, op.point);
        break;
    }
  }
  return algo;
}

/// Live tuple ids of one shard, ascending (valid after Stop).
std::vector<int> LiveIdsOf(const FdRmsService& shard) {
  std::vector<int> ids;
  shard.algorithm().topk().tree().ForEach(
      [&](int id, const Point&) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The conservation + ownership oracle: across all shards, every live id
/// appears exactly once (no id lost to a cutover, none duplicated), and it
/// lives on the shard the final routing epoch assigns it to.
void ExpectOwnershipMatchesRouting(const ShardedFdRmsService& service,
                                   std::vector<int>* union_out = nullptr) {
  std::unordered_map<int, int> owner;
  for (int s = 0; s < service.num_shards(); ++s) {
    for (int id : LiveIdsOf(service.shard(s))) {
      auto [it, inserted] = owner.emplace(id, s);
      EXPECT_TRUE(inserted) << "id " << id << " live on shards " << it->second
                            << " and " << s;
      EXPECT_EQ(service.router().Route(id), s)
          << "id " << id << " lives on shard " << s << " but routes to shard "
          << service.router().Route(id) << " at epoch " << service.epoch();
    }
  }
  if (union_out != nullptr) {
    union_out->clear();
    for (const auto& [id, s] : owner) {
      (void)s;
      union_out->push_back(id);
    }
    std::sort(union_out->begin(), union_out->end());
  }
}

TEST(MigrationPlanTest, FactoriesDescribeTheMove) {
  MigrationPlan slots = MigrationPlan::Slots({3, 7}, 1);
  ASSERT_EQ(slots.slot_moves.size(), 2u);
  EXPECT_EQ(slots.slot_moves[0].slot, 3);
  EXPECT_EQ(slots.slot_moves[1].target, 1);
  EXPECT_FALSE(slots.has_range());
  EXPECT_FALSE(slots.empty());

  MigrationPlan range = MigrationPlan::IdRange(10, 20, 2);
  EXPECT_TRUE(range.has_range());
  EXPECT_FALSE(range.empty());

  EXPECT_TRUE(MigrationPlan{}.empty());
}

TEST(MigrationTableTest, SlottedTableMatchesHashRouter) {
  for (int num_shards : {1, 2, 3, 4, 8}) {
    auto table = RoutingTable::Slotted(num_shards);
    HashShardRouter hash(num_shards);
    EXPECT_EQ(table->epoch(), 0u);
    EXPECT_EQ(table->num_shards(), num_shards);
    EXPECT_TRUE(table->slotted());
    for (int id : {-5, 0, 1, 17, 4096, 123456789}) {
      EXPECT_EQ(table->Route(id), hash.Route(id)) << "id " << id;
    }
  }
}

TEST(MigrationTableTest, ApplyMovesSlotsAndRanges) {
  auto table = RoutingTable::Slotted(3);
  // Slot plan: move every slot shard 0 owns to shard 2.
  std::vector<int> slots = table->SlotsOwnedBy(0);
  ASSERT_FALSE(slots.empty());
  auto moved_or = table->Apply(MigrationPlan::Slots(slots, 2), 3);
  ASSERT_TRUE(moved_or.ok()) << moved_or.status().ToString();
  auto moved = *moved_or;
  EXPECT_EQ(moved->epoch(), 1u);
  EXPECT_TRUE(moved->SlotsOwnedBy(0).empty());
  for (int id = 0; id < 2000; ++id) {
    const int before = table->Route(id);
    const int after = moved->Route(id);
    EXPECT_EQ(after, before == 0 ? 2 : before) << "id " << id;
  }
  // Range plan layered on top: ids [100, 150) to shard 1 regardless of slot.
  auto ranged_or = moved->Apply(MigrationPlan::IdRange(100, 150, 1), 3);
  ASSERT_TRUE(ranged_or.ok());
  auto ranged = *ranged_or;
  EXPECT_EQ(ranged->epoch(), 2u);
  for (int id = 100; id < 150; ++id) EXPECT_EQ(ranged->Route(id), 1);
  EXPECT_EQ(ranged->Route(99), moved->Route(99));
  // Re-targeting the exact range replaces the rule instead of stacking.
  auto retargeted = *ranged->Apply(MigrationPlan::IdRange(100, 150, 0), 3);
  EXPECT_EQ(retargeted->id_rules().size(), 1u);
  EXPECT_EQ(retargeted->Route(120), 0);
}

TEST(MigrationTableTest, ApplyRejectsInvalidPlans) {
  auto table = RoutingTable::Slotted(2);
  EXPECT_EQ(table->Apply(MigrationPlan{}, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      table->Apply(MigrationPlan::Slots({kNumHashSlots}, 0), 2).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(table->Apply(MigrationPlan::Slots({0}, 2), 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table->Apply(MigrationPlan::IdRange(0, 10, 5), 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table->Apply(MigrationPlan::Slots({0}, 0), 1).status().code(),
            StatusCode::kInvalidArgument);  // shrinking the shard space
  // A delegating table cannot express slot ownership.
  auto delegating =
      RoutingTable::Delegating(std::make_shared<HashShardRouter>(2));
  EXPECT_EQ(delegating->Apply(MigrationPlan::Slots({0}, 1), 2).status().code(),
            StatusCode::kFailedPrecondition);
  // ... but id ranges layer over any router.
  auto ranged_or = delegating->Apply(MigrationPlan::IdRange(5, 9, 1), 2);
  ASSERT_TRUE(ranged_or.ok());
  for (int id = 5; id < 9; ++id) EXPECT_EQ((*ranged_or)->Route(id), 1);
}

TEST(MigrationTableTest, WithoutLastShardRequiresEmptyOwnership) {
  auto table = RoutingTable::Slotted(2);
  EXPECT_EQ(table->WithoutLastShard().status().code(),
            StatusCode::kFailedPrecondition);  // shard 1 still owns slots
  auto drained =
      *table->Apply(MigrationPlan::Slots(table->SlotsOwnedBy(1), 0), 2);
  auto shrunk_or = drained->WithoutLastShard();
  ASSERT_TRUE(shrunk_or.ok()) << shrunk_or.status().ToString();
  EXPECT_EQ((*shrunk_or)->num_shards(), 1);
  for (int id = 0; id < 500; ++id) EXPECT_EQ((*shrunk_or)->Route(id), 0);
  // An id-range rule pinning ids to the victim also blocks removal.
  auto pinned = *drained->Apply(MigrationPlan::IdRange(0, 10, 1), 2);
  EXPECT_EQ(pinned->WithoutLastShard().status().code(),
            StatusCode::kFailedPrecondition);
}

// Property: for any sequence of migrations, every id routes to exactly one
// in-range shard at every epoch, epochs advance by one per applied plan,
// and replaying the same plan sequence from scratch reproduces the same
// routing function at every epoch (determinism).
TEST(MigrationRouterPropertyTest, EveryIdRoutesToExactlyOneShardAtEveryEpoch) {
  constexpr int kPlans = 16;
  constexpr int kIds = 1500;
  Rng rng(20260731);
  auto random_plan = [&](int num_shards) {
    MigrationPlan plan;
    if (rng.Uniform() < 0.7) {
      const int count = 1 + rng.UniformInt(40);
      for (int i = 0; i < count; ++i) {
        plan.slot_moves.push_back(
            {rng.UniformInt(kNumHashSlots), rng.UniformInt(num_shards)});
      }
    } else {
      const int begin = rng.UniformInt(2000) - 500;  // negatives too
      plan.id_begin = begin;
      plan.id_end = begin + 1 + rng.UniformInt(300);
      plan.id_target = rng.UniformInt(num_shards);
    }
    return plan;
  };

  auto run_sequence = [&](const std::vector<MigrationPlan>& plans,
                          std::vector<std::vector<int>>* routes_per_epoch) {
    int num_shards = 4;
    std::shared_ptr<const RoutingTable> table =
        RoutingTable::Slotted(num_shards);
    EpochShardRouter router(table);
    for (size_t p = 0; p < plans.size(); ++p) {
      if (p == plans.size() / 2) ++num_shards;  // grow mid-sequence
      auto next_or = table->Apply(plans[p], num_shards);
      ASSERT_TRUE(next_or.ok()) << next_or.status().ToString();
      table = *next_or;
      router.Publish(table);
      EXPECT_EQ(router.epoch(), p + 1);
      EXPECT_EQ(router.num_shards(), num_shards);
      std::vector<int> routes;
      routes.reserve(kIds);
      for (int id = -100; id < kIds - 100; ++id) {
        const int shard = router.Route(id);
        EXPECT_GE(shard, 0) << "id " << id << " epoch " << router.epoch();
        EXPECT_LT(shard, num_shards)
            << "id " << id << " epoch " << router.epoch();
        EXPECT_EQ(shard, table->Route(id));  // router == its table, always
        routes.push_back(shard);
      }
      routes_per_epoch->push_back(std::move(routes));
    }
  };

  std::vector<MigrationPlan> plans;
  for (int p = 0; p < kPlans; ++p) plans.push_back(random_plan(5));
  // Clamp slot/range targets of early epochs into the 4-shard space (the
  // grow happens mid-sequence).
  for (size_t p = 0; p < plans.size() / 2; ++p) {
    for (auto& move : plans[p].slot_moves) move.target %= 4;
    if (plans[p].has_range()) plans[p].id_target %= 4;
  }

  std::vector<std::vector<int>> first_run, second_run;
  run_sequence(plans, &first_run);
  run_sequence(plans, &second_run);
  ASSERT_EQ(first_run.size(), second_run.size());
  for (size_t e = 0; e < first_run.size(); ++e) {
    EXPECT_EQ(first_run[e], second_run[e]) << "epoch " << e + 1;
  }
}

TEST(MigrationRouterPropertyTest, TableRoundTripsThroughSaveRestore) {
  Rng rng(777);
  std::shared_ptr<const RoutingTable> table = RoutingTable::Slotted(3);
  for (int p = 0; p < 6; ++p) {
    MigrationPlan plan;
    if (p % 2 == 0) {
      for (int i = 0; i < 10; ++i) {
        plan.slot_moves.push_back(
            {rng.UniformInt(kNumHashSlots), rng.UniformInt(3)});
      }
    } else {
      plan.id_begin = p * 50;
      plan.id_end = p * 50 + 25;
      plan.id_target = rng.UniformInt(3);
    }
    table = *table->Apply(plan, 3);
  }
  std::stringstream stream;
  ASSERT_TRUE(table->Save(&stream).ok());
  auto loaded_or = RoutingTable::Load(&stream);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  auto loaded = *loaded_or;
  EXPECT_EQ(loaded->epoch(), table->epoch());
  EXPECT_EQ(loaded->num_shards(), table->num_shards());
  for (int id = -200; id < 3000; ++id) {
    ASSERT_EQ(loaded->Route(id), table->Route(id)) << "id " << id;
  }
  // Identical tables serialize to identical bytes.
  std::stringstream again;
  ASSERT_TRUE(loaded->Save(&again).ok());
  EXPECT_EQ(again.str(), stream.str());
  // Corruption is rejected, not mis-loaded.
  std::stringstream junk("FDRMS-ROUTING-v1\n1 0 0\n");
  EXPECT_FALSE(RoutingTable::Load(&junk).ok());
}

TEST(MigrationRouterPropertyTest, HashRouterDeterministicAcrossSaveRestore) {
  // The default router's routing function survives a save/restore cycle of
  // its epoch-0 table: a resumed constellation routes exactly like the one
  // that persisted it.
  HashShardRouter hash(4);
  auto table = RoutingTable::Slotted(4);
  std::stringstream stream;
  ASSERT_TRUE(table->Save(&stream).ok());
  auto restored = *RoutingTable::Load(&stream);
  for (int id = -50; id < 5000; ++id) {
    ASSERT_EQ(restored->Route(id), hash.Route(id)) << "id " << id;
  }
}

TEST(MigrationServiceTest, QuiescentSlotMigrationPreservesLiveSet) {
  PointSet ps = GenerateIndep(240, 3, 31);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 240)).ok());
  auto before = service.Query();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->epoch, 0u);

  // Move everything shard 0 owns onto shard 1.
  std::vector<int> slots = service.routing_table()->SlotsOwnedBy(0);
  ASSERT_FALSE(slots.empty());
  Status migrated = service.Migrate(MigrationPlan::Slots(slots, 1));
  ASSERT_TRUE(migrated.ok()) << migrated.ToString();
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.migrations(), 1u);

  auto after = service.Query();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->epoch, 1u);
  // Count oracle: nothing lost, nothing duplicated across the cutover.
  EXPECT_EQ(after->live_tuples, 240);
  ASSERT_TRUE(service.Stop().ok());

  std::vector<int> union_ids;
  ExpectOwnershipMatchesRouting(service, &union_ids);
  std::vector<int> expected(240);
  for (int i = 0; i < 240; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(union_ids, expected);
  EXPECT_EQ(service.shard(0).algorithm().size(), 0);  // fully drained

  // The migration is ordinary journaled traffic: deletes on the source,
  // inserts on the target, and each shard equals its journal's replay.
  size_t source_deletes = 0, target_inserts = 0;
  for (const FdRms::BatchOp& op : service.shard(0).journal()) {
    if (op.kind == FdRms::BatchOp::Kind::kDelete) ++source_deletes;
  }
  for (const FdRms::BatchOp& op : service.shard(1).journal()) {
    if (op.kind == FdRms::BatchOp::Kind::kInsert) ++target_inserts;
  }
  EXPECT_GT(source_deletes, 0u);
  EXPECT_EQ(source_deletes, target_inserts);
  for (int s = 0; s < 3; ++s) {
    std::vector<std::pair<int, Point>> shard_initial;
    for (int i = 0; i < 240; ++i) {
      if (RoutingTable::Slotted(3)->Route(i) == s) {
        shard_initial.emplace_back(i, ps.Get(i));
      }
    }
    auto replay = SequentialReplay(3, sopt.shard.algo, shard_initial,
                                   service.shard(s).journal());
    EXPECT_EQ(LiveIdsOf(service.shard(s)).size(),
              static_cast<size_t>(replay->size()))
        << "shard " << s;
    EXPECT_EQ(service.shard(s).algorithm().Result(), replay->Result())
        << "shard " << s;
    ASSERT_TRUE(service.shard(s).algorithm().Validate().ok());
  }
}

TEST(MigrationServiceTest, IdRangeMigrationMovesTheRange) {
  PointSet ps = GenerateAntiCor(200, 3, 32);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 200)).ok());
  ASSERT_TRUE(service.Migrate(MigrationPlan::IdRange(0, 60, 2)).ok());
  for (int id = 0; id < 60; ++id) {
    EXPECT_EQ(service.router().Route(id), 2) << "id " << id;
  }
  // Post-cutover traffic for the range lands on the new owner.
  ASSERT_TRUE(service.SubmitDelete(10).ok());
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->live_tuples, 199);
  EXPECT_EQ(merged->ops_rejected, 0u);  // the delete found its tuple
  ASSERT_TRUE(service.Stop().ok());
  std::vector<int> on_target = LiveIdsOf(service.shard(2));
  for (int id = 0; id < 60; ++id) {
    const bool present =
        std::binary_search(on_target.begin(), on_target.end(), id);
    EXPECT_EQ(present, id != 10) << "id " << id;
  }
  ExpectOwnershipMatchesRouting(service);
}

TEST(MigrationServiceTest, InvalidPlansAndTopologiesAreRejected) {
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.max_utilities = 32;
  {
    ShardedFdRmsService service(2, sopt);
    EXPECT_EQ(service.Migrate(MigrationPlan::Slots({0}, 1)).code(),
              StatusCode::kFailedPrecondition);  // never started
    ASSERT_TRUE(service.Start({{0, {0.3, 0.4}}, {1, {0.5, 0.2}}}).ok());
    EXPECT_EQ(service.Migrate(MigrationPlan{}).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(service.Migrate(MigrationPlan::Slots({-1}, 0)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(service.Migrate(MigrationPlan::Slots({0}, 7)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(service.Migrate(MigrationPlan::IdRange(5, 5, 0)).code(),
              StatusCode::kInvalidArgument);  // empty range
    EXPECT_EQ(service.epoch(), 0u);  // nothing moved
    ASSERT_TRUE(service.Stop().ok());
  }
  {
    // One-shard constellations cannot scale in.
    ShardedServiceOptions single = sopt;
    single.num_shards = 1;
    ShardedFdRmsService service(2, single);
    ASSERT_TRUE(service.Start({{0, {0.3, 0.4}}}).ok());
    EXPECT_EQ(service.RemoveShard().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(service.Stop().ok());
  }
}

/// A stand-in for a user-supplied router: modulo routing, not slot-mapped.
class ModuloRouter final : public ShardRouter {
 public:
  explicit ModuloRouter(int num_shards) : num_shards_(num_shards) {}
  int num_shards() const override { return num_shards_; }
  int Route(int id) const override {
    return ((id % num_shards_) + num_shards_) % num_shards_;
  }
  const char* name() const override { return "modulo"; }

 private:
  const int num_shards_;
};

TEST(MigrationServiceTest, CustomRouterSupportsRangesButNotSlots) {
  PointSet ps = GenerateIndep(120, 2, 33);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 4;
  sopt.shard.algo.max_utilities = 64;
  ShardedFdRmsService service(2, sopt, std::make_unique<ModuloRouter>(2));
  ASSERT_TRUE(service.Start(AsTuples(ps, 120)).ok());
  EXPECT_EQ(service.Migrate(MigrationPlan::Slots({0}, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.AddShard().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.RemoveShard().code(), StatusCode::kFailedPrecondition);
  // Id ranges still migrate: evict ids [0, 40) from their modulo owners.
  Status moved = service.Migrate(MigrationPlan::IdRange(0, 40, 1));
  ASSERT_TRUE(moved.ok()) << moved.ToString();
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->live_tuples, 120);
  ASSERT_TRUE(service.Stop().ok());
  std::vector<int> on_target = LiveIdsOf(service.shard(1));
  for (int id = 0; id < 40; ++id) {
    EXPECT_TRUE(std::binary_search(on_target.begin(), on_target.end(), id))
        << "id " << id;
  }
  ExpectOwnershipMatchesRouting(service);
}

// The tentpole scenario: 4 readers + 3 submitters churn a mixed
// insert/delete stream while two migrations (a slot move and an id-range
// move) cut over mid-stream. Readers assert epoch-aware snapshot
// consistency on every view; afterwards every shard must equal a
// sequential replay of its own journal (migration traffic included), the
// live tuples must be partitioned exactly as the final epoch routes, and
// the post-cutover merged snapshot must meet the k=1 regret-ratio bound on
// the shared sampled-utility prefix.
TEST(MigrationServiceTest, MigrateUnderChurnMatchesJournalReplay) {
  constexpr int kReaders = 4;
  constexpr int kSubmitters = 3;
  const double eps = 0.05;
  PointSet ps = GenerateAntiCor(300, 3, 34);
  Workload wl(&ps, 53);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.k = 1;
  sopt.shard.algo.r = 8;
  sopt.shard.algo.eps = eps;
  sopt.shard.algo.max_utilities = 256;
  sopt.shard.max_batch = 8;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(service.Start(initial).ok());

  // Partition P_0 by the epoch-0 table before anything moves: that is each
  // shard's replay baseline.
  std::shared_ptr<const RoutingTable> epoch0 = service.routing_table();
  ASSERT_EQ(epoch0->epoch(), 0u);

  std::atomic<bool> stop_readers{false};
  struct ReaderLog {
    uint64_t queries = 0;
    uint64_t epochs_seen = 0;
    std::string failure;  // first violation seen, empty if none
  };
  std::vector<ReaderLog> logs(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ReaderLog& log = logs[t];
      uint64_t last_epoch = 0;
      std::vector<uint64_t> last_versions;
      bool first = true;
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto snap = service.Query();
        ++log.queries;
        auto fail = [&](const std::string& what) {
          if (log.failure.empty()) log.failure = what;
        };
        if (snap == nullptr) {
          fail("null merged snapshot after start");
          break;
        }
        if (first || snap->epoch != last_epoch) ++log.epochs_seen;
        if (!first && snap->epoch < last_epoch) fail("epoch regressed");
        if (!first && snap->epoch == last_epoch) {
          if (snap->versions.size() != last_versions.size()) {
            fail("version vector changed arity within an epoch");
          } else {
            for (size_t s = 0; s < snap->versions.size(); ++s) {
              if (snap->versions[s] < last_versions[s]) {
                fail("version regressed within an epoch");
              }
            }
          }
        }
        if (snap->versions.size() != snap->shards.size()) {
          fail("versions/shards not parallel");
        }
        if (snap->ids.size() != snap->points.size()) {
          fail("ids/points not parallel");
        }
        if (static_cast<int>(snap->ids.size()) > 3 * sopt.shard.algo.r) {
          fail("|Q| exceeds the union bound");
        }
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          fail("ids not sorted unique");
        }
        last_epoch = snap->epoch;
        last_versions = snap->versions;
        first = false;
        std::this_thread::yield();
      }
    });
  }

  const auto& ops = wl.operations();
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += kSubmitters) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id, ps.Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }

  // Two live cutovers while the stream runs: half of shard 0's slots to
  // shard 1 once a third of the stream is in, then an id range to shard 2
  // at two thirds.
  auto wait_for = [&](uint64_t threshold) {
    while (service.ops_submitted() < threshold) std::this_thread::yield();
  };
  wait_for(ops.size() / 3);
  std::vector<int> donor_slots = epoch0->SlotsOwnedBy(0);
  donor_slots.resize(donor_slots.size() / 2);
  Status mig1 = service.Migrate(MigrationPlan::Slots(donor_slots, 1));
  EXPECT_TRUE(mig1.ok()) << mig1.ToString();
  wait_for(2 * ops.size() / 3);
  Status mig2 = service.Migrate(MigrationPlan::IdRange(0, 45, 2));
  EXPECT_TRUE(mig2.ok()) << mig2.ToString();

  for (std::thread& th : submitters) th.join();
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->epoch, 2u);
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  ASSERT_TRUE(service.Stop().ok());

  for (int t = 0; t < kReaders; ++t) {
    EXPECT_TRUE(logs[t].failure.empty())
        << "reader " << t << ": " << logs[t].failure;
    EXPECT_GT(logs[t].queries, 0u);
  }
  EXPECT_EQ(service.migrations(), 2u);

  // Journal-replay equivalence per shard: the journals contain the
  // workload ops routed to each shard plus the migration's replay inserts
  // and source deletes, in application order.
  for (int s = 0; s < 3; ++s) {
    std::vector<std::pair<int, Point>> shard_initial;
    for (const auto& [id, point] : initial) {
      if (epoch0->Route(id) == s) shard_initial.emplace_back(id, point);
    }
    auto replay = SequentialReplay(3, sopt.shard.algo, shard_initial,
                                   service.shard(s).journal());
    EXPECT_EQ(service.shard(s).algorithm().Result(), replay->Result())
        << "shard " << s;
    EXPECT_EQ(service.shard(s).algorithm().size(), replay->size())
        << "shard " << s;
    EXPECT_EQ(service.shard(s).algorithm().current_m(), replay->current_m())
        << "shard " << s;
    ASSERT_TRUE(service.shard(s).algorithm().Validate().ok());
  }

  // Conservation + ownership: every live tuple on exactly the shard the
  // final epoch routes it to (no id lost or duplicated across cutovers).
  std::vector<int> union_of_lives;
  ExpectOwnershipMatchesRouting(service, &union_of_lives);
  EXPECT_EQ(static_cast<int>(union_of_lives.size()), merged->live_tuples);

  // k=1 regret-ratio oracle on the post-cutover merged snapshot: every
  // utility in the shared sampled prefix is covered by the owning shard's
  // (1-eps) guarantee, and ownership is an exact partition, so the merged
  // union inherits the bound over the global live set.
  const std::vector<Point>& utilities =
      service.shard(0).algorithm().topk().utilities();
  ASSERT_GE(merged->min_sample_size_m, 1);
  for (int i = 0; i < merged->min_sample_size_m; ++i) {
    const Point& u = utilities[static_cast<size_t>(i)];
    double omega = 0.0;
    for (int id : union_of_lives) omega = std::max(omega, Dot(u, ps.Get(id)));
    double best = 0.0;
    for (int id : merged->ids) best = std::max(best, Dot(u, ps.Get(id)));
    EXPECT_GE(best, (1.0 - eps) * omega - 1e-9)
        << "utility " << i << ": merged regret ratio " << 1.0 - best / omega
        << " exceeds eps=" << eps << " after migration";
  }
}

TEST(MigrationServiceTest, AddShardScalesOutOnlineUnderChurn) {
  PointSet ps = GenerateIndep(360, 3, 35);
  Workload wl(&ps, 59);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.max_batch = 8;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(service.Start(initial).ok());
  std::shared_ptr<const RoutingTable> epoch0 = service.routing_table();

  const auto& ops = wl.operations();
  std::thread submitter([&] {
    for (const Operation& op : ops) {
      Status st = op.is_insert ? service.SubmitInsert(op.id, ps.Get(op.id))
                               : service.SubmitDelete(op.id);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  });
  while (service.ops_submitted() < ops.size() / 2) std::this_thread::yield();
  Status added = service.AddShard();
  EXPECT_TRUE(added.ok()) << added.ToString();
  submitter.join();
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  ASSERT_TRUE(service.Stop().ok());

  EXPECT_EQ(service.num_shards(), 3);
  ASSERT_EQ(merged->versions.size(), 3u);
  // The newcomer owns its even share of the slot space and real tuples.
  std::vector<int> load = service.routing_table()->SlotLoad();
  ASSERT_EQ(load.size(), 3u);
  EXPECT_EQ(load[2], kNumHashSlots / 3);
  EXPECT_GE(load[0], kNumHashSlots / 3);
  EXPECT_GE(load[1], kNumHashSlots / 3);
  EXPECT_GT(service.shard(2).algorithm().size(), 0);

  ExpectOwnershipMatchesRouting(service);
  // Journal replay still holds for every shard — the newcomer's baseline
  // is empty, its whole state arrived as journaled inserts.
  for (int s = 0; s < 3; ++s) {
    std::vector<std::pair<int, Point>> shard_initial;
    if (s < 2) {
      for (const auto& [id, point] : initial) {
        if (epoch0->Route(id) == s) shard_initial.emplace_back(id, point);
      }
    }
    auto replay = SequentialReplay(3, sopt.shard.algo, shard_initial,
                                   service.shard(s).journal());
    EXPECT_EQ(service.shard(s).algorithm().Result(), replay->Result())
        << "shard " << s;
    ASSERT_TRUE(service.shard(s).algorithm().Validate().ok());
  }
}

TEST(MigrationServiceTest, RemoveShardScalesInOnline) {
  PointSet ps = GenerateIndep(240, 3, 36);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 240)).ok());
  Status removed = service.RemoveShard();
  ASSERT_TRUE(removed.ok()) << removed.ToString();
  EXPECT_EQ(service.num_shards(), 2);
  EXPECT_EQ(service.num_retired(), 1);

  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  ASSERT_EQ(merged->versions.size(), 2u);
  EXPECT_EQ(merged->live_tuples, 240);  // nothing lost scaling in

  // The retired shard is already stopped, fully drained of its tuples, and
  // its journal records the migration deletes.
  EXPECT_EQ(service.retired_shard(0).algorithm().size(), 0);
  size_t deletes = 0;
  for (const FdRms::BatchOp& op : service.retired_shard(0).journal()) {
    if (op.kind == FdRms::BatchOp::Kind::kDelete) ++deletes;
  }
  EXPECT_GT(deletes, 0u);

  // The shrunk constellation keeps serving.
  ASSERT_TRUE(service.SubmitDelete(7).ok());
  ASSERT_TRUE(service.Flush().ok());
  auto after = service.Query();
  EXPECT_EQ(after->live_tuples, 239);
  ASSERT_TRUE(service.Stop().ok());
  ExpectOwnershipMatchesRouting(service);
  std::vector<int> load = service.routing_table()->SlotLoad();
  ASSERT_EQ(load.size(), 2u);
  EXPECT_EQ(load[0] + load[1], kNumHashSlots);
}

TEST(MigrationDriverTest, ShardedLoadFiresMigrationEventsOnline) {
  PointSet ps = GenerateIndep(300, 3, 37);
  Workload wl(&ps, 61);
  ShardedLoadOptions lopt;
  lopt.num_readers = 2;
  lopt.num_submitters = 2;
  lopt.service.num_shards = 2;
  lopt.service.shard.algo.r = 6;
  lopt.service.shard.algo.max_utilities = 128;
  lopt.service.shard.max_batch = 16;
  using Event = ShardedLoadOptions::MigrationEvent;
  lopt.migrations.push_back({Event::Kind::kAddShard, 0.3, {}});
  lopt.migrations.push_back({Event::Kind::kAddShard, 0.6, {}});
  ShardedLoadResult res = RunShardedLoad(wl, lopt);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.null_queries, 0u);  // reads never blocked or errored
  EXPECT_EQ(res.migrations_attempted, 2u);
  EXPECT_EQ(res.migrations_failed, 0u);
  EXPECT_EQ(res.final_num_shards, 4);
  EXPECT_GE(res.final_epoch, 4u);  // each AddShard: grow epoch + cutover
  ASSERT_EQ(res.migration_seconds.size(), 2u);
  EXPECT_GT(res.migration_seconds_total, 0.0);
  EXPECT_EQ(res.submit_failures, 0u);
  // Every operation — workload and migration replay alike — was consumed
  // exactly once somewhere (no retired shards in this run).
  EXPECT_EQ(res.ops_applied + res.ops_rejected, res.ops_submitted);
  EXPECT_GT(res.queries, 0u);
  ASSERT_EQ(res.final_versions.size(), 4u);
  ASSERT_EQ(res.per_shard_applied.size(), 4u);
  EXPECT_GT(res.per_shard_applied[2] + res.per_shard_applied[3], 0u);
}

TEST(MigrationDriverTest, RemoveShardEventSkipsStalenessInsteadOfInflatingIt) {
  PointSet ps = GenerateIndep(200, 3, 39);
  Workload wl(&ps, 71);
  ShardedLoadOptions lopt;
  lopt.num_readers = 2;
  lopt.num_submitters = 2;
  lopt.service.num_shards = 3;
  lopt.service.shard.algo.r = 6;
  lopt.service.shard.algo.max_utilities = 128;
  lopt.service.shard.max_batch = 16;
  using Event = ShardedLoadOptions::MigrationEvent;
  lopt.migrations.push_back({Event::Kind::kRemoveShard, 0.4, {}});
  ShardedLoadResult res = RunShardedLoad(wl, lopt);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.null_queries, 0u);
  EXPECT_EQ(res.migrations_attempted, 1u);
  EXPECT_EQ(res.migrations_failed, 0u);
  EXPECT_EQ(res.final_num_shards, 2);
  // A retired shard keeps its lifetime op count in service.ops_submitted()
  // but leaves the merged view's consumed counters, so the backlog
  // arithmetic is skipped rather than reported as a phantom staleness.
  EXPECT_EQ(res.mean_staleness_ops, 0.0);
  EXPECT_EQ(res.max_staleness_ops, 0.0);
}

TEST(MigrationResumeTest, ShardedKillAndResumeMatchesJournalReplay) {
  const std::string base = ::testing::TempDir() + "migration_resume.snapshot";
  PointSet ps = GenerateIndep(260, 3, 38);
  Workload wl(&ps, 67);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.max_batch = 8;
  sopt.shard.record_journal = true;
  sopt.shard.persist_every_batches = 1;
  sopt.shard.persist_path = base;

  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  std::vector<std::vector<int>> live_before(2);
  std::vector<std::vector<FdRms::BatchOp>> journals(2);
  uint64_t epoch_before = 0;
  {
    ShardedFdRmsService service(3, sopt);
    ASSERT_TRUE(service.Start(initial).ok());
    const auto& ops = wl.operations();
    for (size_t i = 0; i < ops.size() / 2; ++i) {
      Status st = ops[i].is_insert
                      ? service.SubmitInsert(ops[i].id, ps.Get(ops[i].id))
                      : service.SubmitDelete(ops[i].id);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    // A migration mid-history: the persisted constellation must remember
    // the moved routing, not just the moved tuples.
    std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
    donor.resize(donor.size() / 2);
    ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.Stop().ok());  // kDrain: final persisted snapshots
    epoch_before = service.epoch();
    for (int s = 0; s < 2; ++s) {
      live_before[static_cast<size_t>(s)] = LiveIdsOf(service.shard(s));
      journals[static_cast<size_t>(s)] = service.shard(s).journal();
    }
  }

  // The "kill" happened above (service destroyed); resume a new
  // constellation from the persisted snapshots, without replaying history.
  ShardedServiceOptions ropt = sopt;
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});  // no P_0: everything from disk
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(resumed.epoch(), epoch_before);  // routing restored too
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(resumed.shard(s).resumed()) << "shard " << s;
  }
  auto merged = resumed.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->live_tuples, static_cast<int>(live_before[0].size() +
                                                  live_before[1].size()));

  // Resumed traffic routes by the restored (post-migration) table: a
  // delete of a tuple that lives on shard 1 must find it there.
  ASSERT_FALSE(live_before[1].empty());
  const int victim_id = live_before[1].front();
  ASSERT_TRUE(resumed.SubmitDelete(victim_id).ok());
  ASSERT_TRUE(resumed.Flush().ok());
  auto after = resumed.Query();
  EXPECT_EQ(after->ops_rejected, 0u) << "resumed routing misplaced a delete";
  ASSERT_TRUE(resumed.Stop().ok());

  // Journal-replay equivalence: each resumed shard's live set equals the
  // replay of (epoch-0 partition + the original journal) — the snapshot
  // carried the full history's effect without the history.
  for (int s = 0; s < 2; ++s) {
    std::vector<std::pair<int, Point>> shard_initial;
    for (const auto& [id, point] : initial) {
      if (RoutingTable::Slotted(2)->Route(id) == s) {
        shard_initial.emplace_back(id, point);
      }
    }
    auto replay = SequentialReplay(3, sopt.shard.algo, shard_initial,
                                   journals[static_cast<size_t>(s)]);
    std::vector<int> replay_live;
    replay->topk().tree().ForEach(
        [&](int id, const Point&) { replay_live.push_back(id); });
    std::sort(replay_live.begin(), replay_live.end());
    std::vector<int> resumed_live = LiveIdsOf(resumed.shard(s));
    if (s == resumed.router().Route(victim_id)) {
      replay_live.erase(
          std::remove(replay_live.begin(), replay_live.end(), victim_id),
          replay_live.end());
    }
    EXPECT_EQ(resumed_live, replay_live) << "shard " << s;
    ASSERT_TRUE(resumed.shard(s).algorithm().Validate().ok());
  }
}

}  // namespace
}  // namespace fdrms
