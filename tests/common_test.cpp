#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace fdrms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "Invalid: bad dim");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::NotFound("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    FDRMS_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Invalid("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.UniformInt(5)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StopwatchTest, AccumulatorMeans) {
  TimeAccumulator acc;
  EXPECT_EQ(acc.MeanMillis(), 0.0);
  acc.Add(0.001);
  acc.Add(0.003);
  EXPECT_EQ(acc.count(), 2);
  EXPECT_NEAR(acc.MeanMillis(), 2.0, 1e-9);
}

TEST(TablePrinterTest, AlignsColumnsAndCountsRows) {
  TablePrinter table({"name", "value"});
  table.BeginRow();
  table.AddCell("alpha");
  table.AddNumber(1.23456, 2);
  table.BeginRow();
  table.AddCell("b");
  table.AddInt(42);
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream oss;
  table.Print(oss);
  std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(EnvTest, FallsBackOnMissing) {
  EXPECT_EQ(GetEnvDouble("FDRMS_DEFINITELY_UNSET_VAR", 3.5), 3.5);
  EXPECT_EQ(GetEnvLong("FDRMS_DEFINITELY_UNSET_VAR", 7), 7);
}

}  // namespace
}  // namespace fdrms
