#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "control/slo_controller.h"
#include "data/generators.h"
#include "obs/registry.h"
#include "shard/sharded_service.h"

// All suites here are named Control* on purpose: the `tsan` CMake test
// preset (and the CI ThreadSanitizer job) selects them with
// ^(Serve|Shard|...|Control).

namespace fdrms {
namespace {

using control::SloController;
using control::SloControllerOptions;
using control::SloDecision;
using obs::MetricSnapshot;
using obs::MetricType;
using obs::RegistrySnapshot;

// ---------------------------------------------------------------------------
// Deterministic decision-logic tests: a fake actuator records what the
// controller did, fabricated RegistrySnapshots say what the system looked
// like, and Tick() is clocked by its now_us argument — no threads, no
// sleeps, no real services.
// ---------------------------------------------------------------------------

class FakeActuator : public control::SloActuator {
 public:
  int num_shards() const override { return shards_; }
  Status AddShard() override {
    ++add_calls_;
    if (!add_ok_) return Status::Invalid("injected AddShard failure");
    ++shards_;
    return Status::OK();
  }
  Status RemoveShard() override {
    ++remove_calls_;
    if (!remove_ok_) return Status::Invalid("injected RemoveShard failure");
    --shards_;
    return Status::OK();
  }
  size_t SetBatchBound(size_t bound) override {
    ++set_bound_calls_;
    bound_ = std::min(std::max(bound, min_batch_), max_batch_);
    return bound_;
  }
  size_t batch_bound() const override { return bound_; }
  size_t queue_capacity() const override { return queue_capacity_; }
  uint64_t last_topology_change_us() const override { return stamp_; }

  int shards_ = 2;
  bool add_ok_ = true;
  bool remove_ok_ = true;
  int add_calls_ = 0;
  int remove_calls_ = 0;
  int set_bound_calls_ = 0;
  size_t bound_ = 64;
  size_t min_batch_ = 1;
  size_t max_batch_ = 64;
  size_t queue_capacity_ = 1024;
  uint64_t stamp_ = 0;  ///< fabricated external-migration timestamp
};

// Publish-latency buckets for fabricated snapshots: <=1ms, <=10ms, <=100ms,
// +overflow. With the default 20ms SLO, traffic in the third bucket
// interpolates to a violating p99 and traffic in the first sits well under
// the raise threshold.
const std::vector<double> kBounds = {1000.0, 10000.0, 100000.0};

/// Builder for fabricated registry snapshots. Only the series the
/// controller reads are modelled.
struct Snap {
  RegistrySnapshot s;

  explicit Snap(double uptime_seconds) { s.uptime_seconds = uptime_seconds; }

  Snap& Busy(int shard, double busy_seconds,
             const std::string& gen = std::string()) {
    return Gauge("fdrms_writer_busy_seconds", shard, busy_seconds, gen);
  }
  Snap& Depth(int shard, double depth, const std::string& gen = std::string()) {
    return Gauge("fdrms_queue_depth", shard, depth, gen);
  }
  Snap& Publish(uint64_t fast, uint64_t mid, uint64_t slow) {
    MetricSnapshot m;
    m.name = "fdrms_publish_latency_us";
    m.type = MetricType::kLatencyHistogram;
    m.bounds = kBounds;
    m.buckets = {fast, mid, slow, 0};
    m.count = fast + mid + slow;
    s.metrics.push_back(std::move(m));
    return *this;
  }

  Snap& Gauge(const std::string& name, int shard, double v,
              const std::string& gen) {
    MetricSnapshot m;
    m.name = name;
    m.type = MetricType::kGauge;
    m.labels = {{"shard", std::to_string(shard)}};
    if (!gen.empty()) m.labels.emplace_back("gen", gen);
    m.gauge_value = v;
    s.metrics.push_back(std::move(m));
    return *this;
  }
};

/// A snapshot at second `t` where every shard has been busy `util` of the
/// wall since the start and nothing else is going on.
RegistrySnapshot UniformLoad(double t, int shards, double util,
                             double depth = 0.0) {
  Snap b(t);
  for (int s = 0; s < shards; ++s) b.Busy(s, util * t).Depth(s, depth);
  return std::move(b.s);
}

SloControllerOptions TestOptions() {
  SloControllerOptions o;
  o.publish_p99_slo_us = 20000.0;
  o.high_utilization = 0.85;
  o.low_utilization = 0.25;
  o.queue_saturation_fraction = 0.5;
  o.sustain_ticks = 3;
  o.cooldown_us = 5000000;  // 5s
  o.min_shards = 1;
  o.max_shards = 4;
  return o;
}

uint64_t Us(double seconds) { return static_cast<uint64_t>(seconds * 1e6); }

TEST(ControlTickTest, FirstTickPrimesBaselineWithoutActing) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());
  const SloDecision d = ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  EXPECT_EQ(d.window_seconds, 0.0);
  EXPECT_FALSE(d.scaled_up);
  EXPECT_FALSE(d.scaled_down);
  EXPECT_EQ(d.batch_step, 0);
  EXPECT_EQ(act.add_calls_, 0);
  EXPECT_EQ(act.remove_calls_, 0);
  EXPECT_EQ(act.set_bound_calls_, 0);
  EXPECT_EQ(d.num_shards, 2);
}

TEST(ControlTickTest, SustainedPressureScalesUpAtSustainTicks) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  // Saturated writers: busy advances 1:1 with the wall.
  SloDecision d = ctl.Tick(UniformLoad(1.0, 2, 1.0), Us(1.0));
  EXPECT_NEAR(d.max_utilization, 1.0, 1e-9);
  EXPECT_FALSE(d.scaled_up);  // streak 1 < sustain 3
  d = ctl.Tick(UniformLoad(2.0, 2, 1.0), Us(2.0));
  EXPECT_FALSE(d.scaled_up);  // streak 2
  EXPECT_EQ(act.add_calls_, 0);
  d = ctl.Tick(UniformLoad(3.0, 2, 1.0), Us(3.0));
  EXPECT_TRUE(d.scaled_up);  // streak 3 == sustain
  EXPECT_EQ(act.add_calls_, 1);
  EXPECT_EQ(d.num_shards, 3);
  // The decision landed in the registry and the trace ring.
  const RegistrySnapshot after = reg->Snapshot();
  const MetricSnapshot* ups = after.Find("control_scale_ups_total");
  ASSERT_NE(ups, nullptr);
  EXPECT_EQ(ups->counter_value, 1u);
  bool traced = false;
  for (const obs::TraceEvent& ev : after.trace) {
    if (ev.name == "control.scale_up") traced = true;
  }
  EXPECT_TRUE(traced);
}

TEST(ControlTickTest, HysteresisBandNeverActsAndBreaksResetStreaks) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  // In-band utilization (0.5 between the 0.25/0.85 watermarks) forever:
  // neither streak ever starts.
  for (int t = 1; t <= 10; ++t) {
    const SloDecision d =
        ctl.Tick(UniformLoad(static_cast<double>(t), 2, 0.5), Us(t));
    EXPECT_FALSE(d.scaled_up);
    EXPECT_FALSE(d.scaled_down);
  }
  EXPECT_EQ(act.add_calls_, 0);
  EXPECT_EQ(act.remove_calls_, 0);

  // Two pressured windows, one in-band window, two more pressured: the
  // in-band window must reset the streak, so sustain=3 is never met.
  double busy = 5.0;  // accumulated busy seconds so far (util 0.5 * 10s)
  const double rates[] = {1.0, 1.0, 0.5, 1.0, 1.0};
  for (int i = 0; i < 5; ++i) {
    const double t = 11.0 + i;
    busy += rates[i];
    Snap b(t);
    b.Busy(0, busy).Depth(0, 0.0).Busy(1, 0.0).Depth(1, 0.0);
    const SloDecision d = ctl.Tick(std::move(b.s), Us(t));
    EXPECT_FALSE(d.scaled_up) << "window " << i;
  }
  EXPECT_EQ(act.add_calls_, 0);
}

TEST(ControlTickTest, CooldownSuppressesTheSecondScaleUp) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());  // cooldown 5s
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  int scale_ups = 0;
  // Pressure forever: the first action fires at t=3 (sustain), then the
  // 5s cooldown holds until t=8, where the streak (rebuilt since t=4) has
  // long re-met sustain and the second action fires.
  for (int t = 1; t <= 12 && scale_ups < 2; ++t) {
    const SloDecision d =
        ctl.Tick(UniformLoad(static_cast<double>(t), act.shards_, 1.0), Us(t));
    if (d.scaled_up) {
      ++scale_ups;
      if (scale_ups == 1) EXPECT_EQ(t, 3);
      if (scale_ups == 2) EXPECT_EQ(t, 8);
    } else if (t > 3 && scale_ups == 1 && t < 8) {
      EXPECT_TRUE(d.in_cooldown) << "t=" << t;
    }
  }
  EXPECT_EQ(scale_ups, 2);
  EXPECT_EQ(act.add_calls_, 2);
}

TEST(ControlTickTest, ExternalMigrationStampStartsCooldownToo) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  act.stamp_ = Us(2.5);  // an operator migrated mid-stream
  for (int t = 1; t <= 7; ++t) {
    const SloDecision d =
        ctl.Tick(UniformLoad(static_cast<double>(t), 2, 1.0), Us(t));
    if (t >= 3 && t < 7) {
      // Sustain was met at t=3 but the 5s cooldown from t=2.5 holds
      // until t=7.5.
      EXPECT_TRUE(d.in_cooldown) << "t=" << t;
      EXPECT_FALSE(d.scaled_up) << "t=" << t;
    }
  }
  EXPECT_EQ(act.add_calls_, 0);
  const SloDecision d = ctl.Tick(UniformLoad(8.0, 2, 1.0), Us(8.0));
  EXPECT_TRUE(d.scaled_up);
}

TEST(ControlTickTest, MaxShardClampHoldsTopology) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloControllerOptions opt = TestOptions();
  opt.max_shards = 2;
  act.shards_ = 2;
  SloController ctl(reg, &act, opt);
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  for (int t = 1; t <= 6; ++t) {
    const SloDecision d =
        ctl.Tick(UniformLoad(static_cast<double>(t), 2, 1.0), Us(t));
    EXPECT_FALSE(d.scaled_up);
    EXPECT_FALSE(d.scale_failed);
  }
  EXPECT_EQ(act.add_calls_, 0);
}

TEST(ControlTickTest, SustainedSlackScalesDownUntilMinShards) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloControllerOptions opt = TestOptions();
  opt.min_shards = 2;
  opt.cooldown_us = 1000000;  // 1s: let both scale-downs land in the sweep
  act.shards_ = 4;
  SloController ctl(reg, &act, opt);
  ctl.Tick(UniformLoad(0.0, 4, 0.0), 0);
  int scale_downs = 0;
  for (int t = 1; t <= 12; ++t) {
    const SloDecision d = ctl.Tick(
        UniformLoad(static_cast<double>(t), act.shards_, 0.0), Us(t));
    if (d.scaled_down) ++scale_downs;
  }
  // 4 -> 3 -> 2, then the min_shards clamp holds despite continued slack.
  EXPECT_EQ(scale_downs, 2);
  EXPECT_EQ(act.remove_calls_, 2);
  EXPECT_EQ(act.shards_, 2);
}

TEST(ControlTickTest, SloViolationBlocksScaleDown) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloControllerOptions opt = TestOptions();
  opt.enable_batching = false;  // isolate the topology side
  act.shards_ = 2;
  SloController ctl(reg, &act, opt);
  Snap base(0.0);
  base.Busy(0, 0.0).Depth(0, 0.0).Busy(1, 0.0).Depth(1, 0.0).Publish(0, 0, 0);
  ctl.Tick(std::move(base.s), 0);
  // Idle writers but every publication lands in the 10..100ms bucket:
  // p99 ~ 99ms >> the 20ms SLO, so the slack condition must not hold.
  for (int t = 1; t <= 8; ++t) {
    Snap b(static_cast<double>(t));
    b.Busy(0, 0.0).Depth(0, 0.0).Busy(1, 0.0).Depth(1, 0.0);
    b.Publish(0, 0, static_cast<uint64_t>(100 * t));
    const SloDecision d = ctl.Tick(std::move(b.s), Us(t));
    EXPECT_TRUE(d.slo_violated) << "t=" << t;
    EXPECT_FALSE(d.scaled_down) << "t=" << t;
  }
  EXPECT_EQ(act.remove_calls_, 0);
}

TEST(ControlTickTest, QueueSaturationPressuresDespiteIdleWriters) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  act.queue_capacity_ = 1000;
  SloController ctl(reg, &act, TestOptions());  // saturation at depth 500
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  SloDecision d;
  for (int t = 1; t <= 3; ++t) {
    d = ctl.Tick(UniformLoad(static_cast<double>(t), 2, 0.0, 600.0), Us(t));
  }
  EXPECT_TRUE(d.scaled_up);
  EXPECT_EQ(act.add_calls_, 1);
}

TEST(ControlTickTest, FailedScaleUpCountsAndEntersCooldown) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  act.add_ok_ = false;
  SloController ctl(reg, &act, TestOptions());  // cooldown 5s
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  for (int t = 1; t <= 7; ++t) {
    const SloDecision d =
        ctl.Tick(UniformLoad(static_cast<double>(t), 2, 1.0), Us(t));
    if (t == 3) EXPECT_TRUE(d.scale_failed);
  }
  // One attempt at t=3; the failure itself anchors the cooldown, so the
  // controller must not hammer a failing actuator every tick.
  EXPECT_EQ(act.add_calls_, 1);
  const RegistrySnapshot after = reg->Snapshot();
  const MetricSnapshot* failures = after.Find("control_scale_failures_total");
  ASSERT_NE(failures, nullptr);
  EXPECT_EQ(failures->counter_value, 1u);
}

TEST(ControlTickTest, BatchBoundTracksTheWindowedP99) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloControllerOptions opt = TestOptions();
  opt.enable_topology = false;  // isolate the batching side
  SloController ctl(reg, &act, opt);
  Snap base(0.0);
  base.Publish(0, 0, 0);
  ctl.Tick(std::move(base.s), 0);

  // Window 1: p99 in the violation bucket -> bound halves 64 -> 32.
  Snap w1(1.0);
  w1.Publish(0, 0, 100);
  SloDecision d = ctl.Tick(std::move(w1.s), Us(1.0));
  EXPECT_EQ(d.batch_step, -1);
  EXPECT_EQ(act.bound_, 32u);

  // Window 2: p99 between the raise fraction (10ms) and the SLO (20ms) ->
  // hold. Window adds 935 fast + 10 slow: the p99 target (935.55 of 945)
  // lands 0.055 into the 10..100ms bucket, interpolating to ~15ms.
  Snap w2(2.0);
  w2.Publish(935, 0, 110);  // cumulative: window delta {935, 0, 10}
  d = ctl.Tick(std::move(w2.s), Us(2.0));
  EXPECT_FALSE(d.slo_violated);
  EXPECT_EQ(d.batch_step, 0);
  EXPECT_EQ(act.bound_, 32u);

  // Window 3: everything fast (p99 ~ 1ms, under half the SLO) -> the
  // bound doubles back.
  Snap w3(3.0);
  w3.Publish(1335, 0, 110);  // window delta {400, 0, 0}
  d = ctl.Tick(std::move(w3.s), Us(3.0));
  EXPECT_EQ(d.batch_step, 1);
  EXPECT_EQ(act.bound_, 64u);

  // Window 4: idle (no publishes) -> the bound must hold; an empty window
  // says nothing about publication cost.
  Snap w4(4.0);
  w4.Publish(1335, 0, 110);
  d = ctl.Tick(std::move(w4.s), Us(4.0));
  EXPECT_EQ(d.batch_step, 0);
  EXPECT_EQ(d.window_publishes, 0u);
  EXPECT_EQ(act.bound_, 64u);
}

TEST(ControlTickTest, BatchLowerAtTheFloorIsNotAnAdjustment) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  act.bound_ = 1;
  act.min_batch_ = 1;
  SloControllerOptions opt = TestOptions();
  opt.enable_topology = false;
  SloController ctl(reg, &act, opt);
  Snap base(0.0);
  base.Publish(0, 0, 0);
  ctl.Tick(std::move(base.s), 0);
  Snap w(1.0);
  w.Publish(0, 0, 50);  // violating window
  const SloDecision d = ctl.Tick(std::move(w.s), Us(1.0));
  // SetBatchBound(0) clamps back to the floor: nothing changed, so the
  // tick records no adjustment (and no decision).
  EXPECT_EQ(d.batch_step, 0);
  EXPECT_EQ(act.bound_, 1u);
  const obs::RegistrySnapshot after = reg->Snapshot();
  const MetricSnapshot* adj = after.Find("control_batch_adjustments_total");
  ASSERT_NE(adj, nullptr);
  EXPECT_EQ(adj->counter_value, 0u);
}

TEST(ControlTickTest, RebornShardGenLabelsReadCorrectly) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  act.shards_ = 1;
  SloController ctl(reg, &act, TestOptions());
  // Shard 0 was reborn: a retired gen-less incarnation holds a frozen busy
  // counter and a stale queue depth; the live {gen=1} series moves.
  Snap base(0.0);
  base.Busy(0, 10.0).Depth(0, 900.0);  // retired incarnation, frozen
  base.Busy(0, 0.0, "1").Depth(0, 0.0, "1");
  ctl.Tick(std::move(base.s), 0);
  Snap w(1.0);
  w.Busy(0, 10.0).Depth(0, 900.0);        // still frozen
  w.Busy(0, 0.3, "1").Depth(0, 4.0, "1");  // live gen: util 0.3, shallow
  const SloDecision d = ctl.Tick(std::move(w.s), Us(1.0));
  // GaugeDelta ignores the frozen incarnation (no movement) and
  // GaugeLatest picks the live gen, so neither the stale depth (900 would
  // saturate) nor the frozen busy total (10s busy in a 1s window) leaks
  // into the signals.
  EXPECT_NEAR(d.max_utilization, 0.3, 1e-9);
  EXPECT_NEAR(d.max_queue_depth, 4.0, 1e-9);
}

TEST(ControlTickTest, DebugStringRendersTheSloStatusPage) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FakeActuator act;
  SloController ctl(reg, &act, TestOptions());
  ctl.Tick(UniformLoad(0.0, 2, 0.0), 0);
  ctl.Tick(UniformLoad(1.0, 2, 0.5), Us(1.0));
  const std::string page = ctl.DebugString();
  EXPECT_NE(page.find("SloController"), std::string::npos);
  EXPECT_NE(page.find("publish_p99"), std::string::npos);
  EXPECT_NE(page.find("shards=2"), std::string::npos);
  EXPECT_NE(page.find("slo-ok"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live smoke: the production polling thread against a real (tiny)
// constellation — exercises Start/Stop, the registry snapshot path, and the
// actuator under TSan.
// ---------------------------------------------------------------------------

TEST(ControlLiveTest, PollingThreadRunsAgainstALiveConstellation) {
  PointSet ps = GenerateIndep(300, 3, 41);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 8;
  sopt.shard.algo.max_utilities = 64;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 200; ++i) initial.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(service.Start(initial).ok());

  control::ShardedServiceActuator actuator(&service);
  SloControllerOptions copt;
  copt.tick_ms = 5;
  copt.min_shards = 1;
  copt.max_shards = 4;
  SloController ctl(service.registry(), &actuator, copt);
  ctl.Start();
  ctl.Start();  // idempotent
  EXPECT_TRUE(ctl.running());

  for (int i = 200; i < 300; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ctl.Stop();
  EXPECT_FALSE(ctl.running());
  const RegistrySnapshot snap = service.registry()->Snapshot();
  const MetricSnapshot* ticks = snap.Find("control_ticks_total");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GE(ticks->counter_value, 1u);
  EXPECT_FALSE(ctl.DebugString().empty());
  ASSERT_TRUE(service.Stop().ok());
}

// SetBatchBound plumbing through the sharded layer: the ceiling fans out
// to every live shard and is inherited by shards born later.
TEST(ControlShardPlumbingTest, BatchBoundFansOutAndSurvivesAddShard) {
  PointSet ps = GenerateIndep(200, 3, 42);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 8;
  sopt.shard.algo.max_utilities = 64;
  sopt.shard.min_batch = 1;
  sopt.shard.max_batch = 64;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 200; ++i) initial.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(service.Start(initial).ok());
  EXPECT_EQ(service.batch_bound(), 64u);

  EXPECT_EQ(service.SetBatchBound(8), 8u);
  EXPECT_EQ(service.batch_bound(), 8u);

  EXPECT_EQ(service.last_topology_change_us(), 0u);
  ASSERT_TRUE(service.AddShard().ok());
  EXPECT_GT(service.last_topology_change_us(), 0u);
  // The new shard inherits the lowered ceiling (observable through the
  // per-shard gauge in the shared registry).
  const RegistrySnapshot snap = service.registry()->Snapshot();
  int bound_series = 0;
  for (const MetricSnapshot& m : snap.metrics) {
    if (m.name != "fdrms_batch_bound") continue;
    ++bound_series;
    EXPECT_EQ(m.gauge_value, 8.0) << "labels size " << m.labels.size();
  }
  EXPECT_EQ(bound_series, 3);  // one per live shard

  // Out-of-range asks clamp into [min_batch, max_batch].
  EXPECT_EQ(service.SetBatchBound(0), 1u);
  EXPECT_EQ(service.SetBatchBound(1 << 20), 64u);
  ASSERT_TRUE(service.Stop().ok());
}

}  // namespace
}  // namespace fdrms
