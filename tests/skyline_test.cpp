#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "data/generators.h"
#include "skyline/skyline.h"

namespace fdrms {
namespace {

/// O(n^2) reference skyline over a live map.
std::unordered_set<int> BruteSkyline(const std::unordered_map<int, Point>& live) {
  std::unordered_set<int> out;
  for (const auto& [id, p] : live) {
    bool dominated = false;
    for (const auto& [other_id, q] : live) {
      if (other_id != id && Dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.insert(id);
  }
  return out;
}

TEST(StaticSkylineTest, PaperFigure1Example) {
  // Fig. 1: p1..p8; the skyline is {p1, p2, p4} plus p7 (0.3, 0.9) — check
  // against brute force rather than intuition.
  PointSet ps(2);
  ps.Add({0.2, 1.0});   // p1
  ps.Add({0.6, 0.8});   // p2
  ps.Add({0.7, 0.5});   // p3
  ps.Add({1.0, 0.1});   // p4
  ps.Add({0.4, 0.3});   // p5
  ps.Add({0.2, 0.7});   // p6
  ps.Add({0.3, 0.9});   // p7
  ps.Add({0.6, 0.6});   // p8
  std::vector<int> sky = ComputeSkyline(ps);
  std::unordered_map<int, Point> live;
  for (int i = 0; i < ps.size(); ++i) live.emplace(i, ps.Get(i));
  auto expected = BruteSkyline(live);
  EXPECT_EQ(std::unordered_set<int>(sky.begin(), sky.end()), expected);
  // p3 = (0.7, 0.5) is on the skyline of Fig. 1 (nothing dominates it).
  EXPECT_TRUE(expected.count(2) > 0);
  // p8 = (0.6, 0.6) is dominated by p2 = (0.6, 0.8).
  EXPECT_TRUE(expected.count(7) == 0);
}

TEST(StaticSkylineTest, AllEqualPointsAllOnSkyline) {
  PointSet ps(3);
  for (int i = 0; i < 5; ++i) ps.Add({0.5, 0.5, 0.5});
  EXPECT_EQ(ComputeSkyline(ps).size(), 5u);  // equal points don't dominate
}

TEST(StaticSkylineTest, ChainLeavesSingleton) {
  PointSet ps(2);
  for (int i = 0; i < 10; ++i) ps.Add({0.1 * i, 0.1 * i});
  std::vector<int> sky = ComputeSkyline(ps);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0], 9);
}

TEST(DynamicSkylineTest, InsertErrorsAndFlags) {
  DynamicSkyline sky(2);
  bool changed = false;
  ASSERT_TRUE(sky.Insert(0, {0.9, 0.9}, &changed).ok());
  EXPECT_TRUE(changed);
  ASSERT_TRUE(sky.Insert(1, {0.1, 0.1}, &changed).ok());
  EXPECT_FALSE(changed);  // dominated on arrival
  EXPECT_EQ(sky.Insert(0, {0.2, 0.2}, &changed).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(sky.Delete(42, &changed).code(), StatusCode::kNotFound);
}

TEST(DynamicSkylineTest, DeleteOfNonSkylineMemberIsFree) {
  DynamicSkyline sky(2);
  bool changed = false;
  ASSERT_TRUE(sky.Insert(0, {0.9, 0.9}, nullptr).ok());
  ASSERT_TRUE(sky.Insert(1, {0.1, 0.1}, nullptr).ok());
  ASSERT_TRUE(sky.Delete(1, &changed).ok());
  EXPECT_FALSE(changed);
  EXPECT_EQ(sky.skyline_size(), 1);
}

TEST(DynamicSkylineTest, DeletePromotesFormerlyDominated) {
  DynamicSkyline sky(2);
  ASSERT_TRUE(sky.Insert(0, {0.9, 0.9}, nullptr).ok());
  ASSERT_TRUE(sky.Insert(1, {0.8, 0.8}, nullptr).ok());
  ASSERT_TRUE(sky.Insert(2, {0.7, 0.95}, nullptr).ok());
  bool changed = false;
  ASSERT_TRUE(sky.Delete(0, &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_TRUE(sky.IsOnSkyline(1));
  EXPECT_TRUE(sky.IsOnSkyline(2));
}

struct SkylineChurnParam {
  int dim;
  int num_ops;
  uint64_t seed;
};

class SkylineChurnTest : public ::testing::TestWithParam<SkylineChurnParam> {};

TEST_P(SkylineChurnTest, MatchesBruteForceUnderChurn) {
  const SkylineChurnParam param = GetParam();
  Rng rng(param.seed);
  DynamicSkyline sky(param.dim);
  std::unordered_map<int, Point> live;
  int next_id = 0;
  for (int op = 0; op < param.num_ops; ++op) {
    if (live.empty() || rng.Uniform() < 0.6) {
      Point p(param.dim);
      for (double& v : p) v = rng.Uniform();
      ASSERT_TRUE(sky.Insert(next_id, p, nullptr).ok());
      live.emplace(next_id, p);
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(static_cast<int>(live.size())));
      ASSERT_TRUE(sky.Delete(it->first, nullptr).ok());
      live.erase(it);
    }
    if (op % 20 == 19) {
      EXPECT_EQ(sky.skyline(), BruteSkyline(live)) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineChurnTest,
    ::testing::Values(SkylineChurnParam{2, 400, 51},
                      SkylineChurnParam{3, 400, 52},
                      SkylineChurnParam{5, 500, 53},
                      SkylineChurnParam{8, 500, 54}),
    [](const auto& info) {
      std::string name = "d";
      name += std::to_string(info.param.dim);
      name += "seed";
      name += std::to_string(info.param.seed);
      return name;
    });

TEST(SkylineGeneratorsTest, AntiCorHasLargerSkylineThanIndepAndCorrelated) {
  const int n = 4000;
  const int d = 5;
  auto count = [](const PointSet& ps) { return ComputeSkyline(ps).size(); };
  size_t anti = count(GenerateAntiCor(n, d, 1));
  size_t indep = count(GenerateIndep(n, d, 1));
  size_t corr = count(GenerateCorrelated(n, d, 1));
  EXPECT_GT(anti, indep);
  EXPECT_GT(indep, corr);
}

}  // namespace
}  // namespace fdrms
