#include <gtest/gtest.h>

#include "data/generators.h"
#include "skyline/skyline.h"

namespace fdrms {
namespace {

TEST(GeneratorsTest, SizesAndDimensions) {
  EXPECT_EQ(GenerateIndep(100, 4, 1).size(), 100);
  EXPECT_EQ(GenerateIndep(100, 4, 1).dim(), 4);
  EXPECT_EQ(GenerateAntiCor(50, 7, 1).dim(), 7);
  EXPECT_EQ(GenerateBasketball(30, 1).dim(), 5);
  EXPECT_EQ(GenerateAirQuality(30, 1).dim(), 9);
  EXPECT_EQ(GenerateCoverType(30, 1).dim(), 8);
  EXPECT_EQ(GenerateMovie(30, 1).dim(), 12);
}

TEST(GeneratorsTest, ValuesInUnitRange) {
  for (const auto& spec : PaperDatasets()) {
    auto res = GenerateByName(spec.name, 500, 3);
    ASSERT_TRUE(res.ok()) << spec.name;
    const PointSet& ps = res.value();
    EXPECT_EQ(ps.dim(), spec.dim) << spec.name;
    for (int i = 0; i < ps.size(); ++i) {
      for (int j = 0; j < ps.dim(); ++j) {
        EXPECT_GE(ps.Row(i)[j], 0.0) << spec.name;
        EXPECT_LE(ps.Row(i)[j], 1.0) << spec.name;
      }
    }
  }
}

TEST(GeneratorsTest, DeterministicForSeed) {
  PointSet a = GenerateAntiCor(200, 5, 42);
  PointSet b = GenerateAntiCor(200, 5, 42);
  PointSet c = GenerateAntiCor(200, 5, 43);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (int i = 0; i < a.size(); ++i) {
    for (int j = 0; j < a.dim(); ++j) {
      if (a.Row(i)[j] != b.Row(i)[j]) all_equal = false;
      if (a.Row(i)[j] != c.Row(i)[j]) differs_from_c = true;
    }
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(GeneratorsTest, UnknownNameRejected) {
  EXPECT_FALSE(GenerateByName("NotADataset", 10, 1).ok());
}

TEST(GeneratorsTest, SkylineDensityOrderingMatchesPaper) {
  // Table I (relative density of #skyline/n at matched n): BB tiny, AQ/CT
  // moderate, Movie very dense. We check the ordering, not the absolute
  // counts, at reduced n.
  const int n = 4000;
  auto density = [&](const std::string& name) {
    PointSet ps = std::move(GenerateByName(name, n, 5)).ValueOr(PointSet(1));
    return static_cast<double>(ComputeSkyline(ps).size()) / ps.size();
  };
  double bb = density("BB");
  double aq = density("AQ");
  double movie = density("Movie");
  EXPECT_LT(bb, aq);
  EXPECT_LT(aq, movie);
  EXPECT_LT(bb, 0.1);
  EXPECT_GT(movie, 0.15);
}

TEST(GeneratorsTest, SkylineGrowsWithDimension) {
  // Fig. 4 left: #skyline increases with d for both synthetic families.
  int prev_indep = 0;
  int prev_anti = 0;
  for (int d : {4, 6, 8}) {
    int indep = static_cast<int>(ComputeSkyline(GenerateIndep(3000, d, 7)).size());
    int anti =
        static_cast<int>(ComputeSkyline(GenerateAntiCor(3000, d, 7)).size());
    EXPECT_GT(indep, prev_indep) << "d=" << d;
    EXPECT_GT(anti, prev_anti) << "d=" << d;
    prev_indep = indep;
    prev_anti = anti;
  }
}

}  // namespace
}  // namespace fdrms
