#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "baselines/greedy.h"
#include "data/generators.h"
#include "eval/runner.h"
#include "eval/workload.h"

namespace fdrms {
namespace {

TEST(WorkloadTest, ProtocolShape) {
  PointSet ps = GenerateIndep(100, 3, 1);
  Workload wl(&ps, 42);
  EXPECT_EQ(wl.initial_ids().size(), 50u);
  EXPECT_EQ(wl.operations().size(), 100u);  // 50 inserts + 50 deletes
  int inserts = 0, deletes = 0;
  for (const auto& op : wl.operations()) {
    (op.is_insert ? inserts : deletes)++;
  }
  EXPECT_EQ(inserts, 50);
  EXPECT_EQ(deletes, 50);
  // Inserts precede deletes (paper protocol).
  EXPECT_TRUE(wl.operations().front().is_insert);
  EXPECT_FALSE(wl.operations().back().is_insert);
  EXPECT_EQ(wl.checkpoints().size(), 10u);
  EXPECT_EQ(wl.checkpoints().back(), 99);
}

TEST(WorkloadTest, InsertsAreExactlyTheMissingHalf) {
  PointSet ps = GenerateIndep(60, 2, 2);
  Workload wl(&ps, 7);
  std::unordered_set<int> initial(wl.initial_ids().begin(),
                                  wl.initial_ids().end());
  for (const auto& op : wl.operations()) {
    if (op.is_insert) {
      EXPECT_EQ(initial.count(op.id), 0u) << "re-inserted initial tuple";
    }
  }
}

TEST(WorkloadTest, LiveIdsReplayIsConsistent) {
  PointSet ps = GenerateIndep(80, 2, 3);
  Workload wl(&ps, 9);
  // After all operations: everything inserted, half deleted.
  auto final_live = wl.LiveIdsAfter(static_cast<int>(wl.operations().size()) - 1);
  EXPECT_EQ(final_live.size(), 40u);
  // After the inserts only: everything is live.
  auto mid_live = wl.LiveIdsAfter(39);
  EXPECT_EQ(mid_live.size(), 80u);
}

TEST(WorkloadTest, LiveIdsAfterRandomAccessMatchesBruteForceReplay) {
  // The memoized replay cursor must be invisible: any query order (forward
  // sweeps, rewinds, repeats) returns exactly what a from-scratch replay
  // computes.
  PointSet ps = GenerateIndep(70, 2, 4);
  Workload wl(&ps, 21);
  auto brute_force = [&](int op_index) {
    std::unordered_set<int> live(wl.initial_ids().begin(),
                                 wl.initial_ids().end());
    for (int i = 0; i <= op_index &&
                    i < static_cast<int>(wl.operations().size());
         ++i) {
      const Operation& op = wl.operations()[i];
      if (op.is_insert) {
        live.insert(op.id);
      } else {
        live.erase(op.id);
      }
    }
    std::vector<int> out(live.begin(), live.end());
    std::sort(out.begin(), out.end());
    return out;
  };
  const int last = static_cast<int>(wl.operations().size()) - 1;
  for (int idx : {10, 40, 40, 5, last, 0, -1, 25, last}) {
    EXPECT_EQ(wl.LiveIdsAfter(idx), brute_force(idx)) << "op_index " << idx;
  }
}

TEST(WorkloadRunnerTest, FdRmsRunProducesBoundedRegret) {
  PointSet ps = GenerateIndep(400, 3, 4);
  Workload wl(&ps, 11);
  WorkloadRunner runner(&wl, /*k=*/1, /*eval_directions=*/2000, 5);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 10;
  opt.eps = 0.05;
  opt.max_utilities = 256;
  RunResult res = runner.RunFdRms(opt);
  EXPECT_EQ(res.algorithm, "FD-RMS");
  EXPECT_EQ(res.checkpoint_regret.size(), 10u);
  for (double rr : res.checkpoint_regret) {
    EXPECT_GE(rr, 0.0);
    EXPECT_LT(rr, 0.5);
  }
  EXPECT_GT(res.mean_update_ms, 0.0);
  EXPECT_LE(static_cast<int>(res.final_result.size()), 10);
}

TEST(WorkloadRunnerTest, StaticRunChargesOnlySkylineTriggers) {
  PointSet ps = GenerateCorrelated(300, 3, 5);  // few skyline changes
  Workload wl(&ps, 13);
  WorkloadRunner runner(&wl, 1, 1000, 6);
  GeoGreedyRms algo(128, 4);
  RunResult res = runner.RunStatic(algo, /*r=*/8);
  EXPECT_EQ(res.algorithm, "GeoGreedy");
  EXPECT_GT(res.skyline_triggers, 0);
  EXPECT_LT(res.skyline_triggers, static_cast<long>(wl.operations().size()));
  // Static runs record regret at a strided subset of the checkpoints
  // (FDRMS_STATIC_CHECKPOINT_STRIDE, default 3 -> 4 of 10).
  EXPECT_GE(res.checkpoint_regret.size(), 4u);
  EXPECT_LE(res.checkpoint_regret.size(), 10u);
  for (double rr : res.checkpoint_regret) {
    EXPECT_GE(rr, 0.0);
    EXPECT_LE(rr, 1.0);
  }
}

TEST(WorkloadRunnerTest, RegretAtCheckpointZeroForFullResult) {
  PointSet ps = GenerateIndep(50, 2, 6);
  Workload wl(&ps, 17);
  WorkloadRunner runner(&wl, 1, 500, 7);
  // Offering the entire live set must give zero regret.
  int last = static_cast<int>(wl.checkpoints().size()) - 1;
  auto live = wl.LiveIdsAfter(wl.checkpoints()[last]);
  EXPECT_NEAR(runner.RegretAtCheckpoint(last, live), 0.0, 1e-12);
  // Offering a single worst tuple gives positive regret.
  EXPECT_GT(runner.RegretAtCheckpoint(last, {live[0]}), 0.0);
}

}  // namespace
}  // namespace fdrms
