#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "setcover/dynamic_set_cover.h"
#include "setcover/set_system.h"

namespace fdrms {
namespace {

TEST(SetSystemTest, BidirectionalIncidence) {
  SetSystem sys(4);
  EXPECT_TRUE(sys.AddMembership(0, 100));
  EXPECT_TRUE(sys.AddMembership(1, 100));
  EXPECT_FALSE(sys.AddMembership(0, 100));  // duplicate
  EXPECT_TRUE(sys.Contains(0, 100));
  EXPECT_EQ(sys.ElementsOf(100).size(), 2u);
  EXPECT_EQ(sys.SetsContaining(0).size(), 1u);
  EXPECT_TRUE(sys.RemoveMembership(0, 100));
  EXPECT_FALSE(sys.RemoveMembership(0, 100));
  EXPECT_FALSE(sys.Contains(0, 100));
  EXPECT_EQ(sys.ElementsOf(100).size(), 1u);
}

TEST(SetSystemTest, EmptySetDisappears) {
  SetSystem sys(2);
  sys.AddMembership(0, 5);
  sys.RemoveMembership(0, 5);
  EXPECT_EQ(sys.num_sets(), 0u);
  EXPECT_TRUE(sys.NonEmptySetIds().empty());
}

/// Builds a cover over `m` elements where set i covers a contiguous block.
DynamicSetCover MakeBlockInstance(int m, int block, int overlap) {
  DynamicSetCover cover(m);
  // Hack: we mutate through the public API before greedy initialization.
  int set_id = 0;
  for (int start = 0; start < m; start += block - overlap) {
    for (int e = start; e < std::min(m, start + block); ++e) {
      cover.AddMembership(e, set_id);
    }
    ++set_id;
    if (start + block >= m) break;
  }
  return cover;
}

TEST(DynamicSetCoverTest, GreedyCoversEverything) {
  DynamicSetCover cover = MakeBlockInstance(40, 10, 2);
  std::vector<int> universe(40);
  for (int i = 0; i < 40; ++i) universe[i] = i;
  cover.InitializeGreedy(universe);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  for (int e = 0; e < 40; ++e) {
    EXPECT_NE(cover.AssignmentOf(e), DynamicSetCover::kUnassigned);
  }
  EXPECT_GE(cover.CoverSize(), 4);  // 40 elements / blocks of 10
}

TEST(DynamicSetCoverTest, GreedyPrefersLargeSets) {
  DynamicSetCover cover(10);
  for (int e = 0; e < 10; ++e) cover.AddMembership(e, 1);  // big set
  for (int e = 0; e < 10; ++e) cover.AddMembership(e, 100 + e);  // singletons
  std::vector<int> universe(10);
  for (int i = 0; i < 10; ++i) universe[i] = i;
  cover.InitializeGreedy(universe);
  EXPECT_EQ(cover.CoverSize(), 1);
  EXPECT_EQ(cover.CoverSetIds(), std::vector<int>{1});
  EXPECT_EQ(cover.LevelOf(1), 3);  // 2^3 <= 10 < 2^4
  ASSERT_TRUE(cover.CheckInvariants().ok());
}

TEST(DynamicSetCoverTest, RemoveMembershipReassigns) {
  DynamicSetCover cover(4);
  cover.AddMembership(0, 1);
  cover.AddMembership(1, 1);
  cover.AddMembership(0, 2);
  cover.AddMembership(2, 2);
  cover.AddMembership(3, 3);
  std::vector<int> universe{0, 1, 2, 3};
  cover.InitializeGreedy(universe);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  int assigned = cover.AssignmentOf(0);
  cover.RemoveMembership(0, assigned);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_NE(cover.AssignmentOf(0), assigned);
  EXPECT_NE(cover.AssignmentOf(0), DynamicSetCover::kUnassigned);
}

TEST(DynamicSetCoverTest, UniverseGrowAndShrink) {
  DynamicSetCover cover(6);
  for (int e = 0; e < 6; ++e) cover.AddMembership(e, e / 2);
  cover.InitializeGreedy({0, 1, 2, 3});
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.UniverseSize(), 4);
  cover.AddToUniverse(4);
  cover.AddToUniverse(5);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.UniverseSize(), 6);
  EXPECT_NE(cover.AssignmentOf(5), DynamicSetCover::kUnassigned);
  cover.RemoveFromUniverse(0);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.AssignmentOf(0), DynamicSetCover::kUnassigned);
  EXPECT_EQ(cover.UniverseSize(), 5);
}

TEST(DynamicSetCoverTest, RemoveSetReassignsItsCover) {
  DynamicSetCover cover(4);
  for (int e = 0; e < 4; ++e) cover.AddMembership(e, 1);
  for (int e = 0; e < 4; ++e) cover.AddMembership(e, 2);
  cover.InitializeGreedy({0, 1, 2, 3});
  int kept = cover.CoverSetIds().front();
  cover.RemoveSet(kept);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  for (int e = 0; e < 4; ++e) {
    EXPECT_NE(cover.AssignmentOf(e), DynamicSetCover::kUnassigned);
  }
  EXPECT_TRUE(cover.system().ElementsOf(kept).empty());
}

TEST(DynamicSetCoverTest, UncoverableElementToleratedUntilCoverable) {
  DynamicSetCover cover(2);
  cover.AddMembership(0, 7);
  cover.InitializeGreedy({0, 1});  // element 1 is in no set
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.AssignmentOf(1), DynamicSetCover::kUnassigned);
  cover.AddMembership(1, 7);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.AssignmentOf(1), 7);
}

struct CoverChurnParam {
  int num_elements;
  int num_sets;
  double density;
  int num_ops;
  uint64_t seed;
};

class SetCoverChurnTest : public ::testing::TestWithParam<CoverChurnParam> {};

TEST_P(SetCoverChurnTest, StabilityInvariantsSurviveRandomChurn) {
  const CoverChurnParam param = GetParam();
  Rng rng(param.seed);
  DynamicSetCover cover(param.num_elements);
  // Random incidence.
  for (int e = 0; e < param.num_elements; ++e) {
    for (int s = 0; s < param.num_sets; ++s) {
      if (rng.Uniform() < param.density) cover.AddMembership(e, s);
    }
    // Guarantee coverability.
    cover.AddMembership(e, rng.UniformInt(param.num_sets));
  }
  std::vector<int> universe(param.num_elements);
  for (int i = 0; i < param.num_elements; ++i) universe[i] = i;
  cover.InitializeGreedy(universe);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  for (int op = 0; op < param.num_ops; ++op) {
    int kind = rng.UniformInt(5);
    int e = rng.UniformInt(param.num_elements);
    int s = rng.UniformInt(param.num_sets);
    switch (kind) {
      case 0:
        cover.AddMembership(e, s);
        break;
      case 1:
        cover.RemoveMembership(e, s);
        break;
      case 2:
        cover.AddToUniverse(e);
        break;
      case 3:
        cover.RemoveFromUniverse(e);
        break;
      case 4:
        cover.RemoveSet(s);
        break;
    }
    if (op % 10 == 9) {
      ASSERT_TRUE(cover.CheckInvariants().ok())
          << "op " << op << " kind " << kind;
    }
  }
  ASSERT_TRUE(cover.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetCoverChurnTest,
    ::testing::Values(CoverChurnParam{20, 8, 0.2, 300, 41},
                      CoverChurnParam{50, 15, 0.1, 400, 42},
                      CoverChurnParam{100, 12, 0.05, 400, 43},
                      CoverChurnParam{64, 64, 0.03, 500, 44},
                      CoverChurnParam{30, 5, 0.5, 500, 45}),
    [](const auto& info) {
      std::string name = "e";
      name += std::to_string(info.param.num_elements);
      name += 's';
      name += std::to_string(info.param.num_sets);
      name += "seed";
      name += std::to_string(info.param.seed);
      return name;
    });

TEST(DynamicSetCoverTest, ApproximationStaysLogarithmic) {
  // Block instance with a known optimal cover size; the stable solution
  // must stay within the O(log m) factor of Theorem 1.
  Rng rng(99);
  const int m = 256;
  DynamicSetCover cover(m);
  // Optimal cover: 8 blocks of 32.
  for (int b = 0; b < 8; ++b) {
    for (int e = b * 32; e < (b + 1) * 32; ++e) cover.AddMembership(e, b);
  }
  // Noise sets.
  for (int s = 100; s < 200; ++s) {
    for (int j = 0; j < 6; ++j) {
      cover.AddMembership(rng.UniformInt(m), s);
    }
  }
  std::vector<int> universe(m);
  for (int i = 0; i < m; ++i) universe[i] = i;
  cover.InitializeGreedy(universe);
  ASSERT_TRUE(cover.CheckInvariants().ok());
  double bound = (2.0 + 2.0 * std::log2(m)) * 8;
  EXPECT_LE(cover.CoverSize(), bound);
  // Churn memberships of noise sets, then re-check the bound.
  for (int op = 0; op < 500; ++op) {
    int s = 100 + rng.UniformInt(100);
    int e = rng.UniformInt(m);
    if (rng.Uniform() < 0.5) {
      cover.AddMembership(e, s);
    } else {
      cover.RemoveMembership(e, s);
    }
  }
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_LE(cover.CoverSize(), bound);
}

}  // namespace
}  // namespace fdrms
